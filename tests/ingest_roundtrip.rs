//! Property tests for the record/ingest round trip: any generated
//! `AccessTrace` set, exported through `TraceRecorder` (either fed directly
//! from an interleaved multi-pid event stream — the inverse of
//! `multi::interleave` — or recorded off a real simulated run), must ingest
//! back bit-identically: pages, read/write flags, compute costs, names, and
//! per-process order.

use leap_repro::leap_mem::Pid;
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::ingest::{ingest_str, LogFormat};
use leap_repro::leap_workloads::{interleave, Access, AccessTrace};
use leap_repro::prelude::*;
use proptest::prelude::*;

/// Builds generated traces from per-process access specs. Page numbers stay
/// below 2^40 (well inside the 52-bit range a byte address can carry),
/// computes below 1 ms so multi-trace clocks stay far from overflow.
fn traces_from(specs: &[Vec<(u64, bool, u64)>]) -> Vec<AccessTrace> {
    specs
        .iter()
        .enumerate()
        .map(|(i, accesses)| {
            AccessTrace::new(
                format!("app{i}"),
                accesses
                    .iter()
                    .map(|&(page, is_write, compute)| Access {
                        page,
                        is_write,
                        compute: Nanos(compute),
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Feeds the recorder the traces' accesses in an externally-chosen global
/// order (a `multi::interleave` schedule) by synthesizing the fault events
/// a replay would emit — the recorder only reads pid/page/write/compute.
fn record_interleaved(traces: &[AccessTrace], seed: u64) -> TraceRecorder {
    let mut recorder = TraceRecorder::for_traces(traces);
    for (seq, step) in interleave(traces, seed).iter().enumerate() {
        let event = FaultEvent {
            seq: seq as u64,
            pid: Pid(step.process as u32 + 1),
            core: step.process % 4,
            page: step.access.page,
            is_write: step.access.is_write,
            compute: step.access.compute,
            outcome: AccessOutcome::RemoteFetch,
            latency: Nanos::ZERO,
            completed_at: Nanos::ZERO,
            prefetches_issued: 0,
        };
        recorder.on_event(&event);
    }
    recorder
}

proptest! {
    /// Interleave → record → ingest is the identity on the traces: the
    /// demultiplexer inverts `multi::interleave` exactly, whatever the
    /// interleaving seed.
    #[test]
    fn interleaved_export_reingests_bit_identical(
        lens in proptest::collection::vec(1usize..30, 1..4),
        seed in any::<u64>(),
        page_scale in 1u64..1_000_000,
    ) {
        let specs: Vec<Vec<(u64, bool, u64)>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                (0..len as u64)
                    .map(|j| {
                        let page = ((i as u64) << 24) | ((j * page_scale) % (1 << 20));
                        let is_write = (j + i as u64).is_multiple_of(3);
                        let compute = (j * 977 + i as u64 * 131) % 1_000_000;
                        (page, is_write, compute)
                    })
                    .collect()
            })
            .collect();
        let traces = traces_from(&specs);
        let recorder = record_interleaved(&traces, seed);
        let log = recorder.to_log();
        let reingested = ingest_str(&log, LogFormat::PerfScript).expect("export ingests");
        prop_assert_eq!(reingested.traces(), &traces[..]);
    }

    /// Zero compute costs (ties in the global timestamp order) still round
    /// trip: the stable sort keeps every pid's internal order.
    #[test]
    fn all_zero_compute_round_trips(
        lens in proptest::collection::vec(1usize..20, 1..4),
        seed in any::<u64>(),
    ) {
        let specs: Vec<Vec<(u64, bool, u64)>> = lens
            .iter()
            .map(|&len| {
                (0..len as u64)
                    .map(|j| (j * 7, j.is_multiple_of(2), 0))
                    .collect()
            })
            .collect();
        let traces = traces_from(&specs);
        let recorder = record_interleaved(&traces, seed);
        let reingested = ingest_str(&recorder.to_log(), LogFormat::PerfScript)
            .expect("export ingests");
        prop_assert_eq!(reingested.traces(), &traces[..]);
    }

    /// Recording an actual scheduled multi-core replay (not a synthetic
    /// event feed) round-trips too: the merged (core, seq) delivery order
    /// still yields a globally sorted, per-pid-ordered log.
    #[test]
    fn simulated_run_export_reingests_bit_identical(
        cores in 1usize..4,
        seed in 0u64..1_000,
        procs in 1usize..4,
    ) {
        let traces: Vec<AccessTrace> = (0..procs)
            .map(|i| {
                AppModel::new(AppKind::ALL[i % AppKind::ALL.len()], seed + i as u64)
                    .with_working_set(MIB)
                    .with_accesses(300)
                    .generate()
            })
            .collect();
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(cores)
            .seed(seed)
            .build()
            .expect("valid config");
        let mut recorder = TraceRecorder::for_traces(&traces);
        VmmSimulator::new(config)
            .session()
            .observe(&mut recorder)
            .run_multi(&traces);
        let reingested = ingest_str(&recorder.to_log(), LogFormat::PerfScript)
            .expect("export ingests");
        prop_assert_eq!(reingested.traces(), &traces[..]);
    }
}

/// A recorded multi-tenant *service* run round-trips through ingestion and
/// re-admission: each wave's exported fault log reproduces that wave's
/// tenant traces bit-identically, and a fresh service built from the
/// ingested logs (same budgets, same config) replays with bit-identical
/// per-tenant QoS — counters, latency percentiles, and both event-stream
/// checksums — plus identical engine aggregates.
#[test]
fn recorded_service_run_readmits_bit_identically() {
    use leap_repro::leap_service::{AdmissionPolicy, FarMemoryService, TenantSpec};
    use leap_repro::leap_workloads::{sequential_trace, stride_trace};

    let config = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .seed(2020)
        .build()
        .expect("valid config");
    // Three tenants per wave capacity-wise: 300-page budgets against a
    // 1000-page service force two waves (3 + 1), so the round trip covers
    // the multi-wave path too.
    let mut service = FarMemoryService::new(config, 1_000, AdmissionPolicy::Queue);
    let budgets = [300u64, 300, 300, 300];
    for (i, budget) in budgets.iter().enumerate() {
        let base = if i % 2 == 0 {
            sequential_trace(MIB, 2)
        } else {
            stride_trace(MIB, 10, 2)
        };
        let trace = AccessTrace::new(format!("svc{i}"), base.iter().copied().collect());
        service.register(TenantSpec::new(trace, *budget));
    }
    let (original, logs) = service.run_recorded();
    assert_eq!(original.waves.len(), 2, "3 + 1 admission expected");
    assert_eq!(logs.len(), original.waves.len());

    // Re-admit: every wave's log ingests back to exactly the traces that
    // wave replayed, and becomes the tenant set of a fresh service.
    let mut readmitted = FarMemoryService::new(config, 1_000, AdmissionPolicy::Queue);
    for (wave, log) in original.admission.waves.iter().zip(&logs) {
        let ingested = ingest_str(log, LogFormat::PerfScript).expect("recorded log ingests");
        let wave_traces: Vec<AccessTrace> = wave
            .iter()
            .map(|id| service.registry().spec(*id).trace.clone())
            .collect();
        assert_eq!(ingested.traces(), &wave_traces[..], "wave traces diverged");
        let budget_of = |trace: &AccessTrace| {
            let idx: usize = trace.name().strip_prefix("svc").unwrap().parse().unwrap();
            budgets[idx]
        };
        readmitted.register_ingested(ingested, budget_of);
    }
    let replayed = readmitted.run();

    // Tenants were re-registered in executed-wave order, so first-fit
    // reproduces the same wave partition; everything downstream must be
    // bit-identical.
    assert_eq!(replayed.waves.len(), original.waves.len());
    for (wo, wr) in original.waves.iter().zip(&replayed.waves) {
        assert_eq!(wo.makespan, wr.makespan, "wave makespan");
        assert_eq!(wo.result.pipeline, wr.result.pipeline, "pipeline stats");
        assert_eq!(wo.result.tenant_evictions, wr.result.tenant_evictions);
        assert_eq!(wo.result.completion_time, wr.result.completion_time);
        assert_eq!(wo.tenants.len(), wr.tenants.len());
        for ((_, ro), (_, rr)) in wo.tenants.iter().zip(&wr.tenants) {
            assert_eq!(ro, rr, "per-tenant QoS diverged for {}", ro.pid);
        }
    }
}

/// Non-property pin: the recorder's header and line shape are exactly the
/// canonical grammar (one sample, human-auditable).
#[test]
fn export_shape_is_the_canonical_grammar() {
    let trace = AccessTrace::new(
        "demo",
        vec![
            Access::read(0x7f8a2c000, Nanos::from_micros(2)),
            Access::write(0x7f8a2c001, Nanos::from_micros(3)),
        ],
    );
    let recorder = record_interleaved(std::slice::from_ref(&trace), 1);
    let log = recorder.to_log();
    let expected = "\
# t0: 0.000000000
demo 1 [000] 0.000002000: page-faults: addr=0x7f8a2c000000 R
demo 1 [000] 0.000005000: page-faults: addr=0x7f8a2c001000 W
";
    assert_eq!(log, expected);
}
