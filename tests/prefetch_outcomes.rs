//! Engine-level tests for the prefetch-outcome ledger (`PrefetchOutcomes`):
//! hand-built ~10-access traces driven through `VmmSimulator` with a
//! deterministic test prefetcher, asserting *exact* counter values derived
//! by hand from the replay mechanics, plus the commutative-merge contract
//! the sharded replay relies on.
//!
//! The hand derivations lean on three pinned mechanics:
//!
//! 1. `run_prepopulated` touches the trace's distinct pages in address
//!    order, so with a resident limit of L pages the first `W - L` pages
//!    (address order) end up swapped out, in slots `s0, s1, ...` in that
//!    order.
//! 2. The swap allocator hands out *fresh* slots (a high-water mark) until
//!    capacity is exhausted; freed slots are only reused after that. The
//!    measured runs below never exhaust capacity, so every eviction gets a
//!    brand-new slot above the prepopulated range.
//! 3. The prefetcher is consulted on swap-cache *misses* only, with the
//!    faulting swap slot as its address; candidates are interpreted as swap
//!    slots and admitted only if currently owned (swapped out) and not
//!    resident.

use leap_repro::leap_metrics::PrefetchOutcomes;
use leap_repro::leap_prefetcher::{PageAddr, PrefetchDecision, Prefetcher};
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::{Access, AccessTrace};
use leap_repro::prelude::*;

/// The simplest non-trivial prefetcher: on every consulted fault at slot
/// `s`, ask for slot `s + 1`. Stateless and RNG-free, so every outcome is
/// hand-derivable.
#[derive(Debug, Clone, Copy)]
struct PlusOne;

impl Prefetcher for PlusOne {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        let mut d = PrefetchDecision::none();
        d.push(PageAddr(addr.0 + 1));
        d
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        "plus-one"
    }

    fn reset(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
struct PlusOneFactory;

impl PrefetcherFactory for PlusOneFactory {
    fn name(&self) -> &'static str {
        "plus-one"
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(PlusOne)
    }
}

fn trace_of(pages: &[u64]) -> AccessTrace {
    AccessTrace::new(
        "hand-built",
        pages
            .iter()
            .map(|&p| Access::read(p, Nanos::ZERO))
            .collect(),
    )
}

/// Working set {0..=5}, limit 3 (fraction 0.5): prepopulation touches
/// 0,1,2,3,4,5 in order and LRU-evicts 0→s0, 1→s1, 2→s2, leaving {3,4,5}
/// resident.
fn run(pages: &[u64], cache_pages: u64) -> RunResult {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(1)
        .seed(7)
        .prefetch_cache_pages(cache_pages)
        .custom_prefetcher(PlusOneFactory)
        .build_setup()
        .expect("valid config")
        .vmm()
        .run_prepopulated(&trace_of(pages))
}

/// Like [`run`], but with a one-page prefetch cache (the prefetch window
/// must be clamped alongside it to pass config validation).
fn run_small_cache(pages: &[u64]) -> RunResult {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(1)
        .seed(7)
        .prefetch_cache_pages(1)
        .max_prefetch_window(1)
        .custom_prefetcher(PlusOneFactory)
        .build_setup()
        .expect("valid config")
        .vmm()
        .run_prepopulated(&trace_of(pages))
}

#[test]
fn covered_prefetches_count_exactly() {
    // Measured accesses (10), with the prepopulated layout above:
    //   a1  page0: miss s0  → admit s1 (page1)        prefetched=1
    //                          evict 3 → fresh s3
    //   a2  page1: HIT  s1  → covered=1; evict 4 → s4
    //   a3  page2: miss s2  → admit s3 (page3, evicted at a1) prefetched=2
    //                          evict 5 → s5
    //   a4  page3: HIT  s3  → covered=2; evict 0 → s6
    //   a5  page0: miss s6  → candidate s7 unallocated, skip; evict 1 → s7
    //   a6  page1: miss s7  → candidate s8 unallocated, skip; evict 2 → s8
    //   a7  page2: miss s8  → skip; evict 3 → s9
    //   a8  page3: miss s9  → skip; evict 0 → s10
    //   a9  page4: miss s4  → admit s5 (page5, evicted at a3) prefetched=3
    //                          evict 1 → s11
    //   a10 page5: HIT  s5  → covered=3
    let result = run(&[0, 1, 2, 3, 0, 1, 2, 3, 4, 5], u64::MAX);
    let outcomes = result.prefetch_outcomes;
    assert_eq!(result.total_accesses, 10);
    assert_eq!(result.remote_accesses, 10, "every access faults remotely");
    assert_eq!(outcomes.prefetched(), 3);
    assert_eq!(outcomes.covered(), 3);
    assert_eq!(outcomes.wasted_evicted(), 0);
    assert_eq!(outcomes.wasted_unconsumed(), 0);
    assert_eq!(outcomes.wasted(), 0);
    assert_eq!(outcomes.wasted_ratio(), 0.0);
    // The §3.1 ratios agree with the ledger: 3 hits over 10 remote
    // requests, every prefetched page hit.
    assert_eq!(result.prefetch_stats.prefetch_hits(), 3);
    assert_eq!(result.prefetch_stats.pages_prefetched(), 3);
    assert!((result.prefetch_stats.coverage() - 0.3).abs() < 1e-9);
    assert!((result.prefetch_stats.accuracy() - 1.0).abs() < 1e-9);
}

#[test]
fn unconsumed_prefetches_are_wasted_at_seal() {
    // With an unbounded cache a prefetched page can only seal unconsumed if
    // it was admitted *after* its last access — anything admitted earlier
    // is eventually demanded while swapped and counts covered. So the
    // trace's final fault admits a page that never recurs:
    //   a1  page5: resident HIT (no consultation)
    //   a2  page0: miss s0  → admit s1 (page1)        prefetched=1
    //                          evict 3 → fresh s3
    //   a3  page1: HIT  s1  → covered=1; evict 4 → s4
    //   a4  page2: miss s2  → admit s3 (page3)        prefetched=2
    //                          evict 5 → s5
    //   a5  page3: HIT  s3  → covered=2; evict 0 → s6
    //   a6..a9 pages 0,1,2,3: misses on fresh slots s6..s9, candidates
    //                          s7..s10 unallocated → skip
    //   a10 page4: miss s4  → admit s5 (page5, last touched at a1)
    //                          prefetched=3
    // Page 5 is never demanded again, so s5 is still cached at seal.
    let outcomes = run(&[5, 0, 1, 2, 3, 0, 1, 2, 3, 4], u64::MAX).prefetch_outcomes;
    assert_eq!(outcomes.prefetched(), 3);
    assert_eq!(outcomes.covered(), 2);
    assert_eq!(outcomes.wasted_evicted(), 0);
    assert_eq!(outcomes.wasted_unconsumed(), 1);
    assert_eq!(outcomes.wasted(), 1);
    assert!((outcomes.wasted_ratio() - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn cache_pressure_turns_unconsumed_into_evicted_waste() {
    // A one-page prefetch cache (window clamped to match): the second
    // admission must evict the first, which was never hit. Working set
    // {0..=7}, limit 4: prepopulation swaps 0→s0, 1→s1, 2→s2, 3→s3 and
    // leaves {4,5,6,7} resident, LRU in that order.
    //   a1..a4 pages 4,5,6,7: resident hits (fix LRU order)
    //   a5 page1: miss s1 → admit s2 (page2)           prefetched=1
    //                        evict 4 → s4
    //   a6 page3: miss s3 → admit s4 (page4): cache full, force-evict the
    //                        unused s2 → wasted_evicted=1; prefetched=2
    //                        evict 5 → s5
    //   a7 page0: miss s0 → candidate s1 freed at a5 → skip; evict 6 → s6
    //   a8 page2: miss s2 → candidate s3 freed at a6 → skip; evict 7 → s7
    // Page 4 is never demanded after its admission, so s4 seals unconsumed.
    let outcomes = run_small_cache(&[4, 5, 6, 7, 1, 3, 0, 2]).prefetch_outcomes;
    assert_eq!(outcomes.prefetched(), 2);
    assert_eq!(outcomes.covered(), 0);
    assert_eq!(outcomes.wasted_evicted(), 1);
    assert_eq!(outcomes.wasted_unconsumed(), 1);
    assert_eq!(outcomes.wasted(), 2);
    assert_eq!(outcomes.wasted_ratio(), 1.0);
}

#[test]
fn quiet_runs_leave_the_ledger_at_its_seed() {
    // Every measured access is resident after prepopulation re-touches the
    // working set... except the swapped-out third, so touch only the
    // resident tail {3,4,5}: no remote access, no consultation, no events.
    let outcomes = run(&[3, 4, 5], u64::MAX).prefetch_outcomes;
    assert!(outcomes.is_quiet(), "{outcomes:?}");
    assert_eq!(outcomes.checksum(), PrefetchOutcomes::default().checksum());
}

#[test]
fn merge_is_commutative_and_quiet_shards_are_identity() {
    // The exact shard-merge used by `RunResult::absorb_shard`: fold two
    // shards' ledgers in both orders and require bit-identical aggregates —
    // the property that makes Serial and Threaded replays agree.
    let mut a = PrefetchOutcomes::default();
    a.record_prefetched(10);
    a.record_prefetched(11);
    a.record_covered(10);
    a.record_wasted_evicted(1);
    let mut b = PrefetchOutcomes::default();
    b.record_prefetched(42);
    b.record_wasted_unconsumed(1);

    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative, checksum included");
    assert_eq!(ab.prefetched(), 3);
    assert_eq!(ab.covered(), 1);
    assert_eq!(ab.wasted(), 2);

    let mut with_quiet = a;
    with_quiet.merge(&PrefetchOutcomes::default());
    assert_eq!(with_quiet, a, "a quiet shard must not move the aggregate");
}

#[test]
fn outcome_ledger_is_mode_identical_for_scheduled_replays() {
    // The same hand-built traces as a two-process scheduled replay: the
    // per-shard ledgers merge to the same aggregate (counters *and*
    // checksum) whichever mode ran, and prepopulated multi-run replays
    // carry outcome events end to end.
    let traces = vec![
        trace_of(&[0, 1, 2, 3, 0, 1, 2, 3, 4, 5]),
        trace_of(&[0, 2, 4]),
    ];
    let run_mode = |mode: ReplayMode| {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(250))
            .seed(7)
            .replay_mode(mode)
            .custom_prefetcher(PlusOneFactory)
            .build_setup()
            .expect("valid config");
        let mut sim = config.vmm();
        sim.set_prepopulate_multi(true);
        sim.run_multi(&traces)
    };
    let serial = run_mode(ReplayMode::Serial);
    let threaded = run_mode(ReplayMode::Threaded);
    assert!(serial.prefetch_outcomes.prefetched() > 0);
    assert_eq!(serial.prefetch_outcomes, threaded.prefetch_outcomes);
    assert_eq!(
        serial.prefetch_outcomes.checksum(),
        threaded.prefetch_outcomes.checksum()
    );
}
