//! Service-layer determinism: for one `(seed, tenant set, async depth)` the
//! far-memory service must produce bit-identical per-tenant QoS statistics
//! and fault-event streams whichever `ReplayMode` executes the waves; and
//! changing only the async depth must change *when* things happened (more
//! overlap, higher aggregate paging throughput) while leaving *what*
//! happened — each tenant's per-event decisions — untouched.

use leap_repro::leap_service::{AdmissionPolicy, FarMemoryService, ServiceReport, TenantSpec};
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::{sequential_trace, stride_trace, AccessTrace};
use leap_repro::prelude::*;

/// Four tenants with regular patterns (so the prefetcher issues plenty of
/// asynchronous reads) squeezed to half their working sets.
fn tenants() -> Vec<TenantSpec> {
    let mut specs = Vec::new();
    for i in 0..4u64 {
        let base = if i % 2 == 0 {
            sequential_trace(MIB, 2)
        } else {
            stride_trace(MIB, 10, 2)
        };
        let trace = AccessTrace::new(format!("tenant{i}"), base.iter().copied().collect());
        specs.push(TenantSpec::new(trace, 128));
    }
    specs
}

fn run_service(mode: ReplayMode, depth: usize, seed: u64) -> ServiceReport {
    run_service_with_quantum(mode, depth, seed, Nanos::from_micros(250))
}

/// The scheduler context-switches on *simulated* time, so a bounded quantum
/// makes the per-core interleaving depend on access latencies — which the
/// async depth changes by design. Depth comparisons therefore use a
/// run-to-completion quantum (each process finishes its slice), making the
/// engine's decisions latency-independent; everything else still uses the
/// regular time-sharing quantum.
fn run_service_with_quantum(
    mode: ReplayMode,
    depth: usize,
    seed: u64,
    quantum: Nanos,
) -> ServiceReport {
    let config = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .seed(seed)
        .sched_quantum(quantum)
        .replay_mode(mode)
        .async_depth(depth)
        .build()
        .expect("valid config");
    let mut service = FarMemoryService::new(config, 10_000, AdmissionPolicy::Queue);
    for spec in tenants() {
        service.register(spec);
    }
    service.run()
}

fn assert_service_reports_identical(a: &ServiceReport, b: &ServiceReport) {
    assert_eq!(a.admission, b.admission);
    assert_eq!(a.waves.len(), b.waves.len());
    for (wa, wb) in a.waves.iter().zip(&b.waves) {
        assert_eq!(wa.makespan, wb.makespan, "wave makespan");
        assert_eq!(wa.result.pipeline, wb.result.pipeline, "pipeline stats");
        assert_eq!(
            wa.result.tenant_evictions, wb.result.tenant_evictions,
            "tenant evictions"
        );
        assert_eq!(wa.tenants.len(), wb.tenants.len());
        for ((ia, ra), (ib, rb)) in wa.tenants.iter().zip(&wb.tenants) {
            assert_eq!(ia, ib, "tenant order");
            assert_eq!(ra, rb, "per-tenant QoS for {ia}");
        }
    }
}

/// Serial and threaded replays of the same service run are bit-identical —
/// per-tenant counters, latency percentiles, and the full timing checksums
/// over every tenant's event stream — at the default (unbounded) depth.
#[test]
fn qos_is_bit_identical_across_replay_modes() {
    for seed in [3, 41] {
        let serial = run_service(ReplayMode::Serial, usize::MAX, seed);
        let threaded = run_service(ReplayMode::Threaded, usize::MAX, seed);
        assert_service_reports_identical(&serial, &threaded);
    }
}

/// The same holds with a bounded in-flight budget: the virtual-time
/// reactor's stalls are part of the deterministic timing, not an artifact
/// of the executing thread count.
#[test]
fn bounded_depth_is_bit_identical_across_replay_modes() {
    for depth in [1, 4] {
        let serial = run_service(ReplayMode::Serial, depth, 17);
        let threaded = run_service(ReplayMode::Threaded, depth, 17);
        assert_service_reports_identical(&serial, &threaded);
    }
}

/// Raising the async depth overlaps remote I/O with compute: same per-tenant
/// fault-event decisions (latency-blind behavior checksums match event for
/// event), but the depth-1 run charges every submission synchronously and so
/// pays a longer makespan and a lower aggregate paging rate.
#[test]
fn deeper_pipelines_overlap_io_without_changing_behavior() {
    let run_to_completion = Nanos::from_secs(3_600);
    let shallow = run_service_with_quantum(ReplayMode::Serial, 1, 5, run_to_completion);
    let deep = run_service_with_quantum(ReplayMode::Serial, 8, 5, run_to_completion);
    assert_eq!(shallow.waves.len(), deep.waves.len());
    let mut saw_stall_gap = false;
    for (ws, wd) in shallow.waves.iter().zip(&deep.waves) {
        for ((is_, rs), (id, rd)) in ws.tenants.iter().zip(&wd.tenants) {
            assert_eq!(is_, id);
            assert_eq!(
                rs.behavior_checksum, rd.behavior_checksum,
                "per-event decisions diverged for {is_}"
            );
            assert_eq!(rs.accesses, rd.accesses);
            assert_eq!(rs.remote_accesses, rd.remote_accesses);
            assert_eq!(rs.cache_hits, rd.cache_hits);
        }
        // Identical traffic through the pipeline, different stall bills.
        assert_eq!(
            ws.result.pipeline.submitted(),
            wd.result.pipeline.submitted()
        );
        if ws.result.pipeline.total_stall > wd.result.pipeline.total_stall {
            saw_stall_gap = true;
        }
    }
    assert!(saw_stall_gap, "depth 1 should stall more than depth 8");
    let shallow_rate: f64 = shallow
        .waves
        .iter()
        .map(|w| w.aggregate_pages_per_sec)
        .sum();
    let deep_rate: f64 = deep.waves.iter().map(|w| w.aggregate_pages_per_sec).sum();
    assert!(
        deep_rate > shallow_rate,
        "depth 8 ({deep_rate:.0} pages/s) should out-page depth 1 ({shallow_rate:.0} pages/s)"
    );
}

/// The default depth is unbounded asynchrony: it never stalls, reproducing
/// the legacy free-overlap accounting bit for bit.
#[test]
fn unbounded_depth_never_stalls() {
    let report = run_service(ReplayMode::Serial, usize::MAX, 23);
    for wave in &report.waves {
        assert_eq!(
            wave.result.pipeline.total_stall,
            leap_repro::leap_sim_core::Nanos::ZERO
        );
        assert!(
            wave.result.pipeline.submitted() > 0,
            "prefetch traffic expected"
        );
    }
}
