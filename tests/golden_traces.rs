//! Golden-trace suite: the committed DAMON and perf fixture logs must parse
//! to exactly the pinned `AccessTrace` contents, replay deterministically in
//! both `ReplayMode`s with the pinned `RunResult`, and the `TraceRecorder`
//! export of a seeded run must match the committed golden log byte for byte
//! (the fixture-freshness check CI runs — format drift fails here first).
//!
//! Regenerate the recorder golden after an *intentional* format change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test golden_traces -- golden_recorder_log_is_fresh
//! ```

use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::ingest::{ingest_path, ingest_str, IngestedLog, LogFormat};
use leap_repro::leap_workloads::{sequential_trace, stride_trace, AccessTrace};
use leap_repro::prelude::*;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn ingest_fixture(name: &str) -> IngestedLog {
    ingest_path(fixture(name)).unwrap_or_else(|e| panic!("{name} must ingest: {e}"))
}

fn replay_config(seed: u64, mode: ReplayMode) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .sched_quantum(Nanos::from_micros(250))
        .seed(seed)
        .replay_mode(mode)
        .build()
        .expect("valid replay config")
}

/// Every aggregate of two results, including the exact latency
/// distributions.
fn assert_results_identical(mut a: RunResult, mut b: RunResult) {
    assert_eq!(a.completion_time, b.completion_time, "completion_time");
    assert_eq!(a.total_accesses, b.total_accesses, "total_accesses");
    assert_eq!(a.remote_accesses, b.remote_accesses, "remote_accesses");
    assert_eq!(a.first_touch_faults, b.first_touch_faults);
    assert_eq!(a.pages_swapped_out, b.pages_swapped_out);
    assert_eq!(a.cache_stats, b.cache_stats, "cache_stats");
    assert_eq!(
        a.prefetch_stats.pages_prefetched(),
        b.prefetch_stats.pages_prefetched()
    );
    assert_eq!(
        a.prefetch_stats.prefetch_hits(),
        b.prefetch_stats.prefetch_hits()
    );
    assert_eq!(
        a.access_latency.sorted_samples(),
        b.access_latency.sorted_samples()
    );
    assert_eq!(
        a.remote_access_latency.sorted_samples(),
        b.remote_access_latency.sorted_samples()
    );
}

// ---------------------------------------------------------------------------
// Pinned parse: the perf fixture.
// ---------------------------------------------------------------------------

#[test]
fn perf_fixture_parses_to_pinned_traces() {
    let ingested = ingest_fixture("perf_faults.log");
    assert_eq!(ingested.format(), LogFormat::PerfScript);
    assert_eq!(ingested.pids(), &[4821, 5124]);
    assert_eq!(ingested.event_lines(), 104);
    assert_eq!(ingested.total_accesses(), 104);

    // powergraph: three sequential passes over 24 pages, one fault every
    // 5 µs (the first measured from the `# t0:` base).
    let pg = &ingested.traces()[0];
    assert_eq!(pg.name(), "powergraph");
    assert_eq!(pg.len(), 72);
    assert_eq!(pg.working_set_pages(), 24);
    assert_eq!(pg.total_compute(), Nanos::from_micros(360));
    let expected_pass: Vec<u64> = (0..24).map(|i| 0x7f8a2c000 + i).collect();
    let pages = pg.page_sequence();
    assert_eq!(&pages[..24], &expected_pass[..], "first pass");
    assert_eq!(&pages[24..48], &expected_pass[..], "second pass");
    assert_eq!(&pages[48..], &expected_pass[..], "third pass");
    assert!(pg.accesses().iter().all(|a| !a.is_write));
    assert!(pg
        .accesses()
        .iter()
        .all(|a| a.compute == Nanos::from_micros(5)));

    // memcached: irregular hops over 13 pages, every 11 µs, every fourth
    // access a write.
    let mc = &ingested.traces()[1];
    assert_eq!(mc.name(), "memcached");
    assert_eq!(mc.len(), 32);
    assert_eq!(mc.working_set_pages(), 13);
    assert_eq!(mc.total_compute(), Nanos::from_micros(352));
    let mc_offsets = [
        0u64, 3, 1, 7, 2, 9, 4, 11, 0, 5, 13, 6, 3, 15, 8, 1, 9, 2, 7, 0, 11, 4, 5, 13, 6, 8, 15,
        1, 3, 9, 0, 2,
    ];
    let expected_mc: Vec<u64> = mc_offsets.iter().map(|o| 0x55d91e000 + o).collect();
    assert_eq!(mc.page_sequence(), expected_mc);
    let writes: Vec<bool> = mc.accesses().iter().map(|a| a.is_write).collect();
    assert_eq!(writes.iter().filter(|&&w| w).count(), 8);
    for (i, w) in writes.iter().enumerate() {
        assert_eq!(*w, i % 4 == 3, "write flag at {i}");
    }
    assert!(mc
        .accesses()
        .iter()
        .all(|a| a.compute == Nanos::from_micros(11)));
}

// ---------------------------------------------------------------------------
// Pinned parse: the DAMON fixture (region expansion + interval splitting).
// ---------------------------------------------------------------------------

#[test]
fn damon_fixture_parses_to_pinned_traces() {
    let ingested = ingest_fixture("damon_regions.log");
    assert_eq!(ingested.format(), LogFormat::DamonRegions);
    assert_eq!(ingested.pids(), &[1201, 1202]);
    assert_eq!(ingested.event_lines(), 6);
    assert_eq!(ingested.total_accesses(), 22);

    // Target 1201: 4 accesses striding a 16-page region (every 4th page),
    // then 8 (every 2nd), then 4 over the next region. Intervals: 100 ms
    // split over each sample's accesses.
    let t1 = &ingested.traces()[0];
    assert_eq!(t1.name(), "pid1201");
    assert_eq!(t1.len(), 16);
    let base1 = 0x7f2a00000u64;
    let mut expected1: Vec<u64> = [0u64, 4, 8, 12].iter().map(|o| base1 + o).collect();
    expected1.extend([0u64, 2, 4, 6, 8, 10, 12, 14].iter().map(|o| base1 + o));
    expected1.extend([0u64, 4, 8, 12].iter().map(|o| base1 + 16 + o));
    assert_eq!(t1.page_sequence(), expected1);
    let computes1: Vec<u64> = t1.accesses().iter().map(|a| a.compute.as_nanos()).collect();
    let mut expected_c1 = vec![25_000_000u64; 4]; // 100 ms / 4
    expected_c1.extend(vec![12_500_000u64; 8]); // 100 ms / 8
    expected_c1.extend(vec![25_000_000u64; 4]); // 100 ms / 4
    assert_eq!(computes1, expected_c1);

    // Target 1202: 2 accesses over 8 pages (50 ms each), an idle sample
    // (which advances the clock without emitting accesses), then 4 over a
    // 4-page region (the 100 ms since the idle sample, 25 ms each).
    let t2 = &ingested.traces()[1];
    assert_eq!(t2.name(), "pid1202");
    assert_eq!(t2.len(), 6);
    let base2 = 0x612300000u64;
    assert_eq!(
        t2.page_sequence(),
        vec![base2, base2 + 4, base2, base2 + 1, base2 + 2, base2 + 3]
    );
    let computes2: Vec<u64> = t2.accesses().iter().map(|a| a.compute.as_nanos()).collect();
    assert_eq!(
        computes2,
        vec![50_000_000, 50_000_000, 25_000_000, 25_000_000, 25_000_000, 25_000_000]
    );
    assert!(t2.accesses().iter().all(|a| !a.is_write));
}

// ---------------------------------------------------------------------------
// Pinned replay: both fixtures, both replay modes, identical results.
// ---------------------------------------------------------------------------

#[test]
fn perf_fixture_replay_is_pinned_and_mode_identical() {
    let traces = ingest_fixture("perf_faults.log").into_traces();
    let serial = VmmSimulator::new(replay_config(2020, ReplayMode::Serial)).run_multi(&traces);
    let threaded = VmmSimulator::new(replay_config(2020, ReplayMode::Threaded)).run_multi(&traces);

    // The pinned aggregates: any change here means the replay semantics of
    // ingested traces drifted.
    assert_eq!(serial.total_accesses, 104);
    assert_eq!(serial.completion_time.as_nanos(), 602_597);
    assert_eq!(serial.remote_accesses, 67);
    assert_eq!(serial.first_touch_faults, 37);
    assert_eq!(serial.cache_stats.hits(), 47);
    assert_eq!(serial.cache_stats.misses(), 20);
    assert_eq!(serial.prefetch_stats.pages_prefetched(), 55);
    assert_results_identical(serial, threaded);
}

#[test]
fn damon_fixture_replay_is_pinned_and_mode_identical() {
    let traces = ingest_fixture("damon_regions.log").into_traces();
    let serial = VmmSimulator::new(replay_config(2020, ReplayMode::Serial)).run_multi(&traces);
    let threaded = VmmSimulator::new(replay_config(2020, ReplayMode::Threaded)).run_multi(&traces);
    assert_eq!(serial.total_accesses, 22);
    assert_results_identical(serial, threaded);
}

// ---------------------------------------------------------------------------
// Fixture freshness: the recorder's export of a seeded run must match the
// committed golden log byte for byte, and re-ingest to the replayed traces.
// ---------------------------------------------------------------------------

/// The seeded run the golden log records.
fn golden_run() -> (Vec<AccessTrace>, TraceRecorder) {
    let traces = vec![stride_trace(MIB, 10, 1), sequential_trace(MIB, 1)];
    let config = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .sched_quantum(Nanos::from_micros(250))
        .seed(2020)
        .build()
        .expect("valid golden config");
    let mut recorder = TraceRecorder::for_traces(&traces);
    VmmSimulator::new(config)
        .session()
        .observe(&mut recorder)
        .run_multi(&traces);
    (traces, recorder)
}

#[test]
fn golden_recorder_log_is_fresh() {
    let (_, recorder) = golden_run();
    let rendered = recorder.to_log();
    let path = fixture("golden_recorded.log");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let committed = std::fs::read_to_string(&path).expect(
        "tests/fixtures/golden_recorded.log missing — regenerate with \
         REGEN_GOLDEN=1 cargo test --test golden_traces",
    );
    assert_eq!(
        rendered, committed,
        "TraceRecorder output drifted from the committed golden log; if the \
         format change is intentional, regenerate with REGEN_GOLDEN=1 and \
         update ARCHITECTURE.md's grammar"
    );
}

#[test]
fn golden_recorder_log_round_trips_to_the_replayed_traces() {
    let (traces, _) = golden_run();
    let ingested = ingest_fixture("golden_recorded.log");
    assert_eq!(ingested.format(), LogFormat::PerfScript);
    assert_eq!(ingested.traces(), &traces[..]);
}

// ---------------------------------------------------------------------------
// The two formats agree on what a replay is: an ingested DAMON log replays
// through the full Figure-2-style observer machinery like any other trace.
// ---------------------------------------------------------------------------

#[test]
fn ingested_traces_stream_through_observers_like_generated_ones() {
    let traces = ingest_fixture("perf_faults.log").into_traces();
    let mut counts = OutcomeCounts::default();
    let result = VmmSimulator::new(replay_config(7, ReplayMode::Serial))
        .session()
        .observe(&mut counts)
        .run_multi(&traces);
    let streamed = counts.local_hits
        + counts.minor_faults
        + counts.cache_hits
        + counts.remote_fetches
        + counts.buffered_writes;
    assert_eq!(streamed, result.total_accesses);
    assert_eq!(
        counts.cache_hits + counts.remote_fetches + counts.buffered_writes,
        result.remote_accesses
    );
}

// ---------------------------------------------------------------------------
// Round trip of the perf fixture itself: ingest → replay+record → ingest.
// ---------------------------------------------------------------------------

#[test]
fn perf_fixture_round_trips_through_record_and_reingest() {
    let traces = ingest_fixture("perf_faults.log").into_traces();
    let mut recorder = TraceRecorder::for_traces(&traces);
    VmmSimulator::new(replay_config(3, ReplayMode::Serial))
        .session()
        .observe(&mut recorder)
        .run_multi(&traces);
    let reingested =
        ingest_str(&recorder.to_log(), LogFormat::PerfScript).expect("recorded log ingests");
    assert_eq!(reingested.traces(), &traces[..]);
}
