//! Determinism suite for the offline Markov trainer and its frozen replay.
//!
//! Three contracts:
//!
//! 1. `train` is a pure fold over the corpus: any ordering of the per-pid
//!    traces freezes to the byte-identical `FrozenModel` (counts accumulate
//!    in `BTreeMap`s and freeze ties break count-desc/delta-asc, so
//!    insertion order cannot leak into the tables).
//! 2. Replaying behind a frozen model advances no RNG stream: a model whose
//!    contexts never fire replays bit-for-bit like the no-prefetch
//!    baseline under the canonical fault storm — fault and recovery
//!    checksums included — and a trained model's chaos replay is
//!    deterministic across repeats and across `ReplayMode`s.
//! 3. Replay never mutates the model: the frozen tables compare equal to a
//!    pre-replay clone afterwards.

use leap_bench::arena::FrozenMarkovFactory;
use leap_repro::leap_prefetcher::markov::{train, FrozenModel, MarkovOrder};
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::ingest::ingest_path;
use leap_repro::leap_workloads::{Access, AccessTrace};
use leap_repro::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn perf_traces() -> Vec<AccessTrace> {
    ingest_path(fixture("perf_faults.log"))
        .expect("perf fixture must ingest")
        .into_traces()
}

/// Deterministic per-pid traces from a splittable LCG: page deltas in
/// `0..7`, one stream per trace, so any `(lens, seed)` names one corpus.
fn synth_corpus(lens: &[usize], seed: u64) -> Vec<AccessTrace> {
    let mut state = seed | 1;
    lens.iter()
        .enumerate()
        .map(|(i, &len)| {
            let mut page = (i as u64) * 1000;
            let accesses = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    page = page.wrapping_add((state >> 33) % 7);
                    Access::read(page, Nanos::ZERO)
                })
                .collect();
            AccessTrace::new(format!("pid-{i}"), accesses)
        })
        .collect()
}

/// A canonical-storm replay of the perf fixture behind the given frozen
/// model (prepopulated, so the slot layout matches the arena's).
fn storm_markov_run(model: &Arc<FrozenModel>, mode: ReplayMode) -> RunResult {
    let setup = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .sched_quantum(Nanos::from_micros(250))
        .seed(2020)
        .replay_mode(mode)
        .fault_plan(FaultSpec::canonical_storm())
        .custom_prefetcher(FrozenMarkovFactory::new(Arc::clone(model)))
        .build_setup()
        .expect("valid config");
    let mut sim = setup.vmm();
    sim.set_prepopulate_multi(true);
    sim.run_multi(&perf_traces())
}

proptest! {
    #[test]
    fn training_is_corpus_order_independent(
        lens in proptest::collection::vec(2usize..40, 1..5),
        seed in any::<u64>(),
    ) {
        let corpus = synth_corpus(&lens, seed);
        let mut reversed = corpus.clone();
        reversed.reverse();
        let mut rotated = corpus.clone();
        rotated.rotate_left(1);
        for order in [MarkovOrder::First, MarkovOrder::Second] {
            let canonical = train(&corpus, order);
            prop_assert_eq!(&canonical, &train(&reversed, order));
            prop_assert_eq!(&canonical, &train(&rotated, order));
        }
    }
}

#[test]
fn silent_model_replays_bit_identical_to_the_no_prefetch_baseline() {
    // A model trained on a single-access trace has no transitions, so its
    // every consultation returns the empty decision — the replay must be
    // indistinguishable from PrefetcherKind::None under the canonical
    // storm, fault/recovery RNG checksums included. That is the "frozen
    // replay advances no RNG stream" contract: table probes do not draw.
    let silent = Arc::new(train(
        &[AccessTrace::new(
            "alien",
            vec![Access::read(0, Nanos::ZERO)],
        )],
        MarkovOrder::First,
    ));
    assert_eq!(silent.trained_transitions(), 0);

    let markov = storm_markov_run(&silent, ReplayMode::Serial);

    let setup = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .sched_quantum(Nanos::from_micros(250))
        .seed(2020)
        .replay_mode(ReplayMode::Serial)
        .fault_plan(FaultSpec::canonical_storm())
        .prefetcher(PrefetcherKind::None)
        .build()
        .expect("valid config");
    let mut sim = VmmSimulator::new(setup);
    sim.set_prepopulate_multi(true);
    let baseline = sim.run_multi(&perf_traces());

    assert_eq!(markov.total_accesses, baseline.total_accesses);
    assert_eq!(markov.remote_accesses, baseline.remote_accesses);
    assert_eq!(markov.completion_time, baseline.completion_time);
    assert_eq!(
        markov.fault_stats, baseline.fault_stats,
        "fault RNG drifted"
    );
    assert_eq!(
        markov.recovery_stats, baseline.recovery_stats,
        "recovery RNG drifted"
    );
    assert_eq!(markov.prefetch_outcomes, baseline.prefetch_outcomes);
    assert!(markov.prefetch_outcomes.is_quiet());
}

#[test]
fn trained_model_chaos_replay_is_deterministic() {
    let model = Arc::new(train(&perf_traces(), MarkovOrder::First));
    assert!(model.trained_transitions() > 0);

    let first = storm_markov_run(&model, ReplayMode::Serial);
    let second = storm_markov_run(&model, ReplayMode::Serial);
    let threaded = storm_markov_run(&model, ReplayMode::Threaded);

    for (label, other) in [("repeat", &second), ("threaded", &threaded)] {
        assert_eq!(first.completion_time, other.completion_time, "{label}");
        assert_eq!(first.fault_stats, other.fault_stats, "{label}");
        assert_eq!(first.recovery_stats, other.recovery_stats, "{label}");
        assert_eq!(first.prefetch_outcomes, other.prefetch_outcomes, "{label}");
        assert_eq!(
            first.prefetch_outcomes.checksum(),
            other.prefetch_outcomes.checksum(),
            "{label}"
        );
    }
    assert!(first.prefetch_outcomes.prefetched() > 0);
}

#[test]
fn replay_leaves_the_frozen_tables_untouched() {
    let model = Arc::new(train(&perf_traces(), MarkovOrder::Second));
    let before = (*model).clone();
    let _ = storm_markov_run(&model, ReplayMode::Serial);
    let _ = storm_markov_run(&model, ReplayMode::Threaded);
    assert_eq!(
        *model, before,
        "replay must not retrain or mutate the frozen model"
    );
}
