//! Recovery-layer determinism: the three contracts that make the active
//! recovery layer safe to leave in the build.
//!
//! 1. `RecoveryPolicy::none()` is *byte-identical* to a build without the
//!    layer: same `RunResult`, same merged `FaultEvent` stream, healthy or
//!    stormy, in both replay modes.
//! 2. With the tail-tolerant policy active, every recovery counter —
//!    including the order-insensitive checksum — is bit-identical between
//!    `ReplayMode::Serial` and `ReplayMode::Threaded` across core counts.
//! 3. Retries are pointwise monotone in deadline tightness: recovery
//!    decisions ride per-request streams derived from the request ordinal,
//!    so tightening the timeout can only add retries, never reshuffle them.

use leap_repro::leap_datapath::{DataPath, LeanDataPath};
use leap_repro::leap_remote::{recovery_stream_seed, FaultPlan};
use leap_repro::leap_sim_core::{DetRng, Nanos};
use leap_repro::leap_workloads::ingest::ingest_path;
use leap_repro::leap_workloads::AccessTrace;
use leap_repro::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn perf_traces() -> Vec<AccessTrace> {
    ingest_path(fixture("perf_faults.log"))
        .expect("perf fixture must ingest")
        .into_traces()
}

fn config(cores: usize, mode: ReplayMode, fault: FaultSpec, recovery: RecoveryPolicy) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_micros(250))
        .seed(2020)
        .replay_mode(mode)
        .fault_plan(fault)
        .recovery_policy(recovery)
        .build()
        .expect("valid config")
}

fn run_logged(config: SimConfig, traces: &[AccessTrace]) -> (EventLog, RunResult) {
    let mut log = EventLog::default();
    let result = VmmSimulator::new(config)
        .session()
        .observe(&mut log)
        .run_multi(traces);
    (log, result)
}

/// Every aggregate of two results, including the latency distributions and
/// the fault/recovery accounting.
fn assert_results_identical(mut a: RunResult, mut b: RunResult) {
    assert_eq!(a.completion_time, b.completion_time, "completion_time");
    assert_eq!(a.total_accesses, b.total_accesses, "total_accesses");
    assert_eq!(a.remote_accesses, b.remote_accesses, "remote_accesses");
    assert_eq!(a.cache_stats, b.cache_stats, "cache_stats");
    assert_eq!(
        a.access_latency.sorted_samples(),
        b.access_latency.sorted_samples()
    );
    assert_eq!(
        a.remote_access_latency.sorted_samples(),
        b.remote_access_latency.sorted_samples()
    );
    assert_eq!(a.pipeline, b.pipeline, "async pipeline counters");
    assert_eq!(a.fault_stats, b.fault_stats, "fault accounting");
    assert_eq!(a.recovery_stats, b.recovery_stats, "recovery accounting");
    assert_eq!(a.tenant_recovery, b.tenant_recovery, "per-tenant recovery");
}

// ---------------------------------------------------------------------------
// (a) The disabled policy is byte-identical to a build without the layer.
// ---------------------------------------------------------------------------

#[test]
fn none_policy_is_byte_identical_to_no_policy_at_all() {
    let traces = perf_traces();
    for fault in [FaultSpec::none(), FaultSpec::canonical_storm()] {
        for mode in [ReplayMode::Serial, ReplayMode::Threaded] {
            // The baseline never mentions recovery; the subject rides
            // `RecoveryPolicy::none()` through the config. Same RunResult,
            // same merged event stream, event for event.
            let baseline = SimConfig::builder()
                .memory_fraction(0.5)
                .cores(2)
                .sched_quantum(Nanos::from_micros(250))
                .seed(2020)
                .replay_mode(mode)
                .fault_plan(fault)
                .build()
                .expect("valid baseline");
            let (base_log, base) = run_logged(baseline, &traces);
            let (none_log, none) =
                run_logged(config(2, mode, fault, RecoveryPolicy::none()), &traces);
            assert!(
                none.recovery_stats.is_quiet(),
                "the disabled policy recorded recovery actions"
            );
            assert_eq!(
                base_log.events(),
                none_log.events(),
                "event streams diverged under the disabled policy"
            );
            assert_results_identical(base, none);
        }
    }
}

// ---------------------------------------------------------------------------
// (b) Recovery accounting is mode- and shard-count-invariant.
// ---------------------------------------------------------------------------

#[test]
fn recovery_stats_are_bit_identical_across_modes_and_cores() {
    let traces = perf_traces();
    let storm = FaultSpec::canonical_storm();
    let policy = RecoveryPolicy::tail_tolerant();
    for cores in [1usize, 2, 4] {
        let serial =
            VmmSimulator::new(config(cores, ReplayMode::Serial, storm, policy)).run_multi(&traces);
        let threaded = VmmSimulator::new(config(cores, ReplayMode::Threaded, storm, policy))
            .run_multi(&traces);
        assert!(
            !serial.recovery_stats.is_quiet(),
            "the storm must trigger recovery actions on {cores} cores"
        );
        assert_eq!(
            serial.recovery_stats.checksum, threaded.recovery_stats.checksum,
            "recovery checksum diverged on {cores} cores"
        );
        assert_results_identical(serial, threaded);
    }
}

// ---------------------------------------------------------------------------
// (c) Property: retries are pointwise monotone in deadline tightness.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn retries_are_monotone_in_timeout_tightness(
        tight_us in 5u64..20,
        slack_us in 1u64..40,
        seed in 1u64..200,
    ) {
        // Replays the same fixed read schedule under two policies that
        // differ only in deadline; recovery decisions ride per-request
        // streams keyed by the request ordinal, so the attempt-latency
        // sequence each request observes is policy-invariant and a tighter
        // deadline can only convert completions into retries.
        let retries_with = |timeout: Nanos| {
            let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(seed));
            let storm = FaultSpec::canonical_storm();
            let machines = path.agent().cluster().len() as u32;
            path.agent_mut()
                .install_fault_plan(FaultPlan::from_spec(seed, &storm, machines));
            let policy = RecoveryPolicy {
                timeout,
                max_retries: 3,
                backoff_base: Nanos::from_micros(1),
                backoff_jitter: Nanos::from_nanos(500),
                hedge_delay: Nanos::ZERO,
            };
            assert!(policy.validate().is_ok());
            path.agent_mut()
                .install_recovery(policy, recovery_stream_seed(seed));
            let span = storm.horizon.saturating_sub(storm.start).as_nanos().max(1);
            const READS: u64 = 400;
            for i in 0..READS {
                let now = storm.start + Nanos::from_nanos(i * span / READS);
                path.read_page(i.wrapping_mul(7), (i % 4) as usize, now);
            }
            path.recovery_stats().retries
        };
        let tight = retries_with(Nanos::from_micros(tight_us));
        let loose = retries_with(Nanos::from_micros(tight_us + slack_us));
        prop_assert!(
            tight >= loose,
            "tightening the deadline lost retries: {} at {} us vs {} at {} us",
            tight, tight_us, loose, tight_us + slack_us,
        );
    }
}
