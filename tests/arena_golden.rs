//! Golden arena matrix: the full corpus × prefetcher matrix over the
//! committed trace fixtures must render the *byte-exact* pinned
//! `leap-arena/1` JSON document, reproduce itself run over run, and agree
//! cell-for-cell between the Serial and Threaded replays at 1, 2, and 4
//! cores. The fixture doubles as CI's arena freshness gate — schema or
//! metric drift fails here first.
//!
//! Regenerate after an *intentional* schema or metric change with:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test arena_golden -- arena_matrix_is_fresh
//! ```

use leap_bench::arena::{run_arena, workspace_fixture, ArenaOptions, ARENA_SCHEMA};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The committed-fixture corpus: no synthetic entries, just the two recorded
/// logs, so the matrix is small enough to pin byte-exactly and cheap enough
/// for debug-mode CI.
fn fixture_options(cores: usize) -> ArenaOptions {
    ArenaOptions {
        quick: true,
        synthetic: false,
        cores,
        trace_logs: vec![
            workspace_fixture("perf_faults.log"),
            workspace_fixture("damon_regions.log"),
        ],
        ..ArenaOptions::default()
    }
}

#[test]
fn arena_matrix_is_fresh() {
    let report = run_arena(&fixture_options(2)).expect("fixture corpus must run");
    let rendered = report.to_json();
    assert!(rendered.starts_with(&format!("{{\"schema\":\"{ARENA_SCHEMA}\"")));

    let golden = fixture("arena_matrix.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&golden, &rendered).expect("write golden arena matrix");
        return;
    }
    let pinned = std::fs::read_to_string(&golden)
        .expect("tests/fixtures/arena_matrix.json must exist (REGEN_GOLDEN=1 to create)");
    assert_eq!(
        rendered, pinned,
        "arena matrix drifted from the committed golden; regenerate with \
         REGEN_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn arena_matrix_is_reproducible_run_over_run() {
    let opts = fixture_options(2);
    let first = run_arena(&opts).expect("first run");
    let second = run_arena(&opts).expect("second run");
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "repeated arena runs must be byte-identical"
    );
}

#[test]
fn arena_modes_agree_cell_for_cell_across_core_counts() {
    for cores in [1, 2, 4] {
        let report = run_arena(&fixture_options(cores)).expect("fixture corpus must run");
        assert_eq!(report.cells.len(), 2 * report.prefetchers.len());
        for cell in &report.cells {
            assert!(
                cell.modes_identical,
                "{} / {} diverged between Serial and Threaded at {cores} cores",
                cell.trace, cell.prefetcher
            );
        }
    }
}

#[test]
fn trained_markov_beats_readahead_on_the_perf_fixture() {
    // The ISSUE's acceptance criterion: the offline-trained first-order
    // Markov model out-covers the kernel-style read-ahead baseline on at
    // least one ingested fixture.
    let report = run_arena(&fixture_options(2)).expect("fixture corpus must run");
    let markov = report
        .cell("ingested-perf_faults", "Markov-1")
        .expect("Markov-1 cell");
    let readahead = report
        .cell("ingested-perf_faults", "DvmmReadAhead")
        .expect("DvmmReadAhead cell");
    assert!(
        markov.coverage > readahead.coverage,
        "Markov-1 coverage {:.4} must beat DvmmReadAhead {:.4} on perf_faults",
        markov.coverage,
        readahead.coverage
    );
    assert!(markov.prefetched > 0 && markov.covered > 0);
}
