//! Malformed-input coverage for the trace-ingestion subsystem: every broken
//! log produces a *typed* `IngestError` pointing at the offending line —
//! never a panic (note: no `#[should_panic]` anywhere in this file).

use leap_repro::leap_workloads::ingest::{
    ingest_path, ingest_str, IngestError, LogFormat, MAX_REGION_ACCESSES,
};

fn perf(log: &str) -> Result<(), IngestError> {
    ingest_str(log, LogFormat::PerfScript).map(|_| ())
}

fn damon(log: &str) -> Result<(), IngestError> {
    ingest_str(log, LogFormat::DamonRegions).map(|_| ())
}

const VALID_PERF: &str = "app 7 [000] 1.000001000: page-faults: addr=0x7f0000001000 R\n";
const VALID_DAMON: &str = "1.000000000 7 0x10000-0x14000 2\n";

#[test]
fn empty_and_comment_only_logs_are_typed_errors() {
    assert!(matches!(perf(""), Err(IngestError::EmptyLog)));
    assert!(matches!(
        perf("# only a comment\n\n# another\n"),
        Err(IngestError::EmptyLog)
    ));
    assert!(matches!(damon(""), Err(IngestError::EmptyLog)));
    // A log whose only samples are idle regions has no accesses either.
    assert!(matches!(
        damon("1.0 7 0x0-0x1000 0\n2.0 7 0x0-0x1000 0\n"),
        Err(IngestError::EmptyLog)
    ));
}

#[test]
fn truncated_perf_lines_name_their_line() {
    // Each prefix of a valid line that is missing mandatory fields.
    for truncated in [
        "app",
        "app 7",
        "app 7 [000]",
        "app 7 [000] 1.000001000:",
        "app 7 [000] 1.000001000: page-faults:",
    ] {
        let log = format!("{VALID_PERF}{truncated}\n");
        match perf(&log) {
            Err(IngestError::TruncatedLine { line: 2, format }) => {
                assert_eq!(format, LogFormat::PerfScript)
            }
            other => panic!("{truncated:?}: expected TruncatedLine, got {other:?}"),
        }
    }
}

#[test]
fn truncated_damon_lines_name_their_line() {
    for truncated in ["1.0", "1.0 7", "1.0 7 0x0-0x1000"] {
        let log = format!("{VALID_DAMON}{truncated}\n");
        match damon(&log) {
            Err(IngestError::TruncatedLine { line: 2, format }) => {
                assert_eq!(format, LogFormat::DamonRegions)
            }
            other => panic!("{truncated:?}: expected TruncatedLine, got {other:?}"),
        }
    }
}

#[test]
fn malformed_fields_are_named() {
    let cases: &[(&str, &str)] = &[
        ("app pid7 [000] 1.0: page-faults: addr=0x1000", "pid"),
        ("app 7 000 1.0: page-faults: addr=0x1000", "cpu"),
        ("app 7 [cpu] 1.0: page-faults: addr=0x1000", "cpu"),
        ("app 7 [000] 1.0 page-faults: addr=0x1000", "time"),
        ("app 7 [000] abc: page-faults: addr=0x1000", "time"),
        ("app 7 [000] 1.0000000001: page-faults: addr=0x1000", "time"),
        ("app 7 [000] 1.0: page-faults addr=0x1000 R x", "event"),
        ("app 7 [000] 1.0: page-faults: addr=0xzz", "addr"),
    ];
    for (line, field) in cases {
        match perf(&format!("{line}\n")) {
            Err(IngestError::BadField { line: 1, field: f }) => {
                assert_eq!(f, *field, "wrong field for {line:?}")
            }
            other => panic!("{line:?}: expected BadField({field}), got {other:?}"),
        }
    }
    for (line, field) in [
        ("1.0 seven 0x0-0x1000 1", "pid"),
        ("1.0 7 0x1000 1", "region"),
        ("1.0 7 0xzz-0x1000 1", "region"),
        ("1.0 7 0x0-0x1000 lots", "nr_accesses"),
    ] {
        match damon(&format!("{line}\n")) {
            Err(IngestError::BadField { line: 1, field: f }) => {
                assert_eq!(f, field, "wrong field for {line:?}")
            }
            other => panic!("{line:?}: expected BadField({field}), got {other:?}"),
        }
    }
}

#[test]
fn overflowing_addresses_and_timestamps_are_typed() {
    assert!(matches!(
        perf("app 7 [000] 1.0: page-faults: addr=0x1ffffffffffffffff\n"),
        Err(IngestError::AddressOverflow { line: 1 })
    ));
    assert!(matches!(
        perf("app 7 [000] 99999999999999999999.0: page-faults: addr=0x1000\n"),
        Err(IngestError::TimestampOverflow { line: 1 })
    ));
    // 2^64 ns is ~584 years; seconds that overflow after the ×10⁹ scale.
    assert!(matches!(
        perf("app 7 [000] 18446744074.0: page-faults: addr=0x1000\n"),
        Err(IngestError::TimestampOverflow { line: 1 })
    ));
    assert!(matches!(
        damon("1.0 7 0x1ffffffffffffffff-0x2ffffffffffffffff 1\n"),
        Err(IngestError::AddressOverflow { line: 1 })
    ));
}

#[test]
fn out_of_order_timestamps_point_at_the_regression() {
    let log = "\
app 7 [000] 1.000002000: page-faults: addr=0x1000 R
app 7 [000] 1.000001000: page-faults: addr=0x2000 R
";
    assert!(matches!(
        perf(log),
        Err(IngestError::OutOfOrderTimestamp { line: 2 })
    ));
    // An event before the `# t0:` base is equally out of order.
    let log = "\
# t0: 2.000000000
app 7 [000] 1.000000000: page-faults: addr=0x1000 R
";
    assert!(matches!(
        perf(log),
        Err(IngestError::OutOfOrderTimestamp { line: 2 })
    ));
    // The check is global (across pids), like a merged fault recording.
    let log = "\
a 1 [000] 5.000000000: page-faults: addr=0x1000 R
b 2 [001] 4.000000000: page-faults: addr=0x2000 R
";
    assert!(matches!(
        perf(log),
        Err(IngestError::OutOfOrderTimestamp { line: 2 })
    ));
    assert!(matches!(
        damon("2.0 7 0x0-0x1000 1\n1.0 7 0x0-0x1000 1\n"),
        Err(IngestError::OutOfOrderTimestamp { line: 2 })
    ));
}

#[test]
fn degenerate_and_overdense_regions_are_typed() {
    assert!(matches!(
        damon("1.0 7 0x2000-0x1000 1\n"),
        Err(IngestError::EmptyRegion { line: 1 })
    ));
    assert!(matches!(
        damon("1.0 7 0x1000-0x1000 1\n"),
        Err(IngestError::EmptyRegion { line: 1 })
    ));
    let dense = format!("1.0 7 0x0-0x1000 {}\n", MAX_REGION_ACCESSES + 1);
    match damon(&dense) {
        Err(IngestError::RegionTooDense {
            line: 1,
            nr_accesses,
        }) => {
            assert_eq!(nr_accesses, MAX_REGION_ACCESSES + 1)
        }
        other => panic!("expected RegionTooDense, got {other:?}"),
    }
}

#[test]
fn auto_detection_rejects_unknown_shapes() {
    let err = ingest_path("/dev/null").unwrap_err();
    assert!(matches!(err, IngestError::EmptyLog), "{err:?}");
    let dir = std::env::temp_dir().join("leap_ingest_errors_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.log");
    std::fs::write(&path, "# a comment\nthis is not a fault log\n").unwrap();
    assert!(matches!(
        ingest_path(&path),
        Err(IngestError::UnknownFormat { line: 2 })
    ));
    assert!(matches!(
        ingest_path(dir.join("does_not_exist.log")),
        Err(IngestError::Io(_))
    ));
    // Fraction-less DAMON timestamps are grammar-valid and must
    // auto-detect (regression: detection once required a '.').
    let damon_whole_secs = dir.join("whole_secs.log");
    std::fs::write(&damon_whole_secs, "5 42 0x10000-0x14000 3\n").unwrap();
    let ingested = ingest_path(&damon_whole_secs).expect("whole-second damon log ingests");
    assert_eq!(ingested.total_accesses(), 3);
}

#[test]
fn errors_display_their_line_numbers() {
    let err = perf("app 7 [000] 1.0: page-faults:\n").unwrap_err();
    assert_eq!(err.line(), Some(1));
    assert!(err.to_string().contains("line 1"), "{err}");
    let err = damon("1.0 7 0x2000-0x1000 1\n").unwrap_err();
    assert!(err.to_string().contains("line 1"), "{err}");
    assert!(IngestError::EmptyLog.line().is_none());
}

#[test]
fn junk_barrage_never_panics() {
    // A pile of adversarial lines: every one must come back as Err, not a
    // panic, through both parsers.
    let junk = [
        "\u{0}\u{1}\u{2}",
        "-1 -2 -3 -4",
        "a b c d e f g h i j",
        "1.0 7 -0x1000 1",
        "1.0 7 0x1000- 1",
        "1.0 7 -- 1",
        "app 7 [000] .: x: y",
        "app 7 [] 1.0: e: 0x0",
        "🦀 🦀 🦀 🦀 🦀 🦀",
        "app 7 [000] 1.0:: page-faults: addr=0x1000",
        "18446744073709551615.999999999 7 0x0-0x1000 1",
    ];
    for line in junk {
        let log = format!("{line}\n");
        assert!(perf(&log).is_err(), "perf accepted {line:?}");
        assert!(damon(&log).is_err(), "damon accepted {line:?}");
    }
}
