//! The acceptance test for pluggable eviction policies: a CLOCK-Pro-style
//! `CacheEvictor` defined *outside* the `leap` crate (in `leap-eviction`,
//! which `leap` treats as just another policy source) runs end-to-end through
//! `VmmSimulator`, injected via `SimConfigBuilder::custom_eviction` or
//! selected by name from a `ComponentRegistry` — mirroring how
//! `ProgrammedPrefetcher` plugs in on the prefetcher side.

use leap_repro::leap_eviction::{CacheEvictor, ClockProEvictor, EvictionReport};
use leap_repro::leap_mem::{CacheOrigin, SwapCache, SwapSlot};
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::{sequential_trace, stride_trace, AccessTrace};
use leap_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps the out-of-crate CLOCK-Pro policy with shared counters so the test
/// can prove the simulator actually drove it under memory pressure.
#[derive(Debug)]
struct CountingClockPro {
    inner: ClockProEvictor,
    make_space_calls: Arc<AtomicU64>,
    pages_freed: Arc<AtomicU64>,
}

impl CacheEvictor for CountingClockPro {
    fn policy_name(&self) -> &'static str {
        "clock-pro"
    }

    fn frees_on_hit(&self) -> bool {
        self.inner.frees_on_hit()
    }

    fn on_insert(&mut self, slot: SwapSlot, origin: CacheOrigin) {
        self.inner.on_insert(slot, origin);
    }

    fn on_remove(&mut self, slot: SwapSlot) {
        self.inner.on_remove(slot);
    }

    fn on_hit(&mut self, slot: SwapSlot, origin: CacheOrigin, cache: &mut SwapCache) -> bool {
        self.inner.on_hit(slot, origin, cache)
    }

    fn make_space(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> EvictionReport {
        self.make_space_calls.fetch_add(1, Ordering::Relaxed);
        let report = self.inner.make_space(cache, target, now);
        self.pages_freed
            .fetch_add(report.freed_total(), Ordering::Relaxed);
        report
    }

    fn background_reclaim(&mut self, cache: &mut SwapCache, now: Nanos) -> Option<EvictionReport> {
        self.inner.background_reclaim(cache, now)
    }

    fn tracked_pages(&self) -> u64 {
        self.inner.tracked_pages()
    }
}

#[derive(Debug, Default)]
struct ClockProFactory {
    make_space_calls: Arc<AtomicU64>,
    pages_freed: Arc<AtomicU64>,
}

impl EvictionFactory for ClockProFactory {
    fn name(&self) -> &'static str {
        "clock-pro"
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn CacheEvictor> {
        Box::new(CountingClockPro {
            inner: ClockProEvictor::new(),
            make_space_calls: self.make_space_calls.clone(),
            pages_freed: self.pages_freed.clone(),
        })
    }
}

/// A tiny prefetch cache forces the engine to call `make_space` on the
/// injected policy; the run must complete and really exercise CLOCK-Pro.
#[test]
fn clock_pro_evicts_under_pressure_via_custom_eviction() {
    let trace = stride_trace(4 * MIB, 10, 2);
    let factory = ClockProFactory::default();
    let calls = factory.make_space_calls.clone();
    let freed = factory.pages_freed.clone();
    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .prefetch_cache_pages(16)
        .custom_eviction(factory)
        .seed(11)
        .build_vmm()
        .expect("valid config")
        .run_prepopulated(&trace);

    assert!(result.remote_accesses > 0, "the run must page");
    assert!(
        calls.load(Ordering::Relaxed) > 0,
        "a 16-page cache must trigger make_space on the custom policy"
    );
    assert!(freed.load(Ordering::Relaxed) > 0, "CLOCK-Pro must evict");
    assert!(
        result.config_label.contains("clock-pro"),
        "label {:?} should name the injected component",
        result.config_label
    );
}

/// Named registration resolves through a registry exactly like prefetchers:
/// `register_eviction` + `eviction_named` select CLOCK-Pro without `leap`
/// knowing the type, and unknown names still fail loudly with the eviction
/// role.
#[test]
fn named_clock_pro_resolves_through_a_registry() {
    let trace = sequential_trace(2 * MIB, 2);
    let mut registry = ComponentRegistry::builtin();
    registry.register_eviction(Arc::new(ClockProFactory::default()));

    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .prefetch_cache_pages(32)
        .registry(registry.clone())
        .eviction_named("clock-pro")
        .seed(5)
        .build_vmm()
        .expect("valid config")
        .run(&trace);
    assert!(result.total_accesses > 0);
    assert!(result.config_label.contains("clock-pro"));

    let err = SimConfig::builder()
        .registry(registry)
        .eviction_named("does-not-exist")
        .build_vmm()
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::UnknownComponent {
            role: "eviction",
            ..
        }
    ));
}

/// The out-of-crate policy inherits the replay-mode bit-identity contract:
/// CLOCK-Pro's hands advance on engine events only, so serial and threaded
/// replays agree event for event.
#[test]
fn clock_pro_is_bit_identical_across_replay_modes() {
    let traces: Vec<AccessTrace> = vec![
        stride_trace(2 * MIB, 10, 2),
        sequential_trace(2 * MIB, 2),
        stride_trace(2 * MIB, 7, 2),
    ];
    let run = |mode: ReplayMode| {
        let mut registry = ComponentRegistry::builtin();
        registry.register_eviction(Arc::new(ClockProFactory::default()));
        let sim = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(250))
            .prefetch_cache_pages(24)
            .registry(registry)
            .eviction_named("clock-pro")
            .seed(29)
            .replay_mode(mode)
            .build_vmm()
            .expect("valid config");
        let mut log = EventLog::default();
        let result = sim.session().observe(&mut log).run_multi(&traces);
        (log, result)
    };
    let (log_serial, mut serial) = run(ReplayMode::Serial);
    let (log_threaded, mut threaded) = run(ReplayMode::Threaded);
    assert_eq!(log_serial.events(), log_threaded.events());
    assert_eq!(serial.completion_time, threaded.completion_time);
    assert_eq!(serial.cache_stats, threaded.cache_stats);
    assert_eq!(serial.pages_swapped_out, threaded.pages_swapped_out);
    assert_eq!(
        serial.access_latency.sorted_samples(),
        threaded.access_latency.sorted_samples()
    );
}
