//! Tenant budget enforcement: the engine's cgroup-style tenant ledger
//! (`leap_mem::MemoryLimit` registered per pid) must keep an over-budget
//! tenant's reclaim inside its own residency — evictions are charged to the
//! tenant that faulted, never to a co-scheduled tenant with headroom — and
//! explicit service-layer budget overrides must take precedence over the
//! `memory_fraction`-derived default.

use leap_repro::leap_service::{AdmissionPolicy, FarMemoryService, TenantSpec};
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::{sequential_trace, stride_trace};
use leap_repro::prelude::*;

fn config(seed: u64) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// An over-budget tenant pages; evictions land exclusively on its own pid.
#[test]
fn over_budget_tenant_evicts_only_its_own_pages() {
    let mut service = FarMemoryService::new(config(7), 100_000, AdmissionPolicy::Reject);
    // Tenant 0: 1 MiB working set (256 pages) squeezed into 64 pages.
    let tight = service.register(TenantSpec::new(sequential_trace(MIB, 3), 64));
    // Tenant 1: same working set with room for all of it (plus slack).
    let ample = service.register(TenantSpec::new(stride_trace(MIB, 10, 3), 512));
    let report = service.run();
    assert_eq!(report.admission.admitted_count(), 2);
    let wave = &report.waves[0];

    // The tight tenant ran as pid 1, the ample one as pid 2.
    let (tight_id, tight_qos) = &wave.tenants[0];
    let (ample_id, ample_qos) = &wave.tenants[1];
    assert_eq!(*tight_id, tight);
    assert_eq!(*ample_id, ample);

    // Budget pressure shows up only where it was configured.
    assert!(
        tight_qos.remote_accesses > 0,
        "64-page budget for a 256-page working set must page"
    );
    assert_eq!(
        ample_qos.remote_accesses, 0,
        "a tenant whose budget covers its working set must never fault remotely"
    );

    // Eviction accounting: every swap-out is attributed, and none of them
    // to the tenant with headroom.
    let evictions = &wave.result.tenant_evictions;
    let total: u64 = evictions.values().sum();
    assert_eq!(total, wave.result.pages_swapped_out);
    assert!(evictions.get(&1).copied().unwrap_or(0) > 0);
    assert_eq!(evictions.get(&2).copied().unwrap_or(0), 0);
}

/// The service-layer override replaces the `memory_fraction` default: the
/// same trace with a full-working-set override stops paging entirely.
#[test]
fn budget_override_takes_precedence_over_memory_fraction() {
    let trace = sequential_trace(MIB, 3);

    // memory_fraction 0.5 alone: 128 resident pages for 256 touched -> pages.
    let default_run = VmmSimulator::new(config(9)).run(&trace);
    assert!(default_run.remote_accesses > 0);

    // An explicit 512-page override on the same config: no paging.
    let mut sim = VmmSimulator::new(config(9));
    sim.set_tenant_budget_pages(leap_repro::leap_mem::Pid(1), 512);
    let overridden = sim.run(&trace);
    assert_eq!(overridden.remote_accesses, 0);
    assert_eq!(overridden.pages_swapped_out, 0);
    assert!(overridden.tenant_evictions.is_empty());
}
