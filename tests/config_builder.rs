//! Integration tests for the validated config builder and the `Simulator` /
//! `Session` APIs at workspace level (through the `leap-repro` umbrella).

use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::{interleave, stride_trace};
use leap_repro::prelude::*;

#[test]
fn builder_rejects_each_invalid_knob_with_the_right_variant() {
    assert!(matches!(
        SimConfig::builder().memory_fraction(-0.5).build(),
        Err(ConfigError::MemoryFractionOutOfRange(_))
    ));
    assert!(matches!(
        SimConfig::builder().memory_fraction(2.0).build(),
        Err(ConfigError::MemoryFractionOutOfRange(_))
    ));
    assert!(matches!(
        SimConfig::builder().history_size(0).build(),
        Err(ConfigError::ZeroHistorySize)
    ));
    assert!(matches!(
        SimConfig::builder().max_prefetch_window(0).build(),
        Err(ConfigError::ZeroPrefetchWindow)
    ));
    assert!(matches!(
        SimConfig::builder().cores(0).build(),
        Err(ConfigError::ZeroCores)
    ));
    assert!(matches!(
        SimConfig::builder().prefetch_cache_pages(0).build(),
        Err(ConfigError::ZeroPrefetchCache)
    ));
    assert!(matches!(
        SimConfig::builder()
            .max_prefetch_window(32)
            .prefetch_cache_pages(16)
            .build(),
        Err(ConfigError::CacheSmallerThanWindow {
            cache_pages: 16,
            window: 32
        })
    ));
    assert!(matches!(
        SimConfig::builder()
            .backend_read_latency(Nanos::ZERO)
            .build(),
        Err(ConfigError::ZeroBackendLatency { which: "read" })
    ));
    // Errors render actionably.
    let msg = SimConfig::builder()
        .memory_fraction(7.0)
        .build()
        .unwrap_err()
        .to_string();
    assert!(msg.contains("memory_fraction"), "got {msg:?}");
}

#[test]
fn builder_knobs_reach_the_simulation() {
    let trace = stride_trace(4 * MIB, 10, 1);
    // More history + a wider window than the defaults still runs and keeps
    // the Leap coverage on a regular pattern.
    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .history_size(64)
        .max_prefetch_window(16)
        .cores(4)
        .seed(3)
        .build_vmm()
        .expect("valid config")
        .run_prepopulated(&trace);
    assert!(result.cache_stats.hit_ratio() > 0.7);
}

#[test]
fn config_json_round_trip_through_files() {
    let config = SimConfig::builder()
        .prefetcher(PrefetcherKind::Leap)
        .backend(BackendKind::Ssd)
        .memory_fraction(0.25)
        .prefetch_cache_pages(4096)
        .seed(77)
        .backend_write_latency(Nanos::from_micros(12))
        .build()
        .expect("valid config");
    let parsed = SimConfig::from_json(&config.to_json()).expect("round trip");
    assert_eq!(parsed, config);
    // A parsed config drives a simulator exactly like the original.
    let trace = stride_trace(2 * MIB, 10, 1);
    let a = VmmSimulator::new(config).run(&trace);
    let b = VmmSimulator::new(parsed).run(&trace);
    assert_eq!(a.completion_time, b.completion_time);
}

#[test]
fn simulator_trait_is_front_end_agnostic() {
    fn drive<S: Simulator>(sim: S, trace: &leap_repro::leap_workloads::AccessTrace) -> RunResult {
        sim.run(trace)
    }
    let trace = stride_trace(2 * MIB, 10, 1);
    let config = SimConfig::builder().memory_fraction(0.5).build().unwrap();
    let vmm = drive(VmmSimulator::new(config), &trace);
    let vfs = drive(VfsSimulator::new(config), &trace);
    assert_eq!(vmm.total_accesses, trace.len() as u64);
    assert_eq!(vfs.total_accesses, trace.len() as u64);
}

#[test]
fn vfs_supports_multi_process_runs_via_the_trait() {
    let traces = vec![stride_trace(2 * MIB, 10, 1), stride_trace(2 * MIB, 3, 1)];
    let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let config = SimConfig::builder().memory_fraction(0.5).build().unwrap();
    // The time-sliced scheduler drives the replay...
    let result = VfsSimulator::new(config).run_multi(&traces);
    assert_eq!(result.total_accesses, total);
    assert!(result.workload.contains('+'));
    // ...and an explicit pre-merged schedule still works via run_interleaved.
    let schedule = interleave(&traces, 5);
    let result = VfsSimulator::new(config).run_interleaved(&traces, &schedule);
    assert_eq!(result.total_accesses, schedule.len() as u64);
}

#[test]
fn session_stream_sees_every_access_in_order() {
    #[derive(Default)]
    struct SeqCheck {
        next: u64,
        remote: u64,
        completed: bool,
    }
    impl Observer for SeqCheck {
        fn on_event(&mut self, event: &FaultEvent) {
            assert_eq!(event.seq, self.next, "events arrive in replay order");
            self.next += 1;
            if event.outcome.is_remote() {
                self.remote += 1;
            }
        }
        fn on_complete(&mut self, result: &RunResult) {
            assert_eq!(self.next, result.total_accesses);
            self.completed = true;
        }
    }

    let trace = stride_trace(2 * MIB, 10, 1);
    let config = SimConfig::builder().memory_fraction(0.5).build().unwrap();
    let mut check = SeqCheck::default();
    let mut counts = OutcomeCounts::default();
    let result = VmmSimulator::new(config)
        .session()
        .observe(&mut check)
        .observe(&mut counts)
        .run_prepopulated(&trace);
    assert!(check.completed);
    assert_eq!(check.remote, result.remote_accesses);
    assert_eq!(
        counts.local_hits + counts.minor_faults + counts.cache_hits + counts.remote_fetches,
        result.total_accesses
    );
    assert_eq!(counts.cache_hits, result.cache_stats.hits());
    assert_eq!(counts.remote_fetches, result.cache_stats.misses());
}

#[test]
fn session_run_is_numerically_identical_to_batch_run() {
    let trace = stride_trace(4 * MIB, 10, 1);
    let config = SimConfig::builder()
        .memory_fraction(0.5)
        .seed(21)
        .build()
        .unwrap();
    let batch = VmmSimulator::new(config).run_prepopulated(&trace);
    let streamed = VmmSimulator::new(config).session().run_prepopulated(&trace);
    assert_eq!(batch.completion_time, streamed.completion_time);
    assert_eq!(batch.remote_accesses, streamed.remote_accesses);
    assert_eq!(batch.cache_stats, streamed.cache_stats);
    assert_eq!(batch.pages_swapped_out, streamed.pages_swapped_out);
}
