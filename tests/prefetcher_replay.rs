//! Integration tests that replay workload-generator traces directly through
//! the prefetching algorithms (no simulator), checking the coverage and
//! pollution relationships the paper reports in §5.2.

use leap_repro::leap_prefetcher::{
    LeapPrefetcher, NextNLinePrefetcher, PageAddr, Prefetcher, ReadAheadPrefetcher,
    StridePrefetcher,
};
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::{sequential_trace, stride_trace, AppKind, AppModel};
use std::collections::HashSet;

/// Replays a page sequence against a prefetcher with a small, bounded,
/// FIFO-evicted prefetch cache (64 pages — prefetches only help if they are
/// consumed reasonably soon), returning (pages prefetched, prefetched pages
/// that were later used, demand misses).
fn replay(prefetcher: &mut dyn Prefetcher, pages: &[u64]) -> (u64, u64, u64) {
    const CACHE_CAPACITY: usize = 64;
    let mut cache: HashSet<PageAddr> = HashSet::new();
    let mut fifo: std::collections::VecDeque<PageAddr> = std::collections::VecDeque::new();
    let mut prefetched = 0u64;
    let mut useful = 0u64;
    let mut misses = 0u64;
    for &page in pages {
        let addr = PageAddr(page);
        if cache.remove(&addr) {
            useful += 1;
            prefetcher.on_prefetch_hit(addr);
            continue;
        }
        misses += 1;
        for candidate in prefetcher.on_fault(addr).pages().iter().copied() {
            if cache.insert(candidate) {
                prefetched += 1;
                fifo.push_back(candidate);
                if fifo.len() > CACHE_CAPACITY {
                    if let Some(evicted) = fifo.pop_front() {
                        cache.remove(&evicted);
                    }
                }
            }
        }
    }
    (prefetched, useful, misses)
}

#[test]
fn leap_covers_stride_patterns_the_baselines_miss() {
    let pages = stride_trace(8 * MIB, 10, 1).page_sequence();
    let (_, leap_useful, leap_misses) = replay(&mut LeapPrefetcher::default(), &pages);
    let (_, ra_useful, ra_misses) = replay(&mut ReadAheadPrefetcher::default(), &pages);
    let (_, nl_useful, _) = replay(&mut NextNLinePrefetcher::default(), &pages);
    assert!(
        leap_useful as f64 > 0.8 * pages.len() as f64,
        "Leap useful {leap_useful} of {}",
        pages.len()
    );
    assert!(ra_useful < leap_useful / 4, "Read-Ahead useful {ra_useful}");
    assert!(
        nl_useful < leap_useful / 4,
        "Next-N-Line useful {nl_useful}"
    );
    assert!(leap_misses < ra_misses);
}

#[test]
fn next_n_line_pollutes_most_on_irregular_workloads() {
    let pages = AppModel::new(AppKind::Memcached, 4)
        .with_accesses(30_000)
        .generate()
        .page_sequence();
    let (leap_prefetched, _, _) = replay(&mut LeapPrefetcher::default(), &pages);
    let (nl_prefetched, _, _) = replay(&mut NextNLinePrefetcher::default(), &pages);
    let (stride_prefetched, _, _) = replay(&mut StridePrefetcher::default(), &pages);
    // Leap throttles itself on irregular accesses; Next-N-Line never does.
    assert!(
        nl_prefetched > 3 * leap_prefetched.max(1),
        "Next-N-Line {nl_prefetched} vs Leap {leap_prefetched}"
    );
    // The confidence-gated stride prefetcher also pollutes less than
    // Next-N-Line on a random stream.
    assert!(stride_prefetched < nl_prefetched);
}

#[test]
fn every_prefetcher_handles_sequential_streams() {
    let pages = sequential_trace(4 * MIB, 1).page_sequence();
    for (name, mut prefetcher) in [
        (
            "leap",
            Box::new(LeapPrefetcher::default()) as Box<dyn Prefetcher>,
        ),
        ("read-ahead", Box::new(ReadAheadPrefetcher::default())),
        ("next-n-line", Box::new(NextNLinePrefetcher::default())),
    ] {
        let (_, useful, _) = replay(prefetcher.as_mut(), &pages);
        assert!(
            useful as f64 > 0.7 * pages.len() as f64,
            "{name}: useful {useful} of {}",
            pages.len()
        );
    }
}

#[test]
fn leap_coverage_exceeds_readahead_on_every_application_model() {
    for kind in AppKind::ALL {
        let pages = AppModel::new(kind, 8)
            .with_accesses(30_000)
            .generate()
            .page_sequence();
        let (_, leap_useful, _) = replay(&mut LeapPrefetcher::default(), &pages);
        let (_, ra_useful, _) = replay(&mut ReadAheadPrefetcher::default(), &pages);
        assert!(
            leap_useful >= ra_useful,
            "{kind}: Leap useful {leap_useful} < Read-Ahead {ra_useful}"
        );
    }
}
