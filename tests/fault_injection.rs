//! Chaos-replay suite: deterministic fault injection across the remote
//! tier.
//!
//! The contract under test: a [`FaultSpec`] riding the `SimConfig` expands
//! (from the run's seed, on a dedicated salted RNG stream) into the same
//! [`FaultPlan`] everywhere, every scheduled fault — latency-spike epochs,
//! degraded-bandwidth epochs, reconnect storms, machine failures with
//! re-replication — is delivered in virtual time, and the whole run stays
//! bit-identical between `ReplayMode::Serial` and `ReplayMode::Threaded`
//! for any plan. The empty plan reproduces healthy runs byte for byte, and
//! the canonical storm over the ingested perf fixture is golden-pinned.
//!
//! Regenerate the committed storm plan after an *intentional* spec change:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test fault_injection -- storm_plan_fixture_is_fresh
//! ```

use leap_repro::leap_remote::{
    HostAgent, HostAgentConfig, RemoteCluster, RemoteIoKind, DEFAULT_SLAB_BYTES,
};
use leap_repro::leap_service::{AdmissionPolicy, FarMemoryService, TenantSpec};
use leap_repro::leap_sim_core::units::PAGE_SIZE;
use leap_repro::leap_sim_core::{DetRng, Nanos};
use leap_repro::leap_workloads::ingest::ingest_path;
use leap_repro::leap_workloads::{Access, AccessTrace};
use leap_repro::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn perf_traces() -> Vec<AccessTrace> {
    ingest_path(fixture("perf_faults.log"))
        .expect("perf fixture must ingest")
        .into_traces()
}

fn replay_config(seed: u64, cores: usize, mode: ReplayMode, fault: FaultSpec) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_micros(250))
        .seed(seed)
        .replay_mode(mode)
        .fault_plan(fault)
        .build()
        .expect("valid replay config")
}

/// Every aggregate of two results, including the exact latency
/// distributions and the fault accounting.
fn assert_results_identical(mut a: RunResult, mut b: RunResult) {
    assert_eq!(a.completion_time, b.completion_time, "completion_time");
    assert_eq!(a.total_accesses, b.total_accesses, "total_accesses");
    assert_eq!(a.remote_accesses, b.remote_accesses, "remote_accesses");
    assert_eq!(a.first_touch_faults, b.first_touch_faults);
    assert_eq!(a.pages_swapped_out, b.pages_swapped_out);
    assert_eq!(a.cache_stats, b.cache_stats, "cache_stats");
    assert_eq!(
        a.prefetch_stats.pages_prefetched(),
        b.prefetch_stats.pages_prefetched()
    );
    assert_eq!(
        a.prefetch_stats.prefetch_hits(),
        b.prefetch_stats.prefetch_hits()
    );
    assert_eq!(
        a.access_latency.sorted_samples(),
        b.access_latency.sorted_samples()
    );
    assert_eq!(
        a.remote_access_latency.sorted_samples(),
        b.remote_access_latency.sorted_samples()
    );
    assert_eq!(a.pipeline, b.pipeline, "async pipeline counters");
    assert_eq!(a.fault_stats, b.fault_stats, "fault accounting");
    assert_eq!(a.recovery_stats, b.recovery_stats, "recovery accounting");
    assert_eq!(a.tenant_recovery, b.tenant_recovery, "per-tenant recovery");
}

// ---------------------------------------------------------------------------
// (a) Property: arbitrary plans round-trip through JSON and replay
// bit-identically Serial vs Threaded across core counts.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn arbitrary_plans_round_trip_and_replay_identically(
        spikes in 0u32..3,
        degraded in 0u32..3,
        chaos in 0u32..6,
        seed in 1u64..500,
    ) {
        // One generated variable covers the (failures, storms) cross
        // product: the vendored proptest shim's tuple strategies stop at
        // four elements.
        let failures = chaos % 3;
        let storms = chaos / 3;
        let spec = FaultSpec {
            latency_spikes: spikes,
            spike_multiplier_milli: 2500,
            degraded_epochs: degraded,
            degraded_multiplier_milli: 1500,
            machine_failures: failures,
            reconnect_storms: storms,
            reconnect_penalty: Nanos::from_micros(10),
            epoch: Nanos::from_micros(150),
            start: Nanos::from_micros(40),
            horizon: Nanos::from_micros(700),
            partition_epochs: 0,
            target_tenant: 0,
        };
        prop_assert!(spec.validate().is_ok());

        // JSON round trip, standalone and riding the SimConfig.
        let parsed = FaultSpec::from_json(&spec.to_json()).expect("round trip");
        prop_assert_eq!(parsed, spec);
        let config = replay_config(seed, 2, ReplayMode::Serial, spec);
        let rode = SimConfig::from_json(&config.to_json()).expect("config round trip");
        prop_assert_eq!(rode.fault, spec);

        // Plan expansion is a pure function of (seed, spec, machines).
        prop_assert_eq!(
            FaultPlan::from_spec(seed, &spec, 4),
            FaultPlan::from_spec(seed, &spec, 4)
        );

        // The replay is bit-identical across modes for every core count.
        let traces = perf_traces();
        for cores in [1usize, 2, 4] {
            let mut serial =
                VmmSimulator::new(replay_config(seed, cores, ReplayMode::Serial, spec))
                    .run_multi(&traces);
            let mut threaded =
                VmmSimulator::new(replay_config(seed, cores, ReplayMode::Threaded, spec))
                    .run_multi(&traces);
            prop_assert_eq!(serial.completion_time, threaded.completion_time);
            prop_assert_eq!(serial.fault_stats, threaded.fault_stats);
            prop_assert_eq!(
                serial.remote_access_latency.sorted_samples(),
                threaded.remote_access_latency.sorted_samples()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// (b) The empty plan is byte-identical to no plan at all.
// ---------------------------------------------------------------------------

#[test]
fn empty_plan_is_byte_identical_to_a_healthy_run() {
    let traces = perf_traces();
    for mode in [ReplayMode::Serial, ReplayMode::Threaded] {
        let no_plan = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(250))
            .seed(2020)
            .replay_mode(mode)
            .build()
            .expect("valid config");
        let healthy = VmmSimulator::new(no_plan).run_multi(&traces);
        let empty =
            VmmSimulator::new(replay_config(2020, 2, mode, FaultSpec::none())).run_multi(&traces);
        assert!(empty.fault_stats.is_quiet(), "empty plan recorded faults");
        assert_results_identical(healthy, empty);
    }
}

// ---------------------------------------------------------------------------
// (c) Golden-pinned aggregates: the canonical storm over the perf fixture.
// ---------------------------------------------------------------------------

#[test]
fn canonical_storm_over_perf_fixture_is_pinned() {
    let traces = perf_traces();
    let storm = FaultSpec::canonical_storm();
    let serial =
        VmmSimulator::new(replay_config(2020, 2, ReplayMode::Serial, storm)).run_multi(&traces);
    let threaded =
        VmmSimulator::new(replay_config(2020, 2, ReplayMode::Threaded, storm)).run_multi(&traces);

    // The healthy pins (104 accesses, completion 602_597 ns) come from
    // golden_traces.rs; the storm must not change what was replayed, only
    // how long it took and what the fault layer saw.
    assert_eq!(serial.total_accesses, 104);
    assert!(
        serial.completion_time.as_nanos() > 602_597,
        "the storm must slow the fixture replay ({} ns)",
        serial.completion_time.as_nanos()
    );
    assert!(!serial.fault_stats.is_quiet(), "the storm went unobserved");

    // Golden-pinned storm aggregates: any change means the fault layer's
    // virtual-time delivery, RNG discipline, or checksum words drifted.
    // Regenerate intentionally by updating these pins from a fresh run.
    assert_eq!(serial.completion_time.as_nanos(), 1_397_071);
    assert_eq!(serial.fault_stats.spiked_requests, 29);
    assert_eq!(serial.fault_stats.degraded_requests, 13);
    assert_eq!(serial.fault_stats.reconnect_requests, 21);
    assert_eq!(
        serial.fault_stats.reconnect_penalty_total,
        Nanos::from_nanos(525_000)
    );
    assert_eq!(serial.fault_stats.machines_failed, 2);
    assert_eq!(serial.fault_stats.cancelled_requests, 2);
    assert_eq!(serial.fault_stats.slabs_rereplicated, 1);
    assert_eq!(serial.fault_stats.slabs_lost, 0);
    assert_eq!(
        serial.fault_stats.reconstruction_cost_total,
        Nanos::from_nanos(298_048)
    );
    assert_eq!(serial.fault_stats.checksum, 4_255_149_869_353_675_325);

    assert_results_identical(serial, threaded);
}

// ---------------------------------------------------------------------------
// 5-seed sweep: the canonical storm replays mode-identically per seed (the
// CI chaos-smoke job runs this).
// ---------------------------------------------------------------------------

#[test]
fn canonical_storm_replays_identically_across_five_seeds() {
    let traces = perf_traces();
    let storm = FaultSpec::canonical_storm();
    for seed in [1u64, 7, 42, 2020, 31_337] {
        let serial =
            VmmSimulator::new(replay_config(seed, 2, ReplayMode::Serial, storm)).run_multi(&traces);
        let threaded = VmmSimulator::new(replay_config(seed, 2, ReplayMode::Threaded, storm))
            .run_multi(&traces);
        assert_results_identical(serial, threaded);
    }
}

// ---------------------------------------------------------------------------
// (d) Slab failure: every lost slab is re-replicated exactly once and
// re-reads succeed.
// ---------------------------------------------------------------------------

#[test]
fn failed_machine_slabs_are_rereplicated_exactly_once_and_rereads_succeed() {
    let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
    let mut agent = HostAgent::new(
        HostAgentConfig::default(),
        RemoteCluster::homogeneous(4, 64),
        DetRng::seed_from(7),
    );
    // Map 16 slabs while the cluster is healthy.
    let slabs: Vec<u64> = (0..16).collect();
    for &s in &slabs {
        agent.ensure_mapped(s * pages_per_slab).expect("capacity");
    }

    // Schedule one machine failure shortly after the warm-up.
    let spec = FaultSpec {
        machine_failures: 1,
        epoch: Nanos::from_micros(100),
        start: Nanos::from_micros(10),
        horizon: Nanos::from_micros(20),
        ..FaultSpec::none()
    };
    agent.install_fault_plan(FaultPlan::from_spec(11, &spec, 4));

    // Re-read every slab after the failure fires: all reads must succeed.
    let after = Nanos::from_micros(50);
    for &s in &slabs {
        let io = agent.remote_io(RemoteIoKind::Read, s * pages_per_slab, 0, after);
        assert!(io.is_some(), "slab {s} unreadable after failover");
    }
    let first = agent.fault_stats();
    assert_eq!(first.machines_failed, 1);
    assert!(first.slabs_rereplicated > 0, "no slab needed repair");
    assert_eq!(first.slabs_lost, 0, "replication 2 must cover one failure");
    assert!(first.reconstruction_cost_total > Nanos::ZERO);

    // Every mapped page still resolves to a live machine.
    for &s in &slabs {
        let machine = agent.ensure_mapped(s * pages_per_slab).expect("mapped");
        assert!(!agent.cluster().is_failed(machine), "primary still dead");
    }

    // Exactly once: a second full pass repairs nothing further.
    let again = Nanos::from_micros(60);
    for &s in &slabs {
        agent
            .remote_io(RemoteIoKind::Read, s * pages_per_slab, 0, again)
            .expect("re-read");
    }
    let second = agent.fault_stats();
    assert_eq!(second.slabs_rereplicated, first.slabs_rereplicated);
    assert_eq!(second.machines_failed, 1);
    assert_eq!(
        second.reconstruction_cost_total,
        first.reconstruction_cost_total
    );
}

// ---------------------------------------------------------------------------
// (e) Tenant isolation: a mid-run failure degrades only the tenants whose
// replay overlaps the fault window.
// ---------------------------------------------------------------------------

#[test]
fn mid_run_faults_degrade_only_overlapping_tenants() {
    // A tiny tenant that finishes long before the fault window opens, and a
    // long tenant that spans it.
    let tiny = AccessTrace::new(
        "tiny".to_string(),
        (0..8u64)
            .map(|i| Access {
                page: i,
                is_write: false,
                compute: Nanos::from_micros(1),
            })
            .collect(),
    );
    let long = AccessTrace::new(
        "long".to_string(),
        (0..4_000u64)
            .map(|i| Access {
                page: i % 512,
                is_write: false,
                compute: Nanos::from_micros(2),
            })
            .collect(),
    );

    let run = |fault: FaultSpec| {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(250))
            .seed(2020)
            .fault_plan(fault)
            .build()
            .expect("valid config");
        let mut svc = FarMemoryService::new(config, 10_000, AdmissionPolicy::Reject);
        svc.register(TenantSpec::new(tiny.clone(), 64));
        svc.register(TenantSpec::new(long.clone(), 128));
        svc.run()
    };

    // Storm windowed well after the tiny tenant's last access completes.
    let spec = FaultSpec::storm_over(Nanos::from_millis(2), Nanos::from_millis(30));
    let healthy = run(FaultSpec::none());
    let churned = run(spec);

    assert!(
        !churned.waves[0].result.fault_stats.is_quiet(),
        "the storm missed the wave entirely"
    );
    let tenant = |report: &leap_repro::leap_service::ServiceReport, i: usize| {
        report.waves[0].tenants[i].1.clone()
    };
    let tiny_healthy = tenant(&healthy, 0);
    let tiny_churned = tenant(&churned, 0);
    assert_eq!(
        tiny_healthy.behavior_checksum, tiny_churned.behavior_checksum,
        "tiny tenant's behavior changed"
    );
    assert_eq!(
        tiny_healthy.timing_checksum, tiny_churned.timing_checksum,
        "tiny tenant finished before the window yet its timing changed"
    );
    let long_healthy = tenant(&healthy, 1);
    let long_churned = tenant(&churned, 1);
    assert_ne!(
        long_healthy.timing_checksum, long_churned.timing_checksum,
        "long tenant spans the window but kept its healthy timing"
    );
}

// ---------------------------------------------------------------------------
// (f) Tenant targeting: a plan with `target_tenant` set degrades only that
// tenant; every other tenant's QoS checksums match the healthy run exactly.
// ---------------------------------------------------------------------------

#[test]
fn targeted_faults_leave_other_tenants_byte_identical() {
    // Two long tenants, one per core, both spanning the fault window.
    let trace = |name: &str| {
        AccessTrace::new(
            name.to_string(),
            (0..4_000u64)
                .map(|i| Access {
                    page: i % 512,
                    is_write: false,
                    compute: Nanos::from_micros(2),
                })
                .collect(),
        )
    };
    let run = |fault: FaultSpec| {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(2)
            .sched_quantum(Nanos::from_micros(250))
            .seed(2020)
            .fault_plan(fault)
            .build()
            .expect("valid config");
        let mut svc = FarMemoryService::new(config, 10_000, AdmissionPolicy::Reject);
        svc.register(TenantSpec::new(trace("alpha"), 128));
        svc.register(TenantSpec::new(trace("beta"), 128));
        svc.run()
    };

    // A modifier-only storm aimed at pid 2 (the wave's second tenant).
    // Machine failures stay global by design, so the targeted plan keeps
    // them at zero — only per-request modifiers are tenant-scoped.
    let spec = FaultSpec {
        machine_failures: 0,
        target_tenant: 2,
        ..FaultSpec::storm_over(Nanos::from_millis(1), Nanos::from_millis(40))
    };
    assert!(spec.validate().is_ok());
    let healthy = run(FaultSpec::none());
    let targeted = run(spec);

    assert!(
        !targeted.waves[0].result.fault_stats.is_quiet(),
        "the targeted storm missed the wave entirely"
    );
    let tenant = |report: &leap_repro::leap_service::ServiceReport, i: usize| {
        report.waves[0].tenants[i].1.clone()
    };
    let alpha_healthy = tenant(&healthy, 0);
    let alpha_targeted = tenant(&targeted, 0);
    assert_eq!(
        alpha_healthy.behavior_checksum, alpha_targeted.behavior_checksum,
        "non-targeted tenant's behavior changed"
    );
    assert_eq!(
        alpha_healthy.timing_checksum, alpha_targeted.timing_checksum,
        "the plan targets pid 2 yet pid 1's timing changed"
    );
    let beta_healthy = tenant(&healthy, 1);
    let beta_targeted = tenant(&targeted, 1);
    assert_eq!(
        beta_healthy.behavior_checksum, beta_targeted.behavior_checksum,
        "faults must not change what was replayed, only when"
    );
    assert_ne!(
        beta_healthy.timing_checksum, beta_targeted.timing_checksum,
        "the targeted tenant kept its healthy timing"
    );
}

// ---------------------------------------------------------------------------
// (g) Unknown or malformed `fault_*` JSON surfaces the typed error, not a
// silent default.
// ---------------------------------------------------------------------------

#[test]
fn unknown_fault_keys_are_a_typed_error() {
    let json = FaultSpec::canonical_storm().to_json().replacen(
        "fault_latency_spikes",
        "fault_warp_drive",
        1,
    );
    match FaultSpec::from_json(&json) {
        Err(FaultJsonError::UnknownKey(key)) => assert_eq!(key, "fault_warp_drive"),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn unparseable_fault_values_are_a_typed_error() {
    let json = FaultSpec::canonical_storm().to_json().replacen(
        "\"fault_machine_failures\":1",
        "\"fault_machine_failures\":\"lots\"",
        1,
    );
    match FaultSpec::from_json(&json) {
        Err(FaultJsonError::BadValue { key, value }) => {
            assert_eq!(key, "fault_machine_failures");
            assert_eq!(value, "\"lots\"");
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
}

#[test]
fn non_object_fault_json_is_a_typed_error() {
    assert!(matches!(
        FaultSpec::from_json("[1,2,3]"),
        Err(FaultJsonError::NotAnObject)
    ));
    assert!(matches!(
        FaultSpec::from_json("{\"fault_latency_spikes\"}"),
        Err(FaultJsonError::MalformedPair(_))
    ));
}

// ---------------------------------------------------------------------------
// Fixture freshness: the committed storm plan is the canonical storm.
// ---------------------------------------------------------------------------

#[test]
fn storm_plan_fixture_is_fresh() {
    let rendered = FaultSpec::canonical_storm().to_json();
    let path = fixture("storm_plan.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write storm plan");
        return;
    }
    let committed = std::fs::read_to_string(&path).expect(
        "tests/fixtures/storm_plan.json missing — regenerate with \
         REGEN_GOLDEN=1 cargo test --test fault_injection",
    );
    assert_eq!(
        committed.trim_end(),
        rendered,
        "committed storm plan drifted from FaultSpec::canonical_storm(); if \
         the change is intentional, regenerate with REGEN_GOLDEN=1"
    );
    // And the committed bytes parse back to the canonical spec (the same
    // file `perf_harness --fault-plan` consumes).
    let parsed = FaultSpec::from_json(committed.trim_end()).expect("fixture parses");
    assert_eq!(parsed, FaultSpec::canonical_storm());
}

#[test]
fn partition_plan_fixture_is_fresh() {
    let rendered = FaultSpec::canonical_partition_storm().to_json();
    let path = fixture("partition_plan.json");
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write partition plan");
        return;
    }
    let committed = std::fs::read_to_string(&path).expect(
        "tests/fixtures/partition_plan.json missing — regenerate with \
         REGEN_GOLDEN=1 cargo test --test fault_injection",
    );
    assert_eq!(
        committed.trim_end(),
        rendered,
        "committed partition plan drifted from \
         FaultSpec::canonical_partition_storm(); if the change is \
         intentional, regenerate with REGEN_GOLDEN=1"
    );
    let parsed = FaultSpec::from_json(committed.trim_end()).expect("fixture parses");
    assert_eq!(parsed, FaultSpec::canonical_partition_storm());
}
