//! Serial/threaded replay equivalence: `ReplayMode::Threaded` must produce
//! bit-identical `RunResult` aggregates and the identical merged
//! `FaultEvent` stream as `ReplayMode::Serial` for the same seed and
//! quantum, across core counts — plus exactly-once delivery through the
//! batched event ring.

use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::ingest::ingest_path;
use leap_repro::leap_workloads::{sequential_trace, stride_trace, AccessTrace};
use leap_repro::prelude::*;

fn app_traces(n: usize, seed_base: u64) -> Vec<AccessTrace> {
    (0..n)
        .map(|i| {
            AppModel::new(AppKind::ALL[i % AppKind::ALL.len()], seed_base + i as u64)
                .with_working_set(4 * MIB)
                .with_accesses(4_000)
                .generate()
        })
        .collect()
}

fn config(cores: usize, seed: u64, mode: ReplayMode) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_micros(250))
        .seed(seed)
        .replay_mode(mode)
        .build()
        .expect("valid config")
}

fn run_logged(config: SimConfig, traces: &[AccessTrace]) -> (EventLog, RunResult) {
    let mut log = EventLog::default();
    let result = VmmSimulator::new(config)
        .session()
        .observe(&mut log)
        .run_multi(traces);
    (log, result)
}

/// Compares every aggregate of two results, including the exact latency
/// distributions.
fn assert_results_identical(mut a: RunResult, mut b: RunResult) {
    assert_eq!(a.completion_time, b.completion_time, "completion_time");
    assert_eq!(a.total_accesses, b.total_accesses, "total_accesses");
    assert_eq!(a.remote_accesses, b.remote_accesses, "remote_accesses");
    assert_eq!(
        a.first_touch_faults, b.first_touch_faults,
        "first_touch_faults"
    );
    assert_eq!(
        a.pages_swapped_out, b.pages_swapped_out,
        "pages_swapped_out"
    );
    assert_eq!(a.cache_stats, b.cache_stats, "cache_stats");
    assert_eq!(
        a.prefetch_stats.pages_prefetched(),
        b.prefetch_stats.pages_prefetched()
    );
    assert_eq!(
        a.prefetch_stats.prefetch_hits(),
        b.prefetch_stats.prefetch_hits()
    );
    assert_eq!(
        a.access_latency.sorted_samples(),
        b.access_latency.sorted_samples(),
        "access latency distribution"
    );
    assert_eq!(
        a.remote_access_latency.sorted_samples(),
        b.remote_access_latency.sorted_samples(),
        "remote latency distribution"
    );
    assert_eq!(
        a.allocation_wait.sorted_samples(),
        b.allocation_wait.sorted_samples(),
        "allocation wait distribution"
    );
    assert_eq!(
        a.eviction_wait.sorted_samples(),
        b.eviction_wait.sorted_samples(),
        "eviction wait distribution"
    );
    assert_eq!(a.pipeline, b.pipeline, "async pipeline counters");
    assert_eq!(a.fault_stats, b.fault_stats, "fault-injection accounting");
    assert_eq!(
        a.tenant_evictions, b.tenant_evictions,
        "per-tenant eviction counts"
    );
}

#[test]
fn threaded_replay_is_bit_identical_to_serial_across_core_counts() {
    let traces = app_traces(4, 40);
    for cores in 1..=4 {
        for seed in [3, 21] {
            let (log_serial, serial) = run_logged(config(cores, seed, ReplayMode::Serial), &traces);
            let (log_threaded, threaded) =
                run_logged(config(cores, seed, ReplayMode::Threaded), &traces);
            assert_eq!(
                log_serial.events(),
                log_threaded.events(),
                "merged event stream diverged at cores={cores} seed={seed}"
            );
            assert_results_identical(serial, threaded);
        }
    }
}

#[test]
fn merged_stream_is_core_major_with_dense_per_core_seqs() {
    let traces = app_traces(4, 7);
    let (log, _) = run_logged(config(3, 11, ReplayMode::Threaded), &traces);
    // The merged stream is ordered by (core, seq)...
    let keys: Vec<(usize, u64)> = log.events().iter().map(|e| (e.core, e.seq)).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "stream not in (core, seq) order");
    // ...and within each core the seqs are dense from zero.
    for core in 0..log.cores_seen() {
        let stream = log.for_core(core);
        for (i, event) in stream.iter().enumerate() {
            assert_eq!(event.seq, i as u64, "core {core} seq not dense");
        }
    }
}

#[test]
fn threaded_replay_is_deterministic_run_to_run() {
    let traces = app_traces(3, 90);
    let cfg = config(4, 5, ReplayMode::Threaded);
    let (log_a, result_a) = run_logged(cfg, &traces);
    let (log_b, result_b) = run_logged(cfg, &traces);
    assert_eq!(log_a.events(), log_b.events());
    assert_results_identical(result_a, result_b);
}

#[test]
fn modes_agree_on_single_core_degenerate_case() {
    // One core means one worker in both modes; the whole machinery reduces
    // to the same single-queue schedule.
    let traces = vec![stride_trace(2 * MIB, 10, 1), sequential_trace(2 * MIB, 2)];
    let (log_serial, serial) = run_logged(config(1, 9, ReplayMode::Serial), &traces);
    let (log_threaded, threaded) = run_logged(config(1, 9, ReplayMode::Threaded), &traces);
    assert_eq!(log_serial.events(), log_threaded.events());
    assert_results_identical(serial, threaded);
}

#[test]
fn more_workers_than_processes_leave_idle_shards_harmless() {
    let traces = app_traces(2, 60);
    let (log_serial, serial) = run_logged(config(4, 13, ReplayMode::Serial), &traces);
    let (log_threaded, threaded) = run_logged(config(4, 13, ReplayMode::Threaded), &traces);
    assert_eq!(log_serial.events(), log_threaded.events());
    assert_results_identical(serial, threaded);
}

/// Ingested fault logs are first-class workloads: the serial/threaded
/// bit-identity contract holds for them exactly as for generated traces,
/// across core counts and both committed fixture formats.
#[test]
fn ingested_fault_logs_replay_identically_in_both_modes() {
    let fixtures = ["perf_faults.log", "damon_regions.log"];
    for fixture in fixtures {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(fixture);
        let traces = ingest_path(&path)
            .unwrap_or_else(|e| panic!("{fixture} must ingest: {e}"))
            .into_traces();
        for cores in [1, 2, 4] {
            let (log_serial, serial) = run_logged(config(cores, 2020, ReplayMode::Serial), &traces);
            let (log_threaded, threaded) =
                run_logged(config(cores, 2020, ReplayMode::Threaded), &traces);
            assert_eq!(
                log_serial.events(),
                log_threaded.events(),
                "{fixture}: merged stream diverged at cores={cores}"
            );
            assert_results_identical(serial, threaded);
        }
    }
}

/// An observer that records both per-event and per-batch delivery so the
/// exactly-once contract of the event ring can be checked.
#[derive(Default)]
struct BatchAudit {
    batches: usize,
    largest_batch: usize,
    seqs: Vec<(usize, u64)>,
}

impl Observer for BatchAudit {
    fn on_event(&mut self, event: &FaultEvent) {
        self.seqs.push((event.core, event.seq));
    }

    fn on_batch(&mut self, events: &[FaultEvent]) {
        self.batches += 1;
        self.largest_batch = self.largest_batch.max(events.len());
        for event in events {
            self.on_event(event);
        }
    }
}

#[test]
fn event_ring_delivers_every_event_exactly_once_under_batching() {
    let traces = app_traces(3, 17);
    let total: usize = traces.iter().map(|t| t.len()).sum();
    for mode in [ReplayMode::Serial, ReplayMode::Threaded] {
        let mut audit = BatchAudit::default();
        let result = VmmSimulator::new(config(2, 33, mode))
            .session()
            .observe(&mut audit)
            .run_multi(&traces);
        assert_eq!(result.total_accesses, total as u64);
        assert_eq!(
            audit.seqs.len(),
            total,
            "{} events delivered, expected {total} ({mode:?})",
            audit.seqs.len()
        );
        // Exactly once: every (core, seq) pair is unique.
        let mut unique = audit.seqs.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), total, "duplicate deliveries ({mode:?})");
        // Delivery really was batched (multiple events per flush).
        assert!(
            audit.batches < total,
            "every event arrived in its own batch ({mode:?})"
        );
        assert!(audit.largest_batch > 1, "no batch held >1 event ({mode:?})");
    }
}

#[test]
fn event_ring_batches_single_process_streams_too() {
    let trace = stride_trace(4 * MIB, 10, 1);
    let mut audit = BatchAudit::default();
    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .seed(3)
        .build_vmm()
        .expect("valid config")
        .session()
        .observe(&mut audit)
        .run(&trace);
    assert_eq!(result.total_accesses, trace.len() as u64);
    assert_eq!(audit.seqs.len(), trace.len());
    assert!(audit.batches < trace.len());
}

#[test]
fn shared_prefetcher_configs_fall_back_to_the_monolithic_reference() {
    // Without per-process isolation all processes share one prefetcher
    // stream across cores (the kernel's global readahead state), which
    // cannot be split into share-nothing workers — both modes must take the
    // identical monolithic path.
    let traces = app_traces(3, 25);
    let base = SimConfig::linux_defaults()
        .to_builder()
        .cores(3)
        .sched_quantum(Nanos::from_micros(250))
        .seed(19);
    let run = |mode: ReplayMode| {
        let config = base
            .clone()
            .replay_mode(mode)
            .build()
            .expect("valid config");
        run_logged(config, &traces)
    };
    let (log_serial, serial) = run(ReplayMode::Serial);
    let (log_threaded, threaded) = run(ReplayMode::Threaded);
    assert_eq!(log_serial.events(), log_threaded.events());
    assert_results_identical(serial, threaded);
    // The shared stream really is shared: coverage for the noisy mix stays
    // below what isolated trend state achieves.
    let isolated_cfg = SimConfig::builder()
        .cores(3)
        .sched_quantum(Nanos::from_micros(250))
        .seed(19)
        .prefetcher(PrefetcherKind::Leap)
        .build()
        .expect("valid config");
    let (_, isolated) = run_logged(isolated_cfg, &traces);
    assert!(isolated.prefetch_stats.coverage() > 0.0);
}
