//! The acceptance test for the pluggable component registry: prefetchers
//! defined *outside* the `leap` crate run end-to-end through `VmmSimulator`,
//! injected via `SimConfigBuilder::custom_prefetcher` or selected by name
//! from a `ComponentRegistry` — without touching `leap` itself.

use leap_repro::leap_prefetcher::{PageAddr, PrefetchDecision, Prefetcher, ProgrammedPrefetcher};
use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::stride_trace;
use leap_repro::prelude::*;
use std::sync::Arc;

/// A prefetcher that exists only in this test file: it never prefetches, and
/// counts how many faults it observed so the test can prove the simulator
/// actually drove it.
#[derive(Debug, Default)]
struct CountingNoop {
    faults: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Prefetcher for CountingNoop {
    fn on_fault(&mut self, _addr: PageAddr) -> PrefetchDecision {
        self.faults
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        PrefetchDecision::none()
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        "counting-noop"
    }

    fn reset(&mut self) {}
}

#[derive(Debug, Default)]
struct CountingNoopFactory {
    faults: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl PrefetcherFactory for CountingNoopFactory {
    fn name(&self) -> &'static str {
        "counting-noop"
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(CountingNoop {
            faults: self.faults.clone(),
        })
    }
}

#[test]
fn custom_noop_prefetcher_runs_end_to_end_through_vmm() {
    let trace = stride_trace(4 * MIB, 10, 1);
    let faults = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sim = SimConfig::builder()
        .memory_fraction(0.5)
        .custom_prefetcher(CountingNoopFactory {
            faults: faults.clone(),
        })
        .build_vmm()
        .expect("valid config");
    let result = sim.run_prepopulated(&trace);

    // The custom prefetcher was consulted on every swap-cache miss...
    let observed = faults.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(observed, result.cache_stats.misses());
    assert!(observed > 0, "the run must actually fault");
    // ...and since it never prefetches, the cache never fills.
    assert_eq!(result.cache_stats.cache_adds(), 0);
    assert_eq!(result.cache_stats.hits(), 0);
    assert_eq!(result.prefetch_stats.pages_prefetched(), 0);
}

#[test]
fn custom_prefetcher_shows_up_in_the_run_label() {
    let trace = stride_trace(2 * MIB, 10, 1);
    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .custom_prefetcher(CountingNoopFactory::default())
        .build_vmm()
        .expect("valid config")
        .run(&trace);
    assert!(
        result.config_label.contains("counting-noop"),
        "label {:?} should name the injected component",
        result.config_label
    );
}

/// Factory for the 3PO-style programmed prefetcher from `leap-prefetcher`:
/// the factory (the part the registry needs) lives here, outside `leap`.
#[derive(Debug)]
struct ProgramFactory {
    program: Vec<u64>,
    lookahead: usize,
}

impl PrefetcherFactory for ProgramFactory {
    fn name(&self) -> &'static str {
        "Programmed-3PO"
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(ProgrammedPrefetcher::from_pages(
            &self.program,
            self.lookahead,
        ))
    }
}

#[test]
fn programmed_oracle_beats_readahead_on_stride_via_registry() {
    let trace = stride_trace(4 * MIB, 10, 1);
    // The "profiled program": the swap offsets the measured pass will fault
    // on. Prepopulation fixes swap slots to address order, so page == slot.
    let program = trace.page_sequence();

    let oracle = SimConfig::linux_defaults()
        .to_builder()
        .memory_fraction(0.5)
        .custom_prefetcher(ProgramFactory {
            program,
            lookahead: 8,
        })
        .build_vmm()
        .expect("valid config")
        .run_prepopulated(&trace);

    let readahead = SimConfig::linux_defaults()
        .to_builder()
        .memory_fraction(0.5)
        .build_vmm()
        .expect("valid config")
        .run_prepopulated(&trace);

    // Read-Ahead cannot learn Stride-10; the programmed oracle nails it.
    assert!(
        oracle.cache_stats.hit_ratio() > 0.7,
        "oracle hit ratio {}",
        oracle.cache_stats.hit_ratio()
    );
    assert!(oracle.cache_stats.hit_ratio() > readahead.cache_stats.hit_ratio() + 0.3);
    assert!(oracle.completion_time < readahead.completion_time);
}

#[test]
fn named_registration_resolves_through_a_registry() {
    let trace = stride_trace(2 * MIB, 10, 1);
    let mut registry = ComponentRegistry::builtin();
    registry.register_prefetcher(Arc::new(ProgramFactory {
        program: trace.page_sequence(),
        lookahead: 8,
    }));

    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .registry(registry.clone())
        .prefetcher_named("Programmed-3PO")
        .build_vmm()
        .expect("valid config")
        .run_prepopulated(&trace);
    assert!(result.cache_stats.hit_ratio() > 0.7);

    // Unknown names still fail loudly.
    let err = SimConfig::builder()
        .registry(registry)
        .prefetcher_named("does-not-exist")
        .build_vmm()
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::UnknownComponent {
            role: "prefetcher",
            ..
        }
    ));
}

#[test]
fn custom_prefetcher_gets_per_process_isolation() {
    // Two processes, isolation on: the factory must be invoked per process
    // (the scheduled replay shards trend state per (process, core) too).
    let a = stride_trace(2 * MIB, 10, 2);
    let b = stride_trace(2 * MIB, 7, 2);
    let traces = vec![a, b];
    let faults = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let result = SimConfig::builder()
        .memory_fraction(0.5)
        .per_process_isolation(true)
        .custom_prefetcher(CountingNoopFactory {
            faults: faults.clone(),
        })
        .build_vmm()
        .expect("valid config")
        .run_multi(&traces);
    assert!(result.remote_accesses > 0);
    assert_eq!(
        faults.load(std::sync::atomic::Ordering::Relaxed),
        result.cache_stats.misses()
    );
}
