//! Malformed-input coverage for the arena CLI and harness: every bad flag,
//! bad value, conflicting pair, unknown competitor, unreadable log, and
//! invalid cell configuration produces a *typed* `ArenaError` — never a
//! panic (note: no `#[should_panic]` anywhere in this file, mirroring
//! `ingest_errors.rs`).

use leap_bench::arena::{
    build_corpus, parse_args, run_arena, workspace_fixture, ArenaError, ArenaOptions, COMPETITORS,
};
use std::error::Error;
use std::path::PathBuf;

fn parse(args: &[&str]) -> Result<ArenaOptions, ArenaError> {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    parse_args(&owned)
}

/// A scratch path inside the workspace's `target/` (the test must not touch
/// anything outside the repo).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("arena-errors-scratch");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[test]
fn unknown_flags_are_typed() {
    match parse(&["--bogus"]) {
        Err(ArenaError::UnknownFlag { flag }) => assert_eq!(flag, "--bogus"),
        other => panic!("expected UnknownFlag, got {other:?}"),
    }
    // Positional arguments are not a thing either.
    assert!(matches!(
        parse(&["quick"]),
        Err(ArenaError::UnknownFlag { .. })
    ));
}

#[test]
fn value_flags_without_values_are_typed() {
    for flag in ["--accesses", "--cores", "--trace", "--prefetcher", "--out"] {
        match parse(&[flag]) {
            Err(ArenaError::MissingValue { flag: f }) => assert_eq!(f, flag),
            other => panic!("{flag}: expected MissingValue, got {other:?}"),
        }
    }
}

#[test]
fn malformed_values_are_typed() {
    for (flag, value) in [
        ("--accesses", "lots"),
        ("--accesses", "-3"),
        ("--cores", "two"),
        ("--cores", "1.5"),
    ] {
        match parse(&[flag, value]) {
            Err(ArenaError::InvalidValue { flag: f, value: v }) => {
                assert_eq!(f, flag);
                assert_eq!(v, value);
            }
            other => panic!("{flag} {value}: expected InvalidValue, got {other:?}"),
        }
    }
}

#[test]
fn conflicting_sizing_flags_are_rejected_in_both_orders() {
    match parse(&["--quick", "--accesses", "100"]) {
        Err(ArenaError::ConflictingFlags { first, second }) => {
            assert_eq!((first, second), ("--quick", "--accesses"));
        }
        other => panic!("expected ConflictingFlags, got {other:?}"),
    }
    match parse(&["--accesses", "100", "--quick"]) {
        Err(ArenaError::ConflictingFlags { first, second }) => {
            assert_eq!((first, second), ("--accesses", "--quick"));
        }
        other => panic!("expected ConflictingFlags, got {other:?}"),
    }
}

#[test]
fn unknown_prefetchers_are_rejected_at_parse_time() {
    match parse(&["--prefetcher", "Oracle"]) {
        Err(ArenaError::UnknownPrefetcher { name }) => assert_eq!(name, "Oracle"),
        other => panic!("expected UnknownPrefetcher, got {other:?}"),
    }
    // The message lists the valid pool so the CLI user can self-correct.
    let msg = parse(&["--prefetcher", "Oracle"]).unwrap_err().to_string();
    for name in COMPETITORS {
        assert!(msg.contains(name), "{msg:?} must list {name}");
    }
}

#[test]
fn an_inevitably_empty_corpus_is_rejected_at_parse_time() {
    assert!(matches!(
        parse(&["--no-synthetic"]),
        Err(ArenaError::EmptyCorpus)
    ));
    // ... but --no-synthetic plus a --trace is fine.
    let opts = parse(&[
        "--no-synthetic",
        "--trace",
        &workspace_fixture("perf_faults.log"),
    ])
    .expect("fixture-only corpus parses");
    assert!(!opts.synthetic);
    assert_eq!(opts.trace_logs.len(), 1);
}

#[test]
fn missing_trace_logs_fail_with_the_offending_path() {
    let missing = scratch("does_not_exist.log");
    let opts = ArenaOptions {
        synthetic: false,
        trace_logs: vec![missing.to_string_lossy().into_owned()],
        ..ArenaOptions::default()
    };
    match build_corpus(&opts) {
        Err(e @ ArenaError::Ingest { .. }) => {
            assert!(e.to_string().contains("does_not_exist.log"));
            assert!(e.source().is_some(), "Ingest must chain its cause");
        }
        other => panic!("expected Ingest error, got {other:?}"),
    }
}

#[test]
fn garbage_trace_logs_fail_with_a_typed_ingest_error() {
    let garbage = scratch("garbage.log");
    std::fs::write(&garbage, "this is not a fault log\n\u{1}\u{2}\u{3}\n").expect("write scratch");
    let opts = ArenaOptions {
        synthetic: false,
        trace_logs: vec![garbage.to_string_lossy().into_owned()],
        ..ArenaOptions::default()
    };
    match run_arena(&opts) {
        Err(e @ ArenaError::Ingest { .. }) => {
            assert!(e.to_string().contains("garbage.log"));
            assert!(e.source().is_some());
        }
        other => panic!("expected Ingest error, got {other:?}"),
    }
}

#[test]
fn invalid_cell_configurations_surface_as_config_errors() {
    // Zero cores can never build a simulator; the arena wraps the
    // validation failure instead of panicking mid-matrix.
    let opts = ArenaOptions {
        cores: 0,
        synthetic: false,
        trace_logs: vec![workspace_fixture("perf_faults.log")],
        ..ArenaOptions::default()
    };
    match run_arena(&opts) {
        Err(e @ ArenaError::Config(_)) => {
            assert!(e.source().is_some(), "Config must chain the ConfigError");
        }
        other => panic!("expected Config error, got {other:?}"),
    }
}
