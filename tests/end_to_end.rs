//! Cross-crate integration tests: replaying workloads from `leap-workloads`
//! through the full `leap` stack and checking the paper's headline claims at
//! reduced scale.

use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_workloads::{sequential_trace, stride_trace};
use leap_repro::prelude::*;

fn stride10() -> leap_repro::leap_workloads::AccessTrace {
    stride_trace(8 * MIB, 10, 1)
}

fn linux_at(fraction: f64) -> SimConfig {
    SimConfig::linux_defaults()
        .to_builder()
        .memory_fraction(fraction)
        .build()
        .expect("valid config")
}

fn leap_at(fraction: f64) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(fraction)
        .build()
        .expect("valid config")
}

#[test]
fn leap_improves_stride_median_latency_by_an_order_of_magnitude() {
    let trace = stride10();
    let mut linux = VmmSimulator::new(linux_at(0.5)).run_prepopulated(&trace);
    let mut leap = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);

    let linux_median = linux.median_remote_latency().as_micros_f64();
    let leap_median = leap.median_remote_latency().as_micros_f64();
    assert!(
        linux_median > 10.0 * leap_median,
        "expected ≥10x median improvement, got {linux_median:.2}us vs {leap_median:.2}us"
    );

    let linux_p99 = linux.p99_remote_latency().as_micros_f64();
    let leap_p99 = leap.p99_remote_latency().as_micros_f64();
    assert!(
        linux_p99 > 2.0 * leap_p99,
        "expected tail improvement, got {linux_p99:.2}us vs {leap_p99:.2}us"
    );
}

#[test]
fn leap_improves_application_completion_time_across_memory_limits() {
    let trace = AppModel::new(AppKind::PowerGraph, 3)
        .with_accesses(40_000)
        .generate();
    for fraction in [0.5, 0.25] {
        let linux = VmmSimulator::new(linux_at(fraction)).run_prepopulated(&trace);
        let leap = VmmSimulator::new(leap_at(fraction)).run_prepopulated(&trace);
        assert!(
            leap.completion_time < linux.completion_time,
            "at {fraction}: leap {:?} not faster than linux {:?}",
            leap.completion_time,
            linux.completion_time
        );
    }
}

#[test]
fn leap_prefetcher_beats_baselines_on_mixed_patterns() {
    // Prefetcher-only comparison (same data path and backend for everyone),
    // mirroring the §5.2 methodology. The relationships asserted here are the
    // paper's qualitative claims: Leap prefetches fewer pages than the
    // aggressive Next-N-Line baseline (less pollution) while covering more
    // requests than Read-Ahead and Stride, and Next-N-Line's indiscriminate
    // prefetching costs it dearly in completion time on a disk backend.
    let trace = AppModel::new(AppKind::PowerGraph, 9)
        .with_accesses(60_000)
        .generate();
    let mut completion = std::collections::HashMap::new();
    let mut coverage = std::collections::HashMap::new();
    let mut adds = std::collections::HashMap::new();
    for kind in PrefetcherKind::EVALUATED {
        let config = SimConfig::disk_defaults(BackendKind::Hdd)
            .to_builder()
            .prefetcher(kind)
            .memory_fraction(0.5)
            .build()
            .expect("valid config");
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        completion.insert(kind, result.completion_seconds());
        coverage.insert(kind, result.prefetch_stats.coverage());
        adds.insert(kind, result.cache_stats.cache_adds());
    }
    assert!(
        completion[&PrefetcherKind::NextNLine] > completion[&PrefetcherKind::Leap],
        "Next-N-Line ({}) should be slower than Leap ({})",
        completion[&PrefetcherKind::NextNLine],
        completion[&PrefetcherKind::Leap]
    );
    assert!(
        adds[&PrefetcherKind::Leap] < adds[&PrefetcherKind::NextNLine],
        "Leap adds {} should be below Next-N-Line adds {} (cache pollution)",
        adds[&PrefetcherKind::Leap],
        adds[&PrefetcherKind::NextNLine]
    );
    for baseline in [PrefetcherKind::ReadAhead, PrefetcherKind::Stride] {
        assert!(
            coverage[&PrefetcherKind::Leap] > coverage[&baseline],
            "Leap coverage {} should exceed {baseline} coverage {}",
            coverage[&PrefetcherKind::Leap],
            coverage[&baseline]
        );
    }
}

#[test]
fn sequential_workloads_are_well_served_by_both_paths() {
    let trace = sequential_trace(8 * MIB, 1);
    let linux = VmmSimulator::new(linux_at(0.5)).run_prepopulated(&trace);
    let leap = VmmSimulator::new(leap_at(0.5)).run_prepopulated(&trace);
    // Read-Ahead handles purely sequential streams; Leap should still not be
    // worse and both should show high cache hit ratios.
    assert!(linux.cache_hit_ratio() > 0.6);
    assert!(leap.cache_hit_ratio() > 0.6);
    assert!(leap.completion_time <= linux.completion_time);
}

#[test]
fn vfs_front_end_mirrors_vmm_behaviour() {
    let trace = stride10();
    let mut default = VfsSimulator::new(linux_at(0.5)).run(&trace);
    let mut leap = VfsSimulator::new(leap_at(0.5)).run(&trace);
    assert!(default.median_remote_latency() > leap.median_remote_latency());
    assert!(default.p99_remote_latency() > leap.p99_remote_latency());
}

#[test]
fn deterministic_runs_across_front_ends() {
    let trace = stride10();
    let seeded = SimConfig::builder().seed(11).build().expect("valid config");
    let a = VmmSimulator::new(seeded).run_prepopulated(&trace);
    let b = VmmSimulator::new(seeded).run_prepopulated(&trace);
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.cache_stats, b.cache_stats);
    let c = VfsSimulator::new(seeded).run(&trace);
    let d = VfsSimulator::new(seeded).run(&trace);
    assert_eq!(c.completion_time, d.completion_time);
}
