//! Zero per-fault heap allocations on the prefetch decision hot path.
//!
//! The fault hot path — access-history update, trend detection, window
//! sizing, and candidate generation into the `PrefetchDecision` inline
//! buffer — must not touch the heap once per-process state exists, for any
//! window up to the inline capacity. This test binary installs a counting
//! global allocator and pins that contract for the Leap prefetcher, the
//! baselines, and the tracker layer the engine calls into.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use leap_repro::leap::tracker::PageAccessTracker;
use leap_repro::leap_datapath::{DataPath, LeanDataPath};
use leap_repro::leap_mem::Pid;
use leap_repro::leap_prefetcher::{
    IncrementalTrendDetector, LeapConfig, LeapPrefetcher, PageAddr, Prefetcher, PrefetcherKind,
    INLINE_DECISION_PAGES,
};
use leap_repro::leap_remote::{
    FaultPlan, FaultSpec, HostAgent, HostAgentConfig, RemoteCluster, RemoteIoKind,
};
use leap_repro::leap_sim_core::{DetRng, Nanos};

/// Counts every allocation (and reallocation) made through the global
/// allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Serialises the tests: the allocation counter is process-wide, so any test
/// allocating concurrently with another test's counting section would
/// pollute its count. Every test in this binary takes the lock first.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` three times and returns the *minimum* allocation count of one
/// run. A genuine per-fault allocation shows up thousands of times in every
/// run; the minimum filters out one-off noise from the test harness's own
/// threads (which this binary cannot fully silence).
fn count_allocs(mut f: impl FnMut()) -> u64 {
    (0..3)
        .map(|_| {
            let before = allocations();
            f();
            allocations() - before
        })
        .min()
        .expect("three runs")
}

#[test]
fn leap_prefetcher_steady_state_faults_do_not_allocate() {
    let _serial = serial_guard();
    let mut p = LeapPrefetcher::new(LeapConfig::default());
    // Warm up: build the history and lock in a sequential trend.
    for i in 0..128u64 {
        let _ = p.on_fault(PageAddr(i));
    }
    let allocs = count_allocs(|| {
        for i in 128..8_320u64 {
            let d = p.on_fault(PageAddr(i));
            assert!(!d.spilled(), "paper-default window must stay inline");
            if i % 3 == 0 {
                p.on_prefetch_hit(PageAddr(i + 1));
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "Leap fault hot path performed {allocs} heap allocations over 8192 faults"
    );
}

#[test]
fn incremental_trend_detector_records_do_not_allocate() {
    let _serial = serial_guard();
    // The detector's per-tier count maps are pre-reserved to their maximum
    // window population, so steady-state records — even a worst-case stream
    // of all-distinct deltas churning every tier — stay off the heap.
    let mut det = IncrementalTrendDetector::new(32, 4);
    let mut addr = 0u64;
    for i in 0..256u64 {
        addr += i % 7 + 1;
        det.record(PageAddr(addr));
    }
    let allocs = count_allocs(|| {
        let mut gap = 1u64;
        for i in 0..8_192u64 {
            // Alternate a steady stride with distinct-delta bursts to slide
            // majorities in and out of every tier.
            if i % 64 < 48 {
                addr += 3;
            } else {
                gap += i % 13 + 2;
                addr += gap;
            }
            det.record(PageAddr(addr));
            let _ = det.trend();
        }
    });
    assert_eq!(
        allocs, 0,
        "incremental detector performed {allocs} heap allocations over 8192 records"
    );
}

#[test]
fn irregular_and_speculative_decisions_do_not_allocate_either() {
    let _serial = serial_guard();
    let mut p = LeapPrefetcher::new(LeapConfig::default());
    for i in 0..128u64 {
        let _ = p.on_fault(PageAddr(i * 3));
    }
    // A pseudo-random walk drives the window down, through the speculative
    // path and into suspension — none of which may allocate.
    let mut x: u64 = 99;
    let allocs = count_allocs(|| {
        for i in 0..4_096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let _ = p.on_fault(PageAddr(1_000_000 + (x >> 40) + i));
        }
    });
    assert_eq!(allocs, 0, "irregular fault path allocated {allocs} times");
}

#[test]
fn windows_up_to_the_inline_capacity_stay_on_the_stack() {
    let _serial = serial_guard();
    let mut p = LeapPrefetcher::new(LeapConfig {
        max_prefetch_window: INLINE_DECISION_PAGES,
        ..LeapConfig::default()
    });
    for i in 0..256u64 {
        let _ = p.on_fault(PageAddr(i));
    }
    let allocs = count_allocs(|| {
        for i in 256..2_304u64 {
            let d = p.on_fault(PageAddr(i));
            assert!(d.len() <= INLINE_DECISION_PAGES);
            assert!(!d.spilled());
            p.on_prefetch_hit(PageAddr(i + 1));
        }
    });
    assert_eq!(
        allocs, 0,
        "inline-capacity windows allocated {allocs} times"
    );
}

#[test]
fn oversized_windows_spill_but_still_work() {
    let _serial = serial_guard();
    // Windows past the inline capacity are allowed to allocate — but must
    // produce the full candidate list.
    let mut p = LeapPrefetcher::new(LeapConfig {
        max_prefetch_window: INLINE_DECISION_PAGES * 2,
        ..LeapConfig::default()
    });
    // Replay a sequential stream against a cache model so prefetch hits feed
    // back and the adaptive window can grow to its (oversized) maximum.
    let mut cache = std::collections::HashSet::new();
    let mut largest = 0usize;
    for i in 0..4_096u64 {
        let addr = PageAddr(i);
        if cache.remove(&addr) {
            p.on_prefetch_hit(addr);
            continue;
        }
        let d = p.on_fault(addr);
        assert!(!d.contains(addr), "prefetched the demanded page");
        largest = largest.max(d.len());
        for c in d.iter() {
            cache.insert(*c);
        }
    }
    assert!(
        largest > INLINE_DECISION_PAGES,
        "window never exceeded the inline capacity (got {largest})"
    );
}

#[test]
fn baseline_prefetchers_do_not_allocate_in_steady_state() {
    let _serial = serial_guard();
    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::NextNLine,
        PrefetcherKind::Stride,
        PrefetcherKind::ReadAhead,
    ] {
        let mut p = leap_repro::leap::tracker::build_prefetcher(kind, 32, 8);
        for i in 0..64u64 {
            let _ = p.on_fault(PageAddr(i));
        }
        let allocs = count_allocs(|| {
            for i in 64..4_160u64 {
                let _ = p.on_fault(PageAddr(i));
            }
        });
        assert_eq!(
            allocs,
            0,
            "{} fault hot path allocated {allocs} times",
            kind.label()
        );
    }
}

#[test]
fn tracker_layer_adds_no_allocations_once_instances_exist() {
    let _serial = serial_guard();
    // The engine consults the prefetcher through PageAccessTracker (one
    // instance per (pid, core)); after the instances exist, routing a fault
    // through the tracker must be as allocation-free as the prefetcher
    // itself.
    let mut tracker = PageAccessTracker::from_kind(PrefetcherKind::Leap, 32, 8, true);
    tracker.set_per_core(true);
    for core in 0..2 {
        for i in 0..128u64 {
            let _ = tracker.on_fault_at(Pid(1), core, PageAddr(i));
            let _ = tracker.on_fault_at(Pid(2), core, PageAddr(500_000 + i));
        }
    }
    let allocs = count_allocs(|| {
        for core in 0..2 {
            for i in 128..2_176u64 {
                let _ = tracker.on_fault_at(Pid(1), core, PageAddr(i));
                let _ = tracker.on_fault_at(Pid(2), core, PageAddr(500_000 + i));
                tracker.on_prefetch_hit_at(Pid(1), core, PageAddr(i + 1));
            }
        }
    });
    assert_eq!(allocs, 0, "tracker fault routing allocated {allocs} times");
}

#[test]
fn span_batched_remote_io_does_not_allocate_in_steady_state() {
    let _serial = serial_guard();
    // The span-batched remote I/O path — table-sampled transport latency,
    // fault-modifier bookkeeping, and the deferred span dispatch — must run
    // out of the agent's per-shard arenas once the slabs are mapped, even
    // while spike/degraded/reconnect epochs are live.
    let mut agent = HostAgent::new(
        HostAgentConfig::default(),
        RemoteCluster::homogeneous(4, 64),
        DetRng::seed_from(11),
    );
    let spec = FaultSpec {
        latency_spikes: 8,
        spike_multiplier_milli: 4_000,
        degraded_epochs: 4,
        degraded_multiplier_milli: 2_500,
        reconnect_storms: 4,
        reconnect_penalty: Nanos::from_micros(25),
        epoch: Nanos::from_micros(400),
        start: Nanos::from_micros(5),
        horizon: Nanos::from_millis(40),
        ..FaultSpec::none()
    };
    agent.install_fault_plan(FaultPlan::from_spec(21, &spec, 8));
    let pages: Vec<u64> = (0..8u64).map(|i| i * 3).collect();
    let mut results = Vec::with_capacity(pages.len());
    // Warm up: map every slab the spans touch and size the span arenas.
    let mut now = Nanos::ZERO;
    for _ in 0..32 {
        now = now.saturating_add(Nanos::from_micros(10));
        results.clear();
        agent.remote_io_span(RemoteIoKind::Read, &pages, 0, now, &mut results);
    }
    let allocs = count_allocs(|| {
        for step in 0..2_048u64 {
            now = now.saturating_add(Nanos::from_micros(5));
            results.clear();
            agent.remote_io_span(
                RemoteIoKind::Read,
                &pages,
                (step % 8) as usize,
                now,
                &mut results,
            );
            assert!(results.iter().all(|r| r.is_some()));
        }
    });
    assert_eq!(
        allocs, 0,
        "span-batched remote I/O allocated {allocs} times in steady state"
    );
}

#[test]
fn lean_data_path_span_reads_do_not_allocate_in_steady_state() {
    let _serial = serial_guard();
    // The lean path's read_span override batches the software-stage samples
    // and the agent span into per-path arenas; after warm-up a whole span
    // costs zero heap traffic.
    let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(13));
    let pages: Vec<u64> = (0..8u64).collect();
    let mut totals = Vec::with_capacity(pages.len());
    let mut now = Nanos::ZERO;
    for _ in 0..32 {
        now = now.saturating_add(Nanos::from_micros(10));
        totals.clear();
        let _ = path.read_span(&pages, 0, now, &mut totals);
    }
    let allocs = count_allocs(|| {
        for step in 0..2_048u64 {
            now = now.saturating_add(Nanos::from_micros(5));
            totals.clear();
            let breakdown = path.read_span(&pages, (step % 4) as usize, now, &mut totals);
            assert_eq!(totals.len(), pages.len());
            assert!(!breakdown.is_empty());
        }
    });
    assert_eq!(
        allocs, 0,
        "lean span reads allocated {allocs} times in steady state"
    );
}
