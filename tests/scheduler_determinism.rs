//! Determinism of the time-sliced multi-core scheduler: the same seed and
//! quantum must reproduce the per-core `FaultEvent` streams and every
//! aggregate statistic exactly, across both front-ends.

use leap_repro::leap_sim_core::units::MIB;
use leap_repro::leap_sim_core::Nanos;
use leap_repro::leap_workloads::{stride_trace, AccessTrace};
use leap_repro::prelude::*;

fn traces() -> Vec<AccessTrace> {
    AppKind::ALL
        .iter()
        .take(3)
        .map(|&kind| {
            AppModel::new(kind, 13)
                .with_working_set(4 * MIB)
                .with_accesses(5_000)
                .generate()
        })
        .collect()
}

fn config(seed: u64, quantum: Nanos) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(3)
        .sched_quantum(quantum)
        .seed(seed)
        .build()
        .expect("valid config")
}

fn run_logged(config: SimConfig, traces: &[AccessTrace]) -> (EventLog, RunResult) {
    let mut log = EventLog::default();
    let result = VmmSimulator::new(config)
        .session()
        .observe(&mut log)
        .run_multi(traces);
    (log, result)
}

#[test]
fn same_seed_and_quantum_reproduce_per_core_event_streams() {
    let traces = traces();
    let config = config(21, Nanos::from_micros(300));
    let (log_a, result_a) = run_logged(config, &traces);
    let (log_b, result_b) = run_logged(config, &traces);

    // The global stream is identical event for event...
    assert_eq!(log_a.events().len(), log_b.events().len());
    assert_eq!(log_a.events(), log_b.events());
    // ...and therefore so is every per-core stream.
    assert!(log_a.cores_seen() > 1, "expected work on several cores");
    assert_eq!(log_a.cores_seen(), log_b.cores_seen());
    for core in 0..log_a.cores_seen() {
        assert_eq!(
            log_a.for_core(core),
            log_b.for_core(core),
            "core {core} stream diverged"
        );
    }

    // Aggregate statistics are identical too.
    assert_eq!(result_a.completion_time, result_b.completion_time);
    assert_eq!(result_a.total_accesses, result_b.total_accesses);
    assert_eq!(result_a.remote_accesses, result_b.remote_accesses);
    assert_eq!(result_a.cache_stats, result_b.cache_stats);
    assert_eq!(result_a.pages_swapped_out, result_b.pages_swapped_out);
}

#[test]
fn per_core_streams_are_monotonic_and_partition_the_run() {
    let traces = traces();
    let (log, result) = run_logged(config(4, Nanos::from_micros(250)), &traces);
    let total: usize = traces.iter().map(|t| t.len()).sum();
    assert_eq!(log.events().len(), total);
    assert_eq!(result.total_accesses, total as u64);

    let mut per_core_total = 0;
    for core in 0..log.cores_seen() {
        let stream = log.for_core(core);
        per_core_total += stream.len();
        // Core-local time never goes backwards within one core's stream.
        assert!(
            stream
                .windows(2)
                .all(|w| w[0].completed_at <= w[1].completed_at),
            "core {core} local clock went backwards"
        );
    }
    assert_eq!(per_core_total, total);

    // A process never migrates between cores mid-run: one pass over the
    // stream, pinning each pid to the first core it was seen on.
    let mut core_of_pid = std::collections::HashMap::new();
    for event in log.events() {
        let pinned = *core_of_pid.entry(event.pid).or_insert(event.core);
        assert_eq!(
            pinned, event.core,
            "pid {:?} ran on cores {pinned} and {}",
            event.pid, event.core
        );
    }
}

#[test]
fn seed_changes_the_schedule_but_not_the_volume() {
    let traces = traces();
    let (log_a, result_a) = run_logged(config(1, Nanos::from_micros(300)), &traces);
    let (log_b, result_b) = run_logged(config(2, Nanos::from_micros(300)), &traces);
    assert_eq!(result_a.total_accesses, result_b.total_accesses);
    assert_ne!(
        log_a.events(),
        log_b.events(),
        "different seeds should produce different schedules"
    );
}

#[test]
fn quantum_length_changes_the_interleaving() {
    // Two processes pinned to one core: a short quantum alternates them, an
    // effectively infinite quantum runs them back to back.
    let traces = vec![stride_trace(2 * MIB, 10, 2), stride_trace(2 * MIB, 7, 2)];
    let run = |quantum| {
        let config = SimConfig::builder()
            .memory_fraction(0.5)
            .cores(1)
            .sched_quantum(quantum)
            .seed(11)
            .build()
            .expect("valid config");
        let mut log = EventLog::default();
        VmmSimulator::new(config)
            .session()
            .observe(&mut log)
            .run_multi(&traces);
        log.events()
            .windows(2)
            .filter(|w| w[0].pid != w[1].pid)
            .count()
    };
    let short = run(Nanos::from_micros(50));
    let long = run(Nanos::from_secs(3_600));
    assert_eq!(long, 1, "an infinite quantum should switch exactly once");
    assert!(
        short > 10,
        "a 50 us quantum should interleave the processes, got {short} switches"
    );
}

#[test]
fn vfs_scheduled_runs_are_deterministic_too() {
    let traces = vec![stride_trace(2 * MIB, 10, 1), stride_trace(2 * MIB, 3, 1)];
    let config = SimConfig::builder()
        .memory_fraction(0.5)
        .cores(2)
        .sched_quantum(Nanos::from_micros(200))
        .seed(8)
        .build()
        .expect("valid config");
    let run = || {
        let mut log = EventLog::default();
        let result = VfsSimulator::new(config)
            .session()
            .observe(&mut log)
            .run_multi(&traces);
        (log, result)
    };
    let (log_a, result_a) = run();
    let (log_b, result_b) = run();
    assert_eq!(log_a.events(), log_b.events());
    assert_eq!(result_a.completion_time, result_b.completion_time);
    assert_eq!(result_a.cache_stats, result_b.cache_stats);
}
