//! Cgroup-style per-process memory limits.
//!
//! The paper constrains each application's resident memory to 100 %, 50 %, or
//! 25 % of its peak usage via cgroups (§5.3). [`MemoryLimit`] captures that
//! accounting: a charge is taken when a page becomes resident and released
//! when it is reclaimed; charges beyond the limit must trigger reclaim first.

use leap_sim_core::units::{bytes_to_pages, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// A memory limit expressed in pages, with current usage accounting.
///
/// # Examples
///
/// ```
/// use leap_mem::MemoryLimit;
///
/// let mut limit = MemoryLimit::from_pages(2);
/// assert!(limit.try_charge(1));
/// assert!(limit.try_charge(1));
/// assert!(!limit.try_charge(1)); // over limit: reclaim needed first
/// limit.uncharge(1);
/// assert!(limit.try_charge(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLimit {
    limit_pages: u64,
    used_pages: u64,
    /// High-water mark of usage, for reports.
    peak_pages: u64,
}

impl MemoryLimit {
    /// Creates a limit of `limit_pages` resident pages.
    pub fn from_pages(limit_pages: u64) -> Self {
        MemoryLimit {
            limit_pages,
            used_pages: 0,
            peak_pages: 0,
        }
    }

    /// Creates a limit from a byte budget (rounded down to whole pages, but
    /// never below one page).
    pub fn from_bytes(bytes: u64) -> Self {
        MemoryLimit::from_pages((bytes / PAGE_SIZE).max(1))
    }

    /// Creates a limit as a fraction of a working set given in bytes.
    ///
    /// This mirrors the paper's "50 % of peak memory" configurations. The
    /// fraction is clamped to `(0, 1]`.
    pub fn fraction_of(working_set_bytes: u64, fraction: f64) -> Self {
        let fraction = fraction.clamp(f64::MIN_POSITIVE, 1.0);
        let pages = bytes_to_pages(working_set_bytes);
        MemoryLimit::from_pages(((pages as f64) * fraction).ceil().max(1.0) as u64)
    }

    /// The limit in pages.
    pub fn limit_pages(&self) -> u64 {
        self.limit_pages
    }

    /// Pages currently charged.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// The high-water mark of charged pages.
    pub fn peak_pages(&self) -> u64 {
        self.peak_pages
    }

    /// Pages that can still be charged before hitting the limit.
    pub fn available_pages(&self) -> u64 {
        self.limit_pages.saturating_sub(self.used_pages)
    }

    /// True if usage has reached the limit.
    pub fn at_limit(&self) -> bool {
        self.used_pages >= self.limit_pages
    }

    /// Number of pages that must be reclaimed before `extra` pages can be
    /// charged (zero if they already fit).
    pub fn pages_to_reclaim_for(&self, extra: u64) -> u64 {
        (self.used_pages + extra).saturating_sub(self.limit_pages)
    }

    /// Attempts to charge `pages`; returns false (charging nothing) if the
    /// limit would be exceeded.
    pub fn try_charge(&mut self, pages: u64) -> bool {
        if self.used_pages + pages > self.limit_pages {
            return false;
        }
        self.used_pages += pages;
        self.peak_pages = self.peak_pages.max(self.used_pages);
        true
    }

    /// Releases `pages` (saturating at zero).
    pub fn uncharge(&mut self, pages: u64) {
        self.used_pages = self.used_pages.saturating_sub(pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::GIB;
    use proptest::prelude::*;

    #[test]
    fn charge_and_uncharge() {
        let mut limit = MemoryLimit::from_pages(10);
        assert!(limit.try_charge(7));
        assert_eq!(limit.used_pages(), 7);
        assert_eq!(limit.available_pages(), 3);
        assert!(!limit.try_charge(4));
        assert_eq!(limit.used_pages(), 7, "failed charge must not change usage");
        limit.uncharge(5);
        assert!(limit.try_charge(4));
        assert_eq!(limit.peak_pages(), 7);
    }

    #[test]
    fn from_bytes_rounds_down_but_not_to_zero() {
        assert_eq!(MemoryLimit::from_bytes(GIB).limit_pages(), GIB / 4096);
        assert_eq!(MemoryLimit::from_bytes(100).limit_pages(), 1);
    }

    #[test]
    fn fraction_of_matches_paper_configurations() {
        // A 2 GB working set at 50 % leaves 1 GB of resident pages.
        let limit = MemoryLimit::fraction_of(2 * GIB, 0.5);
        assert_eq!(limit.limit_pages(), GIB / 4096);
        // 25 % of the same.
        let quarter = MemoryLimit::fraction_of(2 * GIB, 0.25);
        assert_eq!(quarter.limit_pages(), GIB / 4096 / 2);
        // 100 % fits the whole working set.
        let full = MemoryLimit::fraction_of(2 * GIB, 1.0);
        assert_eq!(full.limit_pages(), 2 * GIB / 4096);
    }

    #[test]
    fn pages_to_reclaim_for_accounts_for_headroom() {
        let mut limit = MemoryLimit::from_pages(8);
        limit.try_charge(6);
        assert_eq!(limit.pages_to_reclaim_for(1), 0);
        assert_eq!(limit.pages_to_reclaim_for(2), 0);
        assert_eq!(limit.pages_to_reclaim_for(3), 1);
        assert_eq!(limit.pages_to_reclaim_for(10), 8);
    }

    #[test]
    fn out_of_range_fraction_is_clamped() {
        let too_big = MemoryLimit::fraction_of(GIB, 7.0);
        assert_eq!(too_big.limit_pages(), GIB / 4096);
        let tiny = MemoryLimit::fraction_of(GIB, -1.0);
        assert!(tiny.limit_pages() >= 1);
    }

    proptest! {
        /// Usage never exceeds the limit and never underflows.
        #[test]
        fn prop_usage_stays_within_bounds(
            limit_pages in 1u64..1000,
            ops in proptest::collection::vec((1u64..50, any::<bool>()), 0..200),
        ) {
            let mut limit = MemoryLimit::from_pages(limit_pages);
            for (pages, charge) in ops {
                if charge {
                    let _ = limit.try_charge(pages);
                } else {
                    limit.uncharge(pages);
                }
                prop_assert!(limit.used_pages() <= limit.limit_pages());
                prop_assert!(limit.peak_pages() <= limit.limit_pages());
            }
        }
    }
}
