//! Per-process page tables.

use crate::types::{FrameId, SwapSlot, VirtPage};
use leap_sim_core::hash::{fx_map_with_capacity, FxHashMap};

/// The state of one virtual page in a process's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// The page has never been touched (no backing storage yet).
    Untouched,
    /// The page is resident in local DRAM in the given frame.
    Resident(FrameId),
    /// The page has been swapped out to the given swap slot.
    Swapped(SwapSlot),
}

/// A per-process page table mapping virtual pages to their state.
///
/// The simulator only tracks pages that have ever been touched; untouched
/// pages are implicit and cost nothing.
///
/// # Examples
///
/// ```
/// use leap_mem::{FrameId, PageState, PageTable, SwapSlot, VirtPage};
///
/// let mut pt = PageTable::new();
/// assert_eq!(pt.lookup(VirtPage(5)), PageState::Untouched);
/// pt.map(VirtPage(5), FrameId(1));
/// assert_eq!(pt.lookup(VirtPage(5)), PageState::Resident(FrameId(1)));
/// pt.unmap_to_swap(VirtPage(5), SwapSlot(99));
/// assert_eq!(pt.lookup(VirtPage(5)), PageState::Swapped(SwapSlot(99)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: FxHashMap<VirtPage, PageState>,
    resident: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Creates a page table pre-sized for `pages` touched pages (typically
    /// the process's working-set size from its trace), so steady-state
    /// faults never rehash the entry map.
    pub fn with_capacity(pages: usize) -> Self {
        PageTable {
            entries: fx_map_with_capacity(pages),
            resident: 0,
        }
    }

    /// The state of every page in `pages`, written into `out` (batch probe:
    /// one call per prefetch span instead of one virtual-dispatch round trip
    /// per page).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `pages`.
    pub fn lookup_span(&self, pages: &[VirtPage], out: &mut [PageState]) {
        for (i, &page) in pages.iter().enumerate() {
            out[i] = self.lookup(page);
        }
    }

    /// Returns the state of a virtual page.
    pub fn lookup(&self, page: VirtPage) -> PageState {
        self.entries
            .get(&page)
            .copied()
            .unwrap_or(PageState::Untouched)
    }

    /// True if the page is currently resident.
    pub fn is_resident(&self, page: VirtPage) -> bool {
        matches!(self.lookup(page), PageState::Resident(_))
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident
    }

    /// Number of pages ever touched (resident or swapped).
    pub fn touched_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Maps a virtual page to a frame (page-in or first touch).
    pub fn map(&mut self, page: VirtPage, frame: FrameId) {
        let prev = self.entries.insert(page, PageState::Resident(frame));
        if !matches!(prev, Some(PageState::Resident(_))) {
            self.resident += 1;
        }
    }

    /// Unmaps a resident page, recording the swap slot it was written to.
    ///
    /// Returns the frame that was backing it, or `None` if the page was not
    /// resident (in which case the table is left unchanged).
    pub fn unmap_to_swap(&mut self, page: VirtPage, slot: SwapSlot) -> Option<FrameId> {
        match self.entries.get(&page).copied() {
            Some(PageState::Resident(frame)) => {
                self.entries.insert(page, PageState::Swapped(slot));
                self.resident -= 1;
                Some(frame)
            }
            _ => None,
        }
    }

    /// Iterates over all resident pages and their frames.
    pub fn resident_iter(&self) -> impl Iterator<Item = (VirtPage, FrameId)> + '_ {
        self.entries
            .iter()
            .filter_map(|(&page, &state)| match state {
                PageState::Resident(frame) => Some((page, frame)),
                _ => None,
            })
    }

    /// Iterates over all swapped-out pages and their slots.
    pub fn swapped_iter(&self) -> impl Iterator<Item = (VirtPage, SwapSlot)> + '_ {
        self.entries
            .iter()
            .filter_map(|(&page, &state)| match state {
                PageState::Swapped(slot) => Some((page, slot)),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_by_default() {
        let pt = PageTable::new();
        assert_eq!(pt.lookup(VirtPage(0)), PageState::Untouched);
        assert_eq!(pt.resident_pages(), 0);
        assert_eq!(pt.touched_pages(), 0);
    }

    #[test]
    fn map_and_swap_cycle() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), FrameId(10));
        assert!(pt.is_resident(VirtPage(1)));
        assert_eq!(pt.resident_pages(), 1);

        let frame = pt.unmap_to_swap(VirtPage(1), SwapSlot(7));
        assert_eq!(frame, Some(FrameId(10)));
        assert_eq!(pt.lookup(VirtPage(1)), PageState::Swapped(SwapSlot(7)));
        assert_eq!(pt.resident_pages(), 0);
        assert_eq!(pt.touched_pages(), 1);

        // Page back in.
        pt.map(VirtPage(1), FrameId(3));
        assert_eq!(pt.lookup(VirtPage(1)), PageState::Resident(FrameId(3)));
        assert_eq!(pt.resident_pages(), 1);
    }

    #[test]
    fn unmap_of_non_resident_page_is_noop() {
        let mut pt = PageTable::new();
        assert_eq!(pt.unmap_to_swap(VirtPage(4), SwapSlot(1)), None);
        pt.map(VirtPage(4), FrameId(0));
        pt.unmap_to_swap(VirtPage(4), SwapSlot(1));
        // Second unmap is a no-op.
        assert_eq!(pt.unmap_to_swap(VirtPage(4), SwapSlot(2)), None);
        assert_eq!(pt.lookup(VirtPage(4)), PageState::Swapped(SwapSlot(1)));
    }

    #[test]
    fn remap_of_resident_page_does_not_double_count() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(9), FrameId(0));
        pt.map(VirtPage(9), FrameId(1));
        assert_eq!(pt.resident_pages(), 1);
        assert_eq!(pt.lookup(VirtPage(9)), PageState::Resident(FrameId(1)));
    }

    #[test]
    fn iterators_partition_pages() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), FrameId(1));
        pt.map(VirtPage(2), FrameId(2));
        pt.unmap_to_swap(VirtPage(2), SwapSlot(20));
        assert_eq!(pt.resident_iter().count(), 1);
        assert_eq!(pt.swapped_iter().count(), 1);
    }

    proptest! {
        /// `lookup_span` ≡ a per-page `lookup` loop.
        #[test]
        fn prop_lookup_span_matches_loop(
            ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..100),
            span in proptest::collection::vec(0u64..48, 0..16),
        ) {
            let mut pt = PageTable::with_capacity(32);
            for (page, map_in) in ops {
                if map_in {
                    pt.map(VirtPage(page), FrameId(page));
                } else {
                    let _ = pt.unmap_to_swap(VirtPage(page), SwapSlot(page));
                }
            }
            let pages: Vec<VirtPage> = span.iter().copied().map(VirtPage).collect();
            let mut batched = vec![PageState::Untouched; pages.len()];
            pt.lookup_span(&pages, &mut batched);
            let looped: Vec<PageState> = pages.iter().map(|&p| pt.lookup(p)).collect();
            prop_assert_eq!(batched, looped);
        }

        /// The resident counter always matches the number of resident entries.
        #[test]
        fn prop_resident_count_consistent(
            ops in proptest::collection::vec((0u64..32, any::<bool>()), 0..300),
        ) {
            let mut pt = PageTable::new();
            for (page, map_in) in ops {
                if map_in {
                    pt.map(VirtPage(page), FrameId(page));
                } else {
                    let _ = pt.unmap_to_swap(VirtPage(page), SwapSlot(page));
                }
                prop_assert_eq!(pt.resident_pages(), pt.resident_iter().count() as u64);
                prop_assert!(pt.resident_pages() <= pt.touched_pages());
            }
        }
    }
}
