//! The shared swap space and its slot allocator.
//!
//! Linux keeps a single swap area shared by every process and tries to lay
//! out consecutively swapped pages in consecutive slots (§2.3 of the paper).
//! That layout is what makes sequential-disk prefetchers plausible — and what
//! breaks down when multiple processes interleave their page-outs. The
//! [`SwapSpace`] model reproduces both effects: slots are handed out mostly
//! sequentially per allocation burst, and different processes' bursts
//! interleave in the shared offset space.

use crate::types::{Pid, SwapSlot, VirtPage};
use leap_sim_core::hash::FxHashMap;

/// The shared swap area: allocation of slots and slot → page bookkeeping.
///
/// # Examples
///
/// ```
/// use leap_mem::{Pid, SwapSpace, VirtPage};
///
/// let mut swap = SwapSpace::new(1024);
/// let slot = swap.allocate(Pid(1), VirtPage(7)).unwrap();
/// assert_eq!(swap.owner(slot), Some((Pid(1), VirtPage(7))));
/// swap.free(slot);
/// assert_eq!(swap.owner(slot), None);
/// ```
#[derive(Debug, Clone)]
pub struct SwapSpace {
    /// First slot offset this space hands out (nonzero for the shards of a
    /// [`crate::ShardedSwap`], which own disjoint slot regions).
    base: u64,
    capacity: u64,
    /// Next slot to try for a fresh (never used) allocation; keeps the
    /// sequential layout the kernel aims for.
    next_fresh: u64,
    /// Slots that have been freed and can be reused.
    free_slots: Vec<SwapSlot>,
    /// Owner of each in-use slot, indexed by `slot - base`. In-use slots
    /// are dense from `base` — fresh allocations are sequential and freed
    /// slots are reused before `next_fresh` advances — so the vector's
    /// length tracks the region's high-water mark (bounded by the pages
    /// ever swapped out, not the region's capacity), and every owner probe
    /// on the fault hot path is a direct index instead of a hash lookup.
    owners: Vec<Option<(Pid, VirtPage)>>,
    /// Number of in-use slots (`Some` entries of `owners`).
    used: u64,
    /// Reverse map so a page that is swapped out again can reuse its slot,
    /// which the kernel does when the swap-cache copy is still clean.
    by_page: FxHashMap<(Pid, VirtPage), SwapSlot>,
}

impl SwapSpace {
    /// Creates a swap space with `capacity` slots starting at offset 0.
    pub fn new(capacity: u64) -> Self {
        SwapSpace::with_base(0, capacity)
    }

    /// Creates a swap space owning the slot region
    /// `[base, base + capacity)`.
    ///
    /// Fresh allocations are handed out sequentially from `base`, so several
    /// spaces with disjoint regions can coexist in one global slot namespace
    /// (the per-core shards of [`crate::ShardedSwap`]).
    pub fn with_base(base: u64, capacity: u64) -> Self {
        SwapSpace {
            base,
            capacity,
            next_fresh: base,
            free_slots: Vec::new(),
            owners: Vec::new(),
            used: 0,
            by_page: FxHashMap::default(),
        }
    }

    /// The `owners` index of `slot`, if the slot lies inside this space's
    /// region below the high-water mark.
    #[inline]
    fn owner_index(&self, slot: SwapSlot) -> Option<usize> {
        let idx = slot.0.checked_sub(self.base)? as usize;
        (idx < self.owners.len()).then_some(idx)
    }

    /// First slot offset of this space's region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of slots currently in use.
    pub fn used_slots(&self) -> u64 {
        self.used
    }

    /// Allocates a slot for `(pid, page)`.
    ///
    /// If the page already owns a slot (it was swapped out before and the
    /// mapping is still recorded), the same slot is returned — this models
    /// the kernel reusing a clean swap-cache slot and is what preserves
    /// spatial locality across repeated page-outs of the same region.
    ///
    /// Returns `None` when the swap area is full.
    pub fn allocate(&mut self, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        if let Some(&slot) = self.by_page.get(&(pid, page)) {
            return Some(slot);
        }
        let slot = if self.next_fresh < self.base.saturating_add(self.capacity) {
            let s = SwapSlot(self.next_fresh);
            self.next_fresh += 1;
            s
        } else {
            self.free_slots.pop()?
        };
        let idx = (slot.0 - self.base) as usize;
        if idx >= self.owners.len() {
            self.owners.resize(idx + 1, None);
        }
        self.owners[idx] = Some((pid, page));
        self.used += 1;
        self.by_page.insert((pid, page), slot);
        Some(slot)
    }

    /// Frees a slot, forgetting its owner.
    pub fn free(&mut self, slot: SwapSlot) {
        let Some(idx) = self.owner_index(slot) else {
            return;
        };
        if let Some(owner) = self.owners[idx].take() {
            self.by_page.remove(&owner);
            self.free_slots.push(slot);
            self.used -= 1;
        }
    }

    /// Returns the process and virtual page stored in a slot, if any.
    pub fn owner(&self, slot: SwapSlot) -> Option<(Pid, VirtPage)> {
        self.owner_index(slot).and_then(|idx| self.owners[idx])
    }

    /// Returns the slot currently assigned to `(pid, page)`, if any.
    pub fn slot_of(&self, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        self.by_page.get(&(pid, page)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocation_is_sequential_for_one_process() {
        let mut swap = SwapSpace::new(100);
        let slots: Vec<u64> = (0..10)
            .map(|i| swap.allocate(Pid(1), VirtPage(i)).unwrap().0)
            .collect();
        assert_eq!(slots, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_processes_share_the_offset_space() {
        let mut swap = SwapSpace::new(100);
        let a = swap.allocate(Pid(1), VirtPage(0)).unwrap();
        let b = swap.allocate(Pid(2), VirtPage(0)).unwrap();
        let c = swap.allocate(Pid(1), VirtPage(1)).unwrap();
        // Process 1's pages are *not* contiguous in the swap space because
        // process 2 grabbed the slot in between — the §2.3 observation.
        assert_eq!(a.0 + 1, b.0);
        assert_eq!(b.0 + 1, c.0);
    }

    #[test]
    fn repeated_swap_out_reuses_the_slot() {
        let mut swap = SwapSpace::new(10);
        let first = swap.allocate(Pid(1), VirtPage(42)).unwrap();
        let second = swap.allocate(Pid(1), VirtPage(42)).unwrap();
        assert_eq!(first, second);
        assert_eq!(swap.used_slots(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut swap = SwapSpace::new(2);
        assert!(swap.allocate(Pid(1), VirtPage(0)).is_some());
        assert!(swap.allocate(Pid(1), VirtPage(1)).is_some());
        assert!(swap.allocate(Pid(1), VirtPage(2)).is_none());
        // Freeing makes room again.
        let slot = swap.slot_of(Pid(1), VirtPage(0)).unwrap();
        swap.free(slot);
        assert!(swap.allocate(Pid(1), VirtPage(2)).is_some());
    }

    #[test]
    fn free_clears_both_maps() {
        let mut swap = SwapSpace::new(4);
        let slot = swap.allocate(Pid(3), VirtPage(9)).unwrap();
        swap.free(slot);
        assert_eq!(swap.owner(slot), None);
        assert_eq!(swap.slot_of(Pid(3), VirtPage(9)), None);
        // Freeing an already-free slot is a harmless no-op.
        swap.free(slot);
        assert_eq!(swap.used_slots(), 0);
    }

    proptest! {
        /// owners and by_page stay mutually consistent under random workloads.
        #[test]
        fn prop_maps_stay_consistent(
            ops in proptest::collection::vec((0u32..4, 0u64..32, any::<bool>()), 0..200),
        ) {
            let mut swap = SwapSpace::new(64);
            for (pid, page, alloc) in ops {
                if alloc {
                    let _ = swap.allocate(Pid(pid), VirtPage(page));
                } else if let Some(slot) = swap.slot_of(Pid(pid), VirtPage(page)) {
                    swap.free(slot);
                }
            }
            // Every owner entry has a matching by_page entry and vice versa.
            let mut in_use = 0u64;
            for (idx, owner) in swap.owners.iter().enumerate() {
                let Some((pid, page)) = owner else { continue };
                in_use += 1;
                let slot = SwapSlot(swap.base + idx as u64);
                prop_assert_eq!(swap.by_page.get(&(*pid, *page)).copied(), Some(slot));
            }
            prop_assert_eq!(swap.used_slots(), in_use);
            for ((pid, page), slot) in swap.by_page.iter() {
                prop_assert_eq!(swap.owner(*slot), Some((*pid, *page)));
            }
        }

        /// Used slots never exceed capacity.
        #[test]
        fn prop_capacity_never_exceeded(
            capacity in 1u64..64,
            pages in proptest::collection::vec(0u64..1000, 0..200),
        ) {
            let mut swap = SwapSpace::new(capacity);
            for p in pages {
                let _ = swap.allocate(Pid(1), VirtPage(p));
                prop_assert!(swap.used_slots() <= capacity);
            }
        }
    }
}
