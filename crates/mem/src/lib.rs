//! Memory-management substrate for the Leap reproduction.
//!
//! The paper's system lives inside the Linux virtual memory subsystem. This
//! crate models the pieces of that subsystem the evaluation depends on,
//! without any kernel code:
//!
//! - [`types`]: process ids, virtual page numbers, swap slots, frame ids.
//! - [`frames`]: a fixed pool of physical frames ([`FramePool`]).
//! - [`page_table`]: per-process page tables mapping virtual pages to frames
//!   or swap slots ([`PageTable`]).
//! - [`swap`]: the shared, sequentially laid-out swap space
//!   ([`SwapSpace`]) — all processes allocate slots from the same area, which
//!   is why consecutive slots can belong to different processes (§2.3).
//! - [`lru`]: active/inactive LRU lists used by the background reclaimer
//!   ([`LruList`]).
//! - [`swap_cache`]: the swap/prefetch cache ([`SwapCache`]) holding pages
//!   brought in from the slower tier before they are mapped.
//! - [`sharded`]: per-core shards of both ([`ShardedSwap`],
//!   [`ShardedSwapCache`]) for the multi-core scheduled replays.
//! - [`cgroup`]: cgroup-style per-process memory limits ([`MemoryLimit`]).

pub mod cgroup;
pub mod frames;
pub mod lru;
pub mod page_table;
pub mod sharded;
pub mod swap;
pub mod swap_cache;
pub mod types;

pub use cgroup::MemoryLimit;
pub use frames::FramePool;
pub use lru::LruList;
pub use page_table::{PageState, PageTable};
pub use sharded::{ShardedSwap, ShardedSwapCache};
pub use swap::SwapSpace;
pub use swap_cache::{CacheEntry, CacheOrigin, SwapCache};
pub use types::{FrameId, Pid, SwapSlot, VirtPage};
