//! The swap/prefetch cache.
//!
//! Pages read from the slower tier (disk or remote memory) land in the swap
//! cache before being mapped into the faulting process. Prefetched pages sit
//! here until they are either hit (and, under Leap, eagerly freed) or evicted.
//! The cache records, per entry, whether it was demand-fetched or prefetched,
//! when it was inserted, and when (if ever) it was first hit — exactly the
//! bookkeeping needed to compute accuracy, coverage, and timeliness (§3.1).

use crate::types::{Pid, SwapSlot};
use leap_sim_core::hash::{fx_map_with_capacity, FxHashMap};
use leap_sim_core::Nanos;

/// How a page entered the swap cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOrigin {
    /// The page was read because a process demanded it (a cache miss).
    Demand,
    /// The page was read ahead of demand by a prefetcher.
    Prefetch,
}

/// Metadata for one cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The process whose fault (or prefetch decision) brought the page in.
    pub pid: Pid,
    /// Why the page is in the cache.
    pub origin: CacheOrigin,
    /// When the page was inserted.
    pub inserted_at: Nanos,
    /// When the page was first hit, if it has been.
    pub first_hit_at: Option<Nanos>,
}

/// The swap cache: a bounded map from swap slots to cached pages.
///
/// Capacity is expressed in pages. A capacity of `u64::MAX` effectively means
/// "unlimited" (the paper's default); Figure 12 constrains it to a few MBs.
///
/// # Examples
///
/// ```
/// use leap_mem::{CacheOrigin, Pid, SwapCache, SwapSlot};
/// use leap_sim_core::Nanos;
///
/// let mut cache = SwapCache::new(1024);
/// cache.insert(SwapSlot(7), Pid(1), CacheOrigin::Prefetch, Nanos::from_micros(1));
/// assert!(cache.contains(SwapSlot(7)));
/// let entry = cache.record_hit(SwapSlot(7), Nanos::from_micros(5)).unwrap();
/// assert_eq!(entry.first_hit_at, Some(Nanos::from_micros(5)));
/// ```
#[derive(Debug, Clone)]
pub struct SwapCache {
    capacity_pages: u64,
    entries: FxHashMap<SwapSlot, CacheEntry>,
}

/// Entries pre-reserved for caches whose configured capacity is unbounded
/// (or absurdly large): enough that realistic replays never rehash early,
/// small enough to cost nothing per shard.
const DEFAULT_RESERVE_PAGES: usize = 1_024;

impl SwapCache {
    /// Creates a cache bounded to `capacity_pages` pages.
    ///
    /// The entry map is pre-reserved from the capacity (clamped to 1024
    /// entries so an unbounded capacity does not pre-allocate the world),
    /// so small bounded caches never rehash and large ones only rehash
    /// past the reserve. Callers that know the real expected population
    /// use [`SwapCache::with_capacity_hint`].
    pub fn new(capacity_pages: u64) -> Self {
        let reserve = capacity_pages.min(DEFAULT_RESERVE_PAGES as u64) as usize;
        SwapCache::with_capacity_hint(capacity_pages, reserve)
    }

    /// Creates a cache bounded to `capacity_pages` pages with the entry map
    /// pre-sized for `expected_pages` entries (e.g. the configured prefetch
    /// cache capacity, known at build time).
    pub fn with_capacity_hint(capacity_pages: u64, expected_pages: usize) -> Self {
        SwapCache {
            capacity_pages,
            entries: fx_map_with_capacity(expected_pages),
        }
    }

    /// Creates an effectively unbounded cache.
    pub fn unbounded() -> Self {
        SwapCache::new(u64::MAX)
    }

    /// The configured capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True if the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if the cache is at (or beyond) its capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity_pages
    }

    /// Number of free page slots remaining.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages.saturating_sub(self.len())
    }

    /// True if `slot` is cached.
    pub fn contains(&self, slot: SwapSlot) -> bool {
        self.entries.contains_key(&slot)
    }

    /// Returns the entry for `slot`, if cached.
    pub fn get(&self, slot: SwapSlot) -> Option<&CacheEntry> {
        self.entries.get(&slot)
    }

    /// Inserts a page.
    ///
    /// Returns `false` (without inserting) if the cache is full and the slot
    /// is not already present; the caller is responsible for making room
    /// first via its eviction policy. Re-inserting an existing slot refreshes
    /// its metadata.
    pub fn insert(&mut self, slot: SwapSlot, pid: Pid, origin: CacheOrigin, now: Nanos) -> bool {
        if !self.entries.contains_key(&slot) && self.is_full() {
            return false;
        }
        self.entries.insert(
            slot,
            CacheEntry {
                pid,
                origin,
                inserted_at: now,
                first_hit_at: None,
            },
        );
        true
    }

    /// Inserts a page the caller has already verified to be absent and to
    /// have room (the span-batched prefetch path probes presence and makes
    /// space first): one hash-table operation instead of the
    /// presence-check-plus-insert pair [`SwapCache::insert`] performs.
    ///
    /// Behaviour is identical to `insert` under the stated precondition;
    /// violating it (slot present, or cache full) is caught by a debug
    /// assertion and in release builds degrades to `insert`'s semantics of
    /// refreshing the entry.
    pub fn insert_fresh(&mut self, slot: SwapSlot, pid: Pid, origin: CacheOrigin, now: Nanos) {
        debug_assert!(
            !self.is_full() || self.entries.contains_key(&slot),
            "insert_fresh on a full cache"
        );
        let prev = self.entries.insert(
            slot,
            CacheEntry {
                pid,
                origin,
                inserted_at: now,
                first_hit_at: None,
            },
        );
        debug_assert!(prev.is_none(), "insert_fresh on a cached slot");
    }

    /// Records a hit on `slot` at time `now`, returning the updated entry.
    ///
    /// Only the first hit timestamp is retained (that is what timeliness
    /// measures). Returns `None` if the slot is not cached.
    pub fn record_hit(&mut self, slot: SwapSlot, now: Nanos) -> Option<CacheEntry> {
        let entry = self.entries.get_mut(&slot)?;
        if entry.first_hit_at.is_none() {
            entry.first_hit_at = Some(now);
        }
        Some(*entry)
    }

    /// Records a hit on `slot` at time `now` and, when `free_prefetched` is
    /// set and the entry is prefetch-origin, removes it in the same hash
    /// operation (Leap's eager free-on-hit without a separate
    /// [`SwapCache::remove`] lookup). The flag in the result is `true` when
    /// the entry was taken out.
    ///
    /// Equivalent to `record_hit` followed by `remove` under that
    /// condition; the returned entry carries the hit timestamp either way.
    pub fn record_hit_take(
        &mut self,
        slot: SwapSlot,
        now: Nanos,
        free_prefetched: bool,
    ) -> Option<(CacheEntry, bool)> {
        use std::collections::hash_map::Entry;
        match self.entries.entry(slot) {
            Entry::Occupied(mut occupied) => {
                if free_prefetched && occupied.get().origin == CacheOrigin::Prefetch {
                    let mut entry = occupied.remove();
                    if entry.first_hit_at.is_none() {
                        entry.first_hit_at = Some(now);
                    }
                    Some((entry, true))
                } else {
                    let entry = occupied.get_mut();
                    if entry.first_hit_at.is_none() {
                        entry.first_hit_at = Some(now);
                    }
                    Some((*entry, false))
                }
            }
            Entry::Vacant(_) => None,
        }
    }

    /// Removes a page from the cache, returning its entry.
    pub fn remove(&mut self, slot: SwapSlot) -> Option<CacheEntry> {
        self.entries.remove(&slot)
    }

    /// Iterates over all cached entries.
    pub fn iter(&self) -> impl Iterator<Item = (SwapSlot, &CacheEntry)> + '_ {
        self.entries.iter().map(|(&slot, entry)| (slot, entry))
    }

    /// Number of cached pages that were prefetched and never hit (current
    /// cache pollution).
    pub fn unused_prefetched(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.origin == CacheOrigin::Prefetch && e.first_hit_at.is_none())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> Nanos {
        Nanos::from_micros(us)
    }

    #[test]
    fn insert_get_remove_cycle() {
        let mut cache = SwapCache::new(4);
        assert!(cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Demand, t(1)));
        assert!(cache.contains(SwapSlot(1)));
        let entry = cache.get(SwapSlot(1)).unwrap();
        assert_eq!(entry.origin, CacheOrigin::Demand);
        assert_eq!(entry.inserted_at, t(1));
        let removed = cache.remove(SwapSlot(1)).unwrap();
        assert_eq!(removed.pid, Pid(1));
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut cache = SwapCache::new(2);
        assert!(cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, t(0)));
        assert!(cache.insert(SwapSlot(2), Pid(1), CacheOrigin::Prefetch, t(0)));
        assert!(!cache.insert(SwapSlot(3), Pid(1), CacheOrigin::Prefetch, t(0)));
        assert!(cache.is_full());
        assert_eq!(cache.free_pages(), 0);
        // Re-inserting an existing slot is allowed even when full.
        assert!(cache.insert(SwapSlot(2), Pid(2), CacheOrigin::Demand, t(5)));
        assert_eq!(cache.get(SwapSlot(2)).unwrap().pid, Pid(2));
    }

    #[test]
    fn first_hit_time_is_sticky() {
        let mut cache = SwapCache::new(4);
        cache.insert(SwapSlot(9), Pid(1), CacheOrigin::Prefetch, t(10));
        let first = cache.record_hit(SwapSlot(9), t(15)).unwrap();
        assert_eq!(first.first_hit_at, Some(t(15)));
        let second = cache.record_hit(SwapSlot(9), t(99)).unwrap();
        assert_eq!(second.first_hit_at, Some(t(15)));
    }

    #[test]
    fn hit_on_missing_slot_is_none() {
        let mut cache = SwapCache::new(4);
        assert!(cache.record_hit(SwapSlot(5), t(1)).is_none());
    }

    #[test]
    fn unused_prefetched_counts_pollution() {
        let mut cache = SwapCache::new(8);
        cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, t(0));
        cache.insert(SwapSlot(2), Pid(1), CacheOrigin::Prefetch, t(0));
        cache.insert(SwapSlot(3), Pid(1), CacheOrigin::Demand, t(0));
        assert_eq!(cache.unused_prefetched(), 2);
        cache.record_hit(SwapSlot(1), t(4));
        assert_eq!(cache.unused_prefetched(), 1);
    }

    #[test]
    fn unbounded_cache_never_fills() {
        let mut cache = SwapCache::unbounded();
        for i in 0..10_000u64 {
            assert!(cache.insert(SwapSlot(i), Pid(1), CacheOrigin::Prefetch, t(0)));
        }
        assert!(!cache.is_full());
    }

    proptest! {
        /// Length never exceeds capacity under arbitrary operation sequences.
        #[test]
        fn prop_len_bounded_by_capacity(
            capacity in 1u64..32,
            ops in proptest::collection::vec((0u64..64, any::<bool>()), 0..300),
        ) {
            let mut cache = SwapCache::new(capacity);
            for (slot, insert) in ops {
                if insert {
                    let _ = cache.insert(SwapSlot(slot), Pid(0), CacheOrigin::Prefetch, t(0));
                } else {
                    let _ = cache.remove(SwapSlot(slot));
                }
                prop_assert!(cache.len() <= capacity);
            }
        }

        /// An inserted entry is always retrievable until removed.
        #[test]
        fn prop_insert_then_get(slots in proptest::collection::vec(0u64..100, 1..50)) {
            let mut cache = SwapCache::unbounded();
            for &s in &slots {
                cache.insert(SwapSlot(s), Pid(1), CacheOrigin::Demand, t(s));
                prop_assert!(cache.get(SwapSlot(s)).is_some());
            }
        }
    }
}
