//! Identifier types for the memory-management substrate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process identifier.
///
/// Leap isolates page-access tracking per process (§4.1); the simulator uses
/// `Pid` to key per-process page tables, access histories, and prefetchers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// A virtual page number within one process's address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtPage(pub u64);

impl VirtPage {
    /// Returns the next virtual page.
    pub fn next(self) -> VirtPage {
        VirtPage(self.0 + 1)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

/// An offset into the (shared) swap area, in pages.
///
/// Swap slots are what the remote-memory backend stores and what the Leap
/// prefetcher observes: the page access tracker records *swap-offset* deltas,
/// not virtual-address deltas.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SwapSlot(pub u64);

impl fmt::Display for SwapSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{:#x}", self.0)
    }
}

/// A physical frame identifier in the local DRAM pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrameId(pub u64);

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Pid(3)), "pid3");
        assert_eq!(format!("{}", VirtPage(255)), "v0xff");
        assert_eq!(format!("{}", SwapSlot(16)), "s0x10");
        assert_eq!(format!("{}", FrameId(7)), "f7");
    }

    #[test]
    fn virt_page_next() {
        assert_eq!(VirtPage(9).next(), VirtPage(10));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SwapSlot(2) < SwapSlot(10));
        assert!(VirtPage(2) < VirtPage(10));
    }
}
