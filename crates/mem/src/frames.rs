//! A fixed pool of physical frames representing local DRAM.

use crate::types::FrameId;

/// A pool of physical frames.
///
/// The pool is the simulator's stand-in for the machine's local DRAM: its
/// size (in frames) is what the cgroup memory limit constrains. Allocation is
/// O(1) via a free list; the pool never grows.
///
/// # Examples
///
/// ```
/// use leap_mem::FramePool;
///
/// let mut pool = FramePool::new(2);
/// let a = pool.allocate().unwrap();
/// let b = pool.allocate().unwrap();
/// assert!(pool.allocate().is_none());
/// pool.free(a);
/// assert_eq!(pool.free_frames(), 1);
/// let _ = b;
/// ```
#[derive(Debug, Clone)]
pub struct FramePool {
    capacity: u64,
    free_list: Vec<FrameId>,
    next_unused: u64,
    allocated: u64,
}

impl FramePool {
    /// Creates a pool with `capacity` frames.
    pub fn new(capacity: u64) -> Self {
        FramePool {
            capacity,
            free_list: Vec::new(),
            next_unused: 0,
            allocated: 0,
        }
    }

    /// Total number of frames in the pool.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Number of frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// True if no frame is free.
    pub fn is_full(&self) -> bool {
        self.allocated >= self.capacity
    }

    /// Allocates a frame, or returns `None` if the pool is exhausted.
    pub fn allocate(&mut self) -> Option<FrameId> {
        if self.is_full() {
            return None;
        }
        self.allocated += 1;
        if let Some(frame) = self.free_list.pop() {
            return Some(frame);
        }
        let frame = FrameId(self.next_unused);
        self.next_unused += 1;
        Some(frame)
    }

    /// Returns a frame to the pool.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no outstanding allocations (double free of the
    /// whole pool); individual double frees of the same id are not tracked to
    /// keep the pool O(1), callers own that invariant.
    pub fn free(&mut self, frame: FrameId) {
        assert!(self.allocated > 0, "free() with no outstanding allocations");
        self.allocated -= 1;
        self.free_list.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocates_up_to_capacity() {
        let mut pool = FramePool::new(3);
        assert!(pool.allocate().is_some());
        assert!(pool.allocate().is_some());
        assert!(pool.allocate().is_some());
        assert!(pool.allocate().is_none());
        assert!(pool.is_full());
        assert_eq!(pool.allocated_frames(), 3);
    }

    #[test]
    fn freed_frames_are_reused() {
        let mut pool = FramePool::new(1);
        let a = pool.allocate().unwrap();
        pool.free(a);
        let b = pool.allocate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_capacity_pool_never_allocates() {
        let mut pool = FramePool::new(0);
        assert!(pool.allocate().is_none());
        assert_eq!(pool.free_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "no outstanding allocations")]
    fn free_without_allocation_panics() {
        let mut pool = FramePool::new(1);
        pool.free(FrameId(0));
    }

    proptest! {
        /// allocated + free == capacity under any alloc/free sequence.
        #[test]
        fn prop_accounting_invariant(
            capacity in 0u64..128,
            ops in proptest::collection::vec(any::<bool>(), 0..300),
        ) {
            let mut pool = FramePool::new(capacity);
            let mut held = Vec::new();
            for alloc in ops {
                if alloc {
                    if let Some(f) = pool.allocate() {
                        held.push(f);
                    }
                } else if let Some(f) = held.pop() {
                    pool.free(f);
                }
                prop_assert_eq!(pool.allocated_frames() + pool.free_frames(), capacity);
                prop_assert_eq!(pool.allocated_frames(), held.len() as u64);
            }
        }

        /// Frame ids handed out while the pool holds them are unique.
        #[test]
        fn prop_no_duplicate_live_frames(capacity in 1u64..64) {
            let mut pool = FramePool::new(capacity);
            let mut seen = std::collections::HashSet::new();
            while let Some(f) = pool.allocate() {
                prop_assert!(seen.insert(f));
            }
            prop_assert_eq!(seen.len() as u64, capacity);
        }
    }
}
