//! Per-core shards of the swap space and the swap cache.
//!
//! A single shared [`SwapSpace`]/[`SwapCache`] pair serializes every core's
//! paging activity behind one allocator and one map — fine for replaying one
//! process, but exactly the contention the Leap paper's multi-application
//! evaluation (Figure 13) is about. The facades here split both structures
//! into per-core shards while keeping one *global* slot namespace:
//!
//! - [`ShardedSwap`] gives every core its own contiguous slot region
//!   (`[core · span, (core + 1) · span)`), so a core's sequential page-outs
//!   stay sequential in *its* region (preserving the slot-arithmetic locality
//!   the prefetchers rely on) without racing other cores for slots.
//! - [`ShardedSwapCache`] routes each slot to the shard that owns its region,
//!   so any core can look up a cached page deterministically while inserts
//!   and evictions stay core-local in the common case (a process's slots live
//!   in the region of the core it is scheduled on).
//!
//! Both facades degenerate to the unsharded behaviour with one shard, which
//! is how single-process replays keep their historical numerics bit-for-bit.

use crate::swap::SwapSpace;
use crate::swap_cache::{CacheEntry, CacheOrigin, SwapCache};
use crate::types::{Pid, SwapSlot, VirtPage};
use leap_sim_core::Nanos;

/// Per-core sharded swap space with one global slot namespace.
///
/// # Examples
///
/// ```
/// use leap_mem::{Pid, ShardedSwap, VirtPage};
///
/// let mut swap = ShardedSwap::new(2, 1000);
/// let a = swap.allocate_on(0, Pid(1), VirtPage(7)).unwrap();
/// let b = swap.allocate_on(1, Pid(2), VirtPage(7)).unwrap();
/// // Each core allocates from its own disjoint region...
/// assert_ne!(swap.shard_of(a), swap.shard_of(b));
/// // ...but lookups work globally, from any core.
/// assert_eq!(swap.owner(b), Some((Pid(2), VirtPage(7))));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSwap {
    span: u64,
    shards: Vec<SwapSpace>,
}

impl ShardedSwap {
    /// Creates a swap space of `total_capacity` slots split into `shards`
    /// contiguous regions of `total_capacity / shards` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the per-shard region would be empty.
    pub fn new(shards: usize, total_capacity: u64) -> Self {
        assert!(shards > 0, "at least one swap shard is required");
        let span = total_capacity / shards as u64;
        assert!(span > 0, "swap capacity too small for {shards} shards");
        ShardedSwap {
            span,
            shards: (0..shards as u64)
                .map(|i| SwapSpace::with_base(i * span, span))
                .collect(),
        }
    }

    /// A swap space holding only core `core`'s region of the global slot
    /// namespace that `ShardedSwap::new(shards, total_capacity)` would carve
    /// up: `[core · span, (core + 1) · span)`.
    ///
    /// This is the slice a per-core shard worker owns in a thread-parallel
    /// replay: slot numbering is identical to the fully sharded layout, but
    /// the worker holds no other core's state. Lookups for slots outside the
    /// region simply miss (`owner` returns `None`, `free` is a no-op), which
    /// is also what the fully sharded facade yields for never-allocated
    /// slots in foreign regions.
    ///
    /// # Panics
    ///
    /// Panics if `core >= shards`, `shards` is zero, or the region would be
    /// empty.
    pub fn region(core: usize, shards: usize, total_capacity: u64) -> Self {
        assert!(shards > 0, "at least one swap shard is required");
        assert!(core < shards, "core {core} outside {shards} shards");
        let span = total_capacity / shards as u64;
        assert!(span > 0, "swap capacity too small for {shards} shards");
        ShardedSwap {
            span,
            shards: vec![SwapSpace::with_base(core as u64 * span, span)],
        }
    }

    /// Number of shards (one per core).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Width of one shard's slot region.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The shard whose region contains `slot`.
    pub fn shard_of(&self, slot: SwapSlot) -> usize {
        ((slot.0 / self.span) as usize).min(self.shards.len() - 1)
    }

    /// Allocates a slot for `(pid, page)` from `core`'s region.
    ///
    /// Within the region the same sequential-burst layout (and clean-slot
    /// reuse) as [`SwapSpace::allocate`] applies. Returns `None` when the
    /// region is full.
    pub fn allocate_on(&mut self, core: usize, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        let shard = core.min(self.shards.len() - 1);
        self.shards[shard].allocate(pid, page)
    }

    /// Frees a slot, forgetting its owner (routed to the owning shard).
    pub fn free(&mut self, slot: SwapSlot) {
        let shard = self.shard_of(slot);
        self.shards[shard].free(slot);
    }

    /// Returns the process and virtual page stored in a slot, if any.
    pub fn owner(&self, slot: SwapSlot) -> Option<(Pid, VirtPage)> {
        self.shards[self.shard_of(slot)].owner(slot)
    }

    /// Returns the slot currently assigned to `(pid, page)` in any shard.
    pub fn slot_of(&self, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        self.shards.iter().find_map(|s| s.slot_of(pid, page))
    }

    /// Number of slots currently in use across all shards.
    pub fn used_slots(&self) -> u64 {
        self.shards.iter().map(|s| s.used_slots()).sum()
    }
}

/// Per-core sharded swap/prefetch cache.
///
/// Slots are routed to shards by the same region mapping as
/// [`ShardedSwap`] (`slot / span`), so the cache entry for a page is always
/// found in one deterministic shard no matter which core looks. Each shard
/// has its own capacity, and the engine drives one eviction-policy instance
/// per shard against it.
///
/// # Examples
///
/// ```
/// use leap_mem::{CacheOrigin, Pid, ShardedSwapCache, SwapSlot};
/// use leap_sim_core::Nanos;
///
/// // Two shards over regions [0, 100) and [100, 200), 8 pages each.
/// let mut cache = ShardedSwapCache::new(2, 8, 100);
/// cache.insert(SwapSlot(150), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
/// assert_eq!(cache.shard_of(SwapSlot(150)), 1);
/// assert!(cache.contains(SwapSlot(150)));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSwapCache {
    span: u64,
    shards: Vec<SwapCache>,
}

impl ShardedSwapCache {
    /// Creates `shards` cache shards of `per_shard_pages` capacity each,
    /// routing slots by region width `span`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `span` is zero.
    pub fn new(shards: usize, per_shard_pages: u64, span: u64) -> Self {
        assert!(shards > 0, "at least one cache shard is required");
        assert!(span > 0, "slot region span must be nonzero");
        ShardedSwapCache {
            span,
            shards: (0..shards)
                .map(|_| SwapCache::new(per_shard_pages))
                .collect(),
        }
    }

    /// A single unsharded cache of `capacity_pages` (the legacy layout every
    /// single-process replay uses).
    pub fn single(capacity_pages: u64) -> Self {
        ShardedSwapCache::new(1, capacity_pages, u64::MAX)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard whose region contains `slot`.
    pub fn shard_of(&self, slot: SwapSlot) -> usize {
        ((slot.0 / self.span) as usize).min(self.shards.len() - 1)
    }

    /// Shared view of shard `i`.
    pub fn shard(&self, i: usize) -> &SwapCache {
        &self.shards[i]
    }

    /// Mutable view of shard `i` (what the per-shard eviction policy scans).
    pub fn shard_mut(&mut self, i: usize) -> &mut SwapCache {
        &mut self.shards[i]
    }

    /// Mutable iterator over all shards, in shard order.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut SwapCache> + '_ {
        self.shards.iter_mut()
    }

    /// Total pages cached across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no shard holds any page.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// True if the shard owning `slot` is at capacity.
    pub fn is_full_for(&self, slot: SwapSlot) -> bool {
        self.shards[self.shard_of(slot)].is_full()
    }

    /// True if `slot` is cached.
    pub fn contains(&self, slot: SwapSlot) -> bool {
        self.shards[self.shard_of(slot)].contains(slot)
    }

    /// Returns the entry for `slot`, if cached.
    pub fn get(&self, slot: SwapSlot) -> Option<&CacheEntry> {
        self.shards[self.shard_of(slot)].get(slot)
    }

    /// Inserts a page into the shard owning `slot` (see
    /// [`SwapCache::insert`] for the capacity contract).
    pub fn insert(&mut self, slot: SwapSlot, pid: Pid, origin: CacheOrigin, now: Nanos) -> bool {
        let shard = self.shard_of(slot);
        self.shards[shard].insert(slot, pid, origin, now)
    }

    /// Records a hit on `slot` at time `now`, returning the updated entry.
    pub fn record_hit(&mut self, slot: SwapSlot, now: Nanos) -> Option<CacheEntry> {
        let shard = self.shard_of(slot);
        self.shards[shard].record_hit(slot, now)
    }

    /// Removes a page from the cache, returning its entry.
    pub fn remove(&mut self, slot: SwapSlot) -> Option<CacheEntry> {
        let shard = self.shard_of(slot);
        self.shards[shard].remove(slot)
    }

    /// Cached pages that were prefetched and never hit, across all shards.
    pub fn unused_prefetched(&self) -> u64 {
        self.shards.iter().map(|s| s.unused_prefetched()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_sequential() {
        let mut swap = ShardedSwap::new(4, 400);
        assert_eq!(swap.span(), 100);
        for core in 0..4 {
            let slots: Vec<u64> = (0..5)
                .map(|p| {
                    swap.allocate_on(core, Pid(core as u32 + 1), VirtPage(p))
                        .unwrap()
                        .0
                })
                .collect();
            let base = core as u64 * 100;
            assert_eq!(slots, (base..base + 5).collect::<Vec<_>>());
        }
        assert_eq!(swap.used_slots(), 20);
    }

    #[test]
    fn routing_finds_owners_across_shards() {
        let mut swap = ShardedSwap::new(2, 200);
        let a = swap.allocate_on(0, Pid(1), VirtPage(9)).unwrap();
        let b = swap.allocate_on(1, Pid(2), VirtPage(9)).unwrap();
        assert_eq!(swap.owner(a), Some((Pid(1), VirtPage(9))));
        assert_eq!(swap.owner(b), Some((Pid(2), VirtPage(9))));
        assert_eq!(swap.slot_of(Pid(2), VirtPage(9)), Some(b));
        swap.free(a);
        assert_eq!(swap.owner(a), None);
        assert_eq!(swap.used_slots(), 1);
    }

    #[test]
    fn shard_capacity_is_per_region() {
        let mut swap = ShardedSwap::new(2, 4);
        // Each region holds 2 slots.
        assert!(swap.allocate_on(0, Pid(1), VirtPage(0)).is_some());
        assert!(swap.allocate_on(0, Pid(1), VirtPage(1)).is_some());
        assert!(swap.allocate_on(0, Pid(1), VirtPage(2)).is_none());
        // The other region is unaffected.
        assert!(swap.allocate_on(1, Pid(1), VirtPage(2)).is_some());
    }

    #[test]
    fn out_of_range_cores_clamp_to_the_last_shard() {
        let mut swap = ShardedSwap::new(2, 200);
        let slot = swap.allocate_on(99, Pid(1), VirtPage(1)).unwrap();
        assert_eq!(swap.shard_of(slot), 1);
    }

    #[test]
    fn single_shard_matches_unsharded_layout() {
        let mut sharded = ShardedSwap::new(1, 100);
        let mut plain = SwapSpace::new(100);
        for p in 0..10u64 {
            assert_eq!(
                sharded.allocate_on(0, Pid(1), VirtPage(p)),
                plain.allocate(Pid(1), VirtPage(p))
            );
        }
    }

    #[test]
    fn cache_routes_by_slot_region() {
        let mut cache = ShardedSwapCache::new(2, 4, 100);
        assert!(cache.insert(SwapSlot(10), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert!(cache.insert(SwapSlot(110), Pid(2), CacheOrigin::Demand, Nanos::ZERO));
        assert_eq!(cache.shard_of(SwapSlot(10)), 0);
        assert_eq!(cache.shard_of(SwapSlot(110)), 1);
        assert_eq!(cache.shard(0).len(), 1);
        assert_eq!(cache.shard(1).len(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(SwapSlot(110)));
        let entry = cache
            .record_hit(SwapSlot(110), Nanos::from_micros(3))
            .unwrap();
        assert_eq!(entry.first_hit_at, Some(Nanos::from_micros(3)));
        assert!(cache.remove(SwapSlot(10)).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn per_shard_capacity_is_independent() {
        let mut cache = ShardedSwapCache::new(2, 1, 100);
        assert!(cache.insert(SwapSlot(0), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        // Shard 0 is full; shard 1 still has room.
        assert!(cache.is_full_for(SwapSlot(1)));
        assert!(!cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert!(!cache.is_full_for(SwapSlot(150)));
        assert!(cache.insert(SwapSlot(150), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert_eq!(cache.unused_prefetched(), 2);
    }

    #[test]
    fn single_cache_shard_behaves_like_swap_cache() {
        let mut cache = ShardedSwapCache::single(2);
        assert_eq!(cache.shards(), 1);
        assert!(cache.insert(SwapSlot(5), Pid(1), CacheOrigin::Demand, Nanos::ZERO));
        assert!(cache.insert(
            SwapSlot(u64::MAX - 1),
            Pid(1),
            CacheOrigin::Demand,
            Nanos::ZERO
        ));
        assert!(cache.is_full_for(SwapSlot(7)));
        assert!(!cache.insert(SwapSlot(7), Pid(1), CacheOrigin::Demand, Nanos::ZERO));
    }
}
