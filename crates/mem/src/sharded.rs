//! Per-core shards of the swap space and the swap cache.
//!
//! A single shared [`SwapSpace`]/[`SwapCache`] pair serializes every core's
//! paging activity behind one allocator and one map — fine for replaying one
//! process, but exactly the contention the Leap paper's multi-application
//! evaluation (Figure 13) is about. The facades here split both structures
//! into per-core shards while keeping one *global* slot namespace:
//!
//! - [`ShardedSwap`] gives every core its own contiguous slot region
//!   (`[core · span, (core + 1) · span)`), so a core's sequential page-outs
//!   stay sequential in *its* region (preserving the slot-arithmetic locality
//!   the prefetchers rely on) without racing other cores for slots.
//! - [`ShardedSwapCache`] routes each slot to the shard that owns its region,
//!   so any core can look up a cached page deterministically while inserts
//!   and evictions stay core-local in the common case (a process's slots live
//!   in the region of the core it is scheduled on).
//!
//! Both facades degenerate to the unsharded behaviour with one shard, which
//! is how single-process replays keep their historical numerics bit-for-bit.

use crate::swap::SwapSpace;
use crate::swap_cache::{CacheEntry, CacheOrigin, SwapCache};
use crate::types::{Pid, SwapSlot, VirtPage};
use leap_sim_core::Nanos;

/// Per-core sharded swap space with one global slot namespace.
///
/// # Examples
///
/// ```
/// use leap_mem::{Pid, ShardedSwap, VirtPage};
///
/// let mut swap = ShardedSwap::new(2, 1000);
/// let a = swap.allocate_on(0, Pid(1), VirtPage(7)).unwrap();
/// let b = swap.allocate_on(1, Pid(2), VirtPage(7)).unwrap();
/// // Each core allocates from its own disjoint region...
/// assert_ne!(swap.shard_of(a), swap.shard_of(b));
/// // ...but lookups work globally, from any core.
/// assert_eq!(swap.owner(b), Some((Pid(2), VirtPage(7))));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSwap {
    span: u64,
    shards: Vec<SwapSpace>,
}

impl ShardedSwap {
    /// Creates a swap space of `total_capacity` slots split into `shards`
    /// contiguous regions of `total_capacity / shards` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the per-shard region would be empty.
    pub fn new(shards: usize, total_capacity: u64) -> Self {
        assert!(shards > 0, "at least one swap shard is required");
        let span = total_capacity / shards as u64;
        assert!(span > 0, "swap capacity too small for {shards} shards");
        ShardedSwap {
            span,
            shards: (0..shards as u64)
                .map(|i| SwapSpace::with_base(i * span, span))
                .collect(),
        }
    }

    /// A swap space holding only core `core`'s region of the global slot
    /// namespace that `ShardedSwap::new(shards, total_capacity)` would carve
    /// up: `[core · span, (core + 1) · span)`.
    ///
    /// This is the slice a per-core shard worker owns in a thread-parallel
    /// replay: slot numbering is identical to the fully sharded layout, but
    /// the worker holds no other core's state. Lookups for slots outside the
    /// region simply miss (`owner` returns `None`, `free` is a no-op), which
    /// is also what the fully sharded facade yields for never-allocated
    /// slots in foreign regions.
    ///
    /// # Panics
    ///
    /// Panics if `core >= shards`, `shards` is zero, or the region would be
    /// empty.
    pub fn region(core: usize, shards: usize, total_capacity: u64) -> Self {
        assert!(shards > 0, "at least one swap shard is required");
        assert!(core < shards, "core {core} outside {shards} shards");
        let span = total_capacity / shards as u64;
        assert!(span > 0, "swap capacity too small for {shards} shards");
        ShardedSwap {
            span,
            shards: vec![SwapSpace::with_base(core as u64 * span, span)],
        }
    }

    /// Number of shards (one per core).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Width of one shard's slot region.
    pub fn span(&self) -> u64 {
        self.span
    }

    /// The shard whose region contains `slot`.
    pub fn shard_of(&self, slot: SwapSlot) -> usize {
        ((slot.0 / self.span) as usize).min(self.shards.len() - 1)
    }

    /// Allocates a slot for `(pid, page)` from `core`'s region.
    ///
    /// Within the region the same sequential-burst layout (and clean-slot
    /// reuse) as [`SwapSpace::allocate`] applies. Returns `None` when the
    /// region is full.
    pub fn allocate_on(&mut self, core: usize, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        let shard = core.min(self.shards.len() - 1);
        self.shards[shard].allocate(pid, page)
    }

    /// Frees a slot, forgetting its owner (routed to the owning shard).
    pub fn free(&mut self, slot: SwapSlot) {
        let shard = self.shard_of(slot);
        self.shards[shard].free(slot);
    }

    /// Returns the process and virtual page stored in a slot, if any.
    pub fn owner(&self, slot: SwapSlot) -> Option<(Pid, VirtPage)> {
        self.shards[self.shard_of(slot)].owner(slot)
    }

    /// The shard owning *every* slot of `slots`, if they all route to one
    /// shard (prefetch spans follow one trend from one faulting slot, so in
    /// the common case the whole span lives in one region). Computed from
    /// the span's extremes — no per-slot routing. `None` for an empty span
    /// or one that straddles a region boundary.
    pub fn span_shard(&self, slots: &[SwapSlot]) -> Option<usize> {
        span_shard_by(slots, self.span, self.shards.len())
    }

    /// Batch owner lookup for a prefetch span: routes the span to its shard
    /// once (falling back to per-slot routing across a region boundary) and
    /// writes each slot's owner into `out`.
    ///
    /// Equivalent to calling [`ShardedSwap::owner`] per slot.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `slots`.
    pub fn owners_span(&self, slots: &[SwapSlot], out: &mut [Option<(Pid, VirtPage)>]) {
        match self.span_shard(slots) {
            Some(shard) => {
                let space = &self.shards[shard];
                for (i, &slot) in slots.iter().enumerate() {
                    out[i] = space.owner(slot);
                }
            }
            None => {
                for (i, &slot) in slots.iter().enumerate() {
                    out[i] = self.owner(slot);
                }
            }
        }
    }

    /// Returns the slot currently assigned to `(pid, page)` in any shard.
    pub fn slot_of(&self, pid: Pid, page: VirtPage) -> Option<SwapSlot> {
        self.shards.iter().find_map(|s| s.slot_of(pid, page))
    }

    /// Number of slots currently in use across all shards.
    pub fn used_slots(&self) -> u64 {
        self.shards.iter().map(|s| s.used_slots()).sum()
    }
}

/// Per-core sharded swap/prefetch cache.
///
/// Slots are routed to shards by the same region mapping as
/// [`ShardedSwap`] (`slot / span`), so the cache entry for a page is always
/// found in one deterministic shard no matter which core looks. Each shard
/// has its own capacity, and the engine drives one eviction-policy instance
/// per shard against it.
///
/// # Examples
///
/// ```
/// use leap_mem::{CacheOrigin, Pid, ShardedSwapCache, SwapSlot};
/// use leap_sim_core::Nanos;
///
/// // Two shards over regions [0, 100) and [100, 200), 8 pages each.
/// let mut cache = ShardedSwapCache::new(2, 8, 100);
/// cache.insert(SwapSlot(150), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
/// assert_eq!(cache.shard_of(SwapSlot(150)), 1);
/// assert!(cache.contains(SwapSlot(150)));
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSwapCache {
    span: u64,
    shards: Vec<SwapCache>,
}

impl ShardedSwapCache {
    /// Creates `shards` cache shards of `per_shard_pages` capacity each,
    /// routing slots by region width `span`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `span` is zero.
    pub fn new(shards: usize, per_shard_pages: u64, span: u64) -> Self {
        assert!(shards > 0, "at least one cache shard is required");
        assert!(span > 0, "slot region span must be nonzero");
        ShardedSwapCache {
            span,
            shards: (0..shards)
                .map(|_| SwapCache::new(per_shard_pages))
                .collect(),
        }
    }

    /// A single unsharded cache of `capacity_pages` (the legacy layout every
    /// single-process replay uses).
    pub fn single(capacity_pages: u64) -> Self {
        ShardedSwapCache::new(1, capacity_pages, u64::MAX)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard whose region contains `slot`.
    pub fn shard_of(&self, slot: SwapSlot) -> usize {
        ((slot.0 / self.span) as usize).min(self.shards.len() - 1)
    }

    /// Shared view of shard `i`.
    pub fn shard(&self, i: usize) -> &SwapCache {
        &self.shards[i]
    }

    /// Mutable view of shard `i` (what the per-shard eviction policy scans).
    pub fn shard_mut(&mut self, i: usize) -> &mut SwapCache {
        &mut self.shards[i]
    }

    /// Mutable iterator over all shards, in shard order.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut SwapCache> + '_ {
        self.shards.iter_mut()
    }

    /// Total pages cached across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no shard holds any page.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// True if the shard owning `slot` is at capacity.
    pub fn is_full_for(&self, slot: SwapSlot) -> bool {
        self.shards[self.shard_of(slot)].is_full()
    }

    /// True if `slot` is cached.
    pub fn contains(&self, slot: SwapSlot) -> bool {
        self.shards[self.shard_of(slot)].contains(slot)
    }

    /// Returns the entry for `slot`, if cached.
    pub fn get(&self, slot: SwapSlot) -> Option<&CacheEntry> {
        self.shards[self.shard_of(slot)].get(slot)
    }

    /// Inserts a page into the shard owning `slot` (see
    /// [`SwapCache::insert`] for the capacity contract).
    pub fn insert(&mut self, slot: SwapSlot, pid: Pid, origin: CacheOrigin, now: Nanos) -> bool {
        let shard = self.shard_of(slot);
        self.shards[shard].insert(slot, pid, origin, now)
    }

    /// Records a hit on `slot` at time `now`, returning the updated entry.
    pub fn record_hit(&mut self, slot: SwapSlot, now: Nanos) -> Option<CacheEntry> {
        let shard = self.shard_of(slot);
        self.shards[shard].record_hit(slot, now)
    }

    /// Removes a page from the cache, returning its entry.
    pub fn remove(&mut self, slot: SwapSlot) -> Option<CacheEntry> {
        let shard = self.shard_of(slot);
        self.shards[shard].remove(slot)
    }

    /// Cached pages that were prefetched and never hit, across all shards.
    pub fn unused_prefetched(&self) -> u64 {
        self.shards.iter().map(|s| s.unused_prefetched()).sum()
    }

    /// The shard owning *every* slot of `slots`, if they all route to one
    /// shard — see [`ShardedSwap::span_shard`]. `None` for an empty span or
    /// one that straddles a region boundary.
    pub fn span_shard(&self, slots: &[SwapSlot]) -> Option<usize> {
        span_shard_by(slots, self.span, self.shards.len())
    }

    /// Batch presence probe for a prefetch span: routes the span to its
    /// shard once and writes per-slot presence into `out`. Equivalent to
    /// calling [`ShardedSwapCache::contains`] per slot.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `slots`.
    pub fn contains_span(&self, slots: &[SwapSlot], out: &mut [bool]) {
        match self.span_shard(slots) {
            Some(shard) => {
                let cache = &self.shards[shard];
                for (i, &slot) in slots.iter().enumerate() {
                    out[i] = cache.contains(slot);
                }
            }
            None => {
                for (i, &slot) in slots.iter().enumerate() {
                    out[i] = self.contains(slot);
                }
            }
        }
    }

    /// Installs a whole admitted prefetch span into an already-routed
    /// `shard` in one pass: one [`SwapCache::insert_fresh`] (a single
    /// hash-table operation) per page, no per-page routing. `pids[i]` owns
    /// `slots[i]`.
    ///
    /// Same caller contract as `insert_fresh`: every slot was just probed
    /// absent and the shard has room for the whole span (the engine's
    /// span-admission fast path establishes exactly this before calling).
    ///
    /// # Panics
    ///
    /// Panics if `pids` is shorter than `slots` or `shard` is out of range.
    pub fn insert_fresh_span(
        &mut self,
        shard: usize,
        slots: &[SwapSlot],
        pids: &[Pid],
        origin: CacheOrigin,
        now: Nanos,
    ) {
        let cache = &mut self.shards[shard];
        for (i, &slot) in slots.iter().enumerate() {
            cache.insert_fresh(slot, pids[i], origin, now);
        }
    }
}

/// Shared span-routing rule: a span belongs to one shard iff its extreme
/// slots do (regions are contiguous slot ranges, so everything in between
/// routes identically).
fn span_shard_by(slots: &[SwapSlot], span: u64, shards: usize) -> Option<usize> {
    let (first, rest) = slots.split_first()?;
    let (mut lo, mut hi) = (first.0, first.0);
    for s in rest {
        lo = lo.min(s.0);
        hi = hi.max(s.0);
    }
    let shard_lo = ((lo / span) as usize).min(shards - 1);
    let shard_hi = ((hi / span) as usize).min(shards - 1);
    (shard_lo == shard_hi).then_some(shard_lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regions_are_disjoint_and_sequential() {
        let mut swap = ShardedSwap::new(4, 400);
        assert_eq!(swap.span(), 100);
        for core in 0..4 {
            let slots: Vec<u64> = (0..5)
                .map(|p| {
                    swap.allocate_on(core, Pid(core as u32 + 1), VirtPage(p))
                        .unwrap()
                        .0
                })
                .collect();
            let base = core as u64 * 100;
            assert_eq!(slots, (base..base + 5).collect::<Vec<_>>());
        }
        assert_eq!(swap.used_slots(), 20);
    }

    #[test]
    fn routing_finds_owners_across_shards() {
        let mut swap = ShardedSwap::new(2, 200);
        let a = swap.allocate_on(0, Pid(1), VirtPage(9)).unwrap();
        let b = swap.allocate_on(1, Pid(2), VirtPage(9)).unwrap();
        assert_eq!(swap.owner(a), Some((Pid(1), VirtPage(9))));
        assert_eq!(swap.owner(b), Some((Pid(2), VirtPage(9))));
        assert_eq!(swap.slot_of(Pid(2), VirtPage(9)), Some(b));
        swap.free(a);
        assert_eq!(swap.owner(a), None);
        assert_eq!(swap.used_slots(), 1);
    }

    #[test]
    fn shard_capacity_is_per_region() {
        let mut swap = ShardedSwap::new(2, 4);
        // Each region holds 2 slots.
        assert!(swap.allocate_on(0, Pid(1), VirtPage(0)).is_some());
        assert!(swap.allocate_on(0, Pid(1), VirtPage(1)).is_some());
        assert!(swap.allocate_on(0, Pid(1), VirtPage(2)).is_none());
        // The other region is unaffected.
        assert!(swap.allocate_on(1, Pid(1), VirtPage(2)).is_some());
    }

    #[test]
    fn out_of_range_cores_clamp_to_the_last_shard() {
        let mut swap = ShardedSwap::new(2, 200);
        let slot = swap.allocate_on(99, Pid(1), VirtPage(1)).unwrap();
        assert_eq!(swap.shard_of(slot), 1);
    }

    #[test]
    fn single_shard_matches_unsharded_layout() {
        let mut sharded = ShardedSwap::new(1, 100);
        let mut plain = SwapSpace::new(100);
        for p in 0..10u64 {
            assert_eq!(
                sharded.allocate_on(0, Pid(1), VirtPage(p)),
                plain.allocate(Pid(1), VirtPage(p))
            );
        }
    }

    #[test]
    fn cache_routes_by_slot_region() {
        let mut cache = ShardedSwapCache::new(2, 4, 100);
        assert!(cache.insert(SwapSlot(10), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert!(cache.insert(SwapSlot(110), Pid(2), CacheOrigin::Demand, Nanos::ZERO));
        assert_eq!(cache.shard_of(SwapSlot(10)), 0);
        assert_eq!(cache.shard_of(SwapSlot(110)), 1);
        assert_eq!(cache.shard(0).len(), 1);
        assert_eq!(cache.shard(1).len(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(SwapSlot(110)));
        let entry = cache
            .record_hit(SwapSlot(110), Nanos::from_micros(3))
            .unwrap();
        assert_eq!(entry.first_hit_at, Some(Nanos::from_micros(3)));
        assert!(cache.remove(SwapSlot(10)).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn per_shard_capacity_is_independent() {
        let mut cache = ShardedSwapCache::new(2, 1, 100);
        assert!(cache.insert(SwapSlot(0), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        // Shard 0 is full; shard 1 still has room.
        assert!(cache.is_full_for(SwapSlot(1)));
        assert!(!cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert!(!cache.is_full_for(SwapSlot(150)));
        assert!(cache.insert(SwapSlot(150), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO));
        assert_eq!(cache.unused_prefetched(), 2);
    }

    #[test]
    fn span_shard_routes_contiguous_spans_once() {
        let cache = ShardedSwapCache::new(4, 8, 100);
        // A span inside one region routes once.
        let inside: Vec<SwapSlot> = (110..118).map(SwapSlot).collect();
        assert_eq!(cache.span_shard(&inside), Some(1));
        // Straddling a boundary cannot be routed as one span.
        let straddle = [SwapSlot(99), SwapSlot(100)];
        assert_eq!(cache.span_shard(&straddle), None);
        // Empty spans have no shard.
        assert_eq!(cache.span_shard(&[]), None);
        // Alternating (speculative around-the-fault) spans route by their
        // extremes.
        let around = [SwapSlot(150), SwapSlot(148), SwapSlot(152)];
        assert_eq!(cache.span_shard(&around), Some(1));
    }

    proptest! {
        /// `contains_span` + `insert_fresh_span` are observably identical
        /// to per-slot loops, for arbitrary slots (including spans
        /// straddling region boundaries) and arbitrary pre-populated state.
        #[test]
        fn prop_cache_span_ops_match_per_page_loops(
            prepopulate in proptest::collection::vec(0u64..400, 0..40),
            span in proptest::collection::vec(0u64..400, 0..16),
            per_shard in 1u64..12,
        ) {
            let build = || {
                let mut c = ShardedSwapCache::new(4, per_shard, 100);
                for &s in &prepopulate {
                    let _ = c.insert(SwapSlot(s), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
                }
                c
            };
            let slots: Vec<SwapSlot> = span.iter().copied().map(SwapSlot).collect();

            // contains_span ≡ contains loop.
            let cache = build();
            let mut batched = vec![false; slots.len()];
            cache.contains_span(&slots, &mut batched);
            let looped: Vec<bool> = slots.iter().map(|&s| cache.contains(s)).collect();
            prop_assert_eq!(&batched, &looped);

            // insert_fresh_span ≡ insert_fresh loop, under the admission
            // path's precondition (the span's shard, slots probed absent,
            // room for all of them): same final contents everywhere.
            if let Some(shard) = cache.span_shard(&slots) {
                let mut fresh: Vec<SwapSlot> = Vec::new();
                for (i, &s) in slots.iter().enumerate() {
                    if !batched[i] && !fresh.contains(&s) {
                        fresh.push(s);
                    }
                }
                prop_assume!(cache.shard(shard).free_pages() >= fresh.len() as u64);
                let pids: Vec<Pid> = (0..fresh.len() as u32).map(Pid).collect();
                let mut span_cache = build();
                span_cache.insert_fresh_span(
                    shard, &fresh, &pids, CacheOrigin::Demand, Nanos::from_micros(1),
                );
                let mut loop_cache = build();
                for (i, &s) in fresh.iter().enumerate() {
                    loop_cache
                        .shard_mut(shard)
                        .insert_fresh(s, pids[i], CacheOrigin::Demand, Nanos::from_micros(1));
                }
                prop_assert_eq!(span_cache.len(), loop_cache.len());
                for s in (0u64..400).map(SwapSlot) {
                    prop_assert_eq!(span_cache.get(s), loop_cache.get(s));
                }
            }
        }

        /// `owners_span` ≡ per-slot `owner` lookups.
        #[test]
        fn prop_swap_owners_span_matches_loop(
            allocs in proptest::collection::vec((0usize..4, 0u64..64), 0..60),
            span in proptest::collection::vec(0u64..400, 0..16),
        ) {
            let mut swap = ShardedSwap::new(4, 400);
            for (core, page) in allocs {
                let _ = swap.allocate_on(core, Pid(core as u32 + 1), VirtPage(page));
            }
            let slots: Vec<SwapSlot> = span.iter().copied().map(SwapSlot).collect();
            let mut batched = vec![None; slots.len()];
            swap.owners_span(&slots, &mut batched);
            let looped: Vec<_> = slots.iter().map(|&s| swap.owner(s)).collect();
            prop_assert_eq!(batched, looped);
        }
    }

    #[test]
    fn single_cache_shard_behaves_like_swap_cache() {
        let mut cache = ShardedSwapCache::single(2);
        assert_eq!(cache.shards(), 1);
        assert!(cache.insert(SwapSlot(5), Pid(1), CacheOrigin::Demand, Nanos::ZERO));
        assert!(cache.insert(
            SwapSlot(u64::MAX - 1),
            Pid(1),
            CacheOrigin::Demand,
            Nanos::ZERO
        ));
        assert!(cache.is_full_for(SwapSlot(7)));
        assert!(!cache.insert(SwapSlot(7), Pid(1), CacheOrigin::Demand, Nanos::ZERO));
    }
}
