//! An LRU list with O(1) touch/evict, used for resident-page reclamation.
//!
//! The kernel keeps resident pages on active/inactive LRU lists that the
//! background reclaimer (`kswapd`) scans when memory pressure builds. This
//! module provides the ordered structure those policies need; the scan-cost
//! and eviction *policies* live in the `leap-eviction` crate.

use leap_sim_core::hash::{fx_map_with_capacity, FxHashMap};
use std::hash::Hash;

/// An ordered least-recently-used list over keys of type `K`.
///
/// Implemented as a doubly linked list over a slab of nodes plus a hash map
/// for O(1) lookup, giving O(1) `touch`, `push`, `pop_lru`, and `remove`.
///
/// # Examples
///
/// ```
/// use leap_mem::LruList;
///
/// let mut lru: LruList<u64> = LruList::new();
/// lru.push(1);
/// lru.push(2);
/// lru.push(3);
/// lru.touch(&1); // 1 becomes most recently used
/// assert_eq!(lru.pop_lru(), Some(2));
/// assert_eq!(lru.pop_lru(), Some(3));
/// assert_eq!(lru.pop_lru(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct LruList<K: Eq + Hash + Clone> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    index: FxHashMap<K, usize>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
}

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: Option<usize>,
    next: Option<usize>,
}

impl<K: Eq + Hash + Clone> Default for LruList<K> {
    fn default() -> Self {
        LruList::new()
    }
}

impl<K: Eq + Hash + Clone> LruList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
            head: None,
            tail: None,
        }
    }

    /// Creates an empty list pre-sized for `capacity` keys (e.g. a
    /// process's resident-page limit), so steady-state `push`/`touch`
    /// never reallocate the node slab or rehash the index.
    pub fn with_capacity(capacity: usize) -> Self {
        LruList {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: fx_map_with_capacity(capacity),
            head: None,
            tail: None,
        }
    }

    /// Number of keys on the list.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `key` is on the list.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key` as the most recently used entry.
    ///
    /// If the key is already present it is just moved to the MRU position.
    pub fn push(&mut self, key: K) {
        if self.index.contains_key(&key) {
            self.touch(&key);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key: key.clone(),
                    prev: None,
                    next: self.head,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    prev: None,
                    next: self.head,
                });
                self.nodes.len() - 1
            }
        };
        if let Some(old_head) = self.head {
            self.nodes[old_head].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        self.index.insert(key, idx);
    }

    /// Moves `key` to the MRU position; returns false if it is not present.
    pub fn touch(&mut self, key: &K) -> bool {
        let idx = match self.index.get(key) {
            Some(&i) => i,
            None => return false,
        };
        self.unlink(idx);
        // Relink at head.
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(old_head) = self.head {
            self.nodes[old_head].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        true
    }

    /// Removes and returns the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let tail = self.tail?;
        let key = self.nodes[tail].key.clone();
        self.unlink(tail);
        self.free.push(tail);
        self.index.remove(&key);
        Some(key)
    }

    /// Peeks at the least recently used key without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        self.tail.map(|t| &self.nodes[t].key)
    }

    /// Removes an arbitrary key; returns true if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let idx = match self.index.remove(key) {
            Some(i) => i,
            None => return false,
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Iterates from least recently used to most recently used.
    pub fn iter_lru_first(&self) -> LruIter<'_, K> {
        LruIter {
            list: self,
            cursor: self.tail,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }
}

/// Iterator over an [`LruList`] from LRU to MRU.
#[derive(Debug)]
pub struct LruIter<'a, K: Eq + Hash + Clone> {
    list: &'a LruList<K>,
    cursor: Option<usize>,
}

impl<'a, K: Eq + Hash + Clone> Iterator for LruIter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        let idx = self.cursor?;
        self.cursor = self.list.nodes[idx].prev;
        Some(&self.list.nodes[idx].key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = LruList::new();
        for i in 0..5u64 {
            lru.push(i);
        }
        assert_eq!(lru.pop_lru(), Some(0));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn touch_moves_to_mru() {
        let mut lru = LruList::new();
        lru.push(1u64);
        lru.push(2);
        lru.push(3);
        assert!(lru.touch(&1));
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_of_missing_key_is_false() {
        let mut lru: LruList<u64> = LruList::new();
        assert!(!lru.touch(&9));
    }

    #[test]
    fn duplicate_push_acts_as_touch() {
        let mut lru = LruList::new();
        lru.push(1u64);
        lru.push(2);
        lru.push(1);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.pop_lru(), Some(2));
    }

    #[test]
    fn remove_arbitrary_key() {
        let mut lru = LruList::new();
        for i in 0..4u64 {
            lru.push(i);
        }
        assert!(lru.remove(&2));
        assert!(!lru.remove(&2));
        let order: Vec<u64> = std::iter::from_fn(|| lru.pop_lru()).collect();
        assert_eq!(order, vec![0, 1, 3]);
    }

    #[test]
    fn iter_lru_first_matches_pop_order() {
        let mut lru = LruList::new();
        for i in 0..6u64 {
            lru.push(i);
        }
        lru.touch(&0);
        let iterated: Vec<u64> = lru.iter_lru_first().copied().collect();
        let popped: Vec<u64> = std::iter::from_fn(|| lru.pop_lru()).collect();
        assert_eq!(iterated, popped);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut lru = LruList::new();
        lru.push(7u64);
        assert_eq!(lru.peek_lru(), Some(&7));
        assert_eq!(lru.len(), 1);
    }

    proptest! {
        /// The list agrees with a reference model (Vec-based LRU) on every
        /// operation sequence.
        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec((0u8..4, 0u64..16), 0..300),
        ) {
            let mut lru = LruList::new();
            let mut model: Vec<u64> = Vec::new(); // front = LRU, back = MRU
            for (op, key) in ops {
                match op {
                    0 => {
                        // push
                        if let Some(pos) = model.iter().position(|&k| k == key) {
                            model.remove(pos);
                        }
                        model.push(key);
                        lru.push(key);
                    }
                    1 => {
                        // touch
                        let expected = if let Some(pos) = model.iter().position(|&k| k == key) {
                            model.remove(pos);
                            model.push(key);
                            true
                        } else {
                            false
                        };
                        prop_assert_eq!(lru.touch(&key), expected);
                    }
                    2 => {
                        // pop_lru
                        let expected = if model.is_empty() { None } else { Some(model.remove(0)) };
                        prop_assert_eq!(lru.pop_lru(), expected);
                    }
                    _ => {
                        // remove
                        let expected = if let Some(pos) = model.iter().position(|&k| k == key) {
                            model.remove(pos);
                            true
                        } else {
                            false
                        };
                        prop_assert_eq!(lru.remove(&key), expected);
                    }
                }
                prop_assert_eq!(lru.len(), model.len());
                let listed: Vec<u64> = lru.iter_lru_first().copied().collect();
                prop_assert_eq!(listed, model.clone());
            }
        }
    }
}
