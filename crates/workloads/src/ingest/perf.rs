//! The perf-script page-fault grammar (the canonical fault-log format).
//!
//! One page fault per line, in the shape `perf script -F
//! comm,pid,cpu,time,event,addr` emits (and `leap::TraceRecorder` exports):
//!
//! ```text
//! event-line := comm WS pid WS "[" cpu "]" WS time ":" WS event ":" WS addr [WS rw] [WS ...]
//! comm       := non-whitespace token (the process name)
//! pid        := decimal u32
//! cpu        := decimal (parsed, not interpreted — demux is by pid)
//! time       := secs [ "." frac ]     frac: 1..=9 digits (ns precision)
//! event      := non-whitespace token ending in ":" (name not interpreted)
//! addr       := [ "addr=" ] [ "0x" ] hex-u64 (a byte address)
//! rw         := "R" | "W"             (defaults to R when absent)
//! ```
//!
//! Anything after the `rw` token (instruction pointers, symbols, DSOs —
//! the fields a default `perf script` appends) is ignored. Blank lines and
//! `#` comments are skipped by the shared driver; a `# t0: <time>` comment
//! before the first event sets the base timestamp the first per-pid compute
//! gap is measured from.

use super::{addr_to_page, parse_hex_addr, parse_time, Demux, IngestError, LogFormat};

/// Parses one perf event line into the demultiplexer.
pub(crate) fn parse_line(line_no: u64, line: &str, demux: &mut Demux) -> Result<(), IngestError> {
    let mut tokens = line.split_whitespace();
    let (Some(comm), Some(pid_tok), Some(cpu_tok), Some(time_tok), Some(event_tok), Some(addr_tok)) = (
        tokens.next(),
        tokens.next(),
        tokens.next(),
        tokens.next(),
        tokens.next(),
        tokens.next(),
    ) else {
        return Err(IngestError::TruncatedLine {
            line: line_no,
            format: LogFormat::PerfScript,
        });
    };

    let pid: u32 = pid_tok.parse().map_err(|_| IngestError::BadField {
        line: line_no,
        field: "pid",
    })?;

    let cpu_digits = cpu_tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or(IngestError::BadField {
            line: line_no,
            field: "cpu",
        })?;
    let _cpu: usize = cpu_digits.parse().map_err(|_| IngestError::BadField {
        line: line_no,
        field: "cpu",
    })?;

    let time_digits = time_tok.strip_suffix(':').ok_or(IngestError::BadField {
        line: line_no,
        field: "time",
    })?;
    let t_ns = parse_time(line_no, time_digits)?;

    if !event_tok.ends_with(':') {
        return Err(IngestError::BadField {
            line: line_no,
            field: "event",
        });
    }

    let addr_digits = addr_tok.strip_prefix("addr=").unwrap_or(addr_tok);
    let addr = parse_hex_addr(line_no, addr_digits, "addr")?;

    let is_write = matches!(tokens.next(), Some("W"));

    demux.push_fault(line_no, t_ns, pid, comm, addr_to_page(addr), is_write)
}

#[cfg(test)]
mod tests {
    use super::super::{ingest_str, IngestError, LogFormat};

    fn perf(log: &str) -> Result<super::super::IngestedLog, IngestError> {
        ingest_str(log, LogFormat::PerfScript)
    }

    #[test]
    fn parses_a_realistic_line() {
        let ingested =
            perf("memcached 5124 [002] 1748.230451: page-faults: addr=0x7f8a2c01d000 R\n").unwrap();
        assert_eq!(ingested.pids(), &[5124]);
        assert_eq!(ingested.traces()[0].page_sequence(), vec![0x7f8a2c01d]);
        assert!(!ingested.traces()[0].accesses()[0].is_write);
    }

    #[test]
    fn bare_hex_addresses_and_missing_rw_are_accepted() {
        let ingested =
            perf("app 1 [000] 0.000001000: minor-faults: 7f8a2c01d000 extra junk\n").unwrap();
        assert_eq!(ingested.traces()[0].page_sequence(), vec![0x7f8a2c01d]);
        assert!(!ingested.traces()[0].accesses()[0].is_write);
    }

    #[test]
    fn write_marker_is_parsed() {
        let ingested = perf("app 1 [000] 0.000001000: page-faults: addr=0x1000 W\n").unwrap();
        assert!(ingested.traces()[0].accesses()[0].is_write);
    }

    #[test]
    fn non_page_aligned_addresses_floor_to_their_page() {
        let ingested = perf("app 1 [000] 0.5: page-faults: addr=0x1fff\n").unwrap();
        assert_eq!(ingested.traces()[0].page_sequence(), vec![1]);
    }

    #[test]
    fn demux_preserves_per_pid_order_and_gaps() {
        let log = "\
# t0: 10.000000000
a 1 [000] 10.000001000: page-faults: addr=0x1000
b 2 [001] 10.000002000: page-faults: addr=0x8000
a 1 [000] 10.000005000: page-faults: addr=0x2000
b 2 [001] 10.000005000: page-faults: addr=0x9000
";
        let ingested = perf(log).unwrap();
        let a = &ingested.traces()[0];
        let b = &ingested.traces()[1];
        assert_eq!(a.page_sequence(), vec![1, 2]);
        assert_eq!(b.page_sequence(), vec![8, 9]);
        // a: 1 µs from base, then a 4 µs gap; b: 2 µs from base, then 3 µs.
        assert_eq!(a.accesses()[0].compute.as_nanos(), 1_000);
        assert_eq!(a.accesses()[1].compute.as_nanos(), 4_000);
        assert_eq!(b.accesses()[0].compute.as_nanos(), 2_000);
        assert_eq!(b.accesses()[1].compute.as_nanos(), 3_000);
    }
}
