//! Trace ingestion: replaying recorded fault logs as workloads.
//!
//! The rest of this crate *generates* access traces; this module *ingests*
//! them from the two text formats real fault recorders produce (see
//! ARCHITECTURE.md "Trace ingestion" for the full grammars):
//!
//! - [`LogFormat::PerfScript`] ([`perf`]): one page fault per line, in the
//!   shape of `perf script -F comm,pid,cpu,time,event,addr` output. This is
//!   also the **canonical** format — `leap::TraceRecorder` exports any
//!   simulated run back out in it, and ingesting that export reproduces the
//!   replayed traces bit-identically (the round-trip invariant the test
//!   suite leans on).
//! - [`LogFormat::DamonRegions`] ([`damon`]): DAMON-style region samples
//!   (`timestamp pid start-end nr_accesses`), expanded deterministically
//!   into page accesses.
//!
//! Normalization is shared by both formats:
//!
//! - **Addresses → pages.** Byte addresses are floored to their 4 KiB page
//!   (`addr >> 12`); the simulator replays page numbers.
//! - **Timestamps → compute cost.** The gap between consecutive events *of
//!   the same pid* becomes the access's [`Access::compute`] (think time) —
//!   the standard trace-replay assumption: the simulator re-creates memory
//!   stalls itself, so recorded inter-fault gaps are treated as application
//!   work. A pid's first event measures its gap from the log base: the
//!   `# t0: <time>` header when present, else the log's first event
//!   timestamp. Timestamps must be globally non-decreasing.
//! - **Multi-pid demultiplexing.** Events are split by pid into one
//!   [`AccessTrace`] per process (ascending pid order, so replays are
//!   reproducible), ready for `Simulator::run_multi`. Pids that never
//!   produce an access are dropped.
//!
//! Readers are streaming and line-oriented: one reused line buffer, so a
//! multi-GB log is never materialized in memory (only the parsed traces
//! are).
//!
//! # Examples
//!
//! ```
//! use leap_workloads::ingest::{ingest_str, LogFormat};
//!
//! let log = concat!(
//!     "# t0: 0.000000000\n",
//!     "app 7 [000] 0.000001000: page-faults: addr=0x7f0000001000 R\n",
//!     "app 7 [000] 0.000003500: page-faults: addr=0x7f0000002000 W\n",
//! );
//! let ingested = ingest_str(log, LogFormat::PerfScript).unwrap();
//! assert_eq!(ingested.processes(), 1);
//! let trace = &ingested.traces()[0];
//! assert_eq!(trace.name(), "app");
//! assert_eq!(trace.page_sequence(), vec![0x7f000_0001, 0x7f000_0002]);
//! // Inter-fault gaps became compute costs (1 µs, then 2.5 µs).
//! assert_eq!(trace.accesses()[0].compute.as_nanos(), 1_000);
//! assert_eq!(trace.accesses()[1].compute.as_nanos(), 2_500);
//! assert!(trace.accesses()[1].is_write);
//! ```

pub mod damon;
pub mod error;
pub mod perf;

pub use error::IngestError;

use crate::trace::{Access, AccessTrace};
use leap_sim_core::units::{PAGE_SHIFT, PAGE_SIZE};
use leap_sim_core::{FxHashMap, Nanos};
use std::io::BufRead;
use std::path::Path;

/// Per-line expansion cap for DAMON region samples: a sample claiming more
/// accesses than this is rejected ([`IngestError::RegionTooDense`]) instead
/// of ballooning the parsed trace. Real DAMON access counts are bounded by
/// the aggregation/sampling interval ratio and sit far below this.
pub const MAX_REGION_ACCESSES: u64 = 1 << 20;

/// The fault-log text formats the ingestion subsystem understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// DAMON-style region-sample lines: `time pid start-end nr_accesses`.
    DamonRegions,
    /// perf-script-style per-fault lines:
    /// `comm pid [cpu] time: event: addr [R|W]`. The canonical format
    /// `leap::TraceRecorder` also exports.
    PerfScript,
}

impl LogFormat {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            LogFormat::DamonRegions => "damon",
            LogFormat::PerfScript => "perf-script",
        }
    }

    /// The inverse of [`LogFormat::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        [LogFormat::DamonRegions, LogFormat::PerfScript]
            .into_iter()
            .find(|f| f.label() == label)
    }
}

/// Guesses the format of one event line (the first non-blank, non-comment
/// line of a log), or `None` when it matches neither grammar's shape.
///
/// A DAMON line starts with a timestamp (leading digit; the fraction is
/// optional, as in the grammar) and carries the `start-end` region range as
/// its third token; a perf line's third token is the bracketed cpu. The
/// full grammar is still enforced by the parser afterwards — detection only
/// routes.
pub fn detect_format(line: &str) -> Option<LogFormat> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let starts_with_digit = |t: &str| t.bytes().next().is_some_and(|b| b.is_ascii_digit());
    if tokens.len() >= 4 && tokens[2].contains('-') && starts_with_digit(tokens[0]) {
        return Some(LogFormat::DamonRegions);
    }
    if tokens.len() >= 3 && tokens[2].starts_with('[') && tokens[2].ends_with(']') {
        return Some(LogFormat::PerfScript);
    }
    None
}

/// One pid's accumulating stream during demultiplexing.
#[derive(Debug)]
struct PidStream {
    pid: u32,
    /// Trace name: the pid's first comm (perf) or `pid<N>` (DAMON).
    name: String,
    accesses: Vec<Access>,
    /// Timestamp of this pid's previous event (the subtrahend of the next
    /// compute derivation).
    prev_ns: u64,
}

/// The shared demultiplexer both parsers feed: splits events by pid,
/// derives compute costs from per-pid timestamp gaps, and enforces global
/// timestamp monotonicity.
#[derive(Debug)]
pub(crate) struct Demux {
    streams: Vec<PidStream>,
    /// pid → index into `streams`, so a many-process log costs O(1) per
    /// line instead of a per-line scan over every pid seen so far.
    by_pid: FxHashMap<u32, usize>,
    /// The log base: `# t0:` header if seen before the first event, else
    /// the first event's timestamp.
    base_ns: Option<u64>,
    /// Latest timestamp seen, for the monotonicity check.
    last_ns: u64,
    /// Number of event lines consumed.
    event_lines: u64,
}

impl Demux {
    fn new() -> Self {
        Demux {
            streams: Vec::new(),
            by_pid: FxHashMap::default(),
            base_ns: None,
            last_ns: 0,
            event_lines: 0,
        }
    }

    /// Installs the `# t0:` base. Honored only before the first event line.
    fn set_base(&mut self, t0_ns: u64) {
        if self.event_lines == 0 && self.base_ns.is_none() {
            self.base_ns = Some(t0_ns);
            self.last_ns = t0_ns;
        }
    }

    /// Validates `t_ns` against the global clock and returns the pid's
    /// stream index, creating the stream on first sight (`name` is only
    /// invoked then, so steady-state lines never build a name).
    fn stream_at(
        &mut self,
        line: u64,
        t_ns: u64,
        pid: u32,
        name: impl FnOnce() -> String,
    ) -> Result<usize, IngestError> {
        let base = *self.base_ns.get_or_insert(t_ns);
        if t_ns < base || t_ns < self.last_ns {
            return Err(IngestError::OutOfOrderTimestamp { line });
        }
        self.last_ns = t_ns;
        let idx = match self.by_pid.get(&pid) {
            Some(&idx) => idx,
            None => {
                self.streams.push(PidStream {
                    pid,
                    name: name(),
                    accesses: Vec::new(),
                    prev_ns: base,
                });
                let idx = self.streams.len() - 1;
                self.by_pid.insert(pid, idx);
                idx
            }
        };
        Ok(idx)
    }

    /// Books one per-fault event (the perf path): compute is the gap since
    /// the pid's previous event.
    fn push_fault(
        &mut self,
        line: u64,
        t_ns: u64,
        pid: u32,
        comm: &str,
        page: u64,
        is_write: bool,
    ) -> Result<(), IngestError> {
        let idx = self.stream_at(line, t_ns, pid, || comm.to_string())?;
        self.event_lines += 1;
        let stream = &mut self.streams[idx];
        let compute = Nanos(t_ns - stream.prev_ns);
        stream.prev_ns = t_ns;
        stream.accesses.push(Access {
            page,
            is_write,
            compute,
        });
        Ok(())
    }

    /// Books one region sample (the DAMON path): the sample's interval is
    /// split over `nr_accesses` reads striding evenly across the region's
    /// pages (the remainder lands on the first access). A zero-access
    /// sample still advances the pid's clock.
    fn push_region(
        &mut self,
        line: u64,
        t_ns: u64,
        pid: u32,
        start_page: u64,
        region_pages: u64,
        nr_accesses: u64,
    ) -> Result<(), IngestError> {
        let idx = self.stream_at(line, t_ns, pid, || format!("pid{pid}"))?;
        self.event_lines += 1;
        let stream = &mut self.streams[idx];
        let interval = t_ns - stream.prev_ns;
        stream.prev_ns = t_ns;
        if nr_accesses == 0 {
            return Ok(());
        }
        let per = interval / nr_accesses;
        let remainder = interval % nr_accesses;
        stream.accesses.reserve(nr_accesses as usize);
        for j in 0..nr_accesses {
            // u128 keeps the stride math exact for pathological regions.
            let offset = ((j as u128 * region_pages as u128) / nr_accesses as u128) as u64;
            stream.accesses.push(Access {
                page: start_page + offset,
                is_write: false,
                compute: Nanos(per + if j == 0 { remainder } else { 0 }),
            });
        }
        Ok(())
    }

    /// Finishes demultiplexing: drops access-free pids, orders traces by
    /// ascending pid.
    fn finish(mut self, format: LogFormat) -> Result<IngestedLog, IngestError> {
        self.streams.retain(|s| !s.accesses.is_empty());
        if self.streams.is_empty() {
            return Err(IngestError::EmptyLog);
        }
        self.streams.sort_by_key(|s| s.pid);
        let pids = self.streams.iter().map(|s| s.pid).collect();
        let traces = self
            .streams
            .into_iter()
            .map(|s| AccessTrace::new(s.name, s.accesses))
            .collect();
        Ok(IngestedLog {
            format,
            traces,
            pids,
            event_lines: self.event_lines,
        })
    }
}

/// A fault log parsed into per-process access traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestedLog {
    format: LogFormat,
    traces: Vec<AccessTrace>,
    pids: Vec<u32>,
    event_lines: u64,
}

impl IngestedLog {
    /// The format the log was parsed as.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// The demultiplexed traces, in ascending-pid order. Process `i`
    /// becomes `Pid(i + 1)` in a `run_multi` replay.
    pub fn traces(&self) -> &[AccessTrace] {
        &self.traces
    }

    /// Consumes the log into its traces.
    pub fn into_traces(self) -> Vec<AccessTrace> {
        self.traces
    }

    /// The recorded pids, parallel to [`IngestedLog::traces`].
    pub fn pids(&self) -> &[u32] {
        &self.pids
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.traces.len()
    }

    /// Total accesses across all traces.
    pub fn total_accesses(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }

    /// Number of event lines the parser consumed (for DAMON logs this can
    /// be far below [`IngestedLog::total_accesses`]).
    pub fn event_lines(&self) -> u64 {
        self.event_lines
    }
}

/// Classification of one raw log line, shared by both grammars.
enum LineKind<'a> {
    Blank,
    /// A comment; carries the `# t0:` base when the comment is the header.
    Comment {
        t0_ns: Option<u64>,
    },
    Event(&'a str),
}

fn classify(line_no: u64, line: &str) -> Result<LineKind<'_>, IngestError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(LineKind::Blank);
    }
    if let Some(comment) = trimmed.strip_prefix('#') {
        let comment = comment.trim_start();
        if let Some(t0) = comment.strip_prefix("t0:") {
            let t0_ns = parse_time(line_no, t0.trim())?;
            return Ok(LineKind::Comment { t0_ns: Some(t0_ns) });
        }
        return Ok(LineKind::Comment { t0_ns: None });
    }
    Ok(LineKind::Event(trimmed))
}

/// The single streaming driver behind both entry points: `format` is
/// pre-set for explicit-format ingestion or detected from the first event
/// line when `None` (so the two paths cannot diverge on comment, blank, or
/// `# t0:` handling).
fn drive_reader<R: BufRead>(
    mut reader: R,
    mut format: Option<LogFormat>,
) -> Result<IngestedLog, IngestError> {
    let mut demux = Demux::new();
    let mut buf = String::new();
    let mut line_no = 0u64;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        match classify(line_no, &buf)? {
            LineKind::Blank => {}
            LineKind::Comment { t0_ns } => {
                if let Some(t0_ns) = t0_ns {
                    demux.set_base(t0_ns);
                }
            }
            LineKind::Event(event) => {
                let fmt = match format {
                    Some(fmt) => fmt,
                    None => {
                        let detected = detect_format(event)
                            .ok_or(IngestError::UnknownFormat { line: line_no })?;
                        format = Some(detected);
                        detected
                    }
                };
                match fmt {
                    LogFormat::PerfScript => perf::parse_line(line_no, event, &mut demux)?,
                    LogFormat::DamonRegions => damon::parse_line(line_no, event, &mut demux)?,
                }
            }
        }
    }
    demux.finish(format.ok_or(IngestError::EmptyLog)?)
}

/// Streams `reader` line by line through the parser for `format`.
pub fn ingest_reader<R: BufRead>(reader: R, format: LogFormat) -> Result<IngestedLog, IngestError> {
    drive_reader(reader, Some(format))
}

/// Streams `reader`, auto-detecting the format from the first event line.
pub fn ingest_reader_auto<R: BufRead>(reader: R) -> Result<IngestedLog, IngestError> {
    drive_reader(reader, None)
}

/// Ingests a log held in memory (tests, recorder round trips).
pub fn ingest_str(log: &str, format: LogFormat) -> Result<IngestedLog, IngestError> {
    ingest_reader(log.as_bytes(), format)
}

/// Opens `path` and ingests it with format auto-detection, streaming.
pub fn ingest_path<P: AsRef<Path>>(path: P) -> Result<IngestedLog, IngestError> {
    let file = std::fs::File::open(path)?;
    ingest_reader_auto(std::io::BufReader::new(file))
}

/// Parses a `secs[.frac]` timestamp into nanoseconds. The fraction may have
/// 1–9 digits (nanosecond precision); more would silently lose precision,
/// so it is rejected.
pub(crate) fn parse_time(line: u64, token: &str) -> Result<u64, IngestError> {
    let (secs_str, frac_str) = match token.split_once('.') {
        Some((s, f)) => (s, f),
        None => (token, ""),
    };
    if secs_str.is_empty() || !secs_str.bytes().all(|b| b.is_ascii_digit()) {
        return Err(IngestError::BadField {
            line,
            field: "time",
        });
    }
    let secs: u64 = secs_str
        .parse()
        .map_err(|_| IngestError::TimestampOverflow { line })?;
    let frac_ns = match frac_str.len() {
        0 => 0,
        1..=9 => {
            if !frac_str.bytes().all(|b| b.is_ascii_digit()) {
                return Err(IngestError::BadField {
                    line,
                    field: "time",
                });
            }
            let frac: u64 = frac_str.parse().expect("all digits, <= 9 of them");
            frac * 10u64.pow(9 - frac_str.len() as u32)
        }
        _ => {
            return Err(IngestError::BadField {
                line,
                field: "time",
            })
        }
    };
    secs.checked_mul(1_000_000_000)
        .and_then(|ns| ns.checked_add(frac_ns))
        .ok_or(IngestError::TimestampOverflow { line })
}

/// Parses a hex byte address (optionally `0x`-prefixed), distinguishing
/// 64-bit overflow from garbage.
pub(crate) fn parse_hex_addr(
    line: u64,
    token: &str,
    field: &'static str,
) -> Result<u64, IngestError> {
    let digits = token.strip_prefix("0x").unwrap_or(token);
    if digits.is_empty() {
        return Err(IngestError::BadField { line, field });
    }
    u64::from_str_radix(digits, 16).map_err(|e| match e.kind() {
        std::num::IntErrorKind::PosOverflow => IngestError::AddressOverflow { line },
        _ => IngestError::BadField { line, field },
    })
}

/// Floors a byte address to its virtual page number.
pub(crate) fn addr_to_page(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Number of pages a `[start, end)` byte region covers (start floored, end
/// ceiled; callers have already checked `end > start`).
pub(crate) fn region_pages(start: u64, end: u64) -> u64 {
    let start_page = start >> PAGE_SHIFT;
    let end_page = (end - 1) / PAGE_SIZE + 1;
    end_page - start_page
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_time_handles_fractions() {
        assert_eq!(parse_time(1, "0").unwrap(), 0);
        assert_eq!(parse_time(1, "1.5").unwrap(), 1_500_000_000);
        assert_eq!(parse_time(1, "12.000000001").unwrap(), 12_000_000_001);
        assert_eq!(parse_time(1, "0.123456789").unwrap(), 123_456_789);
    }

    #[test]
    fn parse_time_rejects_garbage() {
        assert!(matches!(
            parse_time(3, "abc"),
            Err(IngestError::BadField {
                line: 3,
                field: "time"
            })
        ));
        assert!(matches!(
            parse_time(4, "1.0000000001"),
            Err(IngestError::BadField { line: 4, .. })
        ));
        assert!(matches!(
            parse_time(5, "99999999999999999999.0"),
            Err(IngestError::TimestampOverflow { line: 5 })
        ));
    }

    #[test]
    fn parse_hex_addr_distinguishes_overflow() {
        assert_eq!(parse_hex_addr(1, "0x1000", "addr").unwrap(), 0x1000);
        assert_eq!(parse_hex_addr(1, "ff", "addr").unwrap(), 0xff);
        assert!(matches!(
            parse_hex_addr(2, "0x1ffffffffffffffff", "addr"),
            Err(IngestError::AddressOverflow { line: 2 })
        ));
        assert!(matches!(
            parse_hex_addr(2, "xyz", "addr"),
            Err(IngestError::BadField {
                line: 2,
                field: "addr"
            })
        ));
    }

    #[test]
    fn region_pages_floors_and_ceils() {
        assert_eq!(region_pages(0, PAGE_SIZE), 1);
        assert_eq!(region_pages(0, PAGE_SIZE + 1), 2);
        assert_eq!(region_pages(100, 200), 1);
        assert_eq!(region_pages(PAGE_SIZE - 1, PAGE_SIZE + 1), 2);
    }

    #[test]
    fn detect_format_routes_both_grammars() {
        assert_eq!(
            detect_format("app 7 [000] 0.5: page-faults: addr=0x1000"),
            Some(LogFormat::PerfScript)
        );
        assert_eq!(
            detect_format("0.100000000 42 7f00000000-7f00004000 3"),
            Some(LogFormat::DamonRegions)
        );
        // The grammar's fraction is optional: whole-second timestamps must
        // route too (regression: detection once required a '.').
        assert_eq!(
            detect_format("5 42 0x10000-0x14000 3"),
            Some(LogFormat::DamonRegions)
        );
        assert_eq!(detect_format("hello world"), None);
        assert_eq!(detect_format("not a-log line here"), None);
    }

    #[test]
    fn format_labels_round_trip() {
        for fmt in [LogFormat::DamonRegions, LogFormat::PerfScript] {
            assert_eq!(LogFormat::from_label(fmt.label()), Some(fmt));
        }
        assert_eq!(LogFormat::from_label("nope"), None);
    }

    #[test]
    fn traces_come_out_in_ascending_pid_order() {
        let log = "\
b 9 [000] 0.000001000: page-faults: addr=0x2000
a 4 [000] 0.000002000: page-faults: addr=0x1000
b 9 [000] 0.000003000: page-faults: addr=0x3000
";
        let ingested = ingest_str(log, LogFormat::PerfScript).unwrap();
        assert_eq!(ingested.pids(), &[4, 9]);
        assert_eq!(ingested.traces()[0].name(), "a");
        assert_eq!(ingested.traces()[1].name(), "b");
        assert_eq!(ingested.total_accesses(), 3);
        assert_eq!(ingested.event_lines(), 3);
    }

    #[test]
    fn t0_header_sets_the_first_compute_gap() {
        let log = "\
# t0: 0.000000000
app 1 [000] 0.000000700: page-faults: addr=0x1000
";
        let ingested = ingest_str(log, LogFormat::PerfScript).unwrap();
        assert_eq!(ingested.traces()[0].accesses()[0].compute.as_nanos(), 700);
        // Without the header the first event itself is the base: zero gap.
        let ingested = ingest_str(
            "app 1 [000] 0.000000700: page-faults: addr=0x1000\n",
            LogFormat::PerfScript,
        )
        .unwrap();
        assert_eq!(ingested.traces()[0].accesses()[0].compute.as_nanos(), 0);
    }
}
