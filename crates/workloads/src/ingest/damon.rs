//! The DAMON-style region-sample grammar.
//!
//! DAMON (the kernel's Data Access MONitor) reports access frequencies at
//! *region* granularity: every aggregation interval it emits, per monitored
//! region, how many of the interval's samples found the region accessed.
//! This module ingests a line-oriented rendering of those samples (one
//! region sample per line — `damo report raw` output converts to it with a
//! one-line awk script):
//!
//! ```text
//! sample-line := time WS pid WS start "-" end WS nr_accesses [WS ...]
//! time        := secs [ "." frac ]   frac: 1..=9 digits (ns precision)
//! pid         := decimal u32 (DAMON's target)
//! start, end  := [ "0x" ] hex-u64 byte addresses, end > start (exclusive)
//! nr_accesses := decimal u64 (0 = the region was idle this interval)
//! ```
//!
//! **Expansion rule** (deterministic, documented in ARCHITECTURE.md): a
//! sample with `n = nr_accesses > 0` becomes `n` read accesses striding
//! evenly across the region's pages — access `j` touches page
//! `floor(start / 4096) + floor(j * region_pages / n)` — and the sample's
//! interval (this line's timestamp minus the pid's previous sample, or the
//! log base) is split evenly over the `n` accesses, remainder on the first.
//! An idle sample (`n = 0`) produces no accesses but still advances the
//! pid's clock, so idle time becomes the next sample's think time. Samples
//! denser than [`super::MAX_REGION_ACCESSES`] are rejected rather than
//! expanded.
//!
//! Region samples are inherently lossy (the exact fault order inside an
//! interval is gone), so DAMON logs do not round-trip through
//! `leap::TraceRecorder` — that is the perf format's job; this one exists
//! to replay the logs DAMON deployments already have.

use super::{parse_hex_addr, parse_time, region_pages, Demux, IngestError, LogFormat};
use leap_sim_core::units::PAGE_SHIFT;

/// Parses one region-sample line into the demultiplexer.
pub(crate) fn parse_line(line_no: u64, line: &str, demux: &mut Demux) -> Result<(), IngestError> {
    let mut tokens = line.split_whitespace();
    let (Some(time_tok), Some(pid_tok), Some(range_tok), Some(nr_tok)) =
        (tokens.next(), tokens.next(), tokens.next(), tokens.next())
    else {
        return Err(IngestError::TruncatedLine {
            line: line_no,
            format: LogFormat::DamonRegions,
        });
    };

    let t_ns = parse_time(line_no, time_tok)?;
    let pid: u32 = pid_tok.parse().map_err(|_| IngestError::BadField {
        line: line_no,
        field: "pid",
    })?;

    let (start_tok, end_tok) = range_tok.split_once('-').ok_or(IngestError::BadField {
        line: line_no,
        field: "region",
    })?;
    let start = parse_hex_addr(line_no, start_tok, "region")?;
    let end = parse_hex_addr(line_no, end_tok, "region")?;
    if end <= start {
        return Err(IngestError::EmptyRegion { line: line_no });
    }

    let nr_accesses: u64 = nr_tok.parse().map_err(|_| IngestError::BadField {
        line: line_no,
        field: "nr_accesses",
    })?;
    if nr_accesses > super::MAX_REGION_ACCESSES {
        return Err(IngestError::RegionTooDense {
            line: line_no,
            nr_accesses,
        });
    }

    demux.push_region(
        line_no,
        t_ns,
        pid,
        start >> PAGE_SHIFT,
        region_pages(start, end),
        nr_accesses,
    )
}

#[cfg(test)]
mod tests {
    use super::super::{ingest_str, IngestedLog, LogFormat};
    use super::*;

    fn damon(log: &str) -> Result<IngestedLog, IngestError> {
        ingest_str(log, LogFormat::DamonRegions)
    }

    #[test]
    fn expands_a_sample_across_its_region() {
        // 4 pages, 4 accesses over a 1 ms interval: one access per page,
        // 250 µs of think time each.
        let log = "\
# t0: 0.000000000
0.001000000 42 0x10000-0x14000 4
";
        let ingested = damon(log).unwrap();
        assert_eq!(ingested.pids(), &[42]);
        let trace = &ingested.traces()[0];
        assert_eq!(trace.name(), "pid42");
        assert_eq!(trace.page_sequence(), vec![0x10, 0x11, 0x12, 0x13]);
        for access in trace.accesses() {
            assert_eq!(access.compute.as_nanos(), 250_000);
            assert!(!access.is_write);
        }
    }

    #[test]
    fn denser_samples_revisit_pages() {
        // 2 pages, 4 accesses: the stride revisits each page twice.
        let ingested = damon("0.000004000 1 0x0-0x2000 4\n").unwrap();
        assert_eq!(ingested.traces()[0].page_sequence(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn sparser_samples_stride_over_pages() {
        // 8 pages, 2 accesses: pages 0 and 4.
        let ingested = damon("0.000004000 1 0x0-0x8000 2\n").unwrap();
        assert_eq!(ingested.traces()[0].page_sequence(), vec![0, 4]);
    }

    #[test]
    fn interval_remainder_lands_on_the_first_access() {
        // 10 ns over 3 accesses: 4 + 3 + 3.
        let log = "\
# t0: 0.000000000
0.000000010 1 0x0-0x3000 3
";
        let ingested = damon(log).unwrap();
        let computes: Vec<u64> = ingested.traces()[0]
            .accesses()
            .iter()
            .map(|a| a.compute.as_nanos())
            .collect();
        assert_eq!(computes, vec![4, 3, 3]);
    }

    #[test]
    fn idle_samples_advance_the_clock_without_accesses() {
        let log = "\
# t0: 0.000000000
0.000001000 1 0x0-0x1000 0
0.000003000 1 0x0-0x1000 1
";
        let ingested = damon(log).unwrap();
        let trace = &ingested.traces()[0];
        assert_eq!(trace.len(), 1);
        // The idle interval became think time for the next sample's access.
        assert_eq!(trace.accesses()[0].compute.as_nanos(), 2_000);
    }

    #[test]
    fn multi_pid_samples_demux_by_target() {
        let log = "\
0.000001000 7 0x0-0x1000 1
0.000002000 3 0x10000-0x11000 1
0.000003000 7 0x1000-0x2000 1
";
        let ingested = damon(log).unwrap();
        assert_eq!(ingested.pids(), &[3, 7]);
        assert_eq!(ingested.traces()[0].page_sequence(), vec![0x10]);
        assert_eq!(ingested.traces()[1].page_sequence(), vec![0, 1]);
    }
}
