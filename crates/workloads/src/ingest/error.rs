//! Typed errors of the trace-ingestion subsystem.
//!
//! Every parse failure carries the 1-based line number of the offending log
//! line, so a multi-GB log can be fixed (or truncated) without bisecting it
//! by hand. Ingestion never panics on malformed input — every failure mode
//! below is a value, pinned by `tests/ingest_errors.rs`.

use super::LogFormat;
use std::fmt;

/// Why a fault log could not be ingested.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The log contains no access-producing lines (only blanks, comments,
    /// or zero-access region samples).
    EmptyLog,
    /// Format auto-detection failed: the first event line matches neither
    /// grammar.
    UnknownFormat {
        /// 1-based line number of the undetectable line.
        line: u64,
    },
    /// An event line ended before all mandatory fields of its format.
    TruncatedLine {
        /// 1-based line number of the truncated line.
        line: u64,
        /// The format whose grammar the line failed.
        format: LogFormat,
    },
    /// A field did not parse as its grammar requires (non-numeric pid,
    /// malformed `[cpu]` token, broken region range, ...).
    BadField {
        /// 1-based line number of the malformed line.
        line: u64,
        /// Name of the field that failed to parse.
        field: &'static str,
    },
    /// A hexadecimal address does not fit in 64 bits.
    AddressOverflow {
        /// 1-based line number of the overflowing line.
        line: u64,
    },
    /// A timestamp does not fit the u64 nanosecond clock.
    TimestampOverflow {
        /// 1-based line number of the overflowing line.
        line: u64,
    },
    /// A timestamp is earlier than its predecessor (or earlier than the
    /// `# t0:` base). Fault logs are recorded in time order; going backwards
    /// means the log is corrupt or mis-merged.
    OutOfOrderTimestamp {
        /// 1-based line number of the out-of-order line.
        line: u64,
    },
    /// A DAMON region sample whose end address is not past its start.
    EmptyRegion {
        /// 1-based line number of the degenerate region.
        line: u64,
    },
    /// A DAMON region sample claims more accesses than the per-line
    /// expansion cap ([`super::MAX_REGION_ACCESSES`]) allows.
    RegionTooDense {
        /// 1-based line number of the over-dense sample.
        line: u64,
        /// The claimed access count.
        nr_accesses: u64,
    },
}

impl IngestError {
    /// The 1-based line number the error points at, when it has one.
    pub fn line(&self) -> Option<u64> {
        match self {
            IngestError::Io(_) | IngestError::EmptyLog => None,
            IngestError::UnknownFormat { line }
            | IngestError::TruncatedLine { line, .. }
            | IngestError::BadField { line, .. }
            | IngestError::AddressOverflow { line }
            | IngestError::TimestampOverflow { line }
            | IngestError::OutOfOrderTimestamp { line }
            | IngestError::EmptyRegion { line }
            | IngestError::RegionTooDense { line, .. } => Some(*line),
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error reading fault log: {e}"),
            IngestError::EmptyLog => write!(f, "fault log contains no accesses"),
            IngestError::UnknownFormat { line } => {
                write!(
                    f,
                    "line {line}: matches neither the damon nor the perf grammar"
                )
            }
            IngestError::TruncatedLine { line, format } => {
                write!(f, "line {line}: truncated {} event line", format.label())
            }
            IngestError::BadField { line, field } => {
                write!(f, "line {line}: malformed `{field}` field")
            }
            IngestError::AddressOverflow { line } => {
                write!(f, "line {line}: address does not fit in 64 bits")
            }
            IngestError::TimestampOverflow { line } => {
                write!(
                    f,
                    "line {line}: timestamp overflows the u64 nanosecond clock"
                )
            }
            IngestError::OutOfOrderTimestamp { line } => {
                write!(f, "line {line}: timestamp goes backwards")
            }
            IngestError::EmptyRegion { line } => {
                write!(f, "line {line}: region end address is not past its start")
            }
            IngestError::RegionTooDense { line, nr_accesses } => {
                write!(
                    f,
                    "line {line}: region sample claims {nr_accesses} accesses \
                     (cap {})",
                    super::MAX_REGION_ACCESSES
                )
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}
