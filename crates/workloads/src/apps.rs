//! Synthetic models of the paper's four applications (§5.3).
//!
//! The prefetcher and data path only ever observe a stream of page-granular
//! memory accesses, so each model reproduces the *remote access pattern mix*
//! the paper reports for that application (Figure 3) rather than its
//! computation:
//!
//! | Application | Pattern mix (approx.)                             |
//! |-------------|---------------------------------------------------|
//! | PowerGraph  | mixed: long sequential edge scans, strided vertex |
//! |             | sweeps, and irregular neighbour lookups           |
//! | NumPy       | dominated by long sequential sweeps (blocked      |
//! |             | matrix multiply over two operands)                |
//! | VoltDB      | ~69 % irregular short-transaction accesses with   |
//! |             | some sequential index scans                       |
//! | Memcached   | ~96 % irregular key-value accesses                |
//!
//! Working-set sizes default to laptop-scale values; the paper's 9–38 GB
//! footprints are reproduced in *shape* by keeping the access-to-working-set
//! ratio similar.

use crate::trace::{Access, AccessTrace};
use leap_sim_core::units::bytes_to_pages;
use leap_sim_core::{DetRng, Nanos};
use serde::{Deserialize, Serialize};

/// Which application a model mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Graph analytics (PowerGraph PageRank on a Twitter-like graph).
    PowerGraph,
    /// Linear algebra (NumPy dense matrix multiplication).
    NumPy,
    /// OLTP database (VoltDB running TPC-C).
    VoltDb,
    /// In-memory key-value cache (Memcached under a Facebook-like workload).
    Memcached,
}

impl AppKind {
    /// All four applications in the paper's presentation order.
    pub const ALL: [AppKind; 4] = [
        AppKind::PowerGraph,
        AppKind::NumPy,
        AppKind::VoltDb,
        AppKind::Memcached,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::PowerGraph => "PowerGraph",
            AppKind::NumPy => "NumPy",
            AppKind::VoltDb => "VoltDB",
            AppKind::Memcached => "Memcached",
        }
    }

    /// True if the paper reports this application's performance as
    /// throughput (operations or transactions per second) rather than
    /// completion time.
    pub fn is_throughput_oriented(self) -> bool {
        matches!(self, AppKind::VoltDb | AppKind::Memcached)
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A configurable synthetic application model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AppModel {
    /// Which application is being modelled.
    pub kind: AppKind,
    /// Working-set size in bytes.
    pub working_set_bytes: u64,
    /// Total number of page accesses to generate.
    pub accesses: usize,
    /// RNG seed (forked internally, so two models with the same seed but
    /// different kinds produce different streams).
    pub seed: u64,
}

impl AppModel {
    /// Creates a model with a sensible default footprint for the given kind.
    ///
    /// Defaults keep runs fast while preserving the access-to-working-set
    /// ratios: 64 MiB / 200 k accesses for the scan-heavy applications,
    /// 32 MiB / 150 k accesses for the transaction-oriented ones.
    pub fn new(kind: AppKind, seed: u64) -> Self {
        use leap_sim_core::units::MIB;
        match kind {
            AppKind::PowerGraph => AppModel {
                kind,
                working_set_bytes: 64 * MIB,
                accesses: 200_000,
                seed,
            },
            AppKind::NumPy => AppModel {
                kind,
                working_set_bytes: 64 * MIB,
                accesses: 200_000,
                seed,
            },
            AppKind::VoltDb => AppModel {
                kind,
                working_set_bytes: 32 * MIB,
                accesses: 150_000,
                seed,
            },
            AppKind::Memcached => AppModel {
                kind,
                working_set_bytes: 32 * MIB,
                accesses: 150_000,
                seed,
            },
        }
    }

    /// Overrides the working-set size.
    pub fn with_working_set(mut self, bytes: u64) -> Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Overrides the number of accesses.
    pub fn with_accesses(mut self, accesses: usize) -> Self {
        self.accesses = accesses;
        self
    }

    /// The working set in pages.
    pub fn working_set_pages(&self) -> u64 {
        bytes_to_pages(self.working_set_bytes).max(1)
    }

    /// Generates the access trace for this model.
    pub fn generate(&self) -> AccessTrace {
        let mut rng =
            DetRng::seed_from(self.seed ^ (self.kind as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let pages = self.working_set_pages();
        let accesses = match self.kind {
            AppKind::PowerGraph => powergraph(&mut rng, pages, self.accesses),
            AppKind::NumPy => numpy(&mut rng, pages, self.accesses),
            AppKind::VoltDb => voltdb(&mut rng, pages, self.accesses),
            AppKind::Memcached => memcached(&mut rng, pages, self.accesses),
        };
        AccessTrace::new(self.kind.label(), accesses)
    }
}

/// Graph analytics: alternates sequential edge-array scans, strided vertex
/// sweeps (stride picked per phase), and bursts of irregular neighbour
/// lookups.
fn powergraph(rng: &mut DetRng, pages: u64, total: usize) -> Vec<Access> {
    let compute = Nanos::from_nanos(400);
    let mut out = Vec::with_capacity(total);
    let mut cursor = 0u64;
    while out.len() < total {
        let phase = rng.next_f64();
        if phase < 0.40 {
            // Sequential edge scan of 64–512 pages.
            let run = rng.gen_range_u64(64, 512);
            for _ in 0..run {
                cursor = (cursor + 1) % pages;
                out.push(Access::read(cursor, compute));
                if out.len() >= total {
                    break;
                }
            }
        } else if phase < 0.75 {
            // Strided vertex sweep: stride 2–16 pages, 32–256 steps.
            let stride = rng.gen_range_u64(2, 16);
            let steps = rng.gen_range_u64(32, 256);
            let mut p = rng.gen_range_u64(0, pages);
            for _ in 0..steps {
                p = (p + stride) % pages;
                out.push(Access::read(p, compute));
                if out.len() >= total {
                    break;
                }
            }
            cursor = p;
        } else {
            // Irregular neighbour lookups: 16–128 random pages (skewed).
            let burst = rng.gen_range_u64(16, 128);
            for _ in 0..burst {
                let p = rng.zipf(pages as usize, 0.7) as u64;
                out.push(Access::read(p, compute));
                if out.len() >= total {
                    break;
                }
            }
        }
    }
    out
}

/// Dense matrix multiply: long sequential sweeps over operand A, repeated
/// strided walks over operand B (column access), and sequential writes to C.
fn numpy(rng: &mut DetRng, pages: u64, total: usize) -> Vec<Access> {
    let compute = Nanos::from_nanos(600);
    let a_region = pages / 2;
    let b_region = pages - a_region;
    let mut out = Vec::with_capacity(total);
    let mut a_cursor = 0u64;
    while out.len() < total {
        // A row sweep: long sequential run in the A region.
        let run = rng.gen_range_u64(256, 1024).min(a_region.max(1));
        for _ in 0..run {
            a_cursor = (a_cursor + 1) % a_region.max(1);
            out.push(Access::read(a_cursor, compute));
            if out.len() >= total {
                return out;
            }
        }
        // A B column walk: stride equal to the row width in pages.
        let stride = rng.gen_range_u64(8, 64);
        let mut p = a_region + rng.gen_range_u64(0, b_region.max(1));
        let steps = rng.gen_range_u64(64, 256);
        for _ in 0..steps {
            p = a_region + ((p - a_region) + stride) % b_region.max(1);
            out.push(Access::read(p, compute));
            if out.len() >= total {
                return out;
            }
        }
    }
    out
}

/// OLTP: short transactions touching a handful of random (Zipf-skewed) pages,
/// interleaved with occasional short sequential index scans. Roughly 69 % of
/// accesses end up irregular, matching §5.3.3.
fn voltdb(rng: &mut DetRng, pages: u64, total: usize) -> Vec<Access> {
    let compute = Nanos::from_micros(2);
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        if rng.chance(0.92) {
            // A short transaction: 3–8 random tuple pages, some written.
            let touches = rng.gen_range_u64(3, 8);
            for _ in 0..touches {
                let p = rng.zipf(pages as usize, 0.85) as u64;
                let access = if rng.chance(0.3) {
                    Access::write(p, compute)
                } else {
                    Access::read(p, compute)
                };
                out.push(access);
                if out.len() >= total {
                    return out;
                }
            }
        } else {
            // An occasional index scan: 8–24 sequential pages. Keeping scans
            // short and rare leaves roughly 70 % of accesses irregular,
            // matching the §5.3.3 characterisation.
            let run = rng.gen_range_u64(8, 24);
            let start = rng.gen_range_u64(0, pages);
            for i in 0..run {
                out.push(Access::read((start + i) % pages, compute));
                if out.len() >= total {
                    return out;
                }
            }
        }
    }
    out
}

/// Key-value cache: almost entirely irregular single-page lookups with a
/// Zipfian popularity skew (the Facebook ETC-style mix), ~5 % writes.
fn memcached(rng: &mut DetRng, pages: u64, total: usize) -> Vec<Access> {
    let compute = Nanos::from_micros(1);
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let p = rng.zipf(pages as usize, 0.99) as u64;
        let access = if rng.chance(0.05) {
            Access::write(p, compute)
        } else {
            Access::read(p, compute)
        };
        out.push(access);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_windows, PatternMode};

    fn breakdown(kind: AppKind, window: usize) -> (f64, f64, f64) {
        let model = AppModel::new(kind, 7).with_accesses(40_000);
        let trace = model.generate();
        let b = classify_windows(&trace.page_sequence(), window, PatternMode::Strict);
        (
            b.sequential_fraction(),
            b.stride_fraction(),
            b.other_fraction(),
        )
    }

    #[test]
    fn labels_and_orientation() {
        assert_eq!(AppKind::PowerGraph.label(), "PowerGraph");
        assert!(AppKind::VoltDb.is_throughput_oriented());
        assert!(AppKind::Memcached.is_throughput_oriented());
        assert!(!AppKind::NumPy.is_throughput_oriented());
        assert_eq!(AppKind::ALL.len(), 4);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = AppModel::new(AppKind::PowerGraph, 3).generate();
        let b = AppModel::new(AppKind::PowerGraph, 3).generate();
        let c = AppModel::new(AppKind::PowerGraph, 4).generate();
        assert_eq!(a.page_sequence(), b.page_sequence());
        assert_ne!(a.page_sequence(), c.page_sequence());
    }

    #[test]
    fn different_apps_have_different_streams() {
        let pg = AppModel::new(AppKind::PowerGraph, 3).generate();
        let mc = AppModel::new(AppKind::Memcached, 3).generate();
        assert_ne!(pg.page_sequence()[..100], mc.page_sequence()[..100]);
    }

    #[test]
    fn traces_respect_requested_length_and_working_set() {
        for kind in AppKind::ALL {
            let model = AppModel::new(kind, 1).with_accesses(10_000);
            let trace = model.generate();
            assert_eq!(trace.len(), 10_000, "{kind}");
            assert!(
                trace.working_set_pages() <= model.working_set_pages(),
                "{kind}"
            );
            assert!(
                trace
                    .page_sequence()
                    .iter()
                    .all(|&p| p < model.working_set_pages()),
                "{kind}: page outside working set"
            );
        }
    }

    #[test]
    fn numpy_is_dominated_by_sequential_patterns() {
        let (seq, stride, _) = breakdown(AppKind::NumPy, 2);
        assert!(
            seq > 0.5,
            "NumPy sequential fraction {seq} too low (stride {stride})"
        );
    }

    #[test]
    fn memcached_is_dominated_by_irregular_patterns() {
        let (_, _, other) = breakdown(AppKind::Memcached, 4);
        assert!(other > 0.85, "Memcached irregular fraction {other} too low");
    }

    #[test]
    fn voltdb_is_mostly_irregular_with_some_structure() {
        let (seq, _, other) = breakdown(AppKind::VoltDb, 4);
        assert!(other > 0.5, "VoltDB irregular fraction {other} too low");
        assert!(seq > 0.02, "VoltDB sequential fraction {seq} too low");
    }

    #[test]
    fn powergraph_has_a_genuine_mix() {
        let (seq, stride, other) = breakdown(AppKind::PowerGraph, 2);
        assert!(seq > 0.15, "PowerGraph sequential {seq} too low");
        assert!(stride + other > 0.2, "PowerGraph non-sequential too low");
    }

    #[test]
    fn writes_appear_only_where_expected() {
        let numpy = AppModel::new(AppKind::NumPy, 1)
            .with_accesses(5_000)
            .generate();
        assert!(numpy.iter().all(|a| !a.is_write));
        let voltdb = AppModel::new(AppKind::VoltDb, 1)
            .with_accesses(5_000)
            .generate();
        assert!(voltdb.iter().any(|a| a.is_write));
    }
}
