//! Pre-merged interleaving of several processes' traces.
//!
//! When multiple applications page concurrently, their requests interleave in
//! the shared swap space and on the network. The interleaver merges per-
//! process traces into a single schedule of `(process index, access)` steps,
//! drawing the next process to run with a weight proportional to how many
//! accesses it still has left — a simple model of fair time sharing that
//! preserves each trace's internal order.
//!
//! This pre-merged, trace-granularity schedule is what the engine's
//! `Simulator::run_interleaved` replays on one serial timeline. The
//! Figure 13 experiments themselves use `Simulator::run_multi` instead,
//! which time-shares the *un-merged* traces over per-core run queues with a
//! quantum-based scheduler (see `leap::sched`) — use `interleave` when an
//! experiment needs an explicit, externally-chosen global access order.

use crate::trace::{Access, AccessTrace};
use leap_sim_core::DetRng;

/// A single step of an interleaved schedule: which process issues which
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavedStep {
    /// Index of the process (position in the input slice).
    pub process: usize,
    /// The access it performs.
    pub access: Access,
}

/// Interleaves the given traces into one schedule.
///
/// Each process's accesses stay in their original order; the global order is
/// a weighted random merge, so long traces do not starve short ones and the
/// interleaving is reproducible for a given seed.
///
/// # Examples
///
/// ```
/// use leap_workloads::{interleave, Access, AccessTrace};
/// use leap_sim_core::Nanos;
///
/// let a = AccessTrace::new("a", vec![Access::read(1, Nanos::ZERO); 10]);
/// let b = AccessTrace::new("b", vec![Access::read(2, Nanos::ZERO); 10]);
/// let schedule = interleave(&[a, b], 42);
/// assert_eq!(schedule.len(), 20);
/// assert!(schedule.iter().any(|s| s.process == 0));
/// assert!(schedule.iter().any(|s| s.process == 1));
/// ```
pub fn interleave(traces: &[AccessTrace], seed: u64) -> Vec<InterleavedStep> {
    let mut rng = DetRng::seed_from(seed);
    let mut cursors = vec![0usize; traces.len()];
    let total: usize = traces.iter().map(|t| t.len()).sum();
    let mut out = Vec::with_capacity(total);

    while out.len() < total {
        // Remaining accesses per process.
        let remaining: Vec<u64> = traces
            .iter()
            .zip(&cursors)
            .map(|(t, &c)| (t.len() - c) as u64)
            .collect();
        let total_remaining: u64 = remaining.iter().sum();
        if total_remaining == 0 {
            break;
        }
        // Weighted pick proportional to remaining work.
        let mut pick = rng.gen_range_u64(0, total_remaining);
        let mut chosen = 0usize;
        for (i, &r) in remaining.iter().enumerate() {
            if pick < r {
                chosen = i;
                break;
            }
            pick -= r;
        }
        let access = traces[chosen].accesses()[cursors[chosen]];
        cursors[chosen] += 1;
        out.push(InterleavedStep {
            process: chosen,
            access,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::Nanos;
    use proptest::prelude::*;

    fn trace_of(name: &str, pages: &[u64]) -> AccessTrace {
        AccessTrace::new(
            name,
            pages
                .iter()
                .map(|&p| Access::read(p, Nanos::ZERO))
                .collect(),
        )
    }

    #[test]
    fn preserves_per_process_order() {
        let a = trace_of("a", &[1, 2, 3, 4, 5]);
        let b = trace_of("b", &[10, 20, 30]);
        let schedule = interleave(&[a, b], 1);
        let from_a: Vec<u64> = schedule
            .iter()
            .filter(|s| s.process == 0)
            .map(|s| s.access.page)
            .collect();
        let from_b: Vec<u64> = schedule
            .iter()
            .filter(|s| s.process == 1)
            .map(|s| s.access.page)
            .collect();
        assert_eq!(from_a, vec![1, 2, 3, 4, 5]);
        assert_eq!(from_b, vec![10, 20, 30]);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let a = trace_of("a", &(0..50).collect::<Vec<_>>());
        let b = trace_of("b", &(100..150).collect::<Vec<_>>());
        let s1 = interleave(&[a.clone(), b.clone()], 9);
        let s2 = interleave(&[a.clone(), b.clone()], 9);
        let s3 = interleave(&[a, b], 10);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn handles_empty_inputs() {
        assert!(interleave(&[], 1).is_empty());
        let empty = trace_of("e", &[]);
        let a = trace_of("a", &[1, 2]);
        let schedule = interleave(&[empty, a], 1);
        assert_eq!(schedule.len(), 2);
        assert!(schedule.iter().all(|s| s.process == 1));
    }

    #[test]
    fn processes_actually_interleave() {
        let a = trace_of("a", &vec![1; 500]);
        let b = trace_of("b", &vec![2; 500]);
        let schedule = interleave(&[a, b], 3);
        // Count adjacent pairs from different processes; a non-interleaved
        // schedule would have exactly one switch.
        let switches = schedule
            .windows(2)
            .filter(|w| w[0].process != w[1].process)
            .count();
        assert!(switches > 100, "only {switches} switches");
    }

    proptest! {
        /// The merged schedule contains exactly the union of all accesses.
        #[test]
        fn prop_conserves_accesses(
            lens in proptest::collection::vec(0usize..60, 1..5),
            seed in any::<u64>(),
        ) {
            let traces: Vec<AccessTrace> = lens
                .iter()
                .enumerate()
                .map(|(i, &l)| {
                    trace_of(
                        &format!("t{i}"),
                        &(0..l as u64).map(|p| p + 1000 * i as u64).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let schedule = interleave(&traces, seed);
            prop_assert_eq!(schedule.len(), lens.iter().sum::<usize>());
            for (i, t) in traces.iter().enumerate() {
                let replayed: Vec<u64> = schedule
                    .iter()
                    .filter(|s| s.process == i)
                    .map(|s| s.access.page)
                    .collect();
                prop_assert_eq!(replayed, t.page_sequence());
            }
        }
    }
}
