//! The window-pattern classifier behind Figure 3.
//!
//! The paper takes every page-fault window of length `X` (X ∈ {2, 4, 8}) and
//! classifies it as *sequential* (all deltas are +1), *stride* (all deltas
//! equal some other constant), or *other*. It then contrasts that *strict*
//! classification with a *majority* one, where a window counts as sequential
//! or stride if a strict majority of its deltas agree — the relaxation Leap's
//! trend detection exploits.

use serde::{Deserialize, Serialize};

/// Whether all deltas in a window must match (strict) or only a majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternMode {
    /// Every delta in the window must follow the pattern.
    Strict,
    /// At least ⌊w/2⌋ + 1 deltas must follow the pattern.
    Majority,
}

/// Counts of windows per pattern class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternBreakdown {
    /// Windows whose deltas are (mostly) +1.
    pub sequential: u64,
    /// Windows whose deltas are (mostly) a single non-unit constant.
    pub stride: u64,
    /// Everything else.
    pub other: u64,
}

impl PatternBreakdown {
    /// Total windows classified.
    pub fn total(&self) -> u64 {
        self.sequential + self.stride + self.other
    }

    /// Fraction of sequential windows (zero if no windows).
    pub fn sequential_fraction(&self) -> f64 {
        self.fraction(self.sequential)
    }

    /// Fraction of stride windows (zero if no windows).
    pub fn stride_fraction(&self) -> f64 {
        self.fraction(self.stride)
    }

    /// Fraction of other/irregular windows (zero if no windows).
    pub fn other_fraction(&self) -> f64 {
        self.fraction(self.other)
    }

    fn fraction(&self, part: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        part as f64 / total as f64
    }
}

/// Classifies every sliding window of `window` consecutive accesses in
/// `pages` under the given mode.
///
/// A window of `window` accesses contains `window - 1` deltas. Following the
/// paper, the window is *sequential* if (all / a majority of) those deltas
/// are `+1`, *stride* if they all equal some other single value, and *other*
/// otherwise. Windows of fewer than two accesses cannot be classified.
///
/// # Examples
///
/// ```
/// use leap_workloads::{classify_windows, PatternMode};
///
/// let pages = [0u64, 1, 2, 3, 13, 23, 33];
/// let strict = classify_windows(&pages, 2, PatternMode::Strict);
/// assert_eq!(strict.sequential, 3); // (0,1) (1,2) (2,3)
/// assert_eq!(strict.stride, 3);     // (3,13) (13,23) (23,33)
/// ```
pub fn classify_windows(pages: &[u64], window: usize, mode: PatternMode) -> PatternBreakdown {
    let mut breakdown = PatternBreakdown::default();
    if window < 2 || pages.len() < window {
        return breakdown;
    }
    for chunk in pages.windows(window) {
        let deltas: Vec<i64> = chunk
            .windows(2)
            .map(|w| w[1] as i64 - w[0] as i64)
            .collect();
        match classify_deltas(&deltas, mode) {
            WindowClass::Sequential => breakdown.sequential += 1,
            WindowClass::Stride => breakdown.stride += 1,
            WindowClass::Other => breakdown.other += 1,
        }
    }
    breakdown
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowClass {
    Sequential,
    Stride,
    Other,
}

fn classify_deltas(deltas: &[i64], mode: PatternMode) -> WindowClass {
    if deltas.is_empty() {
        return WindowClass::Other;
    }
    match mode {
        PatternMode::Strict => {
            let first = deltas[0];
            if deltas.iter().all(|&d| d == 1) {
                WindowClass::Sequential
            } else if first != 0 && deltas.iter().all(|&d| d == first) {
                WindowClass::Stride
            } else {
                WindowClass::Other
            }
        }
        PatternMode::Majority => {
            // Find the most common delta and check for a strict majority.
            let mut best_delta = deltas[0];
            let mut best_count = 0usize;
            for &candidate in deltas {
                let count = deltas.iter().filter(|&&d| d == candidate).count();
                if count > best_count {
                    best_count = count;
                    best_delta = candidate;
                }
            }
            if best_count > deltas.len() / 2 {
                if best_delta == 1 {
                    WindowClass::Sequential
                } else if best_delta != 0 {
                    WindowClass::Stride
                } else {
                    WindowClass::Other
                }
            } else {
                WindowClass::Other
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pure_sequential_is_all_sequential() {
        let pages: Vec<u64> = (0..100).collect();
        for window in [2usize, 4, 8] {
            let b = classify_windows(&pages, window, PatternMode::Strict);
            assert_eq!(b.other, 0);
            assert_eq!(b.stride, 0);
            assert_eq!(b.total(), (pages.len() - window + 1) as u64);
        }
    }

    #[test]
    fn pure_stride_is_all_stride() {
        let pages: Vec<u64> = (0..100).map(|i| 10 * i).collect();
        let b = classify_windows(&pages, 8, PatternMode::Strict);
        assert_eq!(b.sequential, 0);
        assert_eq!(b.other, 0);
        assert!(b.stride > 0);
    }

    #[test]
    fn majority_mode_is_more_permissive_than_strict() {
        // A sequential run with a transient interruption every 6 accesses.
        let mut pages = Vec::new();
        let mut p = 0u64;
        for i in 0..200u64 {
            if i % 6 == 5 {
                pages.push(100_000 + i);
            } else {
                p += 1;
                pages.push(p);
            }
        }
        let strict = classify_windows(&pages, 8, PatternMode::Strict);
        let majority = classify_windows(&pages, 8, PatternMode::Majority);
        assert!(majority.sequential > strict.sequential);
        assert!(majority.other < strict.other);
    }

    #[test]
    fn repeated_page_is_not_a_stride() {
        // Delta 0 windows must land in "other", not "stride".
        let pages = vec![5u64; 20];
        let b = classify_windows(&pages, 4, PatternMode::Strict);
        assert_eq!(b.stride, 0);
        assert_eq!(b.sequential, 0);
        assert_eq!(b.other, 17);
        let m = classify_windows(&pages, 4, PatternMode::Majority);
        assert_eq!(m.stride, 0);
    }

    #[test]
    fn short_or_degenerate_inputs_yield_nothing() {
        assert_eq!(classify_windows(&[], 4, PatternMode::Strict).total(), 0);
        assert_eq!(
            classify_windows(&[1, 2, 3], 4, PatternMode::Strict).total(),
            0
        );
        assert_eq!(
            classify_windows(&[1, 2, 3], 1, PatternMode::Strict).total(),
            0
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let pages: Vec<u64> = (0..50)
            .map(|i| if i % 3 == 0 { i * 7 } else { i })
            .collect();
        let b = classify_windows(&pages, 4, PatternMode::Majority);
        let sum = b.sequential_fraction() + b.stride_fraction() + b.other_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn doc_example_counts() {
        let pages = [0u64, 1, 2, 3, 13, 23, 33];
        let strict = classify_windows(&pages, 2, PatternMode::Strict);
        assert_eq!(strict.sequential, 3);
        assert_eq!(strict.stride, 3);
        assert_eq!(strict.other, 0);
    }

    proptest! {
        /// Total windows equals len - window + 1 for any input long enough.
        #[test]
        fn prop_window_count(
            pages in proptest::collection::vec(0u64..1000, 2..200),
            window in 2usize..10,
        ) {
            let b = classify_windows(&pages, window, PatternMode::Strict);
            let expected = if pages.len() >= window { (pages.len() - window + 1) as u64 } else { 0 };
            prop_assert_eq!(b.total(), expected);
        }

        /// Majority mode never classifies fewer sequential windows than strict.
        #[test]
        fn prop_majority_is_superset_of_strict(
            pages in proptest::collection::vec(0u64..200, 8..100),
            window in 2usize..9,
        ) {
            let strict = classify_windows(&pages, window, PatternMode::Strict);
            let majority = classify_windows(&pages, window, PatternMode::Majority);
            prop_assert!(majority.sequential >= strict.sequential);
            prop_assert!(majority.other <= strict.other);
        }
    }
}
