//! Sequential and Stride-K microbenchmarks (§2.2, Figures 2 and 7).
//!
//! Both microbenchmarks touch a working set of a given size at 4 KB page
//! granularity: the Sequential pattern touches pages `0, 1, 2, ...`; the
//! Stride-K pattern touches `0, K, 2K, ...` wrapping around the working set
//! so every page is eventually visited.

use crate::trace::{Access, AccessTrace};
use leap_sim_core::units::bytes_to_pages;
use leap_sim_core::Nanos;

/// Per-access compute cost used by the microbenchmarks (they are memory
/// bound, so the cost is tiny but non-zero).
pub const MICRO_COMPUTE: Nanos = Nanos(200);

/// Generates a sequential access trace over a working set of
/// `working_set_bytes`, visiting each page once per pass for `passes` passes.
///
/// # Examples
///
/// ```
/// use leap_workloads::sequential_trace;
/// use leap_sim_core::units::MIB;
///
/// let trace = sequential_trace(MIB, 1);
/// assert_eq!(trace.len(), 256); // 1 MiB / 4 KiB
/// assert_eq!(trace.page_sequence()[..4], [0, 1, 2, 3]);
/// ```
pub fn sequential_trace(working_set_bytes: u64, passes: usize) -> AccessTrace {
    let pages = bytes_to_pages(working_set_bytes);
    let mut accesses = Vec::with_capacity(pages as usize * passes);
    for _ in 0..passes {
        for page in 0..pages {
            accesses.push(Access::read(page, MICRO_COMPUTE));
        }
    }
    AccessTrace::new("sequential", accesses)
}

/// Generates a Stride-K access trace over a working set of
/// `working_set_bytes`.
///
/// Pages are visited as `0, K, 2K, ...` (mod working set), then the start
/// offset shifts by one and the sweep repeats, so after `K` sweeps every page
/// has been touched exactly once per pass. This matches the paper's Stride-10
/// microbenchmark where successive faults are never on consecutive pages.
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn stride_trace(working_set_bytes: u64, stride: u64, passes: usize) -> AccessTrace {
    assert!(stride > 0, "stride must be non-zero");
    let pages = bytes_to_pages(working_set_bytes).max(1);
    let mut accesses = Vec::with_capacity(pages as usize * passes);
    for _ in 0..passes {
        for start in 0..stride.min(pages) {
            let mut page = start;
            loop {
                accesses.push(Access::read(page, MICRO_COMPUTE));
                page += stride;
                if page >= pages {
                    break;
                }
            }
        }
    }
    AccessTrace::new(format!("stride-{stride}"), accesses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::MIB;
    use proptest::prelude::*;

    #[test]
    fn sequential_visits_every_page_in_order() {
        let t = sequential_trace(MIB, 1);
        let seq = t.page_sequence();
        assert_eq!(seq.len(), 256);
        assert!(seq.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(t.working_set_pages(), 256);
    }

    #[test]
    fn sequential_passes_repeat_the_sweep() {
        let t = sequential_trace(MIB, 3);
        assert_eq!(t.len(), 3 * 256);
        assert_eq!(t.working_set_pages(), 256);
    }

    #[test]
    fn stride_trace_has_constant_stride_within_a_sweep() {
        let t = stride_trace(MIB, 10, 1);
        let seq = t.page_sequence();
        // The first sweep is 0, 10, 20, ... — strictly stride-10 jumps.
        let first_sweep: Vec<u64> = seq.iter().copied().take_while(|&p| p % 10 == 0).collect();
        assert!(first_sweep.len() >= 25);
        assert!(first_sweep.windows(2).all(|w| w[1] == w[0] + 10));
    }

    #[test]
    fn stride_trace_eventually_covers_every_page() {
        let t = stride_trace(MIB, 10, 1);
        assert_eq!(t.working_set_pages(), 256);
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn consecutive_stride_accesses_are_never_sequential() {
        let t = stride_trace(MIB, 10, 1);
        let seq = t.page_sequence();
        let sequential_pairs = seq
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
            .count();
        // Only the sweep-to-sweep boundary can produce an off-by-one pair.
        assert!(sequential_pairs <= 10);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_rejected() {
        let _ = stride_trace(MIB, 0, 1);
    }

    proptest! {
        /// Stride traces always cover the whole working set exactly once per pass.
        #[test]
        fn prop_stride_covers_all_pages(
            pages in 1u64..2000,
            stride in 1u64..64,
            passes in 1usize..3,
        ) {
            let t = stride_trace(pages * 4096, stride, passes);
            prop_assert_eq!(t.working_set_pages(), pages);
            prop_assert_eq!(t.len(), pages as usize * passes);
        }
    }
}
