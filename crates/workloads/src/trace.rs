//! Access traces: the page-granularity input every experiment replays.

use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};

/// One memory access at page granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// The virtual page touched.
    pub page: u64,
    /// Whether the access writes the page (dirties it).
    pub is_write: bool,
    /// CPU time the application spends on this access before the next one
    /// (the compute component of completion time).
    pub compute: Nanos,
}

impl Access {
    /// A read access with the given compute cost.
    pub fn read(page: u64, compute: Nanos) -> Self {
        Access {
            page,
            is_write: false,
            compute,
        }
    }

    /// A write access with the given compute cost.
    pub fn write(page: u64, compute: Nanos) -> Self {
        Access {
            page,
            is_write: true,
            compute,
        }
    }
}

/// A named sequence of page accesses produced by a workload generator.
///
/// # Examples
///
/// ```
/// use leap_workloads::{Access, AccessTrace};
/// use leap_sim_core::Nanos;
///
/// let trace = AccessTrace::new(
///     "tiny",
///     vec![Access::read(0, Nanos::ZERO), Access::read(1, Nanos::ZERO)],
/// );
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.working_set_pages(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTrace {
    name: String,
    accesses: Vec<Access>,
}

impl AccessTrace {
    /// Creates a trace from a name and accesses.
    pub fn new<S: Into<String>>(name: S, accesses: Vec<Access>) -> Self {
        AccessTrace {
            name: name.into(),
            accesses,
        }
    }

    /// The trace's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the trace has no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses, in order.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter()
    }

    /// Number of distinct pages touched (the working set, in pages).
    pub fn working_set_pages(&self) -> u64 {
        let mut pages: Vec<u64> = self.accesses.iter().map(|a| a.page).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len() as u64
    }

    /// Total compute time of the trace (the paging-free lower bound on
    /// completion time).
    pub fn total_compute(&self) -> Nanos {
        self.accesses.iter().map(|a| a.compute).sum()
    }

    /// Returns the page-number sequence (used by the pattern classifier and
    /// by prefetcher-only experiments).
    pub fn page_sequence(&self) -> Vec<u64> {
        self.accesses.iter().map(|a| a.page).collect()
    }

    /// Truncates the trace to at most `n` accesses (cheap way to produce
    /// scaled-down experiment variants).
    pub fn truncated(&self, n: usize) -> AccessTrace {
        AccessTrace {
            name: self.name.clone(),
            accesses: self.accesses.iter().take(n).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_counts_distinct_pages() {
        let t = AccessTrace::new(
            "t",
            vec![
                Access::read(1, Nanos::ZERO),
                Access::read(2, Nanos::ZERO),
                Access::write(1, Nanos::ZERO),
            ],
        );
        assert_eq!(t.working_set_pages(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn total_compute_sums() {
        let t = AccessTrace::new(
            "t",
            vec![
                Access::read(0, Nanos::from_micros(2)),
                Access::read(1, Nanos::from_micros(3)),
            ],
        );
        assert_eq!(t.total_compute(), Nanos::from_micros(5));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = AccessTrace::new("t", (0..10).map(|i| Access::read(i, Nanos::ZERO)).collect());
        let short = t.truncated(3);
        assert_eq!(short.len(), 3);
        assert_eq!(short.page_sequence(), vec![0, 1, 2]);
        assert_eq!(short.name(), "t");
    }

    #[test]
    fn read_write_constructors() {
        assert!(!Access::read(5, Nanos::ZERO).is_write);
        assert!(Access::write(5, Nanos::ZERO).is_write);
    }
}
