//! Workload and application trace generators.
//!
//! The paper evaluates Leap on two microbenchmarks (Sequential and Stride-10)
//! and four real applications (PowerGraph on a Twitter-like graph, NumPy
//! matrix multiplication, VoltDB running TPC-C, and Memcached under a
//! Facebook-style key-value workload). We cannot run those applications, but
//! the prefetcher only ever observes their *page access streams*; this crate
//! generates synthetic traces that reproduce the access-pattern mixes the
//! paper reports (Figure 3) and the working-set sizes it lists (§5.3).
//!
//! - [`trace`]: the [`AccessTrace`] type (a sequence of page accesses with a
//!   per-access compute cost).
//! - [`micro`]: Sequential and Stride-K microbenchmark generators.
//! - [`apps`]: the four application models.
//! - [`classify`]: the window-pattern classifier used to regenerate Figure 3.
//! - [`multi`]: interleaving of several processes' traces for the
//!   multi-tenant experiment (Figure 13).
//! - [`ingest`]: trace ingestion from recorded fault logs (DAMON region
//!   samples and perf-script page faults) — real applications as a workload
//!   source, without porting them.

pub mod apps;
pub mod classify;
pub mod ingest;
pub mod micro;
pub mod multi;
pub mod trace;

pub use apps::{AppKind, AppModel};
pub use classify::{classify_windows, PatternBreakdown, PatternMode};
pub use ingest::{IngestError, IngestedLog, LogFormat};
pub use micro::{sequential_trace, stride_trace};
pub use multi::interleave;
pub use trace::{Access, AccessTrace};
