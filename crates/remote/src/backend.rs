//! Latency models for the storage and remote-memory backends.
//!
//! The paper's Figure 1 reports average 4 KB page access costs of roughly
//! 91.5 µs for HDD, 20 µs for SSD, and 4.3 µs for an RDMA read over 56 Gbps
//! InfiniBand. The samplers here are calibrated to those medians with
//! realistic spreads: log-normal bodies (software + device variance) plus a
//! small probability of much slower outliers (seek storms, SSD GC pauses,
//! network congestion) so the tail behaviour in the latency CDFs is
//! meaningful.

use leap_sim_core::{ConstantLatency, DetRng, LatencySampler, Nanos, TableLatency};
use serde::{Deserialize, Serialize};

/// The kind of slower-tier backing store a page lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// A spinning disk (average 4 KB access ≈ 91.5 µs).
    Hdd,
    /// A SATA/NVMe-class SSD (average 4 KB access ≈ 20 µs).
    Ssd,
    /// Remote DRAM over RDMA (average 4 KB op ≈ 4.3 µs).
    Rdma,
}

impl BackendKind {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Hdd => "HDD",
            BackendKind::Ssd => "SSD",
            BackendKind::Rdma => "RDMA",
        }
    }

    /// The inverse of [`BackendKind::label`], used when parsing serialized
    /// configurations.
    pub fn from_label(label: &str) -> Option<Self> {
        [BackendKind::Hdd, BackendKind::Ssd, BackendKind::Rdma]
            .into_iter()
            .find(|k| k.label() == label)
    }

    /// The nominal (median) 4 KB access latency from the paper's Figure 1.
    pub fn nominal_latency(self) -> Nanos {
        match self {
            BackendKind::Hdd => Nanos::from_micros_f64(91.48),
            BackendKind::Ssd => Nanos::from_micros_f64(20.0),
            BackendKind::Rdma => Nanos::from_micros_f64(4.3),
        }
    }
}

/// Constant read/write latency overrides for what-if studies against
/// hypothetical devices (e.g. "what if the interconnect were 2 µs flat?").
///
/// Each direction is independent: a direction left as `None` keeps the
/// paper-calibrated latency distribution for the backend kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstLatencyOverride {
    /// Constant 4 KB read latency; `None` keeps the calibrated read model.
    pub read: Option<Nanos>,
    /// Constant 4 KB write latency; `None` keeps the calibrated write model.
    pub write: Option<Nanos>,
}

impl ConstLatencyOverride {
    /// Builds a [`StorageBackend`] of the given kind, replacing only the
    /// overridden direction(s) with a constant latency.
    pub fn into_backend(self, kind: BackendKind) -> StorageBackend {
        let mut backend = StorageBackend::new(kind);
        if let Some(read) = self.read {
            backend.read = Box::new(ConstantLatency::new(read));
        }
        if let Some(write) = self.write {
            backend.write = Box::new(ConstantLatency::new(write));
        }
        backend
    }
}

/// A backing store with separate read and write latency distributions.
#[derive(Debug)]
pub struct StorageBackend {
    kind: BackendKind,
    read: Box<dyn LatencySampler>,
    write: Box<dyn LatencySampler>,
}

impl StorageBackend {
    /// Creates a backend with explicit read/write samplers.
    pub fn with_samplers(
        kind: BackendKind,
        read: Box<dyn LatencySampler>,
        write: Box<dyn LatencySampler>,
    ) -> Self {
        StorageBackend { kind, read, write }
    }

    /// Creates a backend of the given kind with the paper-calibrated
    /// latency distribution.
    pub fn new(kind: BackendKind) -> Self {
        match kind {
            BackendKind::Hdd => Self::hdd(),
            BackendKind::Ssd => Self::ssd(),
            BackendKind::Rdma => Self::rdma(),
        }
    }

    /// A spinning-disk backend: ~91.5 µs median with multi-millisecond seek
    /// outliers.
    ///
    /// The body/outlier mixture is folded into one precomputed quantile
    /// table per direction ([`TableLatency::from_lognormal_mixture`]): one
    /// RNG draw and a linear interpolation per sample instead of a mixture
    /// pick plus per-component log-normal math.
    pub fn hdd() -> Self {
        let mixture = [
            (
                0.97,
                Nanos::from_micros_f64(91.48),
                0.35,
                Nanos::from_micros(40),
            ),
            (
                0.03,
                Nanos::from_millis_f64(4.5),
                0.30,
                Nanos::from_millis(1),
            ),
        ];
        StorageBackend {
            kind: BackendKind::Hdd,
            read: Box::new(TableLatency::from_lognormal_mixture(&mixture)),
            write: Box::new(TableLatency::from_lognormal_mixture(&mixture)),
        }
    }

    /// An SSD backend: ~20 µs median reads, slower writes, and rare
    /// garbage-collection stalls.
    pub fn ssd() -> Self {
        let gc_stall = (Nanos::from_micros_f64(400.0), 0.50, Nanos::from_micros(100));
        StorageBackend {
            kind: BackendKind::Ssd,
            read: Box::new(TableLatency::from_lognormal_mixture(&[
                (
                    0.995,
                    Nanos::from_micros_f64(20.0),
                    0.25,
                    Nanos::from_micros(8),
                ),
                (0.005, gc_stall.0, gc_stall.1, gc_stall.2),
            ])),
            write: Box::new(TableLatency::from_lognormal_mixture(&[
                (
                    0.99,
                    Nanos::from_micros_f64(30.0),
                    0.30,
                    Nanos::from_micros(10),
                ),
                (0.01, gc_stall.0, gc_stall.1, gc_stall.2),
            ])),
        }
    }

    /// A remote-DRAM-over-RDMA backend: ~4.3 µs median one-sided 4 KB reads
    /// with a long congestion tail (the paper's §2.2 observation that single
    /// µs latency is "often wishful thinking").
    pub fn rdma() -> Self {
        let mixture = [
            (
                0.99,
                Nanos::from_micros_f64(4.3),
                0.25,
                Nanos::from_micros(2),
            ),
            (
                0.01,
                Nanos::from_micros_f64(40.0),
                0.40,
                Nanos::from_micros(10),
            ),
        ];
        StorageBackend {
            kind: BackendKind::Rdma,
            read: Box::new(TableLatency::from_lognormal_mixture(&mixture)),
            write: Box::new(TableLatency::from_lognormal_mixture(&mixture)),
        }
    }

    /// A backend with deterministic, constant latency — useful for tests and
    /// ablations that need exact arithmetic.
    pub fn constant(kind: BackendKind, latency: Nanos) -> Self {
        StorageBackend {
            kind,
            read: Box::new(ConstantLatency::new(latency)),
            write: Box::new(ConstantLatency::new(latency)),
        }
    }

    /// Which kind of device this is.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Samples the latency of a 4 KB read.
    pub fn read_latency(&self, rng: &mut DetRng) -> Nanos {
        self.read.sample(rng)
    }

    /// Samples the latency of a 4 KB write.
    pub fn write_latency(&self, rng: &mut DetRng) -> Nanos {
        self.write.sample(rng)
    }

    /// Samples a read latency and scales it by a fault-epoch multiplier in
    /// thousandths (`1000` = identity).
    ///
    /// The sample is always drawn, so the RNG stream advances identically
    /// whether or not a fault epoch is active — the determinism contract for
    /// empty fault plans depends on this.
    pub fn read_latency_scaled(&self, rng: &mut DetRng, multiplier_milli: u64) -> Nanos {
        self.read.sample_scaled(rng, multiplier_milli)
    }

    /// Samples a write latency and scales it by a fault-epoch multiplier in
    /// thousandths; see [`StorageBackend::read_latency_scaled`].
    pub fn write_latency_scaled(&self, rng: &mut DetRng, multiplier_milli: u64) -> Nanos {
        self.write.sample_scaled(rng, multiplier_milli)
    }

    /// The nominal (median) read latency of this backend.
    pub fn nominal_read_latency(&self) -> Nanos {
        self.read.nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_read(backend: &StorageBackend, samples: usize) -> f64 {
        let mut rng = DetRng::seed_from(42);
        let mut values: Vec<u64> = (0..samples)
            .map(|_| backend.read_latency(&mut rng).as_nanos())
            .collect();
        values.sort_unstable();
        values[values.len() / 2] as f64
    }

    #[test]
    fn labels_and_nominals() {
        assert_eq!(BackendKind::Hdd.label(), "HDD");
        assert_eq!(
            BackendKind::Rdma.nominal_latency(),
            Nanos::from_nanos(4_300)
        );
        assert_eq!(BackendKind::Ssd.nominal_latency(), Nanos::from_micros(20));
    }

    #[test]
    fn medians_track_paper_figures() {
        // Medians must land within 15 % of the paper's Figure 1 numbers.
        let hdd = median_read(&StorageBackend::hdd(), 20_000);
        assert!((hdd - 91_480.0).abs() / 91_480.0 < 0.15, "hdd median {hdd}");
        let ssd = median_read(&StorageBackend::ssd(), 20_000);
        assert!((ssd - 20_000.0).abs() / 20_000.0 < 0.15, "ssd median {ssd}");
        let rdma = median_read(&StorageBackend::rdma(), 20_000);
        assert!(
            (rdma - 4_300.0).abs() / 4_300.0 < 0.15,
            "rdma median {rdma}"
        );
    }

    #[test]
    fn latency_ordering_is_hdd_slowest_rdma_fastest() {
        let hdd = median_read(&StorageBackend::hdd(), 5_000);
        let ssd = median_read(&StorageBackend::ssd(), 5_000);
        let rdma = median_read(&StorageBackend::rdma(), 5_000);
        assert!(hdd > ssd && ssd > rdma);
    }

    #[test]
    fn rdma_has_a_meaningful_tail() {
        let backend = StorageBackend::rdma();
        let mut rng = DetRng::seed_from(7);
        let mut values: Vec<u64> = (0..50_000)
            .map(|_| backend.read_latency(&mut rng).as_nanos())
            .collect();
        values.sort_unstable();
        let median = values[values.len() / 2];
        let p999 = values[(values.len() as f64 * 0.999) as usize];
        assert!(
            p999 > 4 * median,
            "p999 {p999} vs median {median}: tail too light"
        );
    }

    #[test]
    fn constant_backend_is_deterministic() {
        let backend = StorageBackend::constant(BackendKind::Rdma, Nanos::from_micros(5));
        let mut rng = DetRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(backend.read_latency(&mut rng), Nanos::from_micros(5));
            assert_eq!(backend.write_latency(&mut rng), Nanos::from_micros(5));
        }
    }

    #[test]
    fn scaled_sampling_draws_the_same_stream() {
        let backend = StorageBackend::rdma();
        let mut healthy_rng = DetRng::seed_from(5);
        let mut faulty_rng = DetRng::seed_from(5);
        for i in 0..100 {
            let base = backend.read_latency(&mut healthy_rng);
            let multiplier = if i % 2 == 0 { 1_000 } else { 3_000 };
            let scaled = backend.read_latency_scaled(&mut faulty_rng, multiplier);
            if multiplier == 1_000 {
                assert_eq!(scaled, base, "identity multiplier must not perturb");
            } else {
                assert_eq!(scaled.as_nanos(), base.as_nanos() * 3);
            }
        }
        // Both streams advanced in lockstep.
        assert_eq!(
            backend.read_latency(&mut healthy_rng),
            backend.read_latency(&mut faulty_rng)
        );
    }

    #[test]
    fn new_dispatches_on_kind() {
        assert_eq!(
            StorageBackend::new(BackendKind::Hdd).kind(),
            BackendKind::Hdd
        );
        assert_eq!(
            StorageBackend::new(BackendKind::Ssd).kind(),
            BackendKind::Ssd
        );
        assert_eq!(
            StorageBackend::new(BackendKind::Rdma).kind(),
            BackendKind::Rdma
        );
    }
}
