//! Seeded, deterministic fault injection for the remote tier.
//!
//! A healthy fabric only demonstrates Leap's latency-hiding claims in steady
//! state. This module adds churn as first-class *simulation* input: a
//! [`FaultSpec`] describes how much chaos to inject (how many latency-spike
//! epochs, degraded-bandwidth epochs, machine failures, and reconnect
//! storms, over which virtual-time window), and [`FaultPlan::from_spec`]
//! expands it into a concrete schedule using a dedicated [`DetRng`] stream.
//!
//! Determinism contract:
//!
//! - The plan is a pure function of `(seed, spec, machine_count)`. The
//!   expansion RNG is seeded from `seed ^ FAULT_SALT` and never touches any
//!   component's RNG stream, so installing an *empty* plan leaves every other
//!   random draw — and therefore every healthy-run result — bit-identical.
//! - All fault events are keyed to virtual time ([`Nanos`]), never wall
//!   clocks, so `Serial` and `Threaded` replays observe the same schedule.
//! - [`FaultInjectionStats`] carries an order-sensitive FNV checksum per
//!   shard and merges across shards commutatively, mirroring the engine's
//!   pipeline-stats discipline.

use leap_sim_core::{DetRng, Nanos};
use serde::{Deserialize, Serialize};

/// Salt folded into the run seed before expanding a plan, so the fault
/// schedule draws from its own stream and leaves component streams untouched.
const FAULT_SALT: u64 = 0x8F1B_BCDC_FA17_71AD;

/// FNV-1a offset basis — the checksum seed shared with `PipelineStats` (and
/// with the recovery layer's `RecoveryStats`).
pub(crate) const CHECKSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime used to fold words into the checksum.
pub(crate) const CHECKSUM_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Multiplier denominator: epoch multipliers are expressed in thousandths,
/// so `1000` is the identity and `2500` means 2.5× slower.
pub const MULTIPLIER_IDENTITY_MILLI: u64 = 1000;

/// How much churn to inject, expressed as counts over a virtual-time window.
///
/// The spec is the *intent*; [`FaultPlan::from_spec`] turns it into concrete
/// epochs and failure events. A spec with all counts zero (see
/// [`FaultSpec::none`]) injects nothing and reproduces healthy runs
/// byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Number of latency-spike epochs to schedule.
    pub latency_spikes: u32,
    /// Latency multiplier during a spike epoch, in thousandths (`6000` = 6×).
    pub spike_multiplier_milli: u32,
    /// Number of degraded-bandwidth epochs to schedule.
    pub degraded_epochs: u32,
    /// Latency multiplier during a degraded epoch, in thousandths.
    pub degraded_multiplier_milli: u32,
    /// Number of remote machines to fail mid-run (capped so at least one
    /// machine survives).
    pub machine_failures: u32,
    /// Number of reconnect-storm epochs to schedule.
    pub reconnect_storms: u32,
    /// Per-request reconnect penalty paid during a storm epoch.
    pub reconnect_penalty: Nanos,
    /// Duration of each scheduled epoch.
    pub epoch: Nanos,
    /// Earliest virtual time at which any fault may start.
    pub start: Nanos,
    /// Exclusive upper bound on fault onset times.
    pub horizon: Nanos,
    /// Number of link-level partial-partition epochs to schedule. Each one
    /// severs a single (core-shard → machine) link for one epoch, so a
    /// machine can be unreachable from one shard while healthy from another.
    pub partition_epochs: u32,
    /// Restricts every epoch and partition in the plan to accesses issued by
    /// one tenant (`0` targets all traffic). Machine failures stay global —
    /// hardware dies for everyone.
    pub target_tenant: u32,
}

impl FaultSpec {
    /// A spec that injects nothing; the default for healthy runs.
    pub const fn none() -> Self {
        FaultSpec {
            latency_spikes: 0,
            spike_multiplier_milli: 0,
            degraded_epochs: 0,
            degraded_multiplier_milli: 0,
            machine_failures: 0,
            reconnect_storms: 0,
            reconnect_penalty: Nanos::ZERO,
            epoch: Nanos::ZERO,
            start: Nanos::ZERO,
            horizon: Nanos::ZERO,
            partition_epochs: 0,
            target_tenant: 0,
        }
    }

    /// True if the spec schedules at least one fault of any kind.
    pub fn is_active(&self) -> bool {
        self.latency_spikes > 0
            || self.degraded_epochs > 0
            || self.machine_failures > 0
            || self.reconnect_storms > 0
            || self.partition_epochs > 0
    }

    /// The canonical "storm" used by the chaos suite and `fig_churn`: every
    /// fault kind at once over the given onset window.
    ///
    /// Spike epochs run 6× slower, degraded epochs 3× slower, and storm
    /// requests pay a 25 µs reconnect penalty; epochs last a quarter of the
    /// window so several overlap mid-run.
    pub fn storm_over(start: Nanos, horizon: Nanos) -> Self {
        let window = horizon.saturating_sub(start);
        FaultSpec {
            latency_spikes: 2,
            spike_multiplier_milli: 6_000,
            degraded_epochs: 1,
            degraded_multiplier_milli: 3_000,
            machine_failures: 1,
            reconnect_storms: 1,
            reconnect_penalty: Nanos::from_micros(25),
            epoch: Nanos::from_nanos((window.as_nanos() / 4).max(1)),
            start,
            horizon,
            partition_epochs: 0,
            target_tenant: 0,
        }
    }

    /// The canonical storm sized to the ingested perf fixture's replay
    /// (~715 µs of virtual time): faults land throughout the run.
    pub fn canonical_storm() -> Self {
        Self::storm_over(Nanos::from_micros(50), Nanos::from_micros(800))
    }

    /// The canonical storm plus link partitions: the input the partition
    /// fixture, the recovery suite, and the chaos CI lane all share. Keeping
    /// [`FaultSpec::canonical_storm`] partition-free preserves the existing
    /// golden chaos pins.
    pub fn canonical_partition_storm() -> Self {
        let mut spec = Self::canonical_storm();
        spec.partition_epochs = 3;
        spec
    }

    /// Validates the spec, returning a static reason on the first problem.
    ///
    /// An inactive spec is always valid; an active one needs a non-empty
    /// onset window, a non-zero epoch length, slowdown multipliers of at
    /// least 1× for every scheduled epoch kind, and a non-zero reconnect
    /// penalty if storms are scheduled.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.is_active() {
            return Ok(());
        }
        if self.horizon <= self.start {
            return Err("fault horizon must lie strictly after fault start");
        }
        if self.epoch.is_zero() {
            return Err("fault epoch duration must be non-zero");
        }
        if self.latency_spikes > 0
            && u64::from(self.spike_multiplier_milli) < MULTIPLIER_IDENTITY_MILLI
        {
            return Err("spike multiplier must be at least 1000 (1x)");
        }
        if self.degraded_epochs > 0
            && u64::from(self.degraded_multiplier_milli) < MULTIPLIER_IDENTITY_MILLI
        {
            return Err("degraded multiplier must be at least 1000 (1x)");
        }
        if self.reconnect_storms > 0 && self.reconnect_penalty.is_zero() {
            return Err("reconnect storms need a non-zero reconnect penalty");
        }
        Ok(())
    }

    /// Serializes the spec as the inner `"key":value` pairs (no braces), so
    /// it can be embedded flat inside a larger JSON object.
    pub fn to_json_fields(&self) -> String {
        format!(
            concat!(
                "\"fault_latency_spikes\":{},",
                "\"fault_spike_multiplier_milli\":{},",
                "\"fault_degraded_epochs\":{},",
                "\"fault_degraded_multiplier_milli\":{},",
                "\"fault_machine_failures\":{},",
                "\"fault_reconnect_storms\":{},",
                "\"fault_reconnect_penalty_ns\":{},",
                "\"fault_epoch_ns\":{},",
                "\"fault_start_ns\":{},",
                "\"fault_horizon_ns\":{},",
                "\"fault_partition_epochs\":{},",
                "\"fault_target_tenant\":{}"
            ),
            self.latency_spikes,
            self.spike_multiplier_milli,
            self.degraded_epochs,
            self.degraded_multiplier_milli,
            self.machine_failures,
            self.reconnect_storms,
            self.reconnect_penalty.as_nanos(),
            self.epoch.as_nanos(),
            self.start.as_nanos(),
            self.horizon.as_nanos(),
            self.partition_epochs,
            self.target_tenant,
        )
    }

    /// Serializes the spec as a standalone JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.to_json_fields())
    }

    /// Applies one parsed `"fault_*"` key to the spec.
    ///
    /// Returns `Ok(false)` if the key is not a fault key (so callers merging
    /// fault fields into a larger object can fall through), `Ok(true)` if it
    /// was consumed, and `Err` on a malformed value.
    pub fn apply_json_field(&mut self, key: &str, value: &str) -> Result<bool, FaultJsonError> {
        fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, FaultJsonError> {
            value.trim().parse().map_err(|_| FaultJsonError::BadValue {
                key: key.to_string(),
                value: value.trim().to_string(),
            })
        }
        match key {
            "fault_latency_spikes" => self.latency_spikes = num(key, value)?,
            "fault_spike_multiplier_milli" => self.spike_multiplier_milli = num(key, value)?,
            "fault_degraded_epochs" => self.degraded_epochs = num(key, value)?,
            "fault_degraded_multiplier_milli" => self.degraded_multiplier_milli = num(key, value)?,
            "fault_machine_failures" => self.machine_failures = num(key, value)?,
            "fault_reconnect_storms" => self.reconnect_storms = num(key, value)?,
            "fault_reconnect_penalty_ns" => {
                self.reconnect_penalty = Nanos::from_nanos(num(key, value)?)
            }
            "fault_epoch_ns" => self.epoch = Nanos::from_nanos(num(key, value)?),
            "fault_start_ns" => self.start = Nanos::from_nanos(num(key, value)?),
            "fault_horizon_ns" => self.horizon = Nanos::from_nanos(num(key, value)?),
            "fault_partition_epochs" => self.partition_epochs = num(key, value)?,
            "fault_target_tenant" => self.target_tenant = num(key, value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Parses a standalone JSON object produced by [`FaultSpec::to_json`]
    /// (missing keys keep their [`FaultSpec::none`] defaults). The parsed
    /// spec is validated before being returned.
    ///
    /// Unknown `fault_*` keys (and any other unrecognized key) are a typed
    /// [`FaultJsonError::UnknownKey`] error rather than being skipped, so a
    /// typo'd chaos plan cannot silently run as a healthy baseline.
    pub fn from_json(text: &str) -> Result<Self, FaultJsonError> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or(FaultJsonError::NotAnObject)?;
        let mut spec = FaultSpec::none();
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (raw_key, value) = pair
                .split_once(':')
                .ok_or_else(|| FaultJsonError::MalformedPair(pair.to_string()))?;
            let key = raw_key.trim().trim_matches('"');
            if !spec.apply_json_field(key, value)? {
                return Err(FaultJsonError::UnknownKey(key.to_string()));
            }
        }
        spec.validate().map_err(FaultJsonError::InvalidSpec)?;
        Ok(spec)
    }
}

/// Typed parse error for fault-spec JSON, so callers can tell a typo'd key
/// apart from a malformed document or a structurally invalid spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultJsonError {
    /// The document is not a braced JSON object.
    NotAnObject,
    /// A `key:value` pair could not be split.
    MalformedPair(String),
    /// A key that is neither a known `fault_*` field nor otherwise consumed.
    UnknownKey(String),
    /// A known key carried an unparseable value.
    BadValue {
        /// The offending key.
        key: String,
        /// The raw value text that failed to parse.
        value: String,
    },
    /// The parsed spec failed [`FaultSpec::validate`].
    InvalidSpec(&'static str),
}

impl std::fmt::Display for FaultJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultJsonError::NotAnObject => write!(f, "fault spec JSON must be an object"),
            FaultJsonError::MalformedPair(pair) => write!(f, "malformed pair {pair:?}"),
            FaultJsonError::UnknownKey(key) => write!(f, "unknown fault key {key:?}"),
            FaultJsonError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for {key:?}")
            }
            FaultJsonError::InvalidSpec(reason) => write!(f, "invalid fault spec: {reason}"),
        }
    }
}

impl std::error::Error for FaultJsonError {}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

/// The kind of fault epoch, ordered for deterministic schedule sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEpochKind {
    /// Remote latency multiplied by the epoch multiplier.
    LatencySpike,
    /// Degraded fabric bandwidth, modeled as a (smaller) latency multiplier.
    DegradedBandwidth,
    /// Every remote request pays a reconnect penalty.
    ReconnectStorm,
}

/// One scheduled epoch during which a fault modifier is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEpoch {
    /// What happens during the epoch.
    pub kind: FaultEpochKind,
    /// Inclusive epoch start (virtual time).
    pub start: Nanos,
    /// Exclusive epoch end (virtual time).
    pub end: Nanos,
    /// Latency multiplier in thousandths (`1000` = identity); meaningful for
    /// spike/degraded epochs, `1000` for storms.
    pub multiplier_milli: u64,
}

impl FaultEpoch {
    /// True if the epoch covers the given instant.
    pub fn covers(&self, now: Nanos) -> bool {
        self.start <= now && now < self.end
    }
}

/// One scheduled machine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineFailure {
    /// Virtual time at which the machine dies.
    pub at: Nanos,
    /// Index of the victim machine within the agent's cluster.
    pub victim: u32,
}

/// Number of core-shard slots link partitions are keyed over. A core `c`
/// belongs to link shard `c % PARTITION_LINK_SHARDS`, so a partition severs
/// one machine from a quarter of the cores while the rest reach it normally.
pub const PARTITION_LINK_SHARDS: u32 = 4;

/// One scheduled link-level partial partition: for the epoch's duration the
/// (core-shard → machine) link is down, while every other link to the same
/// machine stays healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionEpoch {
    /// Inclusive partition start (virtual time).
    pub start: Nanos,
    /// Exclusive partition end (virtual time).
    pub end: Nanos,
    /// Index of the machine whose link is severed.
    pub machine: u32,
    /// Core shard (`core % PARTITION_LINK_SHARDS`) that loses the link.
    pub shard: u32,
}

impl PartitionEpoch {
    /// True if the partition severs the `(core, machine)` link at `now`.
    pub fn severs(&self, core: usize, machine: u32, now: Nanos) -> bool {
        self.machine == machine
            && (core as u32) % PARTITION_LINK_SHARDS == self.shard
            && self.start <= now
            && now < self.end
    }
}

/// The fault modifiers in force at one instant, as seen by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultModifiers {
    /// Product of all active epoch multipliers, in thousandths.
    pub multiplier_milli: u64,
    /// Total reconnect penalty owed by a request issued now.
    pub reconnect_penalty: Nanos,
    /// True if at least one latency-spike epoch is active.
    pub spike_active: bool,
    /// True if at least one degraded-bandwidth epoch is active.
    pub degraded_active: bool,
}

impl FaultModifiers {
    /// The identity modifiers: nothing is slowed down or penalized.
    pub const IDENTITY: FaultModifiers = FaultModifiers {
        multiplier_milli: MULTIPLIER_IDENTITY_MILLI,
        reconnect_penalty: Nanos::ZERO,
        spike_active: false,
        degraded_active: false,
    };

    /// True if these modifiers leave the request untouched.
    pub fn is_identity(&self) -> bool {
        *self == FaultModifiers::IDENTITY
    }
}

/// A concrete, fully expanded fault schedule.
///
/// Built once from `(seed, spec, machine_count)` and installed into the
/// remote agent (or the legacy data path); identical inputs always expand to
/// the identical plan, in either replay mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    spec: FaultSpec,
    epochs: Vec<FaultEpoch>,
    failures: Vec<MachineFailure>,
    partitions: Vec<PartitionEpoch>,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty() && self.failures.is_empty() && self.partitions.is_empty()
    }

    /// The spec the plan was expanded from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The scheduled epochs, sorted by `(start, kind, end)`.
    pub fn epochs(&self) -> &[FaultEpoch] {
        &self.epochs
    }

    /// The scheduled machine failures, sorted by failure time.
    pub fn failures(&self) -> &[MachineFailure] {
        &self.failures
    }

    /// The scheduled link partitions, sorted by `(start, machine, shard)`.
    pub fn partitions(&self) -> &[PartitionEpoch] {
        &self.partitions
    }

    /// True if the plan schedules at least one link partition. The agent's
    /// hot path checks this before doing any per-request reachability work.
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// True if the `(core, machine)` link is severed by an active partition.
    pub fn link_partitioned(&self, core: usize, machine: u32, now: Nanos) -> bool {
        self.partitions.iter().any(|p| p.severs(core, machine, now))
    }

    /// True if the plan's epochs and partitions apply to accesses issued by
    /// `tenant`. A `target_tenant` of zero targets everyone; tenant zero
    /// (untagged traffic) is only hit by untargeted plans.
    pub fn applies_to_tenant(&self, tenant: u32) -> bool {
        self.spec.target_tenant == 0 || tenant == self.spec.target_tenant
    }

    /// Expands a spec into a concrete schedule.
    ///
    /// The expansion RNG is seeded from `seed ^ FAULT_SALT`, a stream no
    /// simulation component shares, so plan expansion never perturbs healthy
    /// runs. `machine_count` is the size of the cluster the plan targets;
    /// failures are capped at `machine_count - 1` so at least one machine
    /// survives (a count of zero disables failures entirely, which is how
    /// the cluster-less legacy data path opts out).
    pub fn from_spec(seed: u64, spec: &FaultSpec, machine_count: u32) -> Self {
        if !spec.is_active() {
            return FaultPlan::empty();
        }
        debug_assert!(spec.validate().is_ok(), "expanding an invalid fault spec");
        let mut rng = DetRng::seed_from(seed ^ FAULT_SALT);
        let (lo, hi) = (spec.start.as_nanos(), spec.horizon.as_nanos());
        let onset = |rng: &mut DetRng| Nanos::from_nanos(rng.gen_range_u64(lo, hi));

        let mut epochs = Vec::new();
        for (count, kind, multiplier) in [
            (
                spec.latency_spikes,
                FaultEpochKind::LatencySpike,
                u64::from(spec.spike_multiplier_milli),
            ),
            (
                spec.degraded_epochs,
                FaultEpochKind::DegradedBandwidth,
                u64::from(spec.degraded_multiplier_milli),
            ),
            (
                spec.reconnect_storms,
                FaultEpochKind::ReconnectStorm,
                MULTIPLIER_IDENTITY_MILLI,
            ),
        ] {
            for _ in 0..count {
                let start = onset(&mut rng);
                epochs.push(FaultEpoch {
                    kind,
                    start,
                    end: start.saturating_add(spec.epoch),
                    multiplier_milli: multiplier,
                });
            }
        }
        epochs.sort_by_key(|e| (e.start, e.kind, e.end));

        let mut failures = Vec::new();
        let victims_available = machine_count.saturating_sub(1);
        let wanted = spec.machine_failures.min(victims_available);
        let mut victims: Vec<u32> = Vec::with_capacity(wanted as usize);
        for _ in 0..wanted {
            // Distinct victims: resample until unused. Terminates because
            // `wanted` never exceeds machine_count - 1.
            let mut victim = rng.gen_range_u64(0, u64::from(machine_count)) as u32;
            while victims.contains(&victim) {
                victim = rng.gen_range_u64(0, u64::from(machine_count)) as u32;
            }
            victims.push(victim);
            failures.push(MachineFailure {
                at: onset(&mut rng),
                victim,
            });
        }
        failures.sort_by_key(|f| (f.at, f.victim));

        // Partitions are drawn last so specs without them expand to exactly
        // the draws (and therefore the schedule) they produced before link
        // partitions existed.
        let mut partitions = Vec::new();
        if machine_count > 0 {
            for _ in 0..spec.partition_epochs {
                let start = onset(&mut rng);
                partitions.push(PartitionEpoch {
                    start,
                    end: start.saturating_add(spec.epoch),
                    machine: rng.gen_range_u64(0, u64::from(machine_count)) as u32,
                    shard: rng.gen_range_u64(0, u64::from(PARTITION_LINK_SHARDS)) as u32,
                });
            }
        }
        partitions.sort_by_key(|p| (p.start, p.machine, p.shard, p.end));

        FaultPlan {
            spec: *spec,
            epochs,
            failures,
            partitions,
        }
    }

    /// Assembles a plan from explicit parts, sorting each schedule the same
    /// way [`from_spec`] does. Intended for tests and tools that need a
    /// precise schedule; [`from_spec`] is the normal constructor.
    ///
    /// [`from_spec`]: FaultPlan::from_spec
    pub fn from_parts(
        spec: FaultSpec,
        mut epochs: Vec<FaultEpoch>,
        mut failures: Vec<MachineFailure>,
        mut partitions: Vec<PartitionEpoch>,
    ) -> Self {
        epochs.sort_by_key(|e| (e.start, e.kind, e.end));
        failures.sort_by_key(|f| (f.at, f.victim));
        partitions.sort_by_key(|p| (p.start, p.machine, p.shard, p.end));
        FaultPlan {
            spec,
            epochs,
            failures,
            partitions,
        }
    }

    /// The modifiers a request issued at `now` must pay.
    ///
    /// The empty plan returns [`FaultModifiers::IDENTITY`] without touching
    /// the epoch list, keeping the healthy hot path allocation- and
    /// branch-cheap.
    pub fn modifiers_at(&self, now: Nanos) -> FaultModifiers {
        if self.epochs.is_empty() {
            return FaultModifiers::IDENTITY;
        }
        let mut mods = FaultModifiers::IDENTITY;
        for epoch in &self.epochs {
            if epoch.start > now {
                break;
            }
            if !epoch.covers(now) {
                continue;
            }
            match epoch.kind {
                FaultEpochKind::LatencySpike => {
                    mods.spike_active = true;
                    mods.multiplier_milli =
                        compose_multiplier_milli(mods.multiplier_milli, epoch.multiplier_milli);
                }
                FaultEpochKind::DegradedBandwidth => {
                    mods.degraded_active = true;
                    mods.multiplier_milli =
                        compose_multiplier_milli(mods.multiplier_milli, epoch.multiplier_milli);
                }
                FaultEpochKind::ReconnectStorm => {
                    mods.reconnect_penalty = mods
                        .reconnect_penalty
                        .saturating_add(self.spec.reconnect_penalty);
                }
            }
        }
        mods
    }
}

/// Composes two multipliers expressed in thousandths (overlapping epochs
/// multiply: a 6× spike inside a 3× degraded epoch is 18× slower).
fn compose_multiplier_milli(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) / u128::from(MULTIPLIER_IDENTITY_MILLI)) as u64
}

/// Scales a sampled latency by a multiplier in thousandths. The identity
/// multiplier returns the base unchanged (bit-identical healthy runs).
///
/// Delegates to [`leap_sim_core::scale_nanos_milli`], the single scaling
/// primitive every sampler's `sample_scaled` folds epoch multipliers with.
#[inline]
pub fn scale_latency_milli(base: Nanos, multiplier_milli: u64) -> Nanos {
    leap_sim_core::scale_nanos_milli(base, multiplier_milli)
}

/// Per-run fault-injection accounting, merged across shards.
///
/// The checksum folds a word per fault event in shard-deterministic order
/// (FNV-style, the same constants as the engine's pipeline stats) and merges
/// across shards with a commutative `wrapping_add`, so `Serial` and
/// `Threaded` replays of the same `(seed, plan)` agree bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInjectionStats {
    /// Requests served during at least one latency-spike epoch.
    pub spiked_requests: u64,
    /// Requests served during at least one degraded-bandwidth epoch.
    pub degraded_requests: u64,
    /// Requests that paid a reconnect penalty during a storm.
    pub reconnect_requests: u64,
    /// Total reconnect penalty paid.
    pub reconnect_penalty_total: Nanos,
    /// Machine failures applied.
    pub machines_failed: u64,
    /// In-flight dispatch-queue requests cancelled by failures.
    pub cancelled_requests: u64,
    /// Slabs that lost a replica and were re-replicated onto a survivor.
    pub slabs_rereplicated: u64,
    /// Slabs that lost every replica and were rebuilt from the durable tier.
    pub slabs_lost: u64,
    /// Total reconstruction cost charged to subsequent requests.
    pub reconstruction_cost_total: Nanos,
    /// Order-sensitive FNV fold of every fault event (commutative merge).
    pub checksum: u64,
}

impl Default for FaultInjectionStats {
    fn default() -> Self {
        FaultInjectionStats {
            spiked_requests: 0,
            degraded_requests: 0,
            reconnect_requests: 0,
            reconnect_penalty_total: Nanos::ZERO,
            machines_failed: 0,
            cancelled_requests: 0,
            slabs_rereplicated: 0,
            slabs_lost: 0,
            reconstruction_cost_total: Nanos::ZERO,
            checksum: CHECKSUM_SEED,
        }
    }
}

impl FaultInjectionStats {
    /// True if no fault touched the run (the checksum still holds its seed).
    pub fn is_quiet(&self) -> bool {
        *self == FaultInjectionStats::default()
    }

    /// Folds one event word into the checksum (order-sensitive per shard).
    pub fn record(&mut self, word: u64) {
        self.checksum = self
            .checksum
            .wrapping_mul(CHECKSUM_PRIME)
            .wrapping_add(word);
    }

    /// Merges another shard's stats into this one. Counter fields add;
    /// checksums combine by adding the other shard's *drift* from the FNV
    /// offset basis — commutative, so the merge order (and therefore
    /// the replay mode) does not matter, and quiet shards leave the
    /// aggregate exactly untouched (a healthy multi-shard run stays equal
    /// to [`FaultInjectionStats::default`]).
    pub fn merge(&mut self, other: &FaultInjectionStats) {
        self.spiked_requests += other.spiked_requests;
        self.degraded_requests += other.degraded_requests;
        self.reconnect_requests += other.reconnect_requests;
        self.reconnect_penalty_total = self
            .reconnect_penalty_total
            .saturating_add(other.reconnect_penalty_total);
        self.machines_failed += other.machines_failed;
        self.cancelled_requests += other.cancelled_requests;
        self.slabs_rereplicated += other.slabs_rereplicated;
        self.slabs_lost += other.slabs_lost;
        self.reconstruction_cost_total = self
            .reconstruction_cost_total
            .saturating_add(other.reconstruction_cost_total);
        self.checksum = self
            .checksum
            .wrapping_add(other.checksum.wrapping_sub(CHECKSUM_SEED));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FaultSpec {
        FaultSpec {
            latency_spikes: 2,
            spike_multiplier_milli: 4_000,
            degraded_epochs: 1,
            degraded_multiplier_milli: 2_000,
            machine_failures: 2,
            reconnect_storms: 1,
            reconnect_penalty: Nanos::from_micros(10),
            epoch: Nanos::from_micros(100),
            start: Nanos::from_micros(10),
            horizon: Nanos::from_micros(500),
            partition_epochs: 2,
            target_tenant: 0,
        }
    }

    #[test]
    fn none_is_inactive_and_valid() {
        let spec = FaultSpec::none();
        assert!(!spec.is_active());
        assert!(spec.validate().is_ok());
        assert!(FaultPlan::from_spec(1, &spec, 4).is_empty());
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = small_spec();
        spec.horizon = spec.start;
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.epoch = Nanos::ZERO;
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.spike_multiplier_milli = 500;
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.reconnect_penalty = Nanos::ZERO;
        assert!(spec.validate().is_err());

        assert!(small_spec().validate().is_ok());
        assert!(FaultSpec::canonical_storm().validate().is_ok());
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = small_spec();
        let parsed = FaultSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, parsed);
        // Missing keys default; unknown keys error.
        let empty = FaultSpec::from_json("{}").expect("empty object");
        assert_eq!(empty, FaultSpec::none());
        assert!(FaultSpec::from_json("{\"fault_bogus\":1}").is_err());
        assert!(FaultSpec::from_json("not json").is_err());
    }

    #[test]
    fn plan_expansion_is_deterministic() {
        let spec = small_spec();
        let a = FaultPlan::from_spec(42, &spec, 4);
        let b = FaultPlan::from_spec(42, &spec, 4);
        assert_eq!(a, b);
        let c = FaultPlan::from_spec(43, &spec, 4);
        assert_ne!(a, c, "different seeds should reshuffle the schedule");
    }

    #[test]
    fn plan_schedules_expected_counts_in_window() {
        let spec = small_spec();
        let plan = FaultPlan::from_spec(7, &spec, 4);
        assert_eq!(plan.epochs().len(), 4); // 2 spikes + 1 degraded + 1 storm
        assert_eq!(plan.failures().len(), 2);
        for e in plan.epochs() {
            assert!(e.start >= spec.start && e.start < spec.horizon);
            assert_eq!(e.end, e.start.saturating_add(spec.epoch));
        }
        let mut victims: Vec<u32> = plan.failures().iter().map(|f| f.victim).collect();
        victims.dedup();
        assert_eq!(victims.len(), 2, "victims must be distinct");
        for f in plan.failures() {
            assert!(f.victim < 4);
            assert!(f.at >= spec.start && f.at < spec.horizon);
        }
        assert_eq!(plan.partitions().len(), 2);
        for p in plan.partitions() {
            assert!(p.start >= spec.start && p.start < spec.horizon);
            assert_eq!(p.end, p.start.saturating_add(spec.epoch));
            assert!(p.machine < 4);
            assert!(p.shard < PARTITION_LINK_SHARDS);
        }
    }

    #[test]
    fn partition_draws_ride_after_legacy_draws() {
        // A spec without partitions must expand to exactly the schedule it
        // produced before partitions existed: the partition draws come last.
        let with = small_spec();
        let mut without = small_spec();
        without.partition_epochs = 0;
        let plan_with = FaultPlan::from_spec(42, &with, 4);
        let plan_without = FaultPlan::from_spec(42, &without, 4);
        assert_eq!(plan_with.epochs(), plan_without.epochs());
        assert_eq!(plan_with.failures(), plan_without.failures());
        assert!(plan_without.partitions().is_empty());
        assert_eq!(plan_with.partitions().len(), 2);
    }

    #[test]
    fn link_partitions_sever_one_shard_only() {
        let partition = PartitionEpoch {
            start: Nanos::from_micros(10),
            end: Nanos::from_micros(20),
            machine: 1,
            shard: 2,
        };
        let mut plan = FaultPlan::empty();
        plan.partitions = vec![partition];
        assert!(plan.has_partitions());
        let mid = Nanos::from_micros(15);
        assert!(plan.link_partitioned(2, 1, mid));
        assert!(plan.link_partitioned(6, 1, mid), "core 6 maps to shard 2");
        assert!(
            !plan.link_partitioned(1, 1, mid),
            "other shards keep the link"
        );
        assert!(
            !plan.link_partitioned(2, 0, mid),
            "other machines unaffected"
        );
        assert!(
            !plan.link_partitioned(2, 1, Nanos::from_micros(20)),
            "end exclusive"
        );
        assert!(
            !plan.link_partitioned(2, 1, Nanos::from_micros(9)),
            "start inclusive"
        );
    }

    #[test]
    fn tenant_targeting_filters_epochs() {
        let mut plan = FaultPlan::empty();
        assert!(plan.applies_to_tenant(0));
        assert!(plan.applies_to_tenant(7));
        plan.spec.target_tenant = 3;
        assert!(plan.applies_to_tenant(3));
        assert!(!plan.applies_to_tenant(1));
        assert!(
            !plan.applies_to_tenant(0),
            "untagged traffic escapes a targeted plan"
        );
    }

    #[test]
    fn from_json_errors_are_typed() {
        assert_eq!(
            FaultSpec::from_json("not json"),
            Err(FaultJsonError::NotAnObject)
        );
        assert_eq!(
            FaultSpec::from_json("{\"fault_bogus\":1}"),
            Err(FaultJsonError::UnknownKey("fault_bogus".to_string()))
        );
        assert_eq!(
            FaultSpec::from_json("{\"fault_latency_spikes\" 3}"),
            Err(FaultJsonError::MalformedPair(
                "\"fault_latency_spikes\" 3".to_string()
            ))
        );
        assert_eq!(
            FaultSpec::from_json("{\"fault_latency_spikes\":\"many\"}"),
            Err(FaultJsonError::BadValue {
                key: "fault_latency_spikes".to_string(),
                value: "\"many\"".to_string(),
            })
        );
        assert!(matches!(
            FaultSpec::from_json("{\"fault_latency_spikes\":1}"),
            Err(FaultJsonError::InvalidSpec(_)),
        ));
    }

    #[test]
    fn failures_capped_below_machine_count() {
        let mut spec = small_spec();
        spec.machine_failures = 10;
        assert_eq!(FaultPlan::from_spec(1, &spec, 3).failures().len(), 2);
        assert!(FaultPlan::from_spec(1, &spec, 1).failures().is_empty());
        assert!(FaultPlan::from_spec(1, &spec, 0).failures().is_empty());
    }

    #[test]
    fn modifiers_compose_multiplicatively() {
        let mut plan = FaultPlan::empty();
        assert!(plan.modifiers_at(Nanos::from_micros(5)).is_identity());
        plan.spec.reconnect_penalty = Nanos::from_micros(10);
        plan.epochs = vec![
            FaultEpoch {
                kind: FaultEpochKind::LatencySpike,
                start: Nanos::from_micros(0),
                end: Nanos::from_micros(100),
                multiplier_milli: 6_000,
            },
            FaultEpoch {
                kind: FaultEpochKind::DegradedBandwidth,
                start: Nanos::from_micros(50),
                end: Nanos::from_micros(150),
                multiplier_milli: 3_000,
            },
            FaultEpoch {
                kind: FaultEpochKind::ReconnectStorm,
                start: Nanos::from_micros(120),
                end: Nanos::from_micros(200),
                multiplier_milli: 1_000,
            },
        ];
        let early = plan.modifiers_at(Nanos::from_micros(10));
        assert_eq!(early.multiplier_milli, 6_000);
        assert!(early.spike_active && !early.degraded_active);
        let overlap = plan.modifiers_at(Nanos::from_micros(75));
        assert_eq!(overlap.multiplier_milli, 18_000);
        let storm = plan.modifiers_at(Nanos::from_micros(130));
        assert_eq!(storm.multiplier_milli, 3_000);
        assert_eq!(storm.reconnect_penalty, Nanos::from_micros(10));
        assert!(plan.modifiers_at(Nanos::from_micros(500)).is_identity());
    }

    #[test]
    fn epoch_bounds_are_inclusive_exclusive() {
        let e = FaultEpoch {
            kind: FaultEpochKind::LatencySpike,
            start: Nanos::from_nanos(100),
            end: Nanos::from_nanos(200),
            multiplier_milli: 2_000,
        };
        assert!(e.covers(Nanos::from_nanos(100)));
        assert!(e.covers(Nanos::from_nanos(199)));
        assert!(!e.covers(Nanos::from_nanos(200)));
        assert!(!e.covers(Nanos::from_nanos(99)));
    }

    #[test]
    fn latency_scaling_identity_and_growth() {
        let base = Nanos::from_micros(4);
        assert_eq!(scale_latency_milli(base, 1_000), base);
        assert_eq!(scale_latency_milli(base, 2_500), Nanos::from_micros(10));
        assert_eq!(
            scale_latency_milli(Nanos::from_nanos(u64::MAX), 4_000),
            Nanos::from_nanos(u64::MAX),
            "scaling saturates instead of wrapping"
        );
    }

    #[test]
    fn stats_merge_is_commutative_on_checksums() {
        let mut a = FaultInjectionStats::default();
        a.record(11);
        a.record(22);
        a.spiked_requests = 2;
        let mut b = FaultInjectionStats::default();
        b.record(33);
        b.machines_failed = 1;

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.checksum, ba.checksum);
        assert_eq!(ab.spiked_requests, 2);
        assert_eq!(ab.machines_failed, 1);
        assert!(!ab.is_quiet());
        assert!(FaultInjectionStats::default().is_quiet());

        // Quiet shards leave an aggregate untouched: merging any number of
        // defaults into a default stays exactly the default, so a healthy
        // multi-shard run reports `is_quiet()`.
        let mut aggregate = FaultInjectionStats::default();
        for _ in 0..4 {
            aggregate.merge(&FaultInjectionStats::default());
        }
        assert!(aggregate.is_quiet());
    }

    #[test]
    fn record_order_changes_the_checksum() {
        let mut a = FaultInjectionStats::default();
        a.record(1);
        a.record(2);
        let mut b = FaultInjectionStats::default();
        b.record(2);
        b.record(1);
        assert_ne!(
            a.checksum, b.checksum,
            "per-shard folding is order-sensitive"
        );
    }
}
