//! Active request recovery for the remote tier: virtual-time deadlines with
//! retry/backoff, hedged reads across slab replicas, and graceful degradation
//! when link partitions make every replica unreachable.
//!
//! The fault layer (`crate::fault`) models what the fabric does *to* requests;
//! this module models what the host does *about* it. Everything runs on
//! virtual time and a dedicated, salted RNG stream so that:
//!
//! 1. `RecoveryPolicy::none()` is byte-identical to a build without the
//!    recovery layer — no extra draws, no extra checksum words.
//! 2. Component RNG streams (agent base sampling, fault-plan expansion) are
//!    never advanced by recovery decisions.
//! 3. Each recovery-considered request derives its own `DetRng` from
//!    `(recovery_seed, ordinal)`, so per-request decisions are independent of
//!    how many other requests recovered before it on the same shard.
//! 4. All bookkeeping folds into an order-insensitive FNV drift checksum
//!    (`RecoveryStats::checksum`), merged across shards exactly like
//!    `FaultInjectionStats`.

use crate::fault::{CHECKSUM_PRIME, CHECKSUM_SEED};
use leap_sim_core::{DetRng, Nanos};
use serde::{Deserialize, Serialize};

/// Salt applied to the run seed to derive the recovery stream, keeping it
/// disjoint from the agent stream and the fault-plan stream
/// (`fault::FAULT_SALT`).
pub const RECOVERY_SALT: u64 = 0x7ec0_4e8a_9a1b_5afe;

/// Derives the recovery stream seed for a run. Callers pass this to
/// `HostAgent::install_recovery` so every shard derives per-request streams
/// from the same root.
#[must_use]
pub fn recovery_stream_seed(run_seed: u64) -> u64 {
    run_seed ^ RECOVERY_SALT
}

/// Derives the per-request recovery RNG. `ordinal` is the shard-local count
/// of recovery-considered requests; mixing it multiplicatively keeps adjacent
/// ordinals' streams uncorrelated.
#[must_use]
pub fn request_stream(recovery_seed: u64, ordinal: u64) -> DetRng {
    DetRng::seed_from(recovery_seed ^ ordinal.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Recovery knobs carried by `SimConfig`. All-zero (`none()`) disables the
/// layer entirely; the data path then takes the exact pre-recovery code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Virtual-time deadline for one attempt, expressed in healthy-fabric
    /// terms; the agent scales it by the active epoch multiplier so a known
    /// fabric-wide slowdown does not trip every deadline. Zero disables
    /// deadlines.
    pub timeout: Nanos,
    /// Maximum retries after deadline expiry. Must be non-zero iff `timeout`
    /// is non-zero.
    pub max_retries: u32,
    /// Base exponential backoff between retries (doubles each retry).
    pub backoff_base: Nanos,
    /// Upper bound on the seeded jitter added to each backoff interval.
    pub backoff_jitter: Nanos,
    /// Delay after which a read is hedged to another replica. Zero disables
    /// hedging. Writes are never hedged (replicas are write-all).
    pub hedge_delay: Nanos,
}

impl RecoveryPolicy {
    /// The disabled policy: byte-identical behavior to a build without the
    /// recovery layer.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            timeout: Nanos::ZERO,
            max_retries: 0,
            backoff_base: Nanos::ZERO,
            backoff_jitter: Nanos::ZERO,
            hedge_delay: Nanos::ZERO,
        }
    }

    /// Canonical tail-tolerant preset used by the hedging figure and the
    /// chaos CI lane. Tuned for the RDMA sampler (median ~4.3 µs): hedge at
    /// ~2× the median, deadline past the healthy p99, two retries with small
    /// jittered backoff.
    #[must_use]
    pub const fn tail_tolerant() -> Self {
        Self {
            timeout: Nanos::from_micros(20),
            max_retries: 2,
            backoff_base: Nanos::from_micros(1),
            backoff_jitter: Nanos::from_nanos(500),
            hedge_delay: Nanos::from_micros(8),
        }
    }

    /// Whether any recovery mechanism is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.timeout.is_zero() || !self.hedge_delay.is_zero()
    }

    /// Structural validation; mirrors `FaultSpec::validate`.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.timeout.is_zero() && self.max_retries == 0 {
            return Err("recovery_timeout_ns requires recovery_max_retries > 0");
        }
        if self.timeout.is_zero() && self.max_retries > 0 {
            return Err("recovery_max_retries requires recovery_timeout_ns > 0");
        }
        if self.timeout.is_zero() && !self.backoff_base.is_zero() {
            return Err("recovery_backoff_base_ns requires recovery_timeout_ns > 0");
        }
        if self.timeout.is_zero() && !self.backoff_jitter.is_zero() {
            return Err("recovery_backoff_jitter_ns requires recovery_timeout_ns > 0");
        }
        Ok(())
    }

    /// Renders the policy as the `recovery_*` JSON fields that ride
    /// `SimConfig::to_json` (no surrounding braces, no trailing comma).
    #[must_use]
    pub fn to_json_fields(&self) -> String {
        format!(
            "\"recovery_timeout_ns\":{},\"recovery_max_retries\":{},\
             \"recovery_backoff_base_ns\":{},\"recovery_backoff_jitter_ns\":{},\
             \"recovery_hedge_delay_ns\":{}",
            self.timeout.as_nanos(),
            self.max_retries,
            self.backoff_base.as_nanos(),
            self.backoff_jitter.as_nanos(),
            self.hedge_delay.as_nanos(),
        )
    }

    /// Applies one `key: value` pair from a config JSON object. Returns
    /// `Ok(true)` when the key belonged to the recovery policy, `Ok(false)`
    /// when it is not a recovery key, and `Err` on a malformed value.
    pub fn apply_json_field(&mut self, key: &str, value: &str) -> Result<bool, String> {
        let parse = |value: &str| -> Result<u64, String> {
            value
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad value {value:?} for recovery key"))
        };
        match key {
            "recovery_timeout_ns" => self.timeout = Nanos::from_nanos(parse(value)?),
            "recovery_max_retries" => {
                self.max_retries = u32::try_from(parse(value)?)
                    .map_err(|_| format!("recovery_max_retries {value:?} out of range"))?;
            }
            "recovery_backoff_base_ns" => self.backoff_base = Nanos::from_nanos(parse(value)?),
            "recovery_backoff_jitter_ns" => self.backoff_jitter = Nanos::from_nanos(parse(value)?),
            "recovery_hedge_delay_ns" => self.hedge_delay = Nanos::from_nanos(parse(value)?),
            _ => return Ok(false),
        }
        Ok(true)
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Aggregate recovery accounting, merged across shards into
/// `RunResult.recovery_stats`. The checksum uses the same FNV drift scheme as
/// `FaultInjectionStats`: order-insensitive within a shard stream and under
/// cross-shard merge, sensitive to any change in the set of recorded events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Attempts that blew their (epoch-scaled) deadline and were cancelled.
    pub deadline_timeouts: u64,
    /// Retry dispatches issued after a deadline expiry.
    pub retries: u64,
    /// Total virtual time spent waiting in backoff between retries.
    pub backoff_wait_total: Nanos,
    /// Hedge dispatches issued.
    pub hedges_issued: u64,
    /// Hedges that completed before the primary (primary cancelled).
    pub hedges_won: u64,
    /// Hedges the primary beat (hedge charged as wasted work).
    pub hedges_wasted: u64,
    /// Reads degraded to the disk-latency path because every replica was
    /// unreachable through an active link partition.
    pub degraded_reads: u64,
    /// Dispatches that failed fast off a partitioned primary link onto
    /// another replica.
    pub partition_failfasts: u64,
    /// FNV drift checksum over every recorded recovery event.
    pub checksum: u64,
}

impl RecoveryStats {
    /// Folds one event word into the drift checksum.
    pub fn record(&mut self, word: u64) {
        self.checksum = self
            .checksum
            .wrapping_add((word ^ CHECKSUM_SEED).wrapping_mul(CHECKSUM_PRIME));
    }

    /// Merges a shard's stats into this one. Checksums combine by summing
    /// drifts from the seed, so merge order does not matter.
    pub fn merge(&mut self, other: &Self) {
        self.deadline_timeouts += other.deadline_timeouts;
        self.retries += other.retries;
        self.backoff_wait_total = self
            .backoff_wait_total
            .saturating_add(other.backoff_wait_total);
        self.hedges_issued += other.hedges_issued;
        self.hedges_won += other.hedges_won;
        self.hedges_wasted += other.hedges_wasted;
        self.degraded_reads += other.degraded_reads;
        self.partition_failfasts += other.partition_failfasts;
        self.checksum = self
            .checksum
            .wrapping_add(other.checksum.wrapping_sub(CHECKSUM_SEED));
    }

    /// True when no recovery event was ever recorded.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

impl Default for RecoveryStats {
    fn default() -> Self {
        Self {
            deadline_timeouts: 0,
            retries: 0,
            backoff_wait_total: Nanos::ZERO,
            hedges_issued: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            degraded_reads: 0,
            partition_failfasts: 0,
            checksum: CHECKSUM_SEED,
        }
    }
}

/// Per-tenant recovery ledger surfaced through the service layer's QoS
/// report. Only populated for accesses attributed to a non-zero tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantRecovery {
    /// Retries charged to this tenant's accesses.
    pub retries: u64,
    /// Hedges that won for this tenant's reads.
    pub hedges_won: u64,
    /// Reads degraded to the disk path for this tenant.
    pub degraded_reads: u64,
}

impl TenantRecovery {
    /// Additive merge across shards.
    pub fn merge(&mut self, other: &Self) {
        self.retries += other.retries;
        self.hedges_won += other.hedges_won;
        self.degraded_reads += other.degraded_reads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let policy = RecoveryPolicy::none();
        assert!(!policy.is_active());
        policy.validate().expect("none() validates");
        assert_eq!(policy, RecoveryPolicy::default());
    }

    #[test]
    fn tail_tolerant_is_active_and_valid() {
        let policy = RecoveryPolicy::tail_tolerant();
        assert!(policy.is_active());
        policy.validate().expect("canonical preset validates");
    }

    #[test]
    fn validation_rejects_inconsistent_deadline_knobs() {
        let mut policy = RecoveryPolicy::none();
        policy.timeout = Nanos::from_micros(10);
        assert!(policy.validate().is_err(), "timeout without retries");

        let mut policy = RecoveryPolicy::none();
        policy.max_retries = 1;
        assert!(policy.validate().is_err(), "retries without timeout");

        let mut policy = RecoveryPolicy::none();
        policy.backoff_base = Nanos::from_micros(1);
        assert!(policy.validate().is_err(), "backoff without timeout");

        let mut policy = RecoveryPolicy::none();
        policy.backoff_jitter = Nanos::from_nanos(100);
        assert!(policy.validate().is_err(), "jitter without timeout");
    }

    #[test]
    fn json_fields_round_trip() {
        let policy = RecoveryPolicy::tail_tolerant();
        let fields = policy.to_json_fields();
        let mut rebuilt = RecoveryPolicy::none();
        for pair in fields.split(',') {
            let (key, value) = pair.split_once(':').expect("key:value pair");
            let key = key.trim().trim_matches('"');
            assert!(
                rebuilt.apply_json_field(key, value).expect("parses"),
                "key {key:?} must be consumed"
            );
        }
        assert_eq!(rebuilt, policy);
    }

    #[test]
    fn apply_json_field_ignores_foreign_keys_and_rejects_bad_values() {
        let mut policy = RecoveryPolicy::none();
        assert!(!policy
            .apply_json_field("fault_seedless", "1")
            .expect("foreign key passes"));
        assert!(policy
            .apply_json_field("recovery_timeout_ns", "\"soon\"")
            .is_err());
        assert_eq!(policy, RecoveryPolicy::none());
    }

    #[test]
    fn stats_merge_matches_single_stream() {
        let mut left = RecoveryStats::default();
        let mut right = RecoveryStats::default();
        let mut whole = RecoveryStats::default();
        for word in 0..32u64 {
            let salted = word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            whole.record(salted);
            if word % 2 == 0 {
                left.record(salted);
                left.retries += 1;
            } else {
                right.record(salted);
                right.hedges_won += 1;
            }
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged.checksum, whole.checksum);
        assert_eq!(merged.retries, 16);
        assert_eq!(merged.hedges_won, 16);
    }

    #[test]
    fn stats_checksum_is_order_insensitive_but_content_sensitive() {
        let mut forward = RecoveryStats::default();
        let mut reverse = RecoveryStats::default();
        for word in 0..16u64 {
            forward.record(word);
        }
        for word in (0..16u64).rev() {
            reverse.record(word);
        }
        assert_eq!(forward.checksum, reverse.checksum);

        let mut altered = RecoveryStats::default();
        for word in 1..17u64 {
            altered.record(word);
        }
        assert_ne!(forward.checksum, altered.checksum);
    }

    #[test]
    fn quiet_stats_report_quiet() {
        let mut stats = RecoveryStats::default();
        assert!(stats.is_quiet());
        stats.record(7);
        assert!(!stats.is_quiet());
    }

    #[test]
    fn per_request_streams_are_independent_of_each_other() {
        let seed = recovery_stream_seed(42);
        let mut a = request_stream(seed, 0);
        let mut b = request_stream(seed, 1);
        let mut a_again = request_stream(seed, 0);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a = request_stream(seed, 0);
        assert_eq!(a.next_u64(), a_again.next_u64());
    }

    #[test]
    fn tenant_recovery_merges_additively() {
        let mut total = TenantRecovery::default();
        total.merge(&TenantRecovery {
            retries: 2,
            hedges_won: 1,
            degraded_reads: 0,
        });
        total.merge(&TenantRecovery {
            retries: 1,
            hedges_won: 0,
            degraded_reads: 3,
        });
        assert_eq!(
            total,
            TenantRecovery {
                retries: 3,
                hedges_won: 1,
                degraded_reads: 3
            }
        );
    }
}
