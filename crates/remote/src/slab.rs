//! Remote memory slabs and the machines that host them.
//!
//! The host agent divides its remote memory footprint into fixed-size slabs
//! and maps each slab onto one (or, with replication, several) remote
//! machines (§4.4). Slab granularity keeps the mapping table small and lets
//! the agent balance load machine-by-machine.

use leap_sim_core::hash::FxHashMap;
use leap_sim_core::units::{GIB, PAGE_SIZE};

/// Default slab size (1 GB, as used by Infiniswap-style systems).
pub const DEFAULT_SLAB_BYTES: u64 = GIB;

/// Identifier of a slab within one host's remote address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabId(pub u64);

/// Identifier of a remote machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

/// A remote machine donating memory to the cluster pool.
#[derive(Debug, Clone)]
pub struct RemoteMachine {
    id: MachineId,
    capacity_slabs: u64,
    hosted_slabs: u64,
    failed: bool,
}

impl RemoteMachine {
    /// Creates a machine able to host `capacity_slabs` slabs.
    pub fn new(id: MachineId, capacity_slabs: u64) -> Self {
        RemoteMachine {
            id,
            capacity_slabs,
            hosted_slabs: 0,
            failed: false,
        }
    }

    /// The machine's identifier.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Number of slabs this machine can host in total.
    pub fn capacity_slabs(&self) -> u64 {
        self.capacity_slabs
    }

    /// Number of slabs currently hosted.
    pub fn hosted_slabs(&self) -> u64 {
        self.hosted_slabs
    }

    /// Remaining slab capacity (zero once the machine has failed).
    pub fn free_slabs(&self) -> u64 {
        if self.failed {
            return 0;
        }
        self.capacity_slabs - self.hosted_slabs
    }

    /// True if the machine cannot take another slab. A failed machine never
    /// accepts placements.
    pub fn is_full(&self) -> bool {
        self.failed || self.hosted_slabs >= self.capacity_slabs
    }

    /// True once the machine has failed; its hosted slab copies are lost.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    fn host_one(&mut self) {
        debug_assert!(!self.is_full());
        self.hosted_slabs += 1;
    }

    fn fail(&mut self) {
        self.failed = true;
    }
}

/// The set of remote machines available to a host agent.
#[derive(Debug, Clone, Default)]
pub struct RemoteCluster {
    machines: Vec<RemoteMachine>,
}

impl RemoteCluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        RemoteCluster::default()
    }

    /// Creates a cluster of `n` identical machines, each able to host
    /// `slabs_per_machine` slabs.
    pub fn homogeneous(n: u32, slabs_per_machine: u64) -> Self {
        let machines = (0..n)
            .map(|i| RemoteMachine::new(MachineId(i), slabs_per_machine))
            .collect();
        RemoteCluster { machines }
    }

    /// Adds one machine to the cluster.
    pub fn add_machine(&mut self, machine: RemoteMachine) {
        self.machines.push(machine);
    }

    /// Number of machines in the cluster.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True if the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Total free slab capacity across all machines.
    pub fn total_free_slabs(&self) -> u64 {
        self.machines.iter().map(|m| m.free_slabs()).sum()
    }

    /// Returns the machine with the given index (not id).
    pub fn machine(&self, index: usize) -> Option<&RemoteMachine> {
        self.machines.get(index)
    }

    /// Marks `index` as hosting one more slab.
    ///
    /// Returns the machine's id, or `None` if the index is out of range or
    /// the machine is full.
    pub fn host_slab_on(&mut self, index: usize) -> Option<MachineId> {
        let machine = self.machines.get_mut(index)?;
        if machine.is_full() {
            return None;
        }
        machine.host_one();
        Some(machine.id())
    }

    /// Fails the machine at `index`, losing every slab copy it hosted.
    ///
    /// Returns the machine's id, or `None` if the index is out of range or
    /// the machine already failed (a failure event is applied exactly once).
    pub fn fail_machine(&mut self, index: usize) -> Option<MachineId> {
        let machine = self.machines.get_mut(index)?;
        if machine.is_failed() {
            return None;
        }
        machine.fail();
        Some(machine.id())
    }

    /// True if the machine with the given id has failed. Unknown ids count
    /// as failed: a placement pointing at a machine that no longer exists
    /// must be repaired, not trusted.
    pub fn is_failed(&self, id: MachineId) -> bool {
        self.machines
            .iter()
            .find(|m| m.id() == id)
            .map(|m| m.is_failed())
            .unwrap_or(true)
    }

    /// Number of machines still alive.
    pub fn alive(&self) -> usize {
        self.machines.iter().filter(|m| !m.is_failed()).count()
    }

    /// The maximum difference in hosted slabs between any two machines —
    /// the imbalance metric the power of two choices keeps small.
    pub fn slab_imbalance(&self) -> u64 {
        let max = self
            .machines
            .iter()
            .map(|m| m.hosted_slabs())
            .max()
            .unwrap_or(0);
        let min = self
            .machines
            .iter()
            .map(|m| m.hosted_slabs())
            .min()
            .unwrap_or(0);
        max - min
    }
}

/// The mapping from a host's slabs to the remote machines hosting them.
#[derive(Debug, Clone, Default)]
pub struct SlabMap {
    slab_bytes: u64,
    /// Slab placements, probed once per remote I/O — hashed with the
    /// hot-path [`FxHashMap`] (slab ids are simulator-generated integers).
    placements: FxHashMap<SlabId, Vec<MachineId>>,
}

impl SlabMap {
    /// Creates an empty map with the given slab size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `slab_bytes` is smaller than one page.
    pub fn new(slab_bytes: u64) -> Self {
        assert!(slab_bytes >= PAGE_SIZE, "slab must hold at least one page");
        SlabMap {
            slab_bytes,
            placements: FxHashMap::default(),
        }
    }

    /// The slab size in bytes.
    pub fn slab_bytes(&self) -> u64 {
        self.slab_bytes
    }

    /// Number of pages per slab.
    pub fn pages_per_slab(&self) -> u64 {
        self.slab_bytes / PAGE_SIZE
    }

    /// The slab that holds the given page offset (in pages).
    pub fn slab_of_page(&self, page_offset: u64) -> SlabId {
        SlabId(page_offset / self.pages_per_slab())
    }

    /// Records the placement (primary + replicas) of a slab.
    pub fn place(&mut self, slab: SlabId, machines: Vec<MachineId>) {
        self.placements.insert(slab, machines);
    }

    /// Returns the machines hosting a slab (primary first), if mapped.
    pub fn machines_of(&self, slab: SlabId) -> Option<&[MachineId]> {
        self.placements.get(&slab).map(|v| v.as_slice())
    }

    /// True if the slab has been mapped already.
    pub fn is_mapped(&self, slab: SlabId) -> bool {
        self.placements.contains_key(&slab)
    }

    /// Number of mapped slabs.
    pub fn mapped_slabs(&self) -> usize {
        self.placements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn machine_capacity_accounting() {
        let mut cluster = RemoteCluster::homogeneous(2, 3);
        assert_eq!(cluster.total_free_slabs(), 6);
        assert!(cluster.host_slab_on(0).is_some());
        assert!(cluster.host_slab_on(0).is_some());
        assert!(cluster.host_slab_on(0).is_some());
        assert!(cluster.host_slab_on(0).is_none(), "machine 0 is full");
        assert_eq!(cluster.total_free_slabs(), 3);
        assert_eq!(cluster.machine(0).unwrap().free_slabs(), 0);
        assert!(cluster.machine(0).unwrap().is_full());
    }

    #[test]
    fn imbalance_metric() {
        let mut cluster = RemoteCluster::homogeneous(3, 10);
        assert_eq!(cluster.slab_imbalance(), 0);
        cluster.host_slab_on(0);
        cluster.host_slab_on(0);
        cluster.host_slab_on(1);
        assert_eq!(cluster.slab_imbalance(), 2);
    }

    #[test]
    fn slab_of_page_uses_slab_geometry() {
        let map = SlabMap::new(DEFAULT_SLAB_BYTES);
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        assert_eq!(map.pages_per_slab(), pages_per_slab);
        assert_eq!(map.slab_of_page(0), SlabId(0));
        assert_eq!(map.slab_of_page(pages_per_slab - 1), SlabId(0));
        assert_eq!(map.slab_of_page(pages_per_slab), SlabId(1));
        assert_eq!(map.slab_of_page(10 * pages_per_slab + 5), SlabId(10));
    }

    #[test]
    fn placements_round_trip() {
        let mut map = SlabMap::new(DEFAULT_SLAB_BYTES);
        assert!(!map.is_mapped(SlabId(3)));
        map.place(SlabId(3), vec![MachineId(1), MachineId(2)]);
        assert!(map.is_mapped(SlabId(3)));
        assert_eq!(
            map.machines_of(SlabId(3)),
            Some(&[MachineId(1), MachineId(2)][..])
        );
        assert_eq!(map.mapped_slabs(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn tiny_slab_rejected() {
        let _ = SlabMap::new(PAGE_SIZE - 1);
    }

    #[test]
    fn failed_machines_stop_accepting_slabs() {
        let mut cluster = RemoteCluster::homogeneous(3, 4);
        assert_eq!(cluster.alive(), 3);
        assert!(!cluster.is_failed(MachineId(1)));
        assert_eq!(cluster.fail_machine(1), Some(MachineId(1)));
        assert!(cluster.is_failed(MachineId(1)));
        assert_eq!(cluster.alive(), 2);
        // Failure is applied exactly once.
        assert_eq!(cluster.fail_machine(1), None);
        // A failed machine is full and donates no free capacity.
        assert!(cluster.machine(1).unwrap().is_full());
        assert_eq!(cluster.machine(1).unwrap().free_slabs(), 0);
        assert!(cluster.host_slab_on(1).is_none());
        assert_eq!(cluster.total_free_slabs(), 8);
        // Unknown machines count as failed.
        assert!(cluster.is_failed(MachineId(99)));
        assert_eq!(cluster.fail_machine(99), None);
    }

    proptest! {
        /// Page → slab mapping is monotone and consistent with slab geometry.
        #[test]
        fn prop_slab_of_page_consistent(page in 0u64..10_000_000, slab_pages in 1u64..100_000) {
            let map = SlabMap::new(slab_pages * PAGE_SIZE);
            let slab = map.slab_of_page(page);
            prop_assert_eq!(slab.0, page / slab_pages);
        }

        /// Hosting never exceeds any machine's capacity.
        #[test]
        fn prop_hosting_respects_capacity(
            capacity in 1u64..8,
            attempts in 1usize..64,
        ) {
            let mut cluster = RemoteCluster::homogeneous(2, capacity);
            let mut hosted = 0u64;
            for i in 0..attempts {
                if cluster.host_slab_on(i % 2).is_some() {
                    hosted += 1;
                }
            }
            prop_assert!(hosted <= 2 * capacity);
            prop_assert_eq!(cluster.total_free_slabs(), 2 * capacity - hosted);
        }
    }
}
