//! The host agent: slab placement, replication, and remote I/O.
//!
//! Each host machine runs an agent that exposes a remote I/O interface to the
//! VFS/VMM (§4.4). The agent divides the remote address space into slabs,
//! places each slab on remote machines using the power of two choices to keep
//! memory balanced (§4.5), optionally replicates slabs for fault tolerance,
//! and forwards page reads/writes to per-core RDMA dispatch queues.

use crate::backend::{BackendKind, StorageBackend};
use crate::dispatch::{DispatchOutcome, DispatchQueues};
use crate::fault::{scale_latency_milli, FaultInjectionStats, FaultModifiers, FaultPlan};
use crate::recovery::{self, RecoveryPolicy, RecoveryStats, TenantRecovery};
use crate::slab::{MachineId, RemoteCluster, SlabId, SlabMap, DEFAULT_SLAB_BYTES};
use leap_sim_core::{DetRng, Nanos};
use std::collections::BTreeMap;

/// Pages copied from a surviving replica when one lost copy is rebuilt.
const REREPLICATION_PAGES: u64 = 64;
/// Pages re-fetched from the durable tier when every replica is lost.
const FULL_RECOVERY_PAGES: u64 = 256;

/// Whether a remote I/O is a read (page-in) or a write (page-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteIoKind {
    /// Fetch a page from remote memory.
    Read,
    /// Push a page to remote memory.
    Write,
}

/// The latency breakdown of one remote I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteIoResult {
    /// Which machine served the primary copy.
    pub machine: MachineId,
    /// Delay spent waiting in the per-core dispatch queue.
    pub queueing_delay: Nanos,
    /// Transport + remote-side service time.
    pub transport_latency: Nanos,
    /// Total latency as seen by the caller.
    pub total: Nanos,
}

/// Configuration for a [`HostAgent`].
#[derive(Debug, Clone, Copy)]
pub struct HostAgentConfig {
    /// Slab size in bytes (default 1 GB).
    pub slab_bytes: u64,
    /// Number of per-core dispatch queues (default 8).
    pub cores: usize,
    /// Number of replicas per slab, including the primary (default 2:
    /// remote in-memory replication is Leap's default fault-tolerance story).
    pub replication: usize,
    /// The transport/device used to reach remote memory (default RDMA).
    pub backend: BackendKind,
}

impl Default for HostAgentConfig {
    fn default() -> Self {
        HostAgentConfig {
            slab_bytes: DEFAULT_SLAB_BYTES,
            cores: 8,
            replication: 2,
            backend: BackendKind::Rdma,
        }
    }
}

/// The host-side remote memory agent.
///
/// # Examples
///
/// ```
/// use leap_remote::{HostAgent, HostAgentConfig, RemoteCluster, RemoteIoKind};
/// use leap_sim_core::{DetRng, Nanos};
///
/// let cluster = RemoteCluster::homogeneous(3, 64);
/// let mut agent = HostAgent::new(HostAgentConfig::default(), cluster, DetRng::seed_from(1));
/// let result = agent
///     .remote_io(RemoteIoKind::Read, 12_345, 0, Nanos::ZERO)
///     .expect("cluster has capacity");
/// assert!(result.total >= result.transport_latency);
/// ```
#[derive(Debug)]
pub struct HostAgent {
    config: HostAgentConfig,
    cluster: RemoteCluster,
    slab_map: SlabMap,
    backend: StorageBackend,
    queues: DispatchQueues,
    rng: DetRng,
    reads: u64,
    writes: u64,
    /// The installed fault schedule; empty by default (healthy fabric).
    plan: FaultPlan,
    /// Cursor into `plan.failures()`: failures at or before the current
    /// request time have been applied.
    next_failure: usize,
    /// Accounting for every fault the agent observed.
    fault_stats: FaultInjectionStats,
    /// Reconstruction cost accrued by slab repairs, charged to the transport
    /// latency of the next request (the repair stalls the fabric, and the
    /// next page access pays for it).
    pending_reconstruction: Nanos,
    /// Arena for span service times, reused across [`remote_io_span`] calls.
    /// Each shard worker owns its own agent, so these are per-shard arenas:
    /// after warm-up a span dispatch allocates nothing.
    ///
    /// [`remote_io_span`]: HostAgent::remote_io_span
    span_services: Vec<Nanos>,
    /// Arena for span dispatch outcomes, reused like `span_services`.
    span_outcomes: Vec<DispatchOutcome>,
    /// The installed recovery policy; `none()` by default, in which case no
    /// recovery branch fires and no recovery RNG stream is ever derived.
    recovery: RecoveryPolicy,
    /// Root seed for per-request recovery RNG streams (already salted by the
    /// caller via [`recovery::recovery_stream_seed`]).
    recovery_seed: u64,
    /// Shard-local ordinal of recovery-considered requests; each request
    /// derives its own stream from `(recovery_seed, ordinal)`, so recovery
    /// decisions never advance a shared stream.
    recovery_requests: u64,
    /// Accounting for every recovery action the agent took.
    recovery_stats: RecoveryStats,
    /// The tenant the currently executing access belongs to (`0` = untagged
    /// single-process traffic). Set by the engine at context-switch points.
    active_tenant: u32,
    /// Per-tenant recovery ledger; only touched for tagged traffic, so the
    /// single-tenant hot path never probes the map.
    tenant_recovery: BTreeMap<u32, TenantRecovery>,
}

impl HostAgent {
    /// Creates an agent over the given cluster.
    ///
    /// # Panics
    ///
    /// Panics if `config.replication` is zero or `config.cores` is zero.
    pub fn new(config: HostAgentConfig, cluster: RemoteCluster, rng: DetRng) -> Self {
        assert!(config.replication >= 1, "replication must be at least 1");
        HostAgent {
            slab_map: SlabMap::new(config.slab_bytes),
            backend: StorageBackend::new(config.backend),
            queues: DispatchQueues::new(config.cores),
            config,
            cluster,
            rng,
            reads: 0,
            writes: 0,
            plan: FaultPlan::empty(),
            next_failure: 0,
            fault_stats: FaultInjectionStats::default(),
            pending_reconstruction: Nanos::ZERO,
            span_services: Vec::new(),
            span_outcomes: Vec::new(),
            recovery: RecoveryPolicy::none(),
            recovery_seed: 0,
            recovery_requests: 0,
            recovery_stats: RecoveryStats::default(),
            active_tenant: 0,
            tenant_recovery: BTreeMap::new(),
        }
    }

    /// Replaces the backend latency model (useful for tests and ablations).
    pub fn set_backend(&mut self, backend: StorageBackend) {
        self.backend = backend;
    }

    /// Installs a fault schedule. The empty plan (the default) reproduces
    /// healthy runs bit-for-bit: no RNG stream is perturbed and no fault
    /// branch fires.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.next_failure = 0;
    }

    /// The installed fault schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fault-injection accounting for this agent.
    pub fn fault_stats(&self) -> FaultInjectionStats {
        self.fault_stats
    }

    /// Installs the recovery policy and the (already salted) recovery stream
    /// seed. [`RecoveryPolicy::none`] — the default — keeps every request on
    /// the exact pre-recovery code path: no extra RNG derivation, no extra
    /// queue operation, no checksum word.
    pub fn install_recovery(&mut self, policy: RecoveryPolicy, recovery_seed: u64) {
        self.recovery = policy;
        self.recovery_seed = recovery_seed;
        self.recovery_requests = 0;
    }

    /// The installed recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Recovery accounting for this agent.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Per-tenant recovery ledgers, sorted by tenant id.
    pub fn tenant_recovery(&self) -> Vec<(u32, TenantRecovery)> {
        self.tenant_recovery
            .iter()
            .map(|(&tenant, &ledger)| (tenant, ledger))
            .collect()
    }

    /// Tags subsequent accesses with the tenant that issued them (`0` clears
    /// the tag). The engine calls this at scheduler context switches so
    /// tenant-targeted fault plans and per-tenant recovery ledgers attribute
    /// work correctly.
    pub fn set_active_tenant(&mut self, tenant: u32) {
        self.active_tenant = tenant;
    }

    /// The agent configuration.
    pub fn config(&self) -> &HostAgentConfig {
        &self.config
    }

    /// The cluster state (for balance/inventory reports).
    pub fn cluster(&self) -> &RemoteCluster {
        &self.cluster
    }

    /// Number of slabs the agent has mapped so far.
    pub fn mapped_slabs(&self) -> usize {
        self.slab_map.mapped_slabs()
    }

    /// Total reads and writes served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Ensures the slab containing `page_offset` is mapped, placing it with
    /// the power of two choices (plus replicas) if needed. A slab whose
    /// placement includes a failed machine is repaired first (failover to a
    /// survivor + deterministic re-replication).
    ///
    /// Returns the primary machine, or `None` if the cluster is out of slab
    /// capacity.
    pub fn ensure_mapped(&mut self, page_offset: u64) -> Option<MachineId> {
        let slab = self.slab_map.slab_of_page(page_offset);
        match self.slab_map.machines_of(slab) {
            Some(machines) => {
                if machines.iter().all(|&m| !self.cluster.is_failed(m)) {
                    return machines.first().copied();
                }
                self.repair_slab(slab)
            }
            None => {
                let placements = self.place_slab()?;
                let primary = placements.first().copied();
                self.slab_map.place(slab, placements);
                primary
            }
        }
    }

    /// Repairs a slab whose placement references at least one failed
    /// machine: surviving copies are kept (the first survivor becomes the
    /// primary) and each lost copy is re-replicated onto the least-loaded
    /// alive machine — a deterministic choice, so no RNG stream moves. If
    /// every copy was lost, the slab is re-placed from scratch and its pages
    /// are charged the (much larger) durable-tier recovery cost.
    ///
    /// The repaired placement only references alive machines, so subsequent
    /// requests take the fast path again: each failure repairs a slab at
    /// most once.
    fn repair_slab(&mut self, slab: SlabId) -> Option<MachineId> {
        let old = self.slab_map.machines_of(slab)?.to_vec();
        let survivors: Vec<MachineId> = old
            .iter()
            .copied()
            .filter(|&m| !self.cluster.is_failed(m))
            .collect();
        let lost = old.len() - survivors.len();
        let nominal = self.backend.nominal_read_latency();

        let (placements, cost) = if survivors.is_empty() {
            // Every replica died: recover the slab from the durable tier.
            let placements = self.place_slab()?;
            self.fault_stats.slabs_lost += 1;
            self.fault_stats
                .record(0x51ab_1057u64 ^ slab.0.rotate_left(17));
            let cost = Nanos::from_nanos(nominal.as_nanos().saturating_mul(FULL_RECOVERY_PAGES));
            (placements, cost)
        } else {
            // Failover: survivors stay, first survivor is promoted primary;
            // lost copies are rebuilt from a survivor.
            let mut placements = survivors;
            for _ in 0..lost {
                match self.least_loaded_alive_excluding(&placements) {
                    Some(idx) => match self.cluster.host_slab_on(idx) {
                        Some(id) => placements.push(id),
                        None => break,
                    },
                    // No spare machine: degrade replication rather than fail.
                    None => break,
                }
            }
            self.fault_stats.slabs_rereplicated += 1;
            self.fault_stats
                .record(0x5e9e_9a7eu64 ^ slab.0.rotate_left(9));
            let cost = Nanos::from_nanos(
                nominal
                    .as_nanos()
                    .saturating_mul(REREPLICATION_PAGES * lost as u64),
            );
            (placements, cost)
        };

        self.fault_stats.reconstruction_cost_total = self
            .fault_stats
            .reconstruction_cost_total
            .saturating_add(cost);
        self.pending_reconstruction = self.pending_reconstruction.saturating_add(cost);
        let primary = placements.first().copied();
        self.slab_map.place(slab, placements);
        primary
    }

    /// The least-loaded alive machine whose id is not in `exclude`, if any.
    fn least_loaded_alive_excluding(&self, exclude: &[MachineId]) -> Option<usize> {
        (0..self.cluster.len())
            .filter_map(|i| {
                let m = self.cluster.machine(i)?;
                if m.is_failed() || m.is_full() || exclude.contains(&m.id()) {
                    return None;
                }
                Some((m.hosted_slabs(), i))
            })
            .min()
            .map(|(_, i)| i)
    }

    /// Places one slab: the primary via the power of two choices over the
    /// alive machines, replicas on the least-loaded remaining ones.
    fn place_slab(&mut self) -> Option<Vec<MachineId>> {
        // Only alive machines are placement candidates. On a healthy
        // cluster this is the identity mapping, so the RNG draws below are
        // bit-identical to a fault-free build.
        let alive: Vec<usize> = (0..self.cluster.len())
            .filter(|&i| {
                self.cluster
                    .machine(i)
                    .map(|m| !m.is_failed())
                    .unwrap_or(false)
            })
            .collect();
        let n = alive.len();
        if n == 0 {
            return None;
        }
        let mut chosen: Vec<usize> = Vec::new();

        // Primary: power of two choices — sample two distinct machines and
        // keep the less loaded one (§4.5).
        let primary = if n == 1 {
            alive[0]
        } else {
            let a = alive[self.rng.gen_range_usize(0, n)];
            let mut b = alive[self.rng.gen_range_usize(0, n)];
            while b == a {
                b = alive[self.rng.gen_range_usize(0, n)];
            }
            let load = |i: usize| {
                self.cluster
                    .machine(i)
                    .map(|m| (m.is_full(), m.hosted_slabs()))
                    .unwrap_or((true, u64::MAX))
            };
            if load(a) <= load(b) {
                a
            } else {
                b
            }
        };
        chosen.push(primary);

        // Replicas: pick the least-loaded machines not already chosen.
        let replicas_needed = self.config.replication.saturating_sub(1).min(n - 1);
        let mut candidates: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|i| !chosen.contains(i))
            .collect();
        candidates.sort_by_key(|&i| {
            self.cluster
                .machine(i)
                .map(|m| m.hosted_slabs())
                .unwrap_or(u64::MAX)
        });
        chosen.extend(candidates.into_iter().take(replicas_needed));

        // Commit the placements; bail out if any chosen machine is full.
        let mut ids = Vec::with_capacity(chosen.len());
        for idx in chosen {
            match self.cluster.host_slab_on(idx) {
                Some(id) => ids.push(id),
                None => {
                    if ids.is_empty() {
                        return None;
                    }
                    // Primary fits but a replica host is full: degrade the
                    // replication factor rather than failing the mapping.
                    break;
                }
            }
        }
        Some(ids)
    }

    /// Applies every scheduled machine failure whose time has arrived. Each
    /// failure kills the victim machine and cancels the in-flight tails on
    /// all dispatch queues (the requests were travelling to a machine that
    /// no longer exists); the queues clamp to `now`, never backwards.
    fn apply_due_failures(&mut self, now: Nanos) {
        while let Some(failure) = self.plan.failures().get(self.next_failure) {
            if failure.at > now {
                break;
            }
            let failure = *failure;
            self.next_failure += 1;
            if self.cluster.fail_machine(failure.victim as usize).is_some() {
                let cancelled = self.queues.cancel_in_flight(now);
                self.fault_stats.machines_failed += 1;
                self.fault_stats.cancelled_requests += cancelled;
                self.fault_stats.record(
                    0xdead_ac3du64
                        ^ failure.at.as_nanos().rotate_left(5)
                        ^ u64::from(failure.victim),
                );
            }
        }
    }

    /// The fault modifiers the *current access* must pay: the plan's
    /// modifiers at `now`, unless the plan targets a specific tenant and the
    /// active access belongs to someone else. The always-resolve discipline
    /// (resolve, then maybe discard) keeps the code path shape identical for
    /// targeted and untargeted traffic.
    fn effective_modifiers(&self, now: Nanos) -> FaultModifiers {
        let mods = self.plan.modifiers_at(now);
        if self.plan.applies_to_tenant(self.active_tenant) {
            mods
        } else {
            FaultModifiers::IDENTITY
        }
    }

    /// Routes the request around link partitions: returns the machine to
    /// dispatch to, or `None` when every replica of the slab is unreachable
    /// from this core's link shard (the caller degrades to the disk path).
    ///
    /// Partition-free plans (and traffic a targeted plan does not cover)
    /// return the primary unchanged without touching the slab map again.
    fn route_reachable(
        &mut self,
        kind: RemoteIoKind,
        page_offset: u64,
        primary: MachineId,
        core: usize,
        now: Nanos,
    ) -> Option<MachineId> {
        if !self.plan.has_partitions() || !self.plan.applies_to_tenant(self.active_tenant) {
            return Some(primary);
        }
        if !self.plan.link_partitioned(core, primary.0, now) {
            return Some(primary);
        }
        // The primary link is down: fail fast onto the first alive,
        // reachable replica rather than waiting out a timeout.
        let slab = self.slab_map.slab_of_page(page_offset);
        let alternate = self.slab_map.machines_of(slab).and_then(|replicas| {
            replicas.iter().copied().find(|&m| {
                m != primary
                    && !self.cluster.is_failed(m)
                    && !self.plan.link_partitioned(core, m.0, now)
            })
        });
        match alternate {
            Some(machine) => {
                self.recovery_stats.partition_failfasts += 1;
                self.recovery_stats
                    .record(0x9a97_11fdu64 ^ now.as_nanos() ^ u64::from(machine.0));
                Some(machine)
            }
            None => {
                // Every replica is behind a severed link. Reads degrade to
                // the disk-latency path (the caller's `None` branch); writes
                // fall back the same way, modeling a local spill.
                if kind == RemoteIoKind::Read {
                    self.recovery_stats.degraded_reads += 1;
                    if self.active_tenant != 0 {
                        self.tenant_recovery
                            .entry(self.active_tenant)
                            .or_default()
                            .degraded_reads += 1;
                    }
                }
                self.recovery_stats.record(0xd15c_fa11u64 ^ now.as_nanos());
                None
            }
        }
    }

    /// The replica a hedge for `page_offset` would go to: the first alive,
    /// reachable replica other than the one already serving the request.
    fn hedge_replica(
        &self,
        page_offset: u64,
        served: MachineId,
        core: usize,
        now: Nanos,
    ) -> Option<MachineId> {
        let slab = self.slab_map.slab_of_page(page_offset);
        let replicas = self.slab_map.machines_of(slab)?;
        let partitioned = |m: MachineId| {
            self.plan.has_partitions()
                && self.plan.applies_to_tenant(self.active_tenant)
                && self.plan.link_partitioned(core, m.0, now)
        };
        replicas
            .iter()
            .copied()
            .find(|&m| m != served && !self.cluster.is_failed(m) && !partitioned(m))
    }

    /// Resolves the recovery outcome for one request whose primary attempt
    /// (`attempt`, sampled from the agent stream) started at virtual time
    /// `start` and is already staged on queue `core`.
    ///
    /// Returns the recovered service time, measured from `start`. Only
    /// called when the policy is active; all draws come from a per-request
    /// stream derived from `(recovery_seed, ordinal)`, so the agent's base
    /// stream and the attempt sequence are invariant under policy changes.
    #[allow(clippy::too_many_arguments)]
    fn resolve_recovery(
        &mut self,
        kind: RemoteIoKind,
        page_offset: u64,
        served: MachineId,
        core: usize,
        now: Nanos,
        start: Nanos,
        attempt0: Nanos,
        multiplier_milli: u64,
    ) -> Nanos {
        let ordinal = self.recovery_requests;
        self.recovery_requests += 1;
        let mut req_rng = recovery::request_stream(self.recovery_seed, ordinal);
        let mut attempt = attempt0;

        // Hedged reads: after `hedge_delay`, issue the same read to another
        // replica. The hedge travels a different link, so its sample is
        // drawn unscaled (epoch modifiers model the congested primary path);
        // the first virtual completion wins and the loser is cancelled.
        if kind == RemoteIoKind::Read
            && !self.recovery.hedge_delay.is_zero()
            && attempt > self.recovery.hedge_delay
            && self.hedge_replica(page_offset, served, core, now).is_some()
        {
            self.recovery_stats.hedges_issued += 1;
            let hedge_sample = self.backend.read_latency(&mut req_rng);
            let hedge_total = self.recovery.hedge_delay.saturating_add(hedge_sample);
            if hedge_total < attempt {
                let _ = self
                    .queues
                    .cancel_request(core, start.saturating_add(hedge_total));
                self.recovery_stats.hedges_won += 1;
                self.recovery_stats
                    .record(0x4ed6_ed4eu64 ^ now.as_nanos() ^ ordinal.rotate_left(7));
                if self.active_tenant != 0 {
                    self.tenant_recovery
                        .entry(self.active_tenant)
                        .or_default()
                        .hedges_won += 1;
                }
                attempt = hedge_total;
            } else {
                self.recovery_stats.hedges_wasted += 1;
                self.recovery_stats
                    .record(0x4ed6_0000u64 ^ now.as_nanos() ^ ordinal.rotate_left(7));
            }
        }

        // Deadline + retry/backoff. The deadline is expressed in
        // healthy-fabric terms and scaled by the epoch multiplier in force,
        // so a known fabric-wide slowdown does not trip every request — only
        // genuine outliers relative to the current regime get retried.
        let mut elapsed = Nanos::ZERO;
        if !self.recovery.timeout.is_zero() && self.recovery.max_retries > 0 {
            let deadline = scale_latency_milli(self.recovery.timeout, multiplier_milli);
            let mut retries = 0u32;
            while attempt > deadline && retries < self.recovery.max_retries {
                let _ = self
                    .queues
                    .cancel_request(core, start.saturating_add(elapsed).saturating_add(deadline));
                self.recovery_stats.deadline_timeouts += 1;
                elapsed = elapsed.saturating_add(deadline);
                let mut backoff = Nanos::from_nanos(
                    self.recovery
                        .backoff_base
                        .as_nanos()
                        .saturating_mul(1u64 << retries.min(20)),
                );
                if !self.recovery.backoff_jitter.is_zero() {
                    backoff = backoff.saturating_add(Nanos::from_nanos(
                        req_rng.gen_range_u64(0, self.recovery.backoff_jitter.as_nanos()),
                    ));
                }
                elapsed = elapsed.saturating_add(backoff);
                self.recovery_stats.backoff_wait_total = self
                    .recovery_stats
                    .backoff_wait_total
                    .saturating_add(backoff);
                retries += 1;
                self.recovery_stats.retries += 1;
                self.recovery_stats.record(
                    0x4e74_4e74u64 ^ now.as_nanos() ^ u64::from(retries) ^ ordinal.rotate_left(13),
                );
                if self.active_tenant != 0 {
                    self.tenant_recovery
                        .entry(self.active_tenant)
                        .or_default()
                        .retries += 1;
                }
                // Retry against the next-best replica over the same (still
                // congested) fabric: resample scaled by the active epochs.
                attempt = match kind {
                    RemoteIoKind::Read => self
                        .backend
                        .read_latency_scaled(&mut req_rng, multiplier_milli),
                    RemoteIoKind::Write => self
                        .backend
                        .write_latency_scaled(&mut req_rng, multiplier_milli),
                };
                let _ = self
                    .queues
                    .dispatch(core, start.saturating_add(elapsed), attempt);
            }
        }
        elapsed.saturating_add(attempt)
    }

    /// Performs a remote read or write of the page at `page_offset`, issued
    /// from CPU `core` at time `now`.
    ///
    /// Scheduled faults whose virtual time has arrived are applied first:
    /// machine failures (with slab failover and dispatch-queue
    /// cancellation), then the latency modifiers of any active fault epoch.
    /// With the empty plan every fault branch is dead and the request is
    /// processed exactly as on a healthy fabric — same RNG draws, same
    /// arithmetic, bit-identical results. With an active recovery policy the
    /// sampled attempt is then run through deadline/retry and hedging logic
    /// on a per-request recovery stream.
    ///
    /// Returns `None` if the slab cannot be mapped (cluster full), or if an
    /// active link partition makes every replica unreachable from this core
    /// (the caller serves the page from the disk tier instead).
    pub fn remote_io(
        &mut self,
        kind: RemoteIoKind,
        page_offset: u64,
        core: usize,
        now: Nanos,
    ) -> Option<RemoteIoResult> {
        if !self.plan.is_empty() {
            self.apply_due_failures(now);
        }
        let machine = self.ensure_mapped(page_offset)?;
        let machine = self.route_reachable(kind, page_offset, machine, core, now)?;
        let mods = self.effective_modifiers(now);
        let mut transport = match kind {
            RemoteIoKind::Read => {
                self.reads += 1;
                self.backend
                    .read_latency_scaled(&mut self.rng, mods.multiplier_milli)
            }
            RemoteIoKind::Write => {
                self.writes += 1;
                self.backend
                    .write_latency_scaled(&mut self.rng, mods.multiplier_milli)
            }
        };
        if mods.spike_active {
            self.fault_stats.spiked_requests += 1;
            self.fault_stats.record(0x5b1c_e000u64 ^ now.as_nanos());
        }
        if mods.degraded_active {
            self.fault_stats.degraded_requests += 1;
            self.fault_stats.record(0xde64_ade0u64 ^ now.as_nanos());
        }
        if !mods.reconnect_penalty.is_zero() {
            transport = transport.saturating_add(mods.reconnect_penalty);
            self.fault_stats.reconnect_requests += 1;
            self.fault_stats.reconnect_penalty_total = self
                .fault_stats
                .reconnect_penalty_total
                .saturating_add(mods.reconnect_penalty);
            self.fault_stats.record(0x4ec0_44ecu64 ^ now.as_nanos());
        }
        // The request that triggered (or immediately follows) a slab repair
        // pays the reconstruction stall, before the attempt itself runs.
        let repair = if self.pending_reconstruction.is_zero() {
            Nanos::ZERO
        } else {
            std::mem::replace(&mut self.pending_reconstruction, Nanos::ZERO)
        };
        let outcome = self
            .queues
            .dispatch(core, now, transport.saturating_add(repair));
        let transport = if self.recovery.is_active() {
            // Recovery governs the attempt only — the repair stall is fabric
            // work that no hedge or retry can cancel — so the recovered
            // request starts after queueing and the repair.
            let start = now
                .saturating_add(outcome.queueing_delay)
                .saturating_add(repair);
            repair.saturating_add(self.resolve_recovery(
                kind,
                page_offset,
                machine,
                core,
                now,
                start,
                transport,
                mods.multiplier_milli,
            ))
        } else {
            transport.saturating_add(repair)
        };
        Some(RemoteIoResult {
            machine,
            queueing_delay: outcome.queueing_delay,
            transport_latency: transport,
            total: outcome.queueing_delay.saturating_add(transport),
        })
    }

    /// Performs a whole span of remote I/Os — one per page offset, all
    /// issued from CPU `core` at time `now` — appending one result per page
    /// to `results` (`None` where the slab cannot be mapped).
    ///
    /// Bit-identical to calling [`remote_io`](HostAgent::remote_io) once per
    /// page in order: due failures are applied once (re-checking them per
    /// page at the same `now` is a no-op), the epoch modifiers are resolved
    /// once (they depend only on `now`), the per-page interleaving of slab
    /// mapping → latency sampling → fault accounting → reconstruction
    /// charging is preserved exactly (same RNG draws in the same order, same
    /// checksum words in the same order), and the deferred queue updates go
    /// through [`DispatchQueues::dispatch_span`], which replays the same
    /// sequential fold. What changes is the cost: queue bookkeeping happens
    /// once per span, and the service-time/outcome buffers are per-shard
    /// arenas, so a steady-state span allocates nothing.
    pub fn remote_io_span(
        &mut self,
        kind: RemoteIoKind,
        pages: &[u64],
        core: usize,
        now: Nanos,
        results: &mut Vec<Option<RemoteIoResult>>,
    ) {
        if pages.is_empty() {
            return;
        }
        if self.recovery.is_active() || self.plan.has_partitions() {
            // Recovery cancellations and partition re-routing interact with
            // the queue clock per request, so the batched fold below cannot
            // model them; take the per-request reference path (bit-identical
            // by definition). Applying due failures per page at the same
            // `now` is idempotent.
            for &page_offset in pages {
                let io = self.remote_io(kind, page_offset, core, now);
                results.push(io);
            }
            return;
        }
        if !self.plan.is_empty() {
            self.apply_due_failures(now);
        }
        let mods = self.effective_modifiers(now);
        let mut services = std::mem::take(&mut self.span_services);
        let mut outcomes = std::mem::take(&mut self.span_outcomes);
        services.clear();
        outcomes.clear();
        let base = results.len();
        for &page_offset in pages {
            let Some(machine) = self.ensure_mapped(page_offset) else {
                results.push(None);
                continue;
            };
            let mut transport = match kind {
                RemoteIoKind::Read => {
                    self.reads += 1;
                    self.backend
                        .read_latency_scaled(&mut self.rng, mods.multiplier_milli)
                }
                RemoteIoKind::Write => {
                    self.writes += 1;
                    self.backend
                        .write_latency_scaled(&mut self.rng, mods.multiplier_milli)
                }
            };
            if mods.spike_active {
                self.fault_stats.spiked_requests += 1;
                self.fault_stats.record(0x5b1c_e000u64 ^ now.as_nanos());
            }
            if mods.degraded_active {
                self.fault_stats.degraded_requests += 1;
                self.fault_stats.record(0xde64_ade0u64 ^ now.as_nanos());
            }
            if !mods.reconnect_penalty.is_zero() {
                transport = transport.saturating_add(mods.reconnect_penalty);
                self.fault_stats.reconnect_requests += 1;
                self.fault_stats.reconnect_penalty_total = self
                    .fault_stats
                    .reconnect_penalty_total
                    .saturating_add(mods.reconnect_penalty);
                self.fault_stats.record(0x4ec0_44ecu64 ^ now.as_nanos());
            }
            if !self.pending_reconstruction.is_zero() {
                let repair = std::mem::replace(&mut self.pending_reconstruction, Nanos::ZERO);
                transport = transport.saturating_add(repair);
            }
            services.push(transport);
            results.push(Some(RemoteIoResult {
                machine,
                queueing_delay: Nanos::ZERO,
                transport_latency: transport,
                total: transport,
            }));
        }
        self.queues
            .dispatch_span(core, now, &services, &mut outcomes);
        for (result, outcome) in results[base..].iter_mut().flatten().zip(&outcomes) {
            result.queueing_delay = outcome.queueing_delay;
            result.total = outcome
                .queueing_delay
                .saturating_add(result.transport_latency);
        }
        self.span_services = services;
        self.span_outcomes = outcomes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::PAGE_SIZE;

    fn agent_with(cluster: RemoteCluster, replication: usize) -> HostAgent {
        let config = HostAgentConfig {
            replication,
            ..HostAgentConfig::default()
        };
        HostAgent::new(config, cluster, DetRng::seed_from(99))
    }

    #[test]
    fn mapping_is_sticky_per_slab() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 1);
        let first = agent.ensure_mapped(0).unwrap();
        let again = agent.ensure_mapped(1).unwrap();
        assert_eq!(first, again, "pages in the same slab share a placement");
        assert_eq!(agent.mapped_slabs(), 1);
        // A page far away lands in a different slab.
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        let _ = agent.ensure_mapped(pages_per_slab + 3).unwrap();
        assert_eq!(agent.mapped_slabs(), 2);
    }

    #[test]
    fn replication_places_multiple_copies() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 2);
        let _ = agent.ensure_mapped(0).unwrap();
        // Two machines must each host one slab copy.
        let hosted: u64 = (0..4)
            .map(|i| agent.cluster().machine(i).unwrap().hosted_slabs())
            .sum();
        assert_eq!(hosted, 2);
    }

    #[test]
    fn power_of_two_choices_keeps_imbalance_low() {
        let mut agent = agent_with(RemoteCluster::homogeneous(8, 1_000), 1);
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        for slab in 0..400u64 {
            let _ = agent.ensure_mapped(slab * pages_per_slab).unwrap();
        }
        // With power of two choices, max-min load imbalance stays tiny
        // compared to the ~50 slabs/machine average.
        assert!(
            agent.cluster().slab_imbalance() <= 10,
            "imbalance {} too high",
            agent.cluster().slab_imbalance()
        );
    }

    #[test]
    fn io_fails_when_cluster_is_full() {
        let mut agent = agent_with(RemoteCluster::homogeneous(1, 1), 1);
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        assert!(agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .is_some());
        assert!(agent
            .remote_io(RemoteIoKind::Read, pages_per_slab, 0, Nanos::ZERO)
            .is_none());
    }

    #[test]
    fn io_counts_and_latency_composition() {
        let mut agent = agent_with(RemoteCluster::homogeneous(2, 8), 1);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(4),
        ));
        let r = agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .unwrap();
        assert_eq!(r.transport_latency, Nanos::from_micros(4));
        assert_eq!(r.total, r.queueing_delay + r.transport_latency);
        let w = agent
            .remote_io(RemoteIoKind::Write, 0, 0, Nanos::ZERO)
            .unwrap();
        assert_eq!(w.transport_latency, Nanos::from_micros(4));
        assert_eq!(agent.io_counts(), (1, 1));
    }

    #[test]
    fn back_to_back_reads_on_one_core_queue_up() {
        let mut agent = agent_with(RemoteCluster::homogeneous(2, 8), 1);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(4),
        ));
        let first = agent
            .remote_io(RemoteIoKind::Read, 0, 3, Nanos::ZERO)
            .unwrap();
        let second = agent
            .remote_io(RemoteIoKind::Read, 1, 3, Nanos::ZERO)
            .unwrap();
        assert_eq!(first.queueing_delay, Nanos::ZERO);
        assert_eq!(second.queueing_delay, Nanos::from_micros(4));
    }

    #[test]
    fn single_machine_cluster_works_without_replication_choice() {
        let mut agent = agent_with(RemoteCluster::homogeneous(1, 4), 2);
        let r = agent.remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO);
        assert!(r.is_some());
        // Replication degrades to one copy because there is only one machine.
        assert_eq!(agent.cluster().machine(0).unwrap().hosted_slabs(), 1);
    }

    #[test]
    fn failed_machine_triggers_failover_to_survivor() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 2);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(4),
        ));
        let primary = agent.ensure_mapped(0).unwrap();
        // Kill the primary; the slab must fail over to the surviving replica
        // and re-replicate exactly once.
        let victim_idx = primary.0 as usize;
        assert!(agent.cluster.fail_machine(victim_idx).is_some());
        let new_primary = agent.ensure_mapped(0).expect("failover succeeds");
        assert_ne!(new_primary, primary);
        assert!(!agent.cluster().is_failed(new_primary));
        assert_eq!(agent.fault_stats().slabs_rereplicated, 1);
        assert_eq!(agent.fault_stats().slabs_lost, 0);
        // Repaired placement references only alive machines, so the next
        // lookup takes the fast path and repairs nothing further.
        let again = agent.ensure_mapped(1).unwrap();
        assert_eq!(again, new_primary);
        assert_eq!(
            agent.fault_stats().slabs_rereplicated,
            1,
            "repair is exactly-once"
        );
        // The reconstruction cost lands on the next remote I/O.
        let io = agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .unwrap();
        assert!(io.transport_latency > Nanos::from_micros(4));
        assert!(!agent.fault_stats().reconstruction_cost_total.is_zero());
        let follow_up = agent
            .remote_io(RemoteIoKind::Read, 1, 1, Nanos::ZERO)
            .unwrap();
        assert_eq!(
            follow_up.transport_latency,
            Nanos::from_micros(4),
            "reconstruction is charged once, not per request"
        );
    }

    #[test]
    fn losing_every_replica_recovers_from_durable_tier() {
        let mut agent = agent_with(RemoteCluster::homogeneous(3, 16), 1);
        let primary = agent.ensure_mapped(0).unwrap();
        assert!(agent.cluster.fail_machine(primary.0 as usize).is_some());
        let new_primary = agent.ensure_mapped(0).expect("re-placement succeeds");
        assert_ne!(new_primary, primary);
        assert_eq!(agent.fault_stats().slabs_lost, 1);
        assert_eq!(agent.fault_stats().slabs_rereplicated, 0);
        // Full recovery is costlier than a single-copy rebuild.
        let full = agent.fault_stats().reconstruction_cost_total;
        assert!(full >= Nanos::from_nanos(BackendKind::Rdma.nominal_latency().as_nanos() * 256));
    }

    #[test]
    fn placement_avoids_failed_machines() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 1);
        assert!(agent.cluster.fail_machine(0).is_some());
        assert!(agent.cluster.fail_machine(1).is_some());
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        for slab in 0..20u64 {
            let m = agent.ensure_mapped(slab * pages_per_slab).unwrap();
            assert!(m == MachineId(2) || m == MachineId(3));
        }
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let run = |install_empty: bool| {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 2);
            if install_empty {
                agent.install_fault_plan(FaultPlan::empty());
            }
            let mut out = Vec::new();
            for i in 0..200u64 {
                let io = agent
                    .remote_io(
                        RemoteIoKind::Read,
                        i * 7,
                        (i % 4) as usize,
                        Nanos::from_nanos(i * 900),
                    )
                    .unwrap();
                out.push((io.machine, io.queueing_delay, io.transport_latency));
            }
            (out, agent.fault_stats())
        };
        let (healthy, healthy_stats) = run(false);
        let (empty_plan, empty_stats) = run(true);
        assert_eq!(healthy, empty_plan, "empty plan must be invisible");
        assert!(healthy_stats.is_quiet() && empty_stats.is_quiet());
        assert_eq!(healthy_stats, empty_stats);
    }

    #[test]
    fn scheduled_failure_applies_once_and_cancels_in_flight() {
        use crate::fault::FaultSpec;
        let spec = FaultSpec {
            machine_failures: 1,
            latency_spikes: 0,
            spike_multiplier_milli: 0,
            degraded_epochs: 0,
            degraded_multiplier_milli: 0,
            reconnect_storms: 0,
            reconnect_penalty: Nanos::ZERO,
            epoch: Nanos::from_micros(50),
            start: Nanos::from_micros(10),
            horizon: Nanos::from_micros(20),
            partition_epochs: 0,
            target_tenant: 0,
        };
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 2);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(40),
        ));
        agent.install_fault_plan(FaultPlan::from_spec(7, &spec, 4));
        assert_eq!(agent.fault_plan().failures().len(), 1);
        // Before the failure time: healthy, and queue 0 goes busy until 40 µs.
        let _ = agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .unwrap();
        assert_eq!(agent.fault_stats().machines_failed, 0);
        // After the failure time the machine dies and the in-flight tail on
        // queue 0 is cancelled (clamped to now, not to zero).
        let now = Nanos::from_micros(25);
        let _ = agent.remote_io(RemoteIoKind::Read, 1, 1, now).unwrap();
        assert_eq!(agent.fault_stats().machines_failed, 1);
        assert_eq!(agent.fault_stats().cancelled_requests, 1);
        assert_eq!(agent.cluster().alive(), 3);
        // Re-running past the failure applies nothing further.
        let _ = agent.remote_io(RemoteIoKind::Read, 2, 2, Nanos::from_micros(30));
        assert_eq!(agent.fault_stats().machines_failed, 1);
    }

    #[test]
    fn span_io_is_bit_identical_to_per_page_io() {
        use crate::fault::FaultSpec;
        // A storm plan with every fault kind active, so the span path must
        // reproduce sampling, fault accounting, failover, and queue state
        // exactly — not just the healthy arithmetic.
        let spec = FaultSpec {
            latency_spikes: 2,
            spike_multiplier_milli: 4_000,
            degraded_epochs: 1,
            degraded_multiplier_milli: 1_500,
            machine_failures: 1,
            reconnect_storms: 1,
            reconnect_penalty: Nanos::from_micros(25),
            epoch: Nanos::from_micros(60),
            start: Nanos::from_micros(5),
            horizon: Nanos::from_micros(400),
            partition_epochs: 0,
            target_tenant: 0,
        };
        let build = || {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
            agent.install_fault_plan(FaultPlan::from_spec(21, &spec, 4));
            agent
        };
        let mut per_page = build();
        let mut span = build();
        let mut span_results = Vec::new();
        for step in 0..40u64 {
            let now = Nanos::from_nanos(step * 11_000);
            let core = (step % 3) as usize;
            let pages: Vec<u64> = (0..(step % 5)).map(|i| step * 31 + i * 7).collect();
            let reference: Vec<Option<RemoteIoResult>> = pages
                .iter()
                .map(|&p| per_page.remote_io(RemoteIoKind::Read, p, core, now))
                .collect();
            span_results.clear();
            span.remote_io_span(RemoteIoKind::Read, &pages, core, now, &mut span_results);
            assert_eq!(span_results, reference, "step {step}");
        }
        assert_eq!(span.fault_stats(), per_page.fault_stats());
        assert_eq!(span.io_counts(), per_page.io_counts());
        for c in 0..span.config.cores {
            assert_eq!(span.queues.idle_at(c), per_page.queues.idle_at(c));
        }
    }

    #[test]
    fn disabled_recovery_is_byte_identical() {
        use crate::fault::FaultSpec;
        let run = |install_none: bool| {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
            agent.install_fault_plan(FaultPlan::from_spec(
                5,
                &FaultSpec::storm_over(Nanos::from_micros(5), Nanos::from_micros(300)),
                4,
            ));
            if install_none {
                agent.install_recovery(RecoveryPolicy::none(), recovery::recovery_stream_seed(5));
            }
            let mut out = Vec::new();
            for i in 0..200u64 {
                let io = agent.remote_io(
                    RemoteIoKind::Read,
                    i * 13,
                    (i % 4) as usize,
                    Nanos::from_nanos(i * 1_700),
                );
                out.push(io);
            }
            (out, agent.fault_stats(), agent.recovery_stats())
        };
        let (base, base_faults, base_recovery) = run(false);
        let (none, none_faults, none_recovery) = run(true);
        assert_eq!(base, none, "RecoveryPolicy::none() must be invisible");
        assert_eq!(base_faults, none_faults);
        assert_eq!(base_recovery, none_recovery);
        assert!(none_recovery.is_quiet());
    }

    #[test]
    fn hedging_caps_spiked_read_latency() {
        use crate::fault::{FaultEpoch, FaultEpochKind, FaultSpec};
        // One spike epoch covering the whole run, 8× slower: every primary
        // read samples ~8× the healthy latency, so a hedge (unscaled sample
        // after the hedge delay, over the other replica's link) should win
        // nearly every time and cap the recovered latency.
        let plan = FaultPlan::from_parts(
            FaultSpec::none(),
            vec![FaultEpoch {
                kind: FaultEpochKind::LatencySpike,
                start: Nanos::ZERO,
                end: Nanos::from_millis(10),
                multiplier_milli: 8_000,
            }],
            Vec::new(),
            Vec::new(),
        );

        let policy = RecoveryPolicy {
            hedge_delay: Nanos::from_micros(8),
            ..RecoveryPolicy::none()
        };
        let run = |with_hedging: bool| {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
            agent.install_fault_plan(plan.clone());
            if with_hedging {
                agent.install_recovery(policy, recovery::recovery_stream_seed(9));
            }
            let mut latencies: Vec<Nanos> = Vec::new();
            for i in 0..400u64 {
                let io = agent
                    .remote_io(
                        RemoteIoKind::Read,
                        i * 3,
                        (i % 4) as usize,
                        Nanos::from_nanos(i),
                    )
                    .unwrap();
                latencies.push(io.transport_latency);
            }
            latencies.sort();
            (latencies, agent.recovery_stats())
        };
        let (plain, _) = run(false);
        let (hedged, stats) = run(true);
        assert!(stats.hedges_issued > 0, "spiked reads must hedge");
        assert!(
            stats.hedges_won > 0,
            "most hedges should win under an 8x spike"
        );
        let p99 = |v: &[Nanos]| v[(v.len() * 99) / 100 - 1];
        assert!(
            p99(&hedged) <= Nanos::from_nanos(p99(&plain).as_nanos() / 2),
            "hedged p99 {:?} must be well under the spiked p99 {:?}",
            p99(&hedged),
            p99(&plain)
        );
    }

    #[test]
    fn retry_count_is_monotone_in_timeout_tightness() {
        // Tightening the deadline can only retry more, never less: per-request
        // streams make the attempt sequence invariant across timeouts.
        let run = |timeout: Nanos| {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
            agent.install_recovery(
                RecoveryPolicy {
                    timeout,
                    max_retries: 3,
                    backoff_base: Nanos::from_micros(1),
                    backoff_jitter: Nanos::from_nanos(200),
                    ..RecoveryPolicy::none()
                },
                recovery::recovery_stream_seed(17),
            );
            for i in 0..300u64 {
                let _ = agent.remote_io(
                    RemoteIoKind::Read,
                    i * 5,
                    (i % 4) as usize,
                    Nanos::from_nanos(i * 400),
                );
            }
            agent.recovery_stats().retries
        };
        let tight = run(Nanos::from_micros(5));
        let medium = run(Nanos::from_micros(12));
        let loose = run(Nanos::from_micros(60));
        assert!(tight >= medium, "tight {tight} < medium {medium}");
        assert!(medium >= loose, "medium {medium} < loose {loose}");
        assert!(tight > 0, "a 5 µs deadline must trip on RDMA tails");
    }

    #[test]
    fn partitioned_primary_fails_fast_to_replica() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
        let primary = agent.ensure_mapped(0).unwrap();
        let replicas = agent
            .slab_map
            .machines_of(agent.slab_map.slab_of_page(0))
            .unwrap()
            .to_vec();
        assert_eq!(replicas.len(), 2);
        // Sever the (shard of core 1 → primary) link for a window.
        let plan = FaultPlan::from_parts(
            crate::fault::FaultSpec::none(),
            Vec::new(),
            Vec::new(),
            vec![crate::fault::PartitionEpoch {
                start: Nanos::from_micros(10),
                end: Nanos::from_micros(50),
                machine: primary.0,
                shard: 1,
            }],
        );
        agent.install_fault_plan(plan);
        // From core 1, inside the window: served by the other replica.
        let io = agent
            .remote_io(RemoteIoKind::Read, 0, 1, Nanos::from_micros(20))
            .unwrap();
        assert_eq!(io.machine, replicas[1]);
        assert_eq!(agent.recovery_stats().partition_failfasts, 1);
        // From core 0 (a different link shard), the primary still serves.
        let io = agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::from_micros(20))
            .unwrap();
        assert_eq!(io.machine, primary);
        // Outside the window the primary serves from core 1 again.
        let io = agent
            .remote_io(RemoteIoKind::Read, 0, 1, Nanos::from_micros(60))
            .unwrap();
        assert_eq!(io.machine, primary);
    }

    #[test]
    fn all_replicas_partitioned_degrades_read() {
        let mut agent = agent_with(RemoteCluster::homogeneous(2, 64), 2);
        let _ = agent.ensure_mapped(0).unwrap();
        let partitions = (0..2u32)
            .map(|machine| crate::fault::PartitionEpoch {
                start: Nanos::from_micros(10),
                end: Nanos::from_micros(50),
                machine,
                shard: 1,
            })
            .collect();
        let plan = FaultPlan::from_parts(
            crate::fault::FaultSpec::none(),
            Vec::new(),
            Vec::new(),
            partitions,
        );
        agent.install_fault_plan(plan);
        let io = agent.remote_io(RemoteIoKind::Read, 0, 1, Nanos::from_micros(20));
        assert!(io.is_none(), "unreachable everywhere degrades to disk");
        assert_eq!(agent.recovery_stats().degraded_reads, 1);
        // A healthy core still reaches the slab.
        assert!(agent
            .remote_io(RemoteIoKind::Read, 0, 2, Nanos::from_micros(20))
            .is_some());
    }

    #[test]
    fn targeted_plan_spares_other_tenants() {
        use crate::fault::FaultSpec;
        let mut spec = FaultSpec::storm_over(Nanos::ZERO, Nanos::from_micros(500));
        spec.machine_failures = 0; // hardware failures stay global; exclude.
        spec.target_tenant = 2;
        let run = |tenant: u32, spec: &FaultSpec| {
            let mut agent = agent_with(RemoteCluster::homogeneous(4, 64), 2);
            agent.install_fault_plan(FaultPlan::from_spec(11, spec, 4));
            agent.set_active_tenant(tenant);
            let mut out = Vec::new();
            for i in 0..200u64 {
                let io = agent
                    .remote_io(
                        RemoteIoKind::Read,
                        i * 3,
                        (i % 4) as usize,
                        Nanos::from_nanos(i * 900),
                    )
                    .unwrap();
                out.push(io.transport_latency);
            }
            (out, agent.fault_stats())
        };
        // Tenant 1 under the targeted plan sees healthy latencies: identical
        // to a fault-free run (same agent stream, identity modifiers).
        let healthy_spec = FaultSpec::none();
        let (healthy, healthy_stats) = run(1, &healthy_spec);
        let (spared, spared_stats) = run(1, &spec);
        assert_eq!(spared, healthy, "non-targeted tenant must be untouched");
        assert!(spared_stats.is_quiet());
        let _ = healthy_stats;
        // Tenant 2 pays the storm.
        let (hit, hit_stats) = run(2, &spec);
        assert_ne!(hit, healthy);
        assert!(hit_stats.spiked_requests > 0);
    }

    #[test]
    #[should_panic(expected = "replication must be at least 1")]
    fn zero_replication_rejected() {
        let config = HostAgentConfig {
            replication: 0,
            ..HostAgentConfig::default()
        };
        let _ = HostAgent::new(
            config,
            RemoteCluster::homogeneous(1, 1),
            DetRng::seed_from(0),
        );
    }
}
