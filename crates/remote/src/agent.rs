//! The host agent: slab placement, replication, and remote I/O.
//!
//! Each host machine runs an agent that exposes a remote I/O interface to the
//! VFS/VMM (§4.4). The agent divides the remote address space into slabs,
//! places each slab on remote machines using the power of two choices to keep
//! memory balanced (§4.5), optionally replicates slabs for fault tolerance,
//! and forwards page reads/writes to per-core RDMA dispatch queues.

use crate::backend::{BackendKind, StorageBackend};
use crate::dispatch::DispatchQueues;
use crate::slab::{MachineId, RemoteCluster, SlabMap, DEFAULT_SLAB_BYTES};
use leap_sim_core::{DetRng, Nanos};

/// Whether a remote I/O is a read (page-in) or a write (page-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteIoKind {
    /// Fetch a page from remote memory.
    Read,
    /// Push a page to remote memory.
    Write,
}

/// The latency breakdown of one remote I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteIoResult {
    /// Which machine served the primary copy.
    pub machine: MachineId,
    /// Delay spent waiting in the per-core dispatch queue.
    pub queueing_delay: Nanos,
    /// Transport + remote-side service time.
    pub transport_latency: Nanos,
    /// Total latency as seen by the caller.
    pub total: Nanos,
}

/// Configuration for a [`HostAgent`].
#[derive(Debug, Clone, Copy)]
pub struct HostAgentConfig {
    /// Slab size in bytes (default 1 GB).
    pub slab_bytes: u64,
    /// Number of per-core dispatch queues (default 8).
    pub cores: usize,
    /// Number of replicas per slab, including the primary (default 2:
    /// remote in-memory replication is Leap's default fault-tolerance story).
    pub replication: usize,
    /// The transport/device used to reach remote memory (default RDMA).
    pub backend: BackendKind,
}

impl Default for HostAgentConfig {
    fn default() -> Self {
        HostAgentConfig {
            slab_bytes: DEFAULT_SLAB_BYTES,
            cores: 8,
            replication: 2,
            backend: BackendKind::Rdma,
        }
    }
}

/// The host-side remote memory agent.
///
/// # Examples
///
/// ```
/// use leap_remote::{HostAgent, HostAgentConfig, RemoteCluster, RemoteIoKind};
/// use leap_sim_core::{DetRng, Nanos};
///
/// let cluster = RemoteCluster::homogeneous(3, 64);
/// let mut agent = HostAgent::new(HostAgentConfig::default(), cluster, DetRng::seed_from(1));
/// let result = agent
///     .remote_io(RemoteIoKind::Read, 12_345, 0, Nanos::ZERO)
///     .expect("cluster has capacity");
/// assert!(result.total >= result.transport_latency);
/// ```
#[derive(Debug)]
pub struct HostAgent {
    config: HostAgentConfig,
    cluster: RemoteCluster,
    slab_map: SlabMap,
    backend: StorageBackend,
    queues: DispatchQueues,
    rng: DetRng,
    reads: u64,
    writes: u64,
}

impl HostAgent {
    /// Creates an agent over the given cluster.
    ///
    /// # Panics
    ///
    /// Panics if `config.replication` is zero or `config.cores` is zero.
    pub fn new(config: HostAgentConfig, cluster: RemoteCluster, rng: DetRng) -> Self {
        assert!(config.replication >= 1, "replication must be at least 1");
        HostAgent {
            slab_map: SlabMap::new(config.slab_bytes),
            backend: StorageBackend::new(config.backend),
            queues: DispatchQueues::new(config.cores),
            config,
            cluster,
            rng,
            reads: 0,
            writes: 0,
        }
    }

    /// Replaces the backend latency model (useful for tests and ablations).
    pub fn set_backend(&mut self, backend: StorageBackend) {
        self.backend = backend;
    }

    /// The agent configuration.
    pub fn config(&self) -> &HostAgentConfig {
        &self.config
    }

    /// The cluster state (for balance/inventory reports).
    pub fn cluster(&self) -> &RemoteCluster {
        &self.cluster
    }

    /// Number of slabs the agent has mapped so far.
    pub fn mapped_slabs(&self) -> usize {
        self.slab_map.mapped_slabs()
    }

    /// Total reads and writes served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Ensures the slab containing `page_offset` is mapped, placing it with
    /// the power of two choices (plus replicas) if needed.
    ///
    /// Returns the primary machine, or `None` if the cluster is out of slab
    /// capacity.
    pub fn ensure_mapped(&mut self, page_offset: u64) -> Option<MachineId> {
        let slab = self.slab_map.slab_of_page(page_offset);
        if let Some(machines) = self.slab_map.machines_of(slab) {
            return machines.first().copied();
        }
        let placements = self.place_slab()?;
        let primary = placements.first().copied();
        self.slab_map.place(slab, placements);
        primary
    }

    /// Places one slab: the primary via the power of two choices, replicas on
    /// the least-loaded remaining machines.
    fn place_slab(&mut self) -> Option<Vec<MachineId>> {
        let n = self.cluster.len();
        if n == 0 {
            return None;
        }
        let mut chosen: Vec<usize> = Vec::new();

        // Primary: power of two choices — sample two distinct machines and
        // keep the less loaded one (§4.5).
        let primary = if n == 1 {
            0
        } else {
            let a = self.rng.gen_range_usize(0, n);
            let mut b = self.rng.gen_range_usize(0, n);
            while b == a {
                b = self.rng.gen_range_usize(0, n);
            }
            let load = |i: usize| {
                self.cluster
                    .machine(i)
                    .map(|m| (m.is_full(), m.hosted_slabs()))
                    .unwrap_or((true, u64::MAX))
            };
            if load(a) <= load(b) {
                a
            } else {
                b
            }
        };
        chosen.push(primary);

        // Replicas: pick the least-loaded machines not already chosen.
        let replicas_needed = self.config.replication.saturating_sub(1).min(n - 1);
        let mut candidates: Vec<usize> = (0..n).filter(|i| !chosen.contains(i)).collect();
        candidates.sort_by_key(|&i| {
            self.cluster
                .machine(i)
                .map(|m| m.hosted_slabs())
                .unwrap_or(u64::MAX)
        });
        chosen.extend(candidates.into_iter().take(replicas_needed));

        // Commit the placements; bail out if any chosen machine is full.
        let mut ids = Vec::with_capacity(chosen.len());
        for idx in chosen {
            match self.cluster.host_slab_on(idx) {
                Some(id) => ids.push(id),
                None => {
                    if ids.is_empty() {
                        return None;
                    }
                    // Primary fits but a replica host is full: degrade the
                    // replication factor rather than failing the mapping.
                    break;
                }
            }
        }
        Some(ids)
    }

    /// Performs a remote read or write of the page at `page_offset`, issued
    /// from CPU `core` at time `now`.
    ///
    /// Returns `None` only if the slab cannot be mapped (cluster full).
    pub fn remote_io(
        &mut self,
        kind: RemoteIoKind,
        page_offset: u64,
        core: usize,
        now: Nanos,
    ) -> Option<RemoteIoResult> {
        let machine = self.ensure_mapped(page_offset)?;
        let transport = match kind {
            RemoteIoKind::Read => {
                self.reads += 1;
                self.backend.read_latency(&mut self.rng)
            }
            RemoteIoKind::Write => {
                self.writes += 1;
                self.backend.write_latency(&mut self.rng)
            }
        };
        let outcome = self.queues.dispatch(core, now, transport);
        Some(RemoteIoResult {
            machine,
            queueing_delay: outcome.queueing_delay,
            transport_latency: transport,
            total: outcome.queueing_delay.saturating_add(transport),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::PAGE_SIZE;

    fn agent_with(cluster: RemoteCluster, replication: usize) -> HostAgent {
        let config = HostAgentConfig {
            replication,
            ..HostAgentConfig::default()
        };
        HostAgent::new(config, cluster, DetRng::seed_from(99))
    }

    #[test]
    fn mapping_is_sticky_per_slab() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 1);
        let first = agent.ensure_mapped(0).unwrap();
        let again = agent.ensure_mapped(1).unwrap();
        assert_eq!(first, again, "pages in the same slab share a placement");
        assert_eq!(agent.mapped_slabs(), 1);
        // A page far away lands in a different slab.
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        let _ = agent.ensure_mapped(pages_per_slab + 3).unwrap();
        assert_eq!(agent.mapped_slabs(), 2);
    }

    #[test]
    fn replication_places_multiple_copies() {
        let mut agent = agent_with(RemoteCluster::homogeneous(4, 16), 2);
        let _ = agent.ensure_mapped(0).unwrap();
        // Two machines must each host one slab copy.
        let hosted: u64 = (0..4)
            .map(|i| agent.cluster().machine(i).unwrap().hosted_slabs())
            .sum();
        assert_eq!(hosted, 2);
    }

    #[test]
    fn power_of_two_choices_keeps_imbalance_low() {
        let mut agent = agent_with(RemoteCluster::homogeneous(8, 1_000), 1);
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        for slab in 0..400u64 {
            let _ = agent.ensure_mapped(slab * pages_per_slab).unwrap();
        }
        // With power of two choices, max-min load imbalance stays tiny
        // compared to the ~50 slabs/machine average.
        assert!(
            agent.cluster().slab_imbalance() <= 10,
            "imbalance {} too high",
            agent.cluster().slab_imbalance()
        );
    }

    #[test]
    fn io_fails_when_cluster_is_full() {
        let mut agent = agent_with(RemoteCluster::homogeneous(1, 1), 1);
        let pages_per_slab = DEFAULT_SLAB_BYTES / PAGE_SIZE;
        assert!(agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .is_some());
        assert!(agent
            .remote_io(RemoteIoKind::Read, pages_per_slab, 0, Nanos::ZERO)
            .is_none());
    }

    #[test]
    fn io_counts_and_latency_composition() {
        let mut agent = agent_with(RemoteCluster::homogeneous(2, 8), 1);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(4),
        ));
        let r = agent
            .remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO)
            .unwrap();
        assert_eq!(r.transport_latency, Nanos::from_micros(4));
        assert_eq!(r.total, r.queueing_delay + r.transport_latency);
        let w = agent
            .remote_io(RemoteIoKind::Write, 0, 0, Nanos::ZERO)
            .unwrap();
        assert_eq!(w.transport_latency, Nanos::from_micros(4));
        assert_eq!(agent.io_counts(), (1, 1));
    }

    #[test]
    fn back_to_back_reads_on_one_core_queue_up() {
        let mut agent = agent_with(RemoteCluster::homogeneous(2, 8), 1);
        agent.set_backend(StorageBackend::constant(
            BackendKind::Rdma,
            Nanos::from_micros(4),
        ));
        let first = agent
            .remote_io(RemoteIoKind::Read, 0, 3, Nanos::ZERO)
            .unwrap();
        let second = agent
            .remote_io(RemoteIoKind::Read, 1, 3, Nanos::ZERO)
            .unwrap();
        assert_eq!(first.queueing_delay, Nanos::ZERO);
        assert_eq!(second.queueing_delay, Nanos::from_micros(4));
    }

    #[test]
    fn single_machine_cluster_works_without_replication_choice() {
        let mut agent = agent_with(RemoteCluster::homogeneous(1, 4), 2);
        let r = agent.remote_io(RemoteIoKind::Read, 0, 0, Nanos::ZERO);
        assert!(r.is_some());
        // Replication degrades to one copy because there is only one machine.
        assert_eq!(agent.cluster().machine(0).unwrap().hosted_slabs(), 1);
    }

    #[test]
    #[should_panic(expected = "replication must be at least 1")]
    fn zero_replication_rejected() {
        let config = HostAgentConfig {
            replication: 0,
            ..HostAgentConfig::default()
        };
        let _ = HostAgent::new(
            config,
            RemoteCluster::homogeneous(1, 1),
            DetRng::seed_from(0),
        );
    }
}
