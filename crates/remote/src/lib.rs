//! Remote-memory substrate for the Leap reproduction.
//!
//! The paper's testbed exposes remote DRAM over 56 Gbps InfiniBand through a
//! host agent that maps fixed-size memory slabs onto one or more remote
//! machines (§4.4–4.5). This crate models that stack, plus the slower local
//! storage devices (HDD, SSD) used as baselines:
//!
//! - [`backend`]: latency models for HDD, SSD, and RDMA 4 KB page transfers,
//!   calibrated to the stage costs the paper reports in Figure 1.
//! - [`slab`]: fixed-size remote memory slabs and the remote machines that
//!   host them.
//! - [`agent`]: the host agent — slab placement with the power of two
//!   choices, optional replication, and address translation from swap-slot
//!   offsets to `(machine, slab)` locations.
//! - [`dispatch`]: per-core RDMA dispatch queues with queueing-delay
//!   accounting.
//! - [`fault`]: seeded, deterministic fault injection — latency-spike and
//!   degraded-bandwidth epochs, mid-run machine failures with slab failover
//!   and re-replication, reconnect storms, and link-level partial
//!   partitions, all scheduled in virtual time from a `(seed, spec)` pair.
//! - [`recovery`]: the active recovery layer — virtual-time deadlines with
//!   retry/backoff, hedged reads across slab replicas, and graceful
//!   degradation to the disk path when partitions isolate every replica.

pub mod agent;
pub mod backend;
pub mod dispatch;
pub mod fault;
pub mod recovery;
pub mod slab;

pub use agent::{HostAgent, HostAgentConfig, RemoteIoKind, RemoteIoResult};
pub use backend::{BackendKind, ConstLatencyOverride, StorageBackend};
pub use dispatch::DispatchQueues;
pub use fault::{
    FaultEpoch, FaultEpochKind, FaultInjectionStats, FaultJsonError, FaultModifiers, FaultPlan,
    FaultSpec, MachineFailure, PartitionEpoch, PARTITION_LINK_SHARDS,
};
pub use recovery::{
    recovery_stream_seed, RecoveryPolicy, RecoveryStats, TenantRecovery, RECOVERY_SALT,
};
pub use slab::{RemoteCluster, RemoteMachine, SlabId, SlabMap, DEFAULT_SLAB_BYTES};
