//! Per-core RDMA dispatch queues.
//!
//! Leap configures one RDMA dispatch queue per CPU core (§4.4, the
//! multi-queue I/O model). Each queue serialises the requests staged on it;
//! when a core issues requests faster than the NIC completes them, later
//! requests wait behind earlier ones. The model tracks, per queue, the time
//! at which the queue becomes idle and charges the difference as queueing
//! delay.

use leap_sim_core::Nanos;

/// Per-core dispatch queues with queueing-delay accounting.
///
/// # Examples
///
/// ```
/// use leap_remote::DispatchQueues;
/// use leap_sim_core::Nanos;
///
/// let mut queues = DispatchQueues::new(2);
/// // Two back-to-back requests on core 0, each taking 4 µs of service time.
/// let first = queues.dispatch(0, Nanos::ZERO, Nanos::from_micros(4));
/// let second = queues.dispatch(0, Nanos::ZERO, Nanos::from_micros(4));
/// assert_eq!(first.queueing_delay, Nanos::ZERO);
/// assert_eq!(second.queueing_delay, Nanos::from_micros(4));
/// // A request on core 1 is unaffected: the queues are independent.
/// let other = queues.dispatch(1, Nanos::ZERO, Nanos::from_micros(4));
/// assert_eq!(other.queueing_delay, Nanos::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DispatchQueues {
    /// Completion time of the last request staged on each queue.
    busy_until: Vec<Nanos>,
    /// Total requests dispatched per queue (for load reports).
    dispatched: Vec<u64>,
}

/// The outcome of staging one request on a dispatch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOutcome {
    /// Time spent waiting behind earlier requests on the same queue.
    pub queueing_delay: Nanos,
    /// Absolute time at which the request completes.
    pub completes_at: Nanos,
}

impl DispatchQueues {
    /// Creates `cores` independent dispatch queues.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "DispatchQueues needs at least one core");
        DispatchQueues {
            busy_until: vec![Nanos::ZERO; cores],
            dispatched: vec![0; cores],
        }
    }

    /// Number of queues (cores).
    pub fn cores(&self) -> usize {
        self.busy_until.len()
    }

    /// Stages a request issued by `core` at time `now` whose service
    /// (transport + remote side) takes `service_time`.
    ///
    /// The core index is reduced modulo the number of queues, so callers can
    /// pass a raw CPU id without worrying about the queue count.
    pub fn dispatch(&mut self, core: usize, now: Nanos, service_time: Nanos) -> DispatchOutcome {
        let idx = core % self.busy_until.len();
        let start = self.busy_until[idx].max(now);
        let queueing_delay = start.saturating_sub(now);
        let completes_at = start.saturating_add(service_time);
        self.busy_until[idx] = completes_at;
        self.dispatched[idx] += 1;
        DispatchOutcome {
            queueing_delay,
            completes_at,
        }
    }

    /// Stages a whole span of requests issued by `core` at time `now`, one
    /// [`DispatchOutcome`] appended to `outcomes` per service time.
    ///
    /// Exactly equivalent to calling [`dispatch`](DispatchQueues::dispatch)
    /// once per element of `service_times`, but the per-queue bookkeeping
    /// (index reduction, busy-clock read, dispatch-counter update) happens
    /// once per span: the busy clock is folded through a local and written
    /// back in one store. Callers reuse the `outcomes` buffer as a per-shard
    /// arena, so a steady-state span dispatch allocates nothing.
    pub fn dispatch_span(
        &mut self,
        core: usize,
        now: Nanos,
        service_times: &[Nanos],
        outcomes: &mut Vec<DispatchOutcome>,
    ) {
        if service_times.is_empty() {
            return;
        }
        let idx = core % self.busy_until.len();
        let mut busy = self.busy_until[idx];
        for &service in service_times {
            let start = busy.max(now);
            busy = start.saturating_add(service);
            outcomes.push(DispatchOutcome {
                queueing_delay: start.saturating_sub(now),
                completes_at: busy,
            });
        }
        self.busy_until[idx] = busy;
        self.dispatched[idx] += service_times.len() as u64;
    }

    /// Total requests dispatched on queue `core` so far.
    pub fn dispatched_on(&self, core: usize) -> u64 {
        self.dispatched[core % self.dispatched.len()]
    }

    /// Total requests dispatched across all queues.
    pub fn total_dispatched(&self) -> u64 {
        self.dispatched.iter().sum()
    }

    /// The instant at which queue `core` becomes idle.
    pub fn idle_at(&self, core: usize) -> Nanos {
        self.busy_until[core % self.busy_until.len()]
    }

    /// Cancels the in-flight tail of every queue at time `now`, as happens
    /// when the machine serving those requests fails mid-run.
    ///
    /// Each queue that was busy past `now` becomes idle at exactly `now` —
    /// never earlier. Clamping to `now` instead of calling [`reset`] keeps
    /// the per-core clock monotonic: a request dispatched after the
    /// cancellation can never start (or complete) before a previously
    /// observed completion that already elapsed, and queues that were
    /// already idle are left untouched. Dispatch counters are preserved;
    /// cancelled work still happened, it just never completed.
    ///
    /// Returns the number of queues whose in-flight tail was cancelled.
    ///
    /// [`reset`]: DispatchQueues::reset
    pub fn cancel_in_flight(&mut self, now: Nanos) -> u64 {
        let mut cancelled = 0;
        for busy in &mut self.busy_until {
            if *busy > now {
                *busy = now;
                cancelled += 1;
            }
        }
        cancelled
    }

    /// Cancels the in-flight tail of a single queue at time `at`: the
    /// per-request generalization of [`cancel_in_flight`], used by the
    /// recovery layer when a deadline expires or a hedge wins.
    ///
    /// If queue `core` was busy past `at`, its idle time is clamped to
    /// exactly `at` and `true` is returned; otherwise the queue is left
    /// untouched. Callers always pass an `at` no earlier than the cancelled
    /// request's start time, so the same monotonicity argument as
    /// [`cancel_in_flight`] holds: the queue clock only ever moves down to
    /// an instant that is still in the queue's own future relative to every
    /// previously observed completion that actually elapsed. Dispatch
    /// counters are preserved — cancelled work still happened.
    ///
    /// [`cancel_in_flight`]: DispatchQueues::cancel_in_flight
    pub fn cancel_request(&mut self, core: usize, at: Nanos) -> bool {
        let idx = core % self.busy_until.len();
        if self.busy_until[idx] > at {
            self.busy_until[idx] = at;
            true
        } else {
            false
        }
    }

    /// Clears all queue state.
    pub fn reset(&mut self) {
        for b in &mut self.busy_until {
            *b = Nanos::ZERO;
        }
        for d in &mut self.dispatched {
            *d = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn back_to_back_requests_queue_up() {
        let mut q = DispatchQueues::new(1);
        let a = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(10));
        let b = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(10));
        let c = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(10));
        assert_eq!(a.queueing_delay, Nanos::ZERO);
        assert_eq!(b.queueing_delay, Nanos::from_micros(10));
        assert_eq!(c.queueing_delay, Nanos::from_micros(20));
        assert_eq!(c.completes_at, Nanos::from_micros(30));
    }

    #[test]
    fn idle_queue_has_no_delay() {
        let mut q = DispatchQueues::new(1);
        let a = q.dispatch(0, Nanos::from_micros(100), Nanos::from_micros(5));
        assert_eq!(a.queueing_delay, Nanos::ZERO);
        // Next request arrives after the previous one completed.
        let b = q.dispatch(0, Nanos::from_micros(200), Nanos::from_micros(5));
        assert_eq!(b.queueing_delay, Nanos::ZERO);
        assert_eq!(b.completes_at, Nanos::from_micros(205));
    }

    #[test]
    fn cores_are_independent() {
        let mut q = DispatchQueues::new(4);
        for _ in 0..10 {
            let _ = q.dispatch(2, Nanos::ZERO, Nanos::from_micros(7));
        }
        let other = q.dispatch(3, Nanos::ZERO, Nanos::from_micros(7));
        assert_eq!(other.queueing_delay, Nanos::ZERO);
        assert_eq!(q.dispatched_on(2), 10);
        assert_eq!(q.dispatched_on(3), 1);
        assert_eq!(q.total_dispatched(), 11);
    }

    #[test]
    fn core_index_wraps() {
        let mut q = DispatchQueues::new(2);
        let _ = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(3));
        // Core 2 maps onto queue 0 and therefore queues behind it.
        let wrapped = q.dispatch(2, Nanos::ZERO, Nanos::from_micros(3));
        assert_eq!(wrapped.queueing_delay, Nanos::from_micros(3));
    }

    #[test]
    fn reset_clears_state() {
        let mut q = DispatchQueues::new(1);
        let _ = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(3));
        q.reset();
        assert_eq!(q.total_dispatched(), 0);
        assert_eq!(q.idle_at(0), Nanos::ZERO);
        let a = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(3));
        assert_eq!(a.queueing_delay, Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = DispatchQueues::new(0);
    }

    #[test]
    fn cancel_in_flight_clamps_to_now_not_zero() {
        let mut q = DispatchQueues::new(2);
        let a = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(10));
        assert_eq!(a.completes_at, Nanos::from_micros(10));
        // Queue 1 is already idle; only queue 0 has an in-flight tail.
        let now = Nanos::from_micros(4);
        assert_eq!(q.cancel_in_flight(now), 1);
        assert_eq!(q.idle_at(0), now, "cancelled queue becomes idle *now*");
        assert_eq!(q.idle_at(1), Nanos::ZERO, "idle queue untouched");
        assert_eq!(q.total_dispatched(), 1, "counters survive cancellation");
    }

    #[test]
    fn cancel_in_flight_never_moves_idle_time_backwards() {
        let mut q = DispatchQueues::new(1);
        let first = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(5));
        // The request completed at 5 µs; a failure observed later must not
        // rewind the queue clock below the failure time.
        let now = Nanos::from_micros(8);
        assert_eq!(q.cancel_in_flight(now), 0);
        assert_eq!(q.idle_at(0), first.completes_at);
        let after = q.dispatch(0, now, Nanos::from_micros(1));
        assert!(after.completes_at >= first.completes_at);
    }

    proptest! {
        /// Interleaving dispatches with mid-run cancellations keeps every
        /// queue's completion clock monotonically non-decreasing — the
        /// regression the failed-slab cancellation path must never cause.
        #[test]
        fn prop_cancellation_keeps_per_core_clock_monotonic(
            events in proptest::collection::vec((0u64..50_000, 1u64..20_000, 0usize..8), 1..80),
        ) {
            let mut q = DispatchQueues::new(2);
            let mut now = Nanos::ZERO;
            for (gap, service, action) in events {
                now = now.saturating_add(Nanos::from_nanos(gap));
                if action == 0 {
                    // A failure cancels the in-flight tails at `now`: each
                    // queue clock may only drop to `now`, never below it
                    // (the reset()-style bug would rewind it to zero).
                    let before = [q.idle_at(0), q.idle_at(1)];
                    let _ = q.cancel_in_flight(now);
                    for (core, &was) in before.iter().enumerate() {
                        prop_assert!(q.idle_at(core) <= was);
                        prop_assert!(
                            q.idle_at(core) >= was.min(now),
                            "queue clock rewound below the cancellation time"
                        );
                    }
                } else {
                    let core = action % 2;
                    let idle_before = q.idle_at(core);
                    let out = q.dispatch(core, now, Nanos::from_nanos(service));
                    prop_assert!(out.completes_at >= now);
                    prop_assert!(
                        out.completes_at >= idle_before,
                        "request completed before its queue went idle"
                    );
                }
            }
        }
    }

    #[test]
    fn cancel_request_clamps_one_queue_only() {
        let mut q = DispatchQueues::new(2);
        let a = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(10));
        let b = q.dispatch(1, Nanos::ZERO, Nanos::from_micros(10));
        // A deadline expires at 6 µs on core 0; core 1 keeps its tail.
        assert!(q.cancel_request(0, Nanos::from_micros(6)));
        assert_eq!(q.idle_at(0), Nanos::from_micros(6));
        assert_eq!(q.idle_at(1), b.completes_at);
        // Cancelling at or after the completion time is a no-op.
        assert!(!q.cancel_request(0, Nanos::from_micros(6)));
        assert!(!q.cancel_request(1, b.completes_at));
        assert_eq!(q.total_dispatched(), 2, "counters survive cancellation");
        let _ = a;
    }

    proptest! {
        /// Per-request cancellation obeys the same monotonicity contract as
        /// the machine-failure path: the queue clock never rewinds below the
        /// cancellation instant, and later dispatches never complete before
        /// an earlier observed completion that already elapsed.
        #[test]
        fn prop_cancel_request_keeps_clock_monotonic(
            events in proptest::collection::vec((0u64..50_000, 1u64..20_000, 0usize..8), 1..80),
        ) {
            let mut q = DispatchQueues::new(2);
            let mut now = Nanos::ZERO;
            for (gap, service, action) in events {
                now = now.saturating_add(Nanos::from_nanos(gap));
                let core = action % 2;
                if action < 2 {
                    let was = q.idle_at(core);
                    let _ = q.cancel_request(core, now);
                    prop_assert!(q.idle_at(core) <= was);
                    prop_assert!(
                        q.idle_at(core) >= was.min(now),
                        "queue clock rewound below the cancellation time"
                    );
                } else {
                    let idle_before = q.idle_at(core);
                    let out = q.dispatch(core, now, Nanos::from_nanos(service));
                    prop_assert!(out.completes_at >= now);
                    prop_assert!(out.completes_at >= idle_before);
                }
            }
        }
    }

    #[test]
    fn dispatch_span_matches_per_read_loop() {
        let mut span_q = DispatchQueues::new(2);
        let mut loop_q = DispatchQueues::new(2);
        let services = [
            Nanos::from_micros(4),
            Nanos::from_micros(1),
            Nanos::from_micros(9),
        ];
        let mut outcomes = Vec::new();
        span_q.dispatch_span(5, Nanos::from_micros(2), &services, &mut outcomes);
        let looped: Vec<DispatchOutcome> = services
            .iter()
            .map(|&s| loop_q.dispatch(5, Nanos::from_micros(2), s))
            .collect();
        assert_eq!(outcomes, looped);
        assert_eq!(span_q.idle_at(5), loop_q.idle_at(5));
        assert_eq!(span_q.total_dispatched(), 3);
    }

    #[test]
    fn empty_span_changes_nothing() {
        let mut q = DispatchQueues::new(1);
        let _ = q.dispatch(0, Nanos::ZERO, Nanos::from_micros(3));
        let mut outcomes = Vec::new();
        q.dispatch_span(0, Nanos::from_micros(1), &[], &mut outcomes);
        assert!(outcomes.is_empty());
        assert_eq!(q.total_dispatched(), 1);
        assert_eq!(q.idle_at(0), Nanos::from_micros(3));
    }

    proptest! {
        /// `dispatch_span` is bit-identical to the per-read dispatch loop —
        /// including its interaction with `cancel_in_flight` firing between
        /// spans, as a machine failure under a fault plan would — for every
        /// interleaving of spans and cancellations.
        #[test]
        fn prop_dispatch_span_equals_per_read_loop(
            events in proptest::collection::vec((0u64..50_000, 1u64..20_000, 0usize..12), 1..60),
        ) {
            let mut span_q = DispatchQueues::new(3);
            let mut loop_q = DispatchQueues::new(3);
            let mut now = Nanos::ZERO;
            let mut pending: Vec<Nanos> = Vec::new();
            let mut outcomes: Vec<DispatchOutcome> = Vec::new();
            for (gap, service, action) in events {
                now = now.saturating_add(Nanos::from_nanos(gap));
                if action == 0 {
                    // A mid-run failure cancels in-flight tails on both.
                    prop_assert_eq!(
                        span_q.cancel_in_flight(now),
                        loop_q.cancel_in_flight(now)
                    );
                    continue;
                }
                // Build a span of 1..=4 service times on one core, dispatch
                // it batched on one queue set and per-read on the other.
                pending.clear();
                let span_len = 1 + action % 4;
                for i in 0..span_len {
                    pending.push(Nanos::from_nanos(service + i as u64));
                }
                let core = action % 3;
                outcomes.clear();
                span_q.dispatch_span(core, now, &pending, &mut outcomes);
                for (i, &s) in pending.iter().enumerate() {
                    let reference = loop_q.dispatch(core, now, s);
                    prop_assert_eq!(outcomes[i], reference);
                }
                for c in 0..3 {
                    prop_assert_eq!(span_q.idle_at(c), loop_q.idle_at(c));
                    prop_assert_eq!(span_q.dispatched_on(c), loop_q.dispatched_on(c));
                }
            }
        }
    }

    proptest! {
        /// Completion times on one queue are monotonically non-decreasing and
        /// the queueing delay is exactly the gap to the previous completion.
        #[test]
        fn prop_single_queue_is_fifo(
            requests in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..100),
        ) {
            let mut q = DispatchQueues::new(1);
            let mut prev_completion = Nanos::ZERO;
            let mut now = Nanos::ZERO;
            for (gap, service) in requests {
                now = now.saturating_add(Nanos::from_nanos(gap));
                let out = q.dispatch(0, now, Nanos::from_nanos(service));
                prop_assert!(out.completes_at >= prev_completion);
                let expected_start = prev_completion.max(now);
                prop_assert_eq!(out.queueing_delay, expected_start.saturating_sub(now));
                prop_assert_eq!(out.completes_at, expected_start.saturating_add(Nanos::from_nanos(service)));
                prev_completion = out.completes_at;
            }
        }
    }
}
