//! The Boyer–Moore majority vote algorithm.
//!
//! `FindTrend` (Algorithm 1 in the paper) needs to know whether any delta
//! value occupies a strict majority of a detection window. The Boyer–Moore
//! majority vote algorithm finds the only possible candidate in a single
//! linear pass with O(1) extra space; a second pass confirms whether the
//! candidate really is a majority.

/// The result of running a majority vote over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MajorityOutcome<T> {
    /// Some element appears strictly more than `⌊w/2⌋` times.
    Majority(T),
    /// No element has a strict majority in the window.
    NoMajority,
}

impl<T> MajorityOutcome<T> {
    /// Returns the majority element, if any.
    pub fn element(self) -> Option<T> {
        match self {
            MajorityOutcome::Majority(x) => Some(x),
            MajorityOutcome::NoMajority => None,
        }
    }

    /// True if a majority element exists.
    pub fn is_majority(&self) -> bool {
        matches!(self, MajorityOutcome::Majority(_))
    }
}

/// Finds the Boyer–Moore candidate for a window without verifying it.
///
/// Returns `None` only for an empty iterator. The candidate is guaranteed to
/// be the majority element *if* a majority element exists; otherwise it is an
/// arbitrary element and must be verified with a second pass.
pub fn boyer_moore_candidate<T, I>(items: I) -> Option<T>
where
    T: PartialEq + Copy,
    I: IntoIterator<Item = T>,
{
    let mut candidate: Option<T> = None;
    let mut count: usize = 0;
    for item in items {
        match candidate {
            Some(c) if count > 0 => {
                if c == item {
                    count += 1;
                } else {
                    count -= 1;
                }
            }
            _ => {
                candidate = Some(item);
                count = 1;
            }
        }
    }
    candidate
}

/// Runs the full (two-pass) majority vote over a window.
///
/// An element is the majority only if it appears at least `⌊w/2⌋ + 1` times
/// in a window of size `w`, matching the paper's definition in §3.2.1.
///
/// # Examples
///
/// ```
/// use leap_prefetcher::majority::{majority_vote, MajorityOutcome};
///
/// assert_eq!(majority_vote(&[-3, -3, -3, 7]), MajorityOutcome::Majority(-3));
/// assert_eq!(majority_vote(&[1, 2, 1, 2]), MajorityOutcome::NoMajority);
/// assert_eq!(majority_vote::<i64>(&[]), MajorityOutcome::NoMajority);
/// ```
pub fn majority_vote<T>(window: &[T]) -> MajorityOutcome<T>
where
    T: PartialEq + Copy,
{
    if window.is_empty() {
        return MajorityOutcome::NoMajority;
    }
    let candidate = match boyer_moore_candidate(window.iter().copied()) {
        Some(c) => c,
        None => return MajorityOutcome::NoMajority,
    };
    let occurrences = window.iter().filter(|&&x| x == candidate).count();
    if occurrences > window.len() / 2 {
        MajorityOutcome::Majority(candidate)
    } else {
        MajorityOutcome::NoMajority
    }
}

/// Streaming majority-vote state, used by `FindTrend` to extend a window
/// without rescanning elements it has already consumed (the paper's
/// "searching in a new window does not need to start from the beginning").
#[derive(Debug, Clone, Default)]
pub struct StreamingVote<T> {
    candidate: Option<T>,
    vote: usize,
    seen: usize,
    candidate_count: usize,
}

impl<T: PartialEq + Copy> StreamingVote<T> {
    /// Creates an empty voting state.
    pub fn new() -> Self {
        StreamingVote {
            candidate: None,
            vote: 0,
            seen: 0,
            candidate_count: 0,
        }
    }

    /// Feeds one more element into the vote.
    pub fn push(&mut self, item: T) {
        self.seen += 1;
        match self.candidate {
            Some(c) if self.vote > 0 => {
                if c == item {
                    self.vote += 1;
                    self.candidate_count += 1;
                } else {
                    self.vote -= 1;
                }
            }
            _ => {
                self.candidate = Some(item);
                self.vote = 1;
                self.candidate_count = 1;
            }
        }
    }

    /// Number of elements consumed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Returns the current candidate without verification.
    pub fn candidate(&self) -> Option<T> {
        self.candidate
    }

    /// Verifies the candidate against an iterator over the *same* window that
    /// was fed into [`StreamingVote::push`], returning the majority outcome.
    ///
    /// The caller provides the window again because the streaming state keeps
    /// no copy of the elements (O(1) space, as the paper requires).
    pub fn verify<I>(&self, window: I) -> MajorityOutcome<T>
    where
        I: IntoIterator<Item = T>,
    {
        let candidate = match self.candidate {
            Some(c) => c,
            None => return MajorityOutcome::NoMajority,
        };
        let mut occurrences = 0usize;
        let mut total = 0usize;
        for item in window {
            total += 1;
            if item == candidate {
                occurrences += 1;
            }
        }
        if total == 0 {
            return MajorityOutcome::NoMajority;
        }
        if occurrences > total / 2 {
            MajorityOutcome::Majority(candidate)
        } else {
            MajorityOutcome::NoMajority
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_window_has_no_majority() {
        assert_eq!(majority_vote::<i64>(&[]), MajorityOutcome::NoMajority);
        assert_eq!(boyer_moore_candidate(Vec::<i64>::new()), None);
    }

    #[test]
    fn single_element_is_majority() {
        assert_eq!(majority_vote(&[5]), MajorityOutcome::Majority(5));
    }

    #[test]
    fn clear_majority_detected() {
        assert_eq!(
            majority_vote(&[-3, -3, -3, 72]),
            MajorityOutcome::Majority(-3)
        );
        assert_eq!(
            majority_vote(&[2, 2, 2, 2, -58, 7, 2]),
            MajorityOutcome::Majority(2)
        );
    }

    #[test]
    fn exact_half_is_not_majority() {
        // 2 of 4 is not a strict majority (needs ⌊4/2⌋+1 = 3).
        assert_eq!(majority_vote(&[1, 1, 2, 3]), MajorityOutcome::NoMajority);
    }

    #[test]
    fn bare_majority_detected() {
        // 3 of 5 is a strict majority.
        assert_eq!(
            majority_vote(&[1, 2, 1, 3, 1]),
            MajorityOutcome::Majority(1)
        );
    }

    #[test]
    fn alternating_has_no_majority() {
        assert_eq!(
            majority_vote(&[1, 2, 1, 2, 1, 2]),
            MajorityOutcome::NoMajority
        );
    }

    #[test]
    fn outcome_helpers() {
        assert_eq!(MajorityOutcome::Majority(3).element(), Some(3));
        assert_eq!(MajorityOutcome::<i32>::NoMajority.element(), None);
        assert!(MajorityOutcome::Majority(3).is_majority());
    }

    #[test]
    fn streaming_vote_matches_batch() {
        let window = [-3i64, -3, 72, -3, -3, 5, -3];
        let mut sv = StreamingVote::new();
        for &x in &window {
            sv.push(x);
        }
        assert_eq!(sv.seen(), window.len());
        assert_eq!(
            sv.verify(window.iter().copied()),
            MajorityOutcome::Majority(-3)
        );
        assert_eq!(majority_vote(&window), MajorityOutcome::Majority(-3));
    }

    #[test]
    fn streaming_vote_empty() {
        let sv: StreamingVote<i64> = StreamingVote::new();
        assert_eq!(sv.verify(std::iter::empty()), MajorityOutcome::NoMajority);
    }

    proptest! {
        /// If any element truly holds a strict majority, Boyer–Moore must find it.
        #[test]
        fn prop_finds_true_majority(
            majority in -100i64..100,
            extra in proptest::collection::vec(-100i64..100, 0..40),
        ) {
            // Build a window where `majority` appears len(extra)+1 times,
            // guaranteeing a strict majority regardless of what `extra` holds.
            let mut window: Vec<i64> = Vec::new();
            for (i, e) in extra.iter().enumerate() {
                window.push(*e);
                window.push(majority);
                if i % 2 == 0 {
                    // Interleave unevenly to vary positions.
                    window.push(majority);
                }
            }
            window.push(majority);
            let count_major = window.iter().filter(|&&x| x == majority).count();
            prop_assume!(count_major > window.len() / 2);
            prop_assert_eq!(majority_vote(&window), MajorityOutcome::Majority(majority));
        }

        /// The two-pass vote never reports a non-majority element.
        #[test]
        fn prop_reported_majority_is_real(
            window in proptest::collection::vec(-10i64..10, 1..64),
        ) {
            if let MajorityOutcome::Majority(m) = majority_vote(&window) {
                let occurrences = window.iter().filter(|&&x| x == m).count();
                prop_assert!(occurrences > window.len() / 2);
            }
        }

        /// Streaming and batch implementations agree on every input.
        #[test]
        fn prop_streaming_equals_batch(
            window in proptest::collection::vec(-10i64..10, 0..64),
        ) {
            let mut sv = StreamingVote::new();
            for &x in &window {
                sv.push(x);
            }
            prop_assert_eq!(sv.verify(window.iter().copied()), majority_vote(&window));
        }
    }
}
