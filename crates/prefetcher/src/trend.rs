//! Trend detection (`FindTrend`, Algorithm 1 of the paper).
//!
//! Given a process's [`AccessHistory`], `FindTrend` looks for a *majority*
//! delta inside a detection window anchored at the head (most recent access).
//! It starts with a small window of `Hsize / Nsplit` entries and doubles the
//! window until either a majority delta appears or the window exceeds the
//! whole history, in which case no trend exists.
//!
//! Starting small keeps the common case cheap (a regular stream is majority-
//! dominated in any sub-window) while doubling makes the detector robust to
//! short-term irregularities: a window of size `w` tolerates up to
//! `⌊w/2⌋ − 1` interleaved outliers.

use crate::history::AccessHistory;
use crate::majority::{MajorityOutcome, StreamingVote};
use crate::types::Delta;
use serde::{Deserialize, Serialize};

/// Default number of splits of the history used to size the initial
/// detection window (`Nsplit` in Algorithm 1).
pub const DEFAULT_N_SPLIT: usize = 4;

/// The outcome of a trend-detection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendOutcome {
    /// A majority delta was found within some detection window.
    Trend {
        /// The majority delta.
        delta: Delta,
        /// The window size in which the majority was first detected.
        window: usize,
    },
    /// No majority delta exists in any window up to the full history.
    NoTrend,
}

impl TrendOutcome {
    /// Returns the detected majority delta, if any.
    pub fn delta(self) -> Option<Delta> {
        match self {
            TrendOutcome::Trend { delta, .. } => Some(delta),
            TrendOutcome::NoTrend => None,
        }
    }

    /// True if a trend was detected.
    pub fn is_trend(self) -> bool {
        matches!(self, TrendOutcome::Trend { .. })
    }
}

/// Runs `FindTrend` over a history with the given `Nsplit`.
///
/// The detection window grows geometrically: `Hsize/Nsplit`, then double
/// that, and so on until it covers the whole recorded history. Elements are
/// consumed exactly once across all window growths (streaming Boyer–Moore
/// vote), so the worst case is `O(Hsize)` time and `O(1)` extra space,
/// matching the complexity analysis in §3.3 of the paper.
///
/// # Examples
///
/// ```
/// use leap_prefetcher::{find_trend, AccessHistory, Delta, PageAddr};
///
/// let mut h = AccessHistory::new(8);
/// for addr in [0x48u64, 0x45, 0x42, 0x3F] {
///     h.record(PageAddr(addr));
/// }
/// let outcome = find_trend(&h, 2);
/// assert_eq!(outcome.delta(), Some(Delta(-3)));
/// ```
pub fn find_trend(history: &AccessHistory, n_split: usize) -> TrendOutcome {
    let n_split = n_split.max(1);
    let h_len = history.len();
    if h_len == 0 {
        return TrendOutcome::NoTrend;
    }

    // Initial window: Hsize / Nsplit, but at least 1 and at most the number
    // of recorded entries.
    let mut window = (history.capacity() / n_split).max(1).min(h_len);

    // The streaming vote consumes each delta exactly once even as the window
    // doubles; verification re-reads only the current window, which is the
    // cheap second pass of Boyer–Moore.
    let mut vote: StreamingVote<Delta> = StreamingVote::new();
    let mut iter = history.iter_recent();

    loop {
        // Feed the deltas that extend the previous window to the new size.
        while vote.seen() < window {
            match iter.next() {
                Some(delta) => vote.push(delta),
                None => break,
            }
        }

        match vote.verify(history.iter_recent().take(vote.seen())) {
            MajorityOutcome::Majority(delta) => {
                return TrendOutcome::Trend {
                    delta,
                    window: vote.seen(),
                };
            }
            MajorityOutcome::NoMajority => {
                if window >= h_len {
                    return TrendOutcome::NoTrend;
                }
                window = (window * 2).min(h_len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageAddr;
    use proptest::prelude::*;

    fn history_from_addrs(capacity: usize, addrs: &[u64]) -> AccessHistory {
        let mut h = AccessHistory::new(capacity);
        for &a in addrs {
            h.record(PageAddr(a));
        }
        h
    }

    #[test]
    fn empty_history_has_no_trend() {
        let h = AccessHistory::new(8);
        assert_eq!(find_trend(&h, 2), TrendOutcome::NoTrend);
    }

    #[test]
    fn steady_stride_detected_in_small_window() {
        let addrs: Vec<u64> = (0..16).map(|i| 1000 + 7 * i).collect();
        let h = history_from_addrs(32, &addrs);
        let outcome = find_trend(&h, 4);
        assert_eq!(outcome.delta(), Some(Delta(7)));
        match outcome {
            TrendOutcome::Trend { window, .. } => {
                assert!(window <= 8, "expected small window, got {window}")
            }
            TrendOutcome::NoTrend => panic!("expected trend"),
        }
    }

    #[test]
    fn figure5_time_t3_detects_minus_three() {
        // Figure 5a: after 0x48, 0x45, 0x42, 0x3F the majority delta is -3.
        let h = history_from_addrs(8, &[0x48, 0x45, 0x42, 0x3F]);
        assert_eq!(find_trend(&h, 2).delta(), Some(Delta(-3)));
    }

    #[test]
    fn figure5_time_t7_finds_no_majority() {
        // Figure 5b: at t7 the window holds +72(0 for the first), -3, -3, -3,
        // -3, -58, +2, +2 — neither the small window (t4–t7) nor the full
        // window has a strict majority.
        let h = history_from_addrs(8, &[0x48, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06]);
        assert_eq!(find_trend(&h, 2), TrendOutcome::NoTrend);
    }

    #[test]
    fn figure5_time_t8_adapts_to_new_trend() {
        // Figure 5c: one more access (0x08) makes +2 the majority of the
        // most-recent window (t5–t8).
        let h = history_from_addrs(8, &[0x48, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06, 0x08]);
        assert_eq!(find_trend(&h, 2).delta(), Some(Delta(2)));
    }

    #[test]
    fn figure5_time_t15_ignores_short_term_irregularity() {
        // Figure 5d: the two irregular jumps at t12/t13 do not break the +2
        // majority over the final window.
        let addrs = [
            0x48u64, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06, 0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12,
            0x14, 0x16,
        ];
        let h = history_from_addrs(8, &addrs);
        assert_eq!(find_trend(&h, 2).delta(), Some(Delta(2)));
    }

    #[test]
    fn tolerates_up_to_half_minus_one_irregularities() {
        // 5 entries of +4 and 3 irregular entries in an 8-entry window:
        // the +4 trend must still be detected.
        let mut h = AccessHistory::new(8);
        let addrs = [100u64, 104, 108, 112, 900, 904, 300, 304, 308];
        for a in addrs {
            h.record(PageAddr(a));
        }
        assert_eq!(find_trend(&h, 1).delta(), Some(Delta(4)));
    }

    #[test]
    fn perfectly_interleaved_strides_yield_no_trend() {
        // Two interleaved streams with different strides produce alternating
        // deltas with no majority (the paper's §3.2.2 discussion).
        let mut h = AccessHistory::new(8);
        let mut a = 0u64;
        let mut b = 1_000u64;
        let mut addrs = Vec::new();
        for _ in 0..8 {
            a += 2;
            b += 7;
            addrs.push(a);
            addrs.push(b);
        }
        for addr in addrs {
            h.record(PageAddr(addr));
        }
        assert_eq!(find_trend(&h, 2), TrendOutcome::NoTrend);
    }

    #[test]
    fn n_split_zero_treated_as_one() {
        let addrs: Vec<u64> = (0..8).map(|i| 10 + i).collect();
        let h = history_from_addrs(8, &addrs);
        assert_eq!(find_trend(&h, 0).delta(), Some(Delta(1)));
    }

    #[test]
    fn partial_history_smaller_than_initial_window() {
        // Only two accesses recorded in a 32-entry history: initial window of
        // Hsize/Nsplit = 8 exceeds the recorded length and must be clamped.
        let h = history_from_addrs(32, &[100, 103]);
        // Deltas are [0, +3]; no strict majority in a window of 2.
        assert_eq!(find_trend(&h, 4), TrendOutcome::NoTrend);
        // A third access makes +3 the majority (2 of 3).
        let h = history_from_addrs(32, &[100, 103, 106]);
        assert_eq!(find_trend(&h, 4).delta(), Some(Delta(3)));
    }

    proptest! {
        /// A detected trend always holds a strict majority of some
        /// head-anchored window.
        #[test]
        fn prop_detected_trend_is_a_real_majority(
            addrs in proptest::collection::vec(0u64..100_000, 1..64),
            n_split in 1usize..8,
        ) {
            let h = history_from_addrs(32, &addrs);
            if let TrendOutcome::Trend { delta, window } = find_trend(&h, n_split) {
                // Single pass over the window: count occurrences and the
                // window length together, without materialising a Vec per
                // proptest case.
                let (mut occurrences, mut total) = (0usize, 0usize);
                for d in h.iter_recent().take(window) {
                    total += 1;
                    if d == delta {
                        occurrences += 1;
                    }
                }
                prop_assert!(occurrences > total / 2);
            }
        }

        /// A pure stride stream (no irregularities) always yields its stride.
        #[test]
        fn prop_pure_stride_always_detected(
            start in 0u64..1_000_000,
            stride in 1u64..128,
            len in 3usize..64,
            n_split in 1usize..8,
        ) {
            let addrs: Vec<u64> = (0..len as u64).map(|i| start + stride * i).collect();
            let h = history_from_addrs(32, &addrs);
            prop_assert_eq!(find_trend(&h, n_split).delta(), Some(Delta(stride as i64)));
        }

        /// FindTrend never panics on arbitrary inputs.
        #[test]
        fn prop_never_panics(
            addrs in proptest::collection::vec(0u64..u64::MAX / 2, 0..128),
            cap in 1usize..64,
            n_split in 0usize..10,
        ) {
            let h = history_from_addrs(cap, &addrs);
            let _ = find_trend(&h, n_split);
        }
    }
}
