//! The adaptive prefetch-window controller (`GetPrefetchWindowSize`,
//! Algorithm 2 of the paper).
//!
//! The window size decides *how many* pages are prefetched on each fault. It
//! grows with the number of prefetched-cache hits observed since the last
//! prefetch (evidence the prefetches are being consumed), is capped at
//! `PWsize_max`, shrinks smoothly (halving, never collapsing instantly) when
//! hits drop, and suspends prefetching entirely when there have been no hits
//! and the faulting page does not even follow the current trend.

use serde::{Deserialize, Serialize};

/// Default maximum prefetch window used in the paper's evaluation (§5).
pub const DEFAULT_MAX_WINDOW: usize = 8;

/// State for Algorithm 2's prefetch-window computation.
///
/// # Examples
///
/// ```
/// use leap_prefetcher::PrefetchWindow;
///
/// let mut w = PrefetchWindow::new(8);
/// // First fault on a fresh window, page follows the trend: start with 1.
/// assert_eq!(w.update(true), 1);
/// // Three prefetched pages were hit before the next fault: grow to
/// // round_up_pow2(3 + 1) = 4.
/// w.record_hit();
/// w.record_hit();
/// w.record_hit();
/// assert_eq!(w.update(true), 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrefetchWindow {
    /// Maximum window size (`PWsize_max`).
    max_size: usize,
    /// Window size computed at the previous prefetch (`PWsize_{t-1}`).
    last_size: usize,
    /// Prefetched-cache hits observed since the last prefetch (`Chit`).
    hits_since_last: usize,
}

impl PrefetchWindow {
    /// Creates a controller with the given maximum window size.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn new(max_size: usize) -> Self {
        assert!(max_size > 0, "PrefetchWindow max_size must be non-zero");
        PrefetchWindow {
            max_size,
            last_size: 0,
            hits_since_last: 0,
        }
    }

    /// Creates a controller with the paper's default `PWsize_max` of 8.
    pub fn with_default_max() -> Self {
        PrefetchWindow::new(DEFAULT_MAX_WINDOW)
    }

    /// Records one prefetched-cache hit (increments `Chit`).
    pub fn record_hit(&mut self) {
        self.hits_since_last = self.hits_since_last.saturating_add(1);
    }

    /// Number of hits accumulated since the last prefetch decision.
    pub fn pending_hits(&self) -> usize {
        self.hits_since_last
    }

    /// The window size chosen by the previous [`PrefetchWindow::update`] call.
    pub fn last_size(&self) -> usize {
        self.last_size
    }

    /// The configured maximum window size.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Computes the prefetch window size for the current fault
    /// (`GetPrefetchWindowSize(Pt)`).
    ///
    /// `follows_trend` tells the controller whether the faulting page follows
    /// the currently known majority trend; it is only consulted when there
    /// were no prefetch hits since the last prefetch (Algorithm 2, lines
    /// 5–9). The call consumes the accumulated hit count (`Chit ← 0`) and
    /// remembers the returned size as `PWsize_{t-1}` for the next call.
    pub fn update(&mut self, follows_trend: bool) -> usize {
        let new_size = if self.hits_since_last == 0 {
            // No prefetched page was consumed since the last prefetch.
            if follows_trend {
                1
            } else {
                0
            }
        } else {
            // Earlier prefetches had hits: scale with their number.
            (self.hits_since_last + 1)
                .next_power_of_two()
                .min(self.max_size)
        };

        // Shrink smoothly: never drop below half of the previous window in
        // one step (Algorithm 2, lines 13–14).
        let smoothed = if new_size < self.last_size / 2 {
            self.last_size / 2
        } else {
            new_size
        };

        self.hits_since_last = 0;
        self.last_size = smoothed;
        smoothed
    }

    /// Resets the controller to its initial state.
    pub fn reset(&mut self) {
        self.last_size = 0;
        self.hits_since_last = 0;
    }
}

impl Default for PrefetchWindow {
    fn default() -> Self {
        PrefetchWindow::with_default_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_hits_no_trend_suspends() {
        let mut w = PrefetchWindow::new(8);
        assert_eq!(w.update(false), 0);
        assert_eq!(w.last_size(), 0);
    }

    #[test]
    fn no_hits_but_on_trend_prefetches_one() {
        let mut w = PrefetchWindow::new(8);
        assert_eq!(w.update(true), 1);
    }

    #[test]
    fn hits_grow_window_to_power_of_two() {
        let mut w = PrefetchWindow::new(32);
        for _ in 0..3 {
            w.record_hit();
        }
        // Chit = 3 → round_up_pow2(4) = 4.
        assert_eq!(w.update(false), 4);
        for _ in 0..5 {
            w.record_hit();
        }
        // Chit = 5 → round_up_pow2(6) = 8.
        assert_eq!(w.update(false), 8);
    }

    #[test]
    fn window_capped_at_max() {
        let mut w = PrefetchWindow::new(8);
        for _ in 0..100 {
            w.record_hit();
        }
        assert_eq!(w.update(false), 8);
    }

    #[test]
    fn shrinks_smoothly_not_abruptly() {
        let mut w = PrefetchWindow::new(8);
        for _ in 0..7 {
            w.record_hit();
        }
        assert_eq!(w.update(false), 8);
        // Sudden drop to zero hits and off-trend: would be 0, but smoothing
        // keeps it at last/2 = 4.
        assert_eq!(w.update(false), 4);
        assert_eq!(w.update(false), 2);
        assert_eq!(w.update(false), 1);
        // 1/2 = 0, so prefetching finally suspends.
        assert_eq!(w.update(false), 0);
    }

    #[test]
    fn hit_counter_resets_after_update() {
        let mut w = PrefetchWindow::new(8);
        w.record_hit();
        w.record_hit();
        assert_eq!(w.pending_hits(), 2);
        let _ = w.update(true);
        assert_eq!(w.pending_hits(), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut w = PrefetchWindow::new(8);
        w.record_hit();
        let _ = w.update(true);
        w.reset();
        assert_eq!(w.last_size(), 0);
        assert_eq!(w.pending_hits(), 0);
    }

    #[test]
    #[should_panic(expected = "max_size must be non-zero")]
    fn zero_max_rejected() {
        let _ = PrefetchWindow::new(0);
    }

    proptest! {
        /// The window size never exceeds the configured maximum.
        #[test]
        fn prop_window_never_exceeds_max(
            max in 1usize..64,
            hits in proptest::collection::vec(0usize..20, 1..50),
            trend in proptest::collection::vec(any::<bool>(), 1..50),
        ) {
            let mut w = PrefetchWindow::new(max);
            for (h, t) in hits.iter().zip(trend.iter()) {
                for _ in 0..*h {
                    w.record_hit();
                }
                let size = w.update(*t);
                // The smoothing rule may keep the window above the raw value
                // but never above the historical maximum-capped value.
                prop_assert!(size <= max.next_power_of_two());
                prop_assert!(size <= max || size <= w.last_size());
            }
        }

        /// The window never shrinks by more than half in one step.
        #[test]
        fn prop_window_never_halves_more_than_once_per_step(
            max in 2usize..64,
            steps in proptest::collection::vec((0usize..20, any::<bool>()), 1..60),
        ) {
            let mut w = PrefetchWindow::new(max);
            let mut prev = 0usize;
            for (h, t) in steps {
                for _ in 0..h {
                    w.record_hit();
                }
                let size = w.update(t);
                prop_assert!(size >= prev / 2, "window dropped from {prev} to {size}");
                prev = size;
            }
        }

        /// With zero hits and off-trend faults, the window decays to zero.
        #[test]
        fn prop_decays_to_zero_without_hits(max in 1usize..64) {
            let mut w = PrefetchWindow::new(max);
            for _ in 0..10 {
                w.record_hit();
            }
            let _ = w.update(true);
            let mut size = usize::MAX;
            for _ in 0..32 {
                size = w.update(false);
            }
            prop_assert_eq!(size, 0);
        }
    }
}
