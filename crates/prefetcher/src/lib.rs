//! Prefetching algorithms from *Effectively Prefetching Remote Memory with
//! Leap* (USENIX ATC 2020), plus the baseline prefetchers the paper compares
//! against.
//!
//! The crate is deliberately free of any simulator or kernel dependencies:
//! a prefetcher consumes a stream of faulting page offsets (one stream per
//! process) and produces, for each fault, the set of extra pages to read
//! alongside the demanded page. This mirrors how Leap's kernel implementation
//! hooks `do_swap_page()` / `swapin_readahead()`.
//!
//! # Components
//!
//! - [`history::AccessHistory`]: the fixed-size circular buffer of page-offset
//!   deltas (§4.1 of the paper).
//! - [`majority`]: the Boyer–Moore majority vote algorithm (linear time,
//!   constant space) used by trend detection.
//! - [`trend`]: `FindTrend` (Algorithm 1) — grows the detection window until a
//!   majority delta emerges (the from-scratch reference implementation).
//! - [`incremental`]: [`IncrementalTrendDetector`] — the same algorithm as
//!   cached per-tier state updated per access, so the per-fault trend query
//!   is O(1) amortized instead of an O(Hsize) rescan.
//! - [`window`]: the adaptive prefetch-window controller (Algorithm 2,
//!   `GetPrefetchWindowSize`).
//! - [`leap`]: [`LeapPrefetcher`], the full majority-trend prefetcher
//!   (`DoPrefetch`).
//! - [`baselines`]: Next-N-Line, Stride, Linux-style Read-Ahead, and a
//!   no-prefetch baseline.
//! - [`programmed`]: a 3PO-style programmed prefetcher that follows a
//!   schedule compiled from a recorded trace.
//! - [`markov`]: an offline-trained first/second-order Markov delta
//!   predictor (Hashemi et al.) frozen into an immutable table-probe model.
//!
//! # Quick example
//!
//! ```
//! use leap_prefetcher::{LeapPrefetcher, Prefetcher, PageAddr};
//!
//! let mut leap = LeapPrefetcher::default();
//! // A regular stride of +2 pages quickly produces prefetch candidates.
//! let mut last = leap_prefetcher::PrefetchDecision::none();
//! for i in 0..16u64 {
//!     last = leap.on_fault(PageAddr(100 + 2 * i));
//! }
//! assert!(!last.is_empty());
//! // Candidates follow the detected +2 trend.
//! assert_eq!(last.pages()[0], PageAddr(100 + 2 * 15 + 2));
//! ```

pub mod baselines;
pub mod history;
pub mod incremental;
pub mod leap;
pub mod majority;
pub mod markov;
pub mod programmed;
pub mod trend;
pub mod types;
pub mod window;

pub use baselines::{NextNLinePrefetcher, NoPrefetcher, ReadAheadPrefetcher, StridePrefetcher};
pub use history::AccessHistory;
pub use incremental::IncrementalTrendDetector;
pub use leap::{LeapConfig, LeapPrefetcher};
pub use markov::{FrozenModel, MarkovOrder, MarkovPrefetcher};
pub use programmed::{ProgrammedPrefetcher, DEFAULT_PROGRAM_LOOKAHEAD};
pub use trend::{find_trend, TrendOutcome};
pub use types::{
    Delta, PageAddr, PrefetchDecision, Prefetcher, PrefetcherKind, INLINE_DECISION_PAGES,
};
pub use window::PrefetchWindow;
