//! Incremental trend detection: `FindTrend` as a cached-tier lookup.
//!
//! [`find_trend`](crate::trend::find_trend) recomputes Algorithm 1 from
//! scratch on every fault: a doubling-window scan over the delta ring whose
//! Boyer–Moore verify pass re-reads each window tier. That is `O(Hsize)` per
//! fault — cheap in absolute terms, but it is the single largest piece of
//! per-fault prefetcher work and it is pure recomputation: between two
//! faults the history changes by exactly one delta.
//!
//! [`IncrementalTrendDetector`] turns that around. The detection windows
//! Algorithm 1 ever inspects form a fixed geometric ladder of *tiers*
//! (`Hsize/Nsplit`, double that, … up to `Hsize`), each anchored at the head
//! of the history. When one access is recorded, every tier's head-anchored
//! window slides by one: the new delta enters, and (once the tier is full)
//! the delta `w` positions back falls out. The detector maintains, per tier,
//! an exact multiset of window contents (a small pre-reserved count map) and
//! the tier's current strict-majority element. A fault's trend query is then
//! a walk over at most `log₂(Nsplit)+1` cached tiers — no rescan.
//!
//! ## Why the per-record update is O(1)
//!
//! Per tier, a slide is two count-map updates. The majority can be
//! re-established from just two candidates: after a slide, an element that
//! was *not* added can only have lost occurrences (or kept them while the
//! window grew), so it cannot newly hold a strict majority — the new
//! majority is either the incoming delta or the tier's previous majority.
//! Checking both is two map probes. The tier count is a constant for a
//! given configuration, so the whole update is O(1) amortized, and all maps
//! are pre-reserved to their maximum population (the tier's window size), so
//! steady-state records perform **zero heap allocations** — the
//! `hot_path_alloc` contract extends to the detector.
//!
//! ## Equivalence
//!
//! The detector is decision-for-decision identical to `find_trend`: same
//! majority delta, same reported window size, same `NoTrend` outcomes, for
//! every prefix of every access stream (property-tested in this module and
//! pinned end-to-end by the replay-equivalence suites). `find_trend` remains
//! the executable reference implementation.

use crate::history::AccessHistory;
use crate::trend::TrendOutcome;
use crate::types::{Delta, PageAddr};
use leap_sim_core::hash::{fx_map_with_capacity, FxHashMap};

/// One detection-window tier: the head-anchored window of (up to)
/// `raw_size` deltas, with its exact content counts and cached majority.
#[derive(Debug, Clone)]
struct Tier {
    /// Unclamped tier size from the geometric ladder; the effective window
    /// is `min(raw_size, history length)`.
    raw_size: usize,
    /// Exact occurrence counts of the deltas inside the effective window.
    counts: FxHashMap<Delta, u32>,
    /// The window's strict-majority delta, if one exists right now.
    majority: Option<Delta>,
    /// The delta about to fall out of this tier's window, staged between
    /// the pre-record probe and the post-record count update.
    pending_out: Option<Delta>,
}

impl Tier {
    fn new(raw_size: usize, capacity: usize) -> Self {
        // At most `min(raw_size, capacity)` distinct deltas ever live in
        // the window; +1 headroom keeps the map strictly below its reserve
        // so inserts never trigger growth.
        let reserve = raw_size.min(capacity) + 1;
        Tier {
            raw_size,
            counts: fx_map_with_capacity(reserve),
            majority: None,
            pending_out: None,
        }
    }
}

/// Maintains `FindTrend`'s answer incrementally as accesses are recorded.
///
/// Owns the process's [`AccessHistory`] (the delta ring) plus the per-tier
/// majority state described in the module docs. [`record`] updates
/// everything in O(1) amortized; [`trend`] answers Algorithm 1 from the
/// cached tiers without rescanning the ring.
///
/// [`record`]: IncrementalTrendDetector::record
/// [`trend`]: IncrementalTrendDetector::trend
///
/// # Examples
///
/// ```
/// use leap_prefetcher::{find_trend, Delta, IncrementalTrendDetector, PageAddr};
///
/// let mut det = IncrementalTrendDetector::new(8, 2);
/// for addr in [0x48u64, 0x45, 0x42, 0x3F] {
///     det.record(PageAddr(addr));
/// }
/// assert_eq!(det.trend().delta(), Some(Delta(-3)));
/// // Bit-identical to the reference implementation.
/// assert_eq!(det.trend(), find_trend(det.history(), 2));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalTrendDetector {
    history: AccessHistory,
    tiers: Vec<Tier>,
}

impl IncrementalTrendDetector {
    /// Creates a detector over a fresh history of `capacity` deltas with
    /// the given `Nsplit` (zero is treated as one, like `find_trend`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (same contract as [`AccessHistory`]).
    pub fn new(capacity: usize, n_split: usize) -> Self {
        let history = AccessHistory::new(capacity);
        let w0 = (capacity / n_split.max(1)).max(1);
        // The geometric tier ladder: w0, 2·w0, … including the first size
        // at or past the full capacity, so the query loop always reaches a
        // tier covering the whole recorded history.
        let mut tiers = Vec::new();
        let mut size = w0;
        loop {
            tiers.push(Tier::new(size, capacity));
            if size >= capacity {
                break;
            }
            size *= 2;
        }
        IncrementalTrendDetector { history, tiers }
    }

    /// Read-only view of the underlying delta ring.
    pub fn history(&self) -> &AccessHistory {
        &self.history
    }

    /// Number of detection-window tiers maintained.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Records a faulting access, sliding every tier's window by one, and
    /// returns the recorded delta. O(tier count) = O(1) for a fixed
    /// configuration; allocation-free in steady state.
    pub fn record(&mut self, addr: PageAddr) -> Delta {
        let capacity = self.history.capacity();
        let len_before = self.history.len();
        // Stage each tier's outgoing delta while the ring still holds it.
        for tier in &mut self.tiers {
            let eff = tier.raw_size.min(capacity);
            tier.pending_out = if len_before >= eff {
                self.history.delta_at(eff - 1)
            } else {
                None
            };
        }

        let delta = self.history.record(addr);
        let len_after = self.history.len();

        for tier in &mut self.tiers {
            *tier.counts.entry(delta).or_insert(0) += 1;
            if let Some(out) = tier.pending_out.take() {
                if let Some(count) = tier.counts.get_mut(&out) {
                    *count -= 1;
                    if *count == 0 {
                        tier.counts.remove(&out);
                    }
                }
            }
            // Only the incoming delta or the previous majority can hold a
            // strict majority of the slid window (see module docs).
            let window = tier.raw_size.min(len_after);
            let prev = tier.majority;
            tier.majority = None;
            for candidate in [prev, Some(delta)].into_iter().flatten() {
                if let Some(&count) = tier.counts.get(&candidate) {
                    if count as usize > window / 2 {
                        tier.majority = Some(candidate);
                        break;
                    }
                }
            }
        }
        delta
    }

    /// Algorithm 1's answer for the current history: the smallest tier
    /// whose window holds a strict majority, or `NoTrend` once a tier
    /// covering the whole history has none. Pure cached-tier lookup.
    pub fn trend(&self) -> TrendOutcome {
        let h_len = self.history.len();
        if h_len == 0 {
            return TrendOutcome::NoTrend;
        }
        for tier in &self.tiers {
            let window = tier.raw_size.min(h_len);
            if let Some(delta) = tier.majority {
                return TrendOutcome::Trend { delta, window };
            }
            if window >= h_len {
                return TrendOutcome::NoTrend;
            }
        }
        TrendOutcome::NoTrend
    }

    /// Clears the history and every tier (keeping the maps' reserves).
    pub fn clear(&mut self) {
        self.history.clear();
        for tier in &mut self.tiers {
            tier.counts.clear();
            tier.majority = None;
            tier.pending_out = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::find_trend;
    use proptest::prelude::*;

    /// Drives both implementations over one stream, asserting equivalence
    /// after every record.
    fn assert_equivalent(capacity: usize, n_split: usize, addrs: &[u64]) {
        let mut det = IncrementalTrendDetector::new(capacity, n_split);
        for &a in addrs {
            det.record(PageAddr(a));
            let reference = find_trend(det.history(), n_split);
            assert_eq!(
                det.trend(),
                reference,
                "divergence: cap={capacity} n_split={n_split} after {a:#x}"
            );
        }
    }

    #[test]
    fn empty_detector_has_no_trend() {
        let det = IncrementalTrendDetector::new(8, 2);
        assert_eq!(det.trend(), TrendOutcome::NoTrend);
    }

    #[test]
    fn figure5_stream_matches_reference_at_every_step() {
        let addrs = [
            0x48u64, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06, 0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12,
            0x14, 0x16,
        ];
        assert_equivalent(8, 2, &addrs);
    }

    #[test]
    fn steady_stride_detected_in_smallest_tier() {
        let mut det = IncrementalTrendDetector::new(32, 4);
        for i in 0..64u64 {
            det.record(PageAddr(1_000 + 7 * i));
        }
        match det.trend() {
            TrendOutcome::Trend { delta, window } => {
                assert_eq!(delta, Delta(7));
                assert_eq!(window, 8, "steady stride must resolve in tier 0");
            }
            TrendOutcome::NoTrend => panic!("expected a trend"),
        }
    }

    #[test]
    fn tier_ladder_always_covers_the_capacity() {
        for capacity in 1..80 {
            for n_split in 0..10 {
                let det = IncrementalTrendDetector::new(capacity, n_split);
                let last = det.tiers.last().expect("at least one tier");
                assert!(last.raw_size >= capacity);
            }
        }
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut det = IncrementalTrendDetector::new(16, 4);
        for i in 0..40u64 {
            det.record(PageAddr(i));
        }
        assert!(det.trend().is_trend());
        det.clear();
        assert_eq!(det.trend(), TrendOutcome::NoTrend);
        assert!(det.history().is_empty());
        // And it keeps working after the reset.
        for i in 0..40u64 {
            det.record(PageAddr(3 * i));
            assert_eq!(det.trend(), find_trend(det.history(), 4));
        }
    }

    #[test]
    fn count_maps_never_outgrow_their_reserve() {
        // Adversarial stream: every delta distinct, maximizing map
        // population; the per-tier maps must stay within the pre-reserved
        // capacity (this is the no-allocation argument made checkable).
        let mut det = IncrementalTrendDetector::new(32, 4);
        let caps: Vec<usize> = det.tiers.iter().map(|t| t.counts.capacity()).collect();
        let mut a = 0u64;
        for i in 0..1_000u64 {
            a += i + 1; // strictly growing gaps: all deltas distinct
            det.record(PageAddr(a));
        }
        for (tier, &cap) in det.tiers.iter().zip(&caps) {
            assert!(cap > 0);
            assert_eq!(tier.counts.capacity(), cap, "tier map grew");
            assert!(tier.counts.len() <= tier.raw_size.min(32));
        }
    }

    proptest! {
        /// The detector agrees with `find_trend` after every record, for
        /// arbitrary access streams, capacities, and split factors.
        #[test]
        fn prop_equivalent_to_find_trend_stepwise(
            addrs in proptest::collection::vec(0u64..100_000, 0..128),
            capacity in 1usize..64,
            n_split in 0usize..10,
        ) {
            let mut det = IncrementalTrendDetector::new(capacity, n_split);
            for &a in &addrs {
                det.record(PageAddr(a));
                prop_assert_eq!(det.trend(), find_trend(det.history(), n_split));
            }
        }

        /// Mixed regular/irregular phases (the realistic shape: trends with
        /// bursts of noise) also stay equivalent stepwise.
        #[test]
        fn prop_equivalent_on_phased_streams(
            seed in 0u64..64_000,
            phase_len in 1usize..40,
            capacity in 2usize..48,
            n_split in 1usize..6,
        ) {
            let stride = seed % 63 + 1;
            let mut det = IncrementalTrendDetector::new(capacity, n_split);
            let mut addr = 10_000u64;
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for phase in 0..4 {
                for _ in 0..phase_len {
                    if phase % 2 == 0 {
                        addr += stride;
                    } else {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        addr = 10_000 + (x % 1_000_000);
                    }
                    det.record(PageAddr(addr));
                    prop_assert_eq!(det.trend(), find_trend(det.history(), n_split));
                }
            }
        }

        /// The recorded delta stream matches a bare `AccessHistory`.
        #[test]
        fn prop_history_matches_plain_access_history(
            addrs in proptest::collection::vec(0u64..100_000, 0..100),
            capacity in 1usize..32,
        ) {
            let mut det = IncrementalTrendDetector::new(capacity, 4);
            let mut plain = AccessHistory::new(capacity);
            for &a in &addrs {
                let d1 = det.record(PageAddr(a));
                let d2 = plain.record(PageAddr(a));
                prop_assert_eq!(d1, d2);
            }
            prop_assert_eq!(
                det.history().iter_recent().collect::<Vec<_>>(),
                plain.iter_recent().collect::<Vec<_>>()
            );
        }
    }
}
