//! A 3PO-style *programmed* prefetcher.
//!
//! Related work (3PO, "Programmed Far-Memory Prefetching for Oblivious
//! Applications") observes that for many far-memory applications the access
//! sequence is known ahead of time — from a profiling run, a compiler pass,
//! or the application's own structure — so prefetching can follow a
//! *program* instead of reacting to a history window. This baseline replays
//! such a program: given the future page sequence, each fault looks itself
//! up in the program and prefetches the next `lookahead` distinct upcoming
//! pages.
//!
//! With a perfect program this is an oracle — an upper bound on what any
//! history-based prefetcher (including Leap's majority-trend detection) can
//! achieve; with a stale or wrong program it degrades gracefully to no
//! prefetching. It exists here both as a reference point for Figure 9/10
//! style comparisons and as the canonical example of a *third-party*
//! algorithm plugging into the simulators through `leap`'s component
//! registry without touching the `leap` crate.

use crate::types::{PageAddr, PrefetchDecision, Prefetcher};
use leap_workloads::AccessTrace;
use std::collections::HashMap;

/// Default lookahead of the programmed prefetcher (pages per fault).
pub const DEFAULT_PROGRAM_LOOKAHEAD: usize = 8;

/// A prefetcher that follows a pre-supplied access program (3PO-style).
///
/// # Examples
///
/// ```
/// use leap_prefetcher::{PageAddr, Prefetcher, ProgrammedPrefetcher};
///
/// // The profiled run told us the pages will be touched in this order.
/// let program = vec![10, 20, 30, 40, 50].into_iter().map(PageAddr).collect();
/// let mut oracle = ProgrammedPrefetcher::new(program, 2);
/// let decision = oracle.on_fault(PageAddr(20));
/// assert_eq!(decision.pages(), &[PageAddr(30), PageAddr(40)]);
/// ```
#[derive(Debug, Clone)]
pub struct ProgrammedPrefetcher {
    program: Vec<PageAddr>,
    /// First occurrence of each page in the program, for O(1) resync when a
    /// fault does not match the expected next position.
    first_occurrence: HashMap<PageAddr, usize>,
    cursor: usize,
    lookahead: usize,
    faults: u64,
    resyncs: u64,
}

impl ProgrammedPrefetcher {
    /// Creates a programmed prefetcher from the future page sequence and a
    /// per-fault lookahead.
    pub fn new(program: Vec<PageAddr>, lookahead: usize) -> Self {
        let mut first_occurrence = HashMap::with_capacity(program.len());
        for (i, addr) in program.iter().enumerate() {
            first_occurrence.entry(*addr).or_insert(i);
        }
        ProgrammedPrefetcher {
            program,
            first_occurrence,
            cursor: 0,
            lookahead: lookahead.max(1),
            faults: 0,
            resyncs: 0,
        }
    }

    /// Creates a programmed prefetcher from a raw page sequence.
    pub fn from_pages(pages: &[u64], lookahead: usize) -> Self {
        ProgrammedPrefetcher::new(pages.iter().map(|&p| PageAddr(p)).collect(), lookahead)
    }

    /// Compiles a recorded run into a 3PO-style prefetch-ahead schedule.
    ///
    /// This is the offline half of the record → compile → replay loop: a
    /// profiling replay records an [`AccessTrace`] (e.g. through
    /// `TraceRecorder` or log ingestion), and this constructor turns it into
    /// the prefetch program a later run follows, issuing the next `lead`
    /// distinct pages ahead of each fault. Compilation collapses consecutive
    /// repeat accesses — a re-touch of the page the program just reached is
    /// resident by construction and can never fault, so keeping it would
    /// only burn lookahead slots.
    ///
    /// # Examples
    ///
    /// ```
    /// use leap_prefetcher::{PageAddr, Prefetcher, ProgrammedPrefetcher};
    /// use leap_sim_core::Nanos;
    /// use leap_workloads::{Access, AccessTrace};
    ///
    /// let recorded = AccessTrace::new(
    ///     "profile",
    ///     [9, 9, 5, 17, 2].map(|p| Access::read(p, Nanos::ZERO)).to_vec(),
    /// );
    /// let mut compiled = ProgrammedPrefetcher::compile_from_trace(&recorded, 3);
    /// let d = compiled.on_fault(PageAddr(9));
    /// assert_eq!(d.pages(), &[PageAddr(5), PageAddr(17), PageAddr(2)]);
    /// ```
    pub fn compile_from_trace(trace: &AccessTrace, lead: usize) -> Self {
        let mut program: Vec<PageAddr> = Vec::with_capacity(trace.len());
        for access in trace.iter() {
            let page = PageAddr(access.page);
            if program.last() != Some(&page) {
                program.push(page);
            }
        }
        ProgrammedPrefetcher::new(program, lead)
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// `(faults seen, faults that needed a resync)` — a resync means the
    /// execution diverged from the program (an imperfect profile).
    pub fn divergence(&self) -> (u64, u64) {
        (self.faults, self.resyncs)
    }

    /// Positions the cursor just past the program entry matching `addr`,
    /// scanning forward from the current cursor first (the common case for a
    /// faithful program) and falling back to the first occurrence.
    fn sync_to(&mut self, addr: PageAddr) -> bool {
        // Fast path: the fault is within the next few program steps (pages
        // between them were prefetched and therefore never fault).
        const NEAR_SCAN: usize = 64;
        let near_end = self
            .cursor
            .saturating_add(NEAR_SCAN)
            .min(self.program.len());
        if let Some(offset) = self.program[self.cursor..near_end]
            .iter()
            .position(|&p| p == addr)
        {
            self.cursor += offset + 1;
            return true;
        }
        self.resyncs += 1;
        match self.first_occurrence.get(&addr) {
            Some(&i) => {
                self.cursor = i + 1;
                true
            }
            None => false,
        }
    }
}

impl Prefetcher for ProgrammedPrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        self.faults += 1;
        if !self.sync_to(addr) {
            // The page is not in the program at all: the profile missed it.
            return PrefetchDecision::none();
        }
        let mut candidates = PrefetchDecision::none();
        for &upcoming in &self.program[self.cursor.min(self.program.len())..] {
            if upcoming == addr || candidates.contains(upcoming) {
                continue;
            }
            candidates.push(upcoming);
            if candidates.len() >= self.lookahead {
                break;
            }
        }
        candidates
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        "Programmed-3PO"
    }

    fn reset(&mut self) {
        self.cursor = 0;
        self.faults = 0;
        self.resyncs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(pages: &[u64]) -> Vec<PageAddr> {
        pages.iter().map(|&p| PageAddr(p)).collect()
    }

    #[test]
    fn follows_the_program_exactly() {
        let mut p = ProgrammedPrefetcher::new(program(&[1, 2, 3, 4, 5, 6]), 3);
        let d = p.on_fault(PageAddr(1));
        assert_eq!(d.pages(), program(&[2, 3, 4]).as_slice());
        assert!(!d.speculative);
        // Pages 2–4 were prefetched, so the next fault is 5.
        let d = p.on_fault(PageAddr(5));
        assert_eq!(d.pages(), program(&[6]).as_slice());
        assert_eq!(p.divergence(), (2, 0));
    }

    #[test]
    fn handles_arbitrary_irregular_programs() {
        // A pattern no history-based prefetcher can learn.
        let pages = [907, 3, 511, 90, 1, 44, 620, 7, 88, 2];
        let mut p = ProgrammedPrefetcher::from_pages(&pages, 4);
        let d = p.on_fault(PageAddr(907));
        assert_eq!(d.pages(), program(&[3, 511, 90, 1]).as_slice());
    }

    #[test]
    fn resyncs_after_divergence() {
        let mut p = ProgrammedPrefetcher::new(program(&(0..200).collect::<Vec<_>>()), 2);
        let _ = p.on_fault(PageAddr(0));
        // The execution jumps far from the program position.
        let d = p.on_fault(PageAddr(150));
        assert_eq!(d.pages(), program(&[151, 152]).as_slice());
        assert_eq!(p.divergence(), (2, 1));
    }

    #[test]
    fn unknown_pages_prefetch_nothing() {
        let mut p = ProgrammedPrefetcher::new(program(&[1, 2, 3]), 2);
        assert!(p.on_fault(PageAddr(99)).is_empty());
    }

    #[test]
    fn duplicate_upcoming_pages_are_deduplicated() {
        let mut p = ProgrammedPrefetcher::new(program(&[1, 2, 2, 2, 3, 4]), 3);
        let d = p.on_fault(PageAddr(1));
        assert_eq!(d.pages(), program(&[2, 3, 4]).as_slice());
    }

    #[test]
    fn reset_rewinds_the_program() {
        let mut p = ProgrammedPrefetcher::new(program(&[1, 2, 3]), 2);
        let _ = p.on_fault(PageAddr(3));
        p.reset();
        let d = p.on_fault(PageAddr(1));
        assert_eq!(d.pages(), program(&[2, 3]).as_slice());
    }

    #[test]
    fn compile_collapses_consecutive_repeats_only() {
        use leap_sim_core::Nanos;
        use leap_workloads::{Access, AccessTrace};
        let recorded = AccessTrace::new(
            "profile",
            [1, 1, 1, 2, 3, 2, 2, 1]
                .map(|p| Access::read(p, Nanos::ZERO))
                .to_vec(),
        );
        let mut compiled = ProgrammedPrefetcher::compile_from_trace(&recorded, 4);
        // Non-adjacent revisits survive compilation (they can fault again
        // after an eviction); back-to-back repeats are collapsed and the
        // faulting page itself is never a candidate.
        let d = compiled.on_fault(PageAddr(1));
        assert_eq!(d.pages(), program(&[2, 3]).as_slice());
        // The surviving revisit of page 2 leads the next fault there.
        let d = compiled.on_fault(PageAddr(3));
        assert_eq!(d.pages(), program(&[2, 1]).as_slice());
    }

    #[test]
    fn compiled_schedule_covers_its_own_source_trace() {
        use leap_sim_core::Nanos;
        use leap_workloads::{Access, AccessTrace};
        // An irregular but repeatable sequence: the compiled program must
        // lead every fault after the first.
        let pages: Vec<u64> = (0..500u64).map(|i| (i * 37) % 251).collect();
        let recorded = AccessTrace::new(
            "profile",
            pages
                .iter()
                .map(|&p| Access::read(p, Nanos::ZERO))
                .collect(),
        );
        let mut compiled = ProgrammedPrefetcher::compile_from_trace(&recorded, 4);
        let mut predicted: std::collections::HashSet<PageAddr> = std::collections::HashSet::new();
        let mut led = 0usize;
        for &page in &pages {
            let addr = PageAddr(page);
            if predicted.contains(&addr) {
                led += 1;
            }
            for &p in compiled.on_fault(addr).pages() {
                predicted.insert(p);
            }
        }
        assert!(
            led as f64 / pages.len() as f64 > 0.9,
            "compiled program led only {led}/{} accesses",
            pages.len()
        );
    }

    #[test]
    fn name_is_open_world() {
        assert_eq!(
            ProgrammedPrefetcher::new(Vec::new(), 1).name(),
            "Programmed-3PO"
        );
    }
}
