//! The per-process `AccessHistory` circular buffer of page-offset deltas.
//!
//! Leap's page access tracker (§4.1) records, for every faulting access, the
//! signed difference between the new page offset and the previous one. The
//! history is a fixed-size FIFO circular queue; trend detection walks it from
//! the head (most recent) backwards.

use crate::types::{Delta, PageAddr};

/// Default history size used throughout the paper's evaluation (§5).
pub const DEFAULT_HISTORY_SIZE: usize = 32;

/// A fixed-size circular buffer of page-offset deltas for one process.
///
/// The buffer stores up to `capacity` deltas. Once full, new entries overwrite
/// the oldest ones. Iteration via [`AccessHistory::iter_recent`] yields deltas
/// from the most recent backwards, which is the order `FindTrend` consumes
/// them in.
///
/// # Examples
///
/// ```
/// use leap_prefetcher::{AccessHistory, PageAddr, Delta};
///
/// let mut h = AccessHistory::new(8);
/// for addr in [0x48u64, 0x45, 0x42, 0x3F] {
///     h.record(PageAddr(addr));
/// }
/// // Three deltas of -3 were recorded (the first access has no predecessor,
/// // so it contributes a delta of 0 like the kernel implementation does).
/// let recent: Vec<Delta> = h.iter_recent().take(3).collect();
/// assert_eq!(recent, vec![Delta(-3), Delta(-3), Delta(-3)]);
/// ```
#[derive(Debug, Clone)]
pub struct AccessHistory {
    deltas: Vec<Delta>,
    capacity: usize,
    head: usize,
    len: usize,
    last_addr: Option<PageAddr>,
    last_delta: Delta,
}

impl AccessHistory {
    /// Creates an empty history with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "AccessHistory capacity must be non-zero");
        AccessHistory {
            deltas: vec![Delta::ZERO; capacity],
            capacity,
            head: 0,
            len: 0,
            last_addr: None,
            last_delta: Delta::ZERO,
        }
    }

    /// Creates a history with the paper's default size of 32 entries.
    pub fn with_default_size() -> Self {
        AccessHistory::new(DEFAULT_HISTORY_SIZE)
    }

    /// Records a faulting access to `addr`, storing the delta from the
    /// previous access, and returns that delta.
    ///
    /// The very first access has no predecessor; like the kernel
    /// implementation, a delta of zero is stored so the queue layout stays
    /// uniform.
    pub fn record(&mut self, addr: PageAddr) -> Delta {
        let delta = match self.last_addr {
            Some(prev) => addr.delta_from(prev),
            None => Delta::ZERO,
        };
        self.push_delta(delta);
        self.last_addr = Some(addr);
        self.last_delta = delta;
        delta
    }

    fn push_delta(&mut self, delta: Delta) {
        if self.len == 0 {
            self.head = 0;
        } else {
            self.head = (self.head + 1) % self.capacity;
        }
        self.deltas[self.head] = delta;
        if self.len < self.capacity {
            self.len += 1;
        }
    }

    /// Number of deltas currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no accesses have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity (`Hsize` in the paper).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The address of the most recent access, if any.
    pub fn last_addr(&self) -> Option<PageAddr> {
        self.last_addr
    }

    /// The delta recorded for the most recent access.
    pub fn last_delta(&self) -> Delta {
        self.last_delta
    }

    /// The delta `offset` positions back from the head (0 = most recent),
    /// or `None` past the recorded length. O(1); this is what lets the
    /// incremental trend detector find the element leaving a sliding window
    /// without walking the ring.
    pub fn delta_at(&self, offset: usize) -> Option<Delta> {
        if offset >= self.len {
            return None;
        }
        let idx = (self.head + self.capacity - offset) % self.capacity;
        Some(self.deltas[idx])
    }

    /// Iterates over stored deltas from the most recent backwards.
    pub fn iter_recent(&self) -> RecentDeltas<'_> {
        RecentDeltas {
            history: self,
            offset: 0,
        }
    }

    /// Returns up to `n` most recent deltas (most recent first).
    pub fn recent(&self, n: usize) -> Vec<Delta> {
        self.iter_recent().take(n).collect()
    }

    /// Clears the history and forgets the last address.
    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
        self.last_addr = None;
        self.last_delta = Delta::ZERO;
    }
}

impl Default for AccessHistory {
    fn default() -> Self {
        AccessHistory::with_default_size()
    }
}

/// Iterator over the deltas of an [`AccessHistory`], most recent first.
#[derive(Debug)]
pub struct RecentDeltas<'a> {
    history: &'a AccessHistory,
    offset: usize,
}

impl Iterator for RecentDeltas<'_> {
    type Item = Delta;

    fn next(&mut self) -> Option<Delta> {
        if self.offset >= self.history.len {
            return None;
        }
        let idx = (self.history.head + self.history.capacity - self.offset) % self.history.capacity;
        self.offset += 1;
        Some(self.history.deltas[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.history.len - self.offset;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RecentDeltas<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_access_records_zero_delta() {
        let mut h = AccessHistory::new(4);
        assert_eq!(h.record(PageAddr(100)), Delta(0));
        assert_eq!(h.len(), 1);
        assert_eq!(h.last_addr(), Some(PageAddr(100)));
    }

    #[test]
    fn deltas_follow_access_stream() {
        let mut h = AccessHistory::new(8);
        // The paper's §4.1 example: faults at 0x2, 0x5, 0x4, 0x6, 0x1, 0x9
        // produce deltas 0, +3, -1, +2, -5, +8.
        for addr in [0x2u64, 0x5, 0x4, 0x6, 0x1, 0x9] {
            h.record(PageAddr(addr));
        }
        let stored: Vec<i64> = h.iter_recent().map(|d| d.0).collect();
        assert_eq!(stored, vec![8, -5, 2, -1, 3, 0]);
    }

    #[test]
    fn wraps_when_full() {
        let mut h = AccessHistory::new(4);
        for addr in 0..10u64 {
            h.record(PageAddr(addr * 2));
        }
        assert_eq!(h.len(), 4);
        // All surviving deltas are +2 (the first zero delta was overwritten).
        assert!(h.iter_recent().all(|d| d == Delta(2)));
    }

    #[test]
    fn recent_returns_most_recent_first() {
        let mut h = AccessHistory::new(8);
        for addr in [10u64, 20, 21, 22] {
            h.record(PageAddr(addr));
        }
        assert_eq!(h.recent(2), vec![Delta(1), Delta(1)]);
        assert_eq!(h.recent(3), vec![Delta(1), Delta(1), Delta(10)]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = AccessHistory::new(4);
        h.record(PageAddr(1));
        h.record(PageAddr(2));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.last_addr(), None);
        assert_eq!(h.last_delta(), Delta::ZERO);
    }

    #[test]
    fn figure5_example_delta_stream() {
        // The addresses from Figure 5 of the paper.
        let addrs = [
            0x48u64, 0x45, 0x42, 0x3F, 0x3C, 0x02, 0x04, 0x06, 0x08, 0x0A, 0x0C, 0x10, 0x39, 0x12,
            0x14, 0x16,
        ];
        let mut h = AccessHistory::new(8);
        for a in addrs {
            h.record(PageAddr(a));
        }
        // After all 16 accesses the 8-entry window holds the deltas for
        // t8..t15: +2, +2, +2, +4, +41(0x39-0x10), -39(0x12-0x39), +2, +2.
        let stored: Vec<i64> = h.iter_recent().collect::<Vec<_>>()[..8]
            .iter()
            .map(|d| d.0)
            .collect();
        assert_eq!(stored, vec![2, 2, -39, 41, 4, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = AccessHistory::new(0);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(
            cap in 1usize..64,
            addrs in proptest::collection::vec(0u64..10_000, 0..200),
        ) {
            let mut h = AccessHistory::new(cap);
            for a in addrs {
                h.record(PageAddr(a));
            }
            prop_assert!(h.len() <= cap);
        }

        #[test]
        fn prop_iter_len_matches_len(
            cap in 1usize..64,
            addrs in proptest::collection::vec(0u64..10_000, 0..200),
        ) {
            let mut h = AccessHistory::new(cap);
            for a in addrs {
                h.record(PageAddr(a));
            }
            prop_assert_eq!(h.iter_recent().count(), h.len());
        }

        #[test]
        fn prop_most_recent_delta_matches_last_two_accesses(
            cap in 2usize..64,
            addrs in proptest::collection::vec(0u64..10_000, 2..100),
        ) {
            let mut h = AccessHistory::new(cap);
            for &a in &addrs {
                h.record(PageAddr(a));
            }
            let expected = PageAddr(addrs[addrs.len() - 1]).delta_from(PageAddr(addrs[addrs.len() - 2]));
            prop_assert_eq!(h.iter_recent().next(), Some(expected));
            prop_assert_eq!(h.last_delta(), expected);
        }
    }
}
