//! An offline-trained Markov *delta* prefetcher.
//!
//! Related work on learned prefetching (Hashemi et al., "Learning Memory
//! Access Patterns") models the fault stream as transitions between
//! address *deltas* rather than absolute addresses: the vocabulary stays
//! small, and regular patterns (strides, alternating strides, pointer-chase
//! loops) become high-probability transitions. This module implements the
//! classical table-driven version of that idea:
//!
//! - **Training** ([`train`] / [`train_with`]) runs once, offline, over a
//!   corpus of recorded [`AccessTrace`]s and counts first-order
//!   (`delta → next delta`) and second-order
//!   (`(delta, delta) → next delta`) transitions. The counts are then
//!   *frozen* into ranked per-context candidate lists — a [`FrozenModel`].
//!   Counting is pure commutative addition and freezing sorts with a total
//!   order, so the same corpus produces an identical model **in any trace
//!   order** (the determinism contract the proptest suite pins).
//! - **Replay** ([`MarkovPrefetcher`]) holds the frozen model behind an
//!   [`Arc`] and keeps only a tiny per-process cursor (last address, last
//!   two deltas). Every fault is a pure table probe plus a bounded greedy
//!   walk — no RNG, no online mutation of the model — so plugging the
//!   prefetcher into a replay leaves every other random stream untouched
//!   and the Serial/Threaded bit-identity contract intact.
//!
//! The second-order predictor backs off to the first-order table when a
//! delta pair was never observed, the standard smoothing for sparse
//! contexts.
//!
//! # Example
//!
//! ```
//! use leap_prefetcher::markov::{train, MarkovOrder, MarkovPrefetcher};
//! use leap_prefetcher::{PageAddr, Prefetcher};
//! use leap_sim_core::units::MIB;
//!
//! // Profile a +3-stride run, freeze the model, replay it elsewhere.
//! let profile = leap_workloads::stride_trace(MIB, 3, 1);
//! let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
//! let mut markov = MarkovPrefetcher::new(model.into());
//! let _ = markov.on_fault(PageAddr(100));
//! let decision = markov.on_fault(PageAddr(103));
//! // The learned +3 transition chains ahead of the fault.
//! assert_eq!(decision.pages()[0], PageAddr(106));
//! assert_eq!(markov.name(), "Markov-1");
//! ```

use crate::types::{Delta, PageAddr, PrefetchDecision, Prefetcher};
use leap_workloads::AccessTrace;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default chain depth of the greedy prediction walk (pages prefetched per
/// fault), matching the paper's default maximum prefetch window.
pub const DEFAULT_MARKOV_LOOKAHEAD: usize = 8;

/// Default number of ranked candidate deltas kept per context at freeze
/// time. The top candidate drives the greedy chain; the alternatives widen
/// the first prediction step for contexts with competing continuations.
pub const DEFAULT_MARKOV_FANOUT: usize = 2;

/// Which transition order the model predicts with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MarkovOrder {
    /// Predict from the last delta alone.
    First,
    /// Predict from the last two deltas, backing off to first order.
    Second,
}

impl MarkovOrder {
    /// Component-registry name for a model of this order.
    pub fn label(self) -> &'static str {
        match self {
            MarkovOrder::First => "Markov-1",
            MarkovOrder::Second => "Markov-2",
        }
    }
}

/// One ranked continuation of a context: the next delta and how often the
/// corpus took it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankedDelta {
    /// The continuation delta.
    pub delta: i64,
    /// Occurrences in the training corpus.
    pub count: u64,
}

/// A trained, immutable Markov delta model.
///
/// Built once by [`train`] / [`train_with`]; replay only reads it. Equality
/// is structural over the full ranked tables, so two training runs over the
/// same corpus compare equal however the corpus was ordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenModel {
    order: MarkovOrder,
    lookahead: usize,
    fanout: usize,
    /// `last delta → ranked next deltas` (count-descending, delta-ascending).
    first: BTreeMap<i64, Vec<RankedDelta>>,
    /// `(previous delta, last delta) → ranked next deltas`.
    second: BTreeMap<(i64, i64), Vec<RankedDelta>>,
    /// Transitions counted during training (both orders).
    trained_transitions: u64,
}

impl FrozenModel {
    /// The order this model predicts with.
    pub fn order(&self) -> MarkovOrder {
        self.order
    }

    /// The greedy-walk depth used at prediction time.
    pub fn lookahead(&self) -> usize {
        self.lookahead
    }

    /// Distinct first-order contexts the model knows.
    pub fn first_order_contexts(&self) -> usize {
        self.first.len()
    }

    /// Distinct second-order contexts the model knows.
    pub fn second_order_contexts(&self) -> usize {
        self.second.len()
    }

    /// Total transitions observed during training (both orders).
    pub fn trained_transitions(&self) -> u64 {
        self.trained_transitions
    }

    /// The ranked continuations of a first-order context.
    pub fn first_order(&self, last_delta: i64) -> &[RankedDelta] {
        self.first.get(&last_delta).map_or(&[], Vec::as_slice)
    }

    /// The ranked continuations of a second-order context.
    pub fn second_order(&self, prev_delta: i64, last_delta: i64) -> &[RankedDelta] {
        self.second
            .get(&(prev_delta, last_delta))
            .map_or(&[], Vec::as_slice)
    }

    /// The ranked continuations the configured order would probe for the
    /// cursor `(prev_delta, last_delta)`, applying second-order back-off.
    fn probe(&self, prev_delta: Option<i64>, last_delta: i64) -> &[RankedDelta] {
        if self.order == MarkovOrder::Second {
            if let Some(prev) = prev_delta {
                let ranked = self.second_order(prev, last_delta);
                if !ranked.is_empty() {
                    return ranked;
                }
            }
        }
        self.first_order(last_delta)
    }
}

/// Trains a model over `traces` with the default lookahead and fanout.
///
/// Each trace is one process's recorded access sequence; transitions are
/// counted per trace (deltas never straddle trace boundaries) and summed,
/// so the result does not depend on the order of the traces.
pub fn train(traces: &[AccessTrace], order: MarkovOrder) -> FrozenModel {
    train_with(
        traces,
        order,
        DEFAULT_MARKOV_LOOKAHEAD,
        DEFAULT_MARKOV_FANOUT,
    )
}

/// Trains a model over `traces`, keeping the top `fanout` continuations per
/// context and predicting `lookahead` pages ahead per fault.
pub fn train_with(
    traces: &[AccessTrace],
    order: MarkovOrder,
    lookahead: usize,
    fanout: usize,
) -> FrozenModel {
    let mut first_counts: BTreeMap<i64, BTreeMap<i64, u64>> = BTreeMap::new();
    let mut second_counts: BTreeMap<(i64, i64), BTreeMap<i64, u64>> = BTreeMap::new();
    let mut trained_transitions = 0u64;
    for trace in traces {
        let pages = trace.page_sequence();
        let deltas: Vec<i64> = pages
            .windows(2)
            .map(|w| PageAddr(w[1]).delta_from(PageAddr(w[0])).0)
            .collect();
        for w in deltas.windows(2) {
            *first_counts
                .entry(w[0])
                .or_default()
                .entry(w[1])
                .or_default() += 1;
            trained_transitions += 1;
        }
        for w in deltas.windows(3) {
            *second_counts
                .entry((w[0], w[1]))
                .or_default()
                .entry(w[2])
                .or_default() += 1;
            trained_transitions += 1;
        }
    }
    FrozenModel {
        order,
        lookahead: lookahead.max(1),
        fanout: fanout.max(1),
        first: freeze(first_counts, fanout.max(1)),
        second: freeze(second_counts, fanout.max(1)),
        trained_transitions,
    }
}

/// Ranks each context's continuation counts (count-descending, then
/// delta-ascending for a total, corpus-order-independent order) and keeps
/// the top `fanout`.
fn freeze<K: Ord>(
    counts: BTreeMap<K, BTreeMap<i64, u64>>,
    fanout: usize,
) -> BTreeMap<K, Vec<RankedDelta>> {
    counts
        .into_iter()
        .map(|(context, continuations)| {
            let mut ranked: Vec<RankedDelta> = continuations
                .into_iter()
                .map(|(delta, count)| RankedDelta { delta, count })
                .collect();
            ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.delta.cmp(&b.delta)));
            ranked.truncate(fanout);
            (context, ranked)
        })
        .collect()
}

/// The replay-side prefetcher: a frozen model plus a per-process cursor.
///
/// Per fault it records the new delta, probes the model for the cursor's
/// context, and emits the top-ranked continuations of the first step
/// followed by a greedy most-likely chain up to the model's lookahead. Pure
/// table lookups — no randomness, no model mutation.
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    model: Arc<FrozenModel>,
    last: Option<PageAddr>,
    last_delta: Option<i64>,
    prev_delta: Option<i64>,
}

impl MarkovPrefetcher {
    /// Wraps a frozen model for one process's fault stream. The model is
    /// shared — per-core replicas clone the [`Arc`], not the tables.
    pub fn new(model: Arc<FrozenModel>) -> Self {
        MarkovPrefetcher {
            model,
            last: None,
            last_delta: None,
            prev_delta: None,
        }
    }

    /// The model this prefetcher predicts with.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    fn predict(&self, addr: PageAddr) -> PrefetchDecision {
        let Some(last_delta) = self.last_delta else {
            return PrefetchDecision::none();
        };
        let mut decision = PrefetchDecision::none();
        // Returns whether the page was new — the greedy chain below stops
        // on the first revisit, which both bounds the loop (a learned delta
        // cycle like +d/-d would otherwise walk forever without growing the
        // decision) and keeps the chain from re-promising pages.
        let push = |decision: &mut PrefetchDecision, page: PageAddr| -> bool {
            if page != addr && !decision.contains(page) {
                decision.push(page);
                return true;
            }
            false
        };
        // First step: every ranked continuation of the current context.
        let ranked = self.model.probe(self.prev_delta, last_delta);
        for candidate in ranked {
            push(&mut decision, addr.offset(Delta(candidate.delta)));
        }
        let Some(best) = ranked.first() else {
            return decision;
        };
        // Then chase the most likely chain ahead of the fault.
        let mut page = addr.offset(Delta(best.delta));
        let mut prev = Some(last_delta);
        let mut ctx = best.delta;
        while decision.len() < self.model.lookahead {
            let Some(next) = self.model.probe(prev, ctx).first() else {
                break;
            };
            let stepped = page.offset(Delta(next.delta));
            if stepped == page || !push(&mut decision, stepped) {
                // A learned zero delta (or address-space saturation) makes
                // no forward progress, and a revisited page means the most
                // likely chain has entered a cycle; either way the chain
                // is done.
                break;
            }
            page = stepped;
            prev = Some(ctx);
            ctx = next.delta;
        }
        decision
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        if let Some(last) = self.last {
            self.prev_delta = self.last_delta;
            self.last_delta = Some(addr.delta_from(last).0);
        }
        self.last = Some(addr);
        self.predict(addr)
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        self.model.order().label()
    }

    fn reset(&mut self) {
        self.last = None;
        self.last_delta = None;
        self.prev_delta = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_sim_core::units::MIB;
    use leap_sim_core::Nanos;
    use leap_workloads::{sequential_trace, stride_trace, Access};

    fn fault(p: &mut MarkovPrefetcher, page: u64) -> PrefetchDecision {
        p.on_fault(PageAddr(page))
    }

    fn trace_of(name: &str, pages: &[u64]) -> AccessTrace {
        AccessTrace::new(
            name,
            pages
                .iter()
                .map(|&p| Access::read(p, Nanos::ZERO))
                .collect(),
        )
    }

    #[test]
    fn stride_profile_predicts_the_stride_chain() {
        let profile = stride_trace(MIB, 4, 1);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
        let mut p = MarkovPrefetcher::new(model.into());
        let _ = fault(&mut p, 1000);
        let d = fault(&mut p, 1004);
        assert_eq!(d.pages()[0], PageAddr(1008));
        // The greedy chain keeps striding up to the lookahead (one slot may
        // go to the profile's wrap-around delta, the second-ranked
        // continuation of the +4 context).
        assert_eq!(d.len(), DEFAULT_MARKOV_LOOKAHEAD);
        assert!(d.contains(PageAddr(1004 + 4 * (DEFAULT_MARKOV_LOOKAHEAD as u64 - 1))));
    }

    #[test]
    fn first_fault_predicts_nothing() {
        let profile = sequential_trace(MIB, 1);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
        let mut p = MarkovPrefetcher::new(model.into());
        assert!(fault(&mut p, 7).is_empty());
    }

    #[test]
    fn unknown_context_predicts_nothing() {
        let profile = stride_trace(MIB, 4, 1);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
        let mut p = MarkovPrefetcher::new(model.into());
        let _ = fault(&mut p, 0);
        // A -100 delta never appears in a +4 stride profile.
        assert!(fault(&mut p, 100).is_empty() || p.model().first_order(100).is_empty());
        let d = fault(&mut p, 3);
        // Delta -97 is equally unknown.
        assert!(d.is_empty());
    }

    #[test]
    fn second_order_disambiguates_alternating_strides() {
        // Page sequence 0, 1, 3, 4, 6, 7, 9 ... alternates deltas +1, +2.
        let pages: Vec<u64> = (0..600u64).map(|i| (i / 2) * 3 + i % 2).collect();
        let trace = trace_of("alt", &pages);
        let model = train(std::slice::from_ref(&trace), MarkovOrder::Second);
        let mut p = MarkovPrefetcher::new(model.into());
        let _ = fault(&mut p, 0);
        let _ = fault(&mut p, 1);
        // Cursor deltas (+1, +2) → next delta is +1, then +2, ...
        let d = fault(&mut p, 3);
        assert_eq!(d.pages()[0], PageAddr(4));
        assert!(d.contains(PageAddr(6)));
        assert_eq!(p.name(), "Markov-2");
    }

    #[test]
    fn second_order_backs_off_to_first_order() {
        let profile = stride_trace(MIB, 5, 1);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::Second);
        let mut p = MarkovPrefetcher::new(model.into());
        // Only one delta so far: the pair context does not exist yet, but
        // first-order knowledge of +5 still predicts.
        let _ = fault(&mut p, 50);
        let d = fault(&mut p, 55);
        assert_eq!(d.pages()[0], PageAddr(60));
    }

    #[test]
    fn cyclic_profile_terminates_with_a_bounded_decision() {
        // A ping-pong loop teaches the model a pure +8/-8 delta cycle. The
        // greedy chain must stop at the first revisited page instead of
        // walking the cycle forever (every delta cycle returns to already
        // promised pages, since its deltas sum to zero).
        let pages: Vec<u64> = (0..400u64).map(|i| (i % 2) * 8).collect();
        let trace = trace_of("pingpong", &pages);
        let model = train(std::slice::from_ref(&trace), MarkovOrder::First);
        let mut p = MarkovPrefetcher::new(model.into());
        let _ = fault(&mut p, 0);
        let d = fault(&mut p, 8);
        assert!(d.contains(PageAddr(0)));
        assert!(d.len() <= DEFAULT_MARKOV_LOOKAHEAD);
    }

    #[test]
    fn training_is_corpus_order_independent() {
        let a = stride_trace(MIB, 2, 1);
        let b = sequential_trace(MIB, 2);
        let c = stride_trace(MIB, 7, 3);
        let forward = train(&[a.clone(), b.clone(), c.clone()], MarkovOrder::Second);
        let backward = train(&[c, b, a], MarkovOrder::Second);
        assert_eq!(forward, backward);
    }

    #[test]
    fn freezing_ranks_by_count_then_delta() {
        // Deltas alternate +1, +2: context +1 continues with +2 three
        // times and never with +1, so +2 ranks first.
        let trace = trace_of("mix", &[0, 1, 3, 4, 6, 7, 9, 10]);
        let model = train(std::slice::from_ref(&trace), MarkovOrder::First);
        let ranked = model.first_order(1);
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].delta, 2, "most frequent continuation first");
        assert!(ranked.windows(2).all(|w| w[0].count >= w[1].count));

        // Equal counts break the tie toward the smaller delta, so ranking
        // never depends on corpus order.
        // Context +1 continues once with +2 and once with +3.
        let tied = trace_of("tie", &[0, 1, 3, 10, 11, 14]);
        let model = train(std::slice::from_ref(&tied), MarkovOrder::First);
        let ranked = model.first_order(1);
        assert_eq!(ranked[0].count, ranked[1].count);
        assert!(ranked[0].delta < ranked[1].delta);
    }

    #[test]
    fn reset_clears_the_cursor_not_the_model() {
        let profile = stride_trace(MIB, 4, 1);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
        let mut p = MarkovPrefetcher::new(model.into());
        let _ = fault(&mut p, 0);
        let _ = fault(&mut p, 4);
        p.reset();
        assert!(fault(&mut p, 0).is_empty(), "cursor state was cleared");
        assert!(p.model().trained_transitions() > 0, "model survives reset");
    }

    #[test]
    fn model_exposes_context_counts() {
        let pages: Vec<u64> = (0..100u64).map(|i| i * 3).collect();
        let profile = trace_of("pure-stride", &pages);
        let model = train(std::slice::from_ref(&profile), MarkovOrder::First);
        assert_eq!(model.first_order_contexts(), 1);
        assert_eq!(model.order(), MarkovOrder::First);
        assert_eq!(model.lookahead(), DEFAULT_MARKOV_LOOKAHEAD);
    }
}
