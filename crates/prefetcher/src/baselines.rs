//! Baseline prefetchers the paper compares Leap against (§5.2.3):
//! Next-N-Line, Stride, a Linux-style Read-Ahead, and a no-prefetch baseline.

use crate::types::{Delta, PageAddr, PrefetchDecision, Prefetcher, PrefetcherKind};

/// Default aggressiveness of the Next-N-Line baseline (pages per fault).
pub const DEFAULT_NEXT_N: usize = 8;
/// Default maximum window of the Stride and Read-Ahead baselines.
pub const DEFAULT_BASELINE_MAX_WINDOW: usize = 8;

/// A prefetcher that never prefetches anything.
///
/// Used to isolate raw data-path latency from prefetching effects.
#[derive(Debug, Clone, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_fault(&mut self, _addr: PageAddr) -> PrefetchDecision {
        PrefetchDecision::none()
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        PrefetcherKind::None.label()
    }

    fn reset(&mut self) {}
}

/// Next-N-Line prefetching: on every fault at page `P`, bring in the next `N`
/// sequentially following pages unconditionally.
///
/// This is the most aggressive baseline: it never throttles, so it has high
/// coverage on sequential workloads but pollutes the cache heavily on stride
/// or irregular ones (Figure 9a of the paper).
#[derive(Debug, Clone)]
pub struct NextNLinePrefetcher {
    n: usize,
    faults: u64,
}

impl NextNLinePrefetcher {
    /// Creates a Next-N-Line prefetcher fetching `n` pages per fault.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "NextNLinePrefetcher needs n > 0");
        NextNLinePrefetcher { n, faults: 0 }
    }

    /// Number of pages prefetched per fault.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Default for NextNLinePrefetcher {
    fn default() -> Self {
        NextNLinePrefetcher::new(DEFAULT_NEXT_N)
    }
}

impl Prefetcher for NextNLinePrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        self.faults += 1;
        PrefetchDecision::pages_from(
            (1..=self.n as u64).map(|i| PageAddr(addr.0.saturating_add(i))),
        )
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {}

    fn name(&self) -> &'static str {
        PrefetcherKind::NextNLine.label()
    }

    fn reset(&mut self) {
        self.faults = 0;
    }
}

/// Stride prefetching (Baer and Chen): derive the stride from the last two
/// faults and, if it is stable, prefetch along it. The aggressiveness
/// (number of pages) scales with how accurate recent prefetches were.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    max_window: usize,
    last_addr: Option<PageAddr>,
    last_stride: Option<Delta>,
    /// Confidence counter: incremented when the observed stride repeats,
    /// decremented otherwise (2-bit-saturating-counter flavour).
    confidence: u32,
    /// Hits since the last prefetch, used to scale the window.
    hits_since_last: usize,
    current_window: usize,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with the given maximum window.
    ///
    /// # Panics
    ///
    /// Panics if `max_window` is zero.
    pub fn new(max_window: usize) -> Self {
        assert!(max_window > 0, "StridePrefetcher needs max_window > 0");
        StridePrefetcher {
            max_window,
            last_addr: None,
            last_stride: None,
            confidence: 0,
            hits_since_last: 0,
            current_window: 1,
        }
    }

    /// The stride currently believed to be in effect, if any.
    pub fn current_stride(&self) -> Option<Delta> {
        self.last_stride
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        StridePrefetcher::new(DEFAULT_BASELINE_MAX_WINDOW)
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        let stride = self.last_addr.map(|prev| addr.delta_from(prev));
        let decision = match (stride, self.last_stride) {
            (Some(s), Some(prev)) if s == prev && s != Delta::ZERO => {
                // Stride confirmed: grow confidence and the window.
                self.confidence = (self.confidence + 1).min(3);
                let grow = if self.hits_since_last > 0 {
                    (self.hits_since_last + 1).next_power_of_two()
                } else {
                    self.current_window.max(1) * 2
                };
                self.current_window = grow.min(self.max_window).max(1);
                let mut pages = PrefetchDecision::none();
                let mut cur = addr;
                for _ in 0..self.current_window {
                    let next = cur.offset(s);
                    if next == cur {
                        break;
                    }
                    pages.push(next);
                    cur = next;
                }
                pages
            }
            (Some(s), _) if s != Delta::ZERO => {
                // New candidate stride: low confidence, prefetch a single page.
                self.confidence = self.confidence.saturating_sub(1);
                self.current_window = 1;
                if self.confidence > 0 {
                    PrefetchDecision::pages_from([addr.offset(s)])
                } else {
                    PrefetchDecision::none()
                }
            }
            _ => {
                self.confidence = self.confidence.saturating_sub(1);
                self.current_window = 1;
                PrefetchDecision::none()
            }
        };
        if let Some(s) = stride {
            self.last_stride = Some(s);
        }
        self.last_addr = Some(addr);
        self.hits_since_last = 0;
        decision
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {
        self.hits_since_last += 1;
    }

    fn name(&self) -> &'static str {
        PrefetcherKind::Stride.label()
    }

    fn reset(&mut self) {
        self.last_addr = None;
        self.last_stride = None;
        self.confidence = 0;
        self.hits_since_last = 0;
        self.current_window = 1;
    }
}

/// A Linux-style Read-Ahead prefetcher.
///
/// Mirrors the behaviour described in §2.3 of the paper: the decision is
/// driven by the last two faults and the prefetch hit count. Two consecutive
/// faults on consecutive pages start (and keep doubling) a readahead window
/// that is read *ahead* of the faulting page. A fault that lands just past
/// the previously read-ahead window while that window was being consumed
/// (hits since the last fault) is treated as a continuation — this models the
/// kernel's readahead marker, which is what lets Linux sustain ~80 % hits on
/// purely sequential streams. Any other fault is treated pessimistically: the
/// window shrinks if recent prefetches were used and collapses to zero
/// otherwise.
#[derive(Debug, Clone)]
pub struct ReadAheadPrefetcher {
    max_window: usize,
    last_addr: Option<PageAddr>,
    window: usize,
    hits_since_last: usize,
}

impl ReadAheadPrefetcher {
    /// Creates a read-ahead prefetcher with the given maximum window
    /// (Linux's default swap readahead window is 8 pages, `page-cluster` 3).
    ///
    /// # Panics
    ///
    /// Panics if `max_window` is zero.
    pub fn new(max_window: usize) -> Self {
        assert!(max_window > 0, "ReadAheadPrefetcher needs max_window > 0");
        ReadAheadPrefetcher {
            max_window,
            last_addr: None,
            window: 0,
            hits_since_last: 0,
        }
    }

    /// The current readahead window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Default for ReadAheadPrefetcher {
    fn default() -> Self {
        ReadAheadPrefetcher::new(DEFAULT_BASELINE_MAX_WINDOW)
    }
}

impl Prefetcher for ReadAheadPrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        let delta = self.last_addr.map(|prev| addr.delta_from(prev));
        self.last_addr = Some(addr);

        // A strict +1/-1 step, or a fault that lands just past the window we
        // read ahead while that window was being consumed (the readahead
        // marker case), counts as a sequential continuation.
        let continuation = match delta {
            Some(d) if d.is_sequential() => true,
            Some(Delta(d)) => self.hits_since_last > 0 && d > 0 && (d as usize) <= self.window + 1,
            None => false,
        };

        if continuation {
            // Optimistic: double the window (start at 2) up to the maximum.
            self.window = if self.window == 0 {
                2
            } else {
                (self.window * 2).min(self.max_window)
            };
        } else if self.hits_since_last > 0 {
            // Recent prefetches were useful: keep a reduced window open.
            self.window = (self.window / 2).max(1);
        } else {
            // Pessimistic: assume no pattern and stop prefetching.
            self.window = 0;
        }
        self.hits_since_last = 0;

        if self.window == 0 {
            return PrefetchDecision::none();
        }

        // Read the window ahead of the faulting page.
        PrefetchDecision::pages_from(
            (1..=self.window as u64)
                .map(|i| PageAddr(addr.0.saturating_add(i)))
                .filter(|&p| p != addr),
        )
    }

    fn on_prefetch_hit(&mut self, _addr: PageAddr) {
        self.hits_since_last += 1;
    }

    fn name(&self) -> &'static str {
        PrefetcherKind::ReadAhead.label()
    }

    fn reset(&mut self) {
        self.last_addr = None;
        self.window = 0;
        self.hits_since_last = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_prefetcher_never_prefetches() {
        let mut p = NoPrefetcher;
        for i in 0..100u64 {
            assert!(p.on_fault(PageAddr(i)).is_empty());
        }
        assert_eq!(p.name(), PrefetcherKind::None.label());
    }

    #[test]
    fn next_n_line_always_prefetches_n() {
        let mut p = NextNLinePrefetcher::new(4);
        let d = p.on_fault(PageAddr(100));
        assert_eq!(
            d.pages(),
            &[PageAddr(101), PageAddr(102), PageAddr(103), PageAddr(104)]
        );
        // Even on a wildly irregular fault it still prefetches (that is the
        // pathology the paper calls cache pollution).
        let d = p.on_fault(PageAddr(1_000_000));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn next_n_line_default_is_eight() {
        let mut p = NextNLinePrefetcher::default();
        assert_eq!(p.on_fault(PageAddr(0)).len(), 8);
    }

    #[test]
    fn stride_prefetcher_locks_onto_stride() {
        let mut p = StridePrefetcher::default();
        let mut last = PrefetchDecision::none();
        for i in 0..10u64 {
            last = p.on_fault(PageAddr(1000 + 7 * i));
        }
        assert!(!last.is_empty());
        assert_eq!(last.pages()[0], PageAddr(1000 + 7 * 9 + 7));
        assert_eq!(p.current_stride(), Some(Delta(7)));
    }

    #[test]
    fn stride_prefetcher_goes_quiet_on_random() {
        let mut p = StridePrefetcher::default();
        let addrs = [5u64, 9_000, 3, 77_000, 42, 123_456, 7, 88_888];
        let mut total = 0;
        for &a in &addrs {
            total += p.on_fault(PageAddr(a)).len();
        }
        assert_eq!(
            total, 0,
            "stride prefetcher must stay quiet on random accesses"
        );
    }

    #[test]
    fn stride_prefetcher_handles_negative_stride() {
        let mut p = StridePrefetcher::default();
        let mut last = PrefetchDecision::none();
        for i in 0..10u64 {
            last = p.on_fault(PageAddr(100_000 - 5 * i));
        }
        assert!(!last.is_empty());
        assert_eq!(last.pages()[0], PageAddr(100_000 - 5 * 9 - 5));
    }

    #[test]
    fn read_ahead_grows_on_sequential() {
        let mut p = ReadAheadPrefetcher::new(8);
        let mut sizes = Vec::new();
        for i in 0..8u64 {
            let d = p.on_fault(PageAddr(i));
            sizes.push(d.len());
        }
        // First fault: no pattern yet. Then the window doubles 2, 4, 8, 8...
        assert_eq!(p.window(), 8);
        assert!(sizes[sizes.len() - 1] >= 7, "sizes = {sizes:?}");
    }

    #[test]
    fn read_ahead_stops_on_stride() {
        // Stride-10 defeats Linux-style readahead: the last two faults are
        // never consecutive, so the window collapses (the Figure 2 story).
        let mut p = ReadAheadPrefetcher::new(8);
        let mut total = 0;
        for i in 0..100u64 {
            total += p.on_fault(PageAddr(10 * i)).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn read_ahead_hits_keep_window_open() {
        let mut p = ReadAheadPrefetcher::new(8);
        // Build up the window with sequential faults.
        for i in 0..4u64 {
            let _ = p.on_fault(PageAddr(i));
        }
        assert!(p.window() >= 4);
        // A non-sequential fault with recent hits halves the window instead
        // of zeroing it.
        p.on_prefetch_hit(PageAddr(4));
        let d = p.on_fault(PageAddr(1_000));
        assert!(p.window() >= 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn read_ahead_reads_ahead_of_the_fault() {
        let mut p = ReadAheadPrefetcher::new(8);
        let _ = p.on_fault(PageAddr(16));
        let d = p.on_fault(PageAddr(17));
        // Window is 2; the two pages after the faulting page are read ahead.
        assert_eq!(d.pages(), &[PageAddr(18), PageAddr(19)]);
    }

    #[test]
    fn read_ahead_marker_sustains_sequential_streams() {
        // Replay a purely sequential access stream with a cache model: the
        // steady-state hit ratio must be around 80 % or better (the paper's
        // §2.2 observation for prefetch size 8).
        use std::collections::HashSet;
        let mut p = ReadAheadPrefetcher::new(8);
        let mut cache: HashSet<PageAddr> = HashSet::new();
        let mut hits = 0usize;
        let total = 2_000u64;
        for page in 0..total {
            let addr = PageAddr(page);
            if cache.remove(&addr) {
                hits += 1;
                p.on_prefetch_hit(addr);
                continue;
            }
            for c in p.on_fault(addr).iter() {
                cache.insert(*c);
            }
        }
        let ratio = hits as f64 / total as f64;
        assert!(ratio > 0.75, "sequential readahead hit ratio {ratio}");
    }

    #[test]
    fn resets_clear_state() {
        let mut stride = StridePrefetcher::default();
        let mut ra = ReadAheadPrefetcher::default();
        for i in 0..10u64 {
            let _ = stride.on_fault(PageAddr(2 * i));
            let _ = ra.on_fault(PageAddr(i));
        }
        stride.reset();
        ra.reset();
        assert_eq!(stride.current_stride(), None);
        assert_eq!(ra.window(), 0);
    }

    #[test]
    fn names_are_correct() {
        assert_eq!(
            NextNLinePrefetcher::default().name(),
            PrefetcherKind::NextNLine.label()
        );
        assert_eq!(
            StridePrefetcher::default().name(),
            PrefetcherKind::Stride.label()
        );
        assert_eq!(
            ReadAheadPrefetcher::default().name(),
            PrefetcherKind::ReadAhead.label()
        );
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn next_n_line_rejects_zero() {
        let _ = NextNLinePrefetcher::new(0);
    }

    proptest! {
        #[test]
        fn prop_next_n_line_count_is_constant(
            n in 1usize..32,
            addrs in proptest::collection::vec(0u64..1_000_000, 1..100),
        ) {
            let mut p = NextNLinePrefetcher::new(n);
            for &a in &addrs {
                prop_assert_eq!(p.on_fault(PageAddr(a)).len(), n);
            }
        }

        #[test]
        fn prop_stride_never_exceeds_max_window(
            max in 1usize..32,
            addrs in proptest::collection::vec(0u64..1_000_000, 1..200),
        ) {
            let mut p = StridePrefetcher::new(max);
            for &a in &addrs {
                prop_assert!(p.on_fault(PageAddr(a)).len() <= max);
            }
        }

        #[test]
        fn prop_read_ahead_never_exceeds_max_window(
            max in 1usize..32,
            addrs in proptest::collection::vec(0u64..1_000_000, 1..200),
        ) {
            let mut p = ReadAheadPrefetcher::new(max);
            for &a in &addrs {
                prop_assert!(p.on_fault(PageAddr(a)).len() <= max);
            }
        }

        #[test]
        fn prop_baselines_never_prefetch_demanded_page(
            addrs in proptest::collection::vec(1u64..1_000_000, 1..150),
        ) {
            let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
                Box::new(NextNLinePrefetcher::default()),
                Box::new(StridePrefetcher::default()),
                Box::new(ReadAheadPrefetcher::default()),
            ];
            for &a in &addrs {
                for p in prefetchers.iter_mut() {
                    let d = p.on_fault(PageAddr(a));
                    prop_assert!(!d.contains(PageAddr(a)));
                }
            }
        }
    }
}
