//! Shared types for the prefetcher crate: page addresses, deltas, the
//! [`Prefetcher`] trait, and prefetch decisions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A page address in the slower-memory (swap / remote) offset space.
///
/// Leap records accesses at page granularity: for paging front-ends this is
/// the swap-slot offset, for VFS front-ends it is the file page index. The
/// prefetcher never needs to know which.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageAddr(pub u64);

impl PageAddr {
    /// Applies a signed delta, saturating at the edges of the address space.
    ///
    /// # Examples
    ///
    /// ```
    /// use leap_prefetcher::{Delta, PageAddr};
    /// assert_eq!(PageAddr(10).offset(Delta(-3)), PageAddr(7));
    /// assert_eq!(PageAddr(1).offset(Delta(-5)), PageAddr(0));
    /// ```
    pub fn offset(self, delta: Delta) -> PageAddr {
        if delta.0 >= 0 {
            PageAddr(self.0.saturating_add(delta.0 as u64))
        } else {
            PageAddr(self.0.saturating_sub(delta.0.unsigned_abs()))
        }
    }

    /// Returns the signed difference `self - earlier` as a [`Delta`].
    ///
    /// Differences that do not fit in an `i64` are clamped; such jumps are far
    /// larger than any physically meaningful stride and are treated as
    /// irregular accesses anyway.
    pub fn delta_from(self, earlier: PageAddr) -> Delta {
        if self.0 >= earlier.0 {
            Delta((self.0 - earlier.0).min(i64::MAX as u64) as i64)
        } else {
            Delta(-((earlier.0 - self.0).min(i64::MAX as u64) as i64))
        }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// The signed difference between two consecutive faulting page addresses.
///
/// `AccessHistory` stores deltas rather than absolute addresses (§4.1): this
/// keeps the history compact and makes majority voting directly meaningful.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Delta(pub i64);

impl Delta {
    /// The zero delta (repeated access to the same page).
    pub const ZERO: Delta = Delta(0);

    /// Returns true if this delta represents a forward or backward unit step.
    pub fn is_sequential(self) -> bool {
        self.0 == 1 || self.0 == -1
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 0 {
            write!(f, "+{}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Which prefetching algorithm a component is using.
///
/// Used by the experiment harness to parameterise runs and label results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching at all; only the demanded page is read.
    None,
    /// Next-N-Line: always prefetch the next `N` sequential pages.
    NextNLine,
    /// Stride: prefetch along the stride between the last two faults.
    Stride,
    /// Linux-style Read-Ahead: aligned blocks, window doubling on sequential hits.
    ReadAhead,
    /// Leap's majority-trend prefetcher.
    Leap,
}

impl PrefetcherKind {
    /// All kinds evaluated by the paper (Figure 9/10), in presentation order.
    pub const EVALUATED: [PrefetcherKind; 4] = [
        PrefetcherKind::NextNLine,
        PrefetcherKind::Stride,
        PrefetcherKind::ReadAhead,
        PrefetcherKind::Leap,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "No-Prefetch",
            PrefetcherKind::NextNLine => "Next-N-Line",
            PrefetcherKind::Stride => "Stride",
            PrefetcherKind::ReadAhead => "Read-Ahead",
            PrefetcherKind::Leap => "Leap",
        }
    }

    /// The inverse of [`PrefetcherKind::label`], used when parsing serialized
    /// configurations.
    pub fn from_label(label: &str) -> Option<Self> {
        [
            PrefetcherKind::None,
            PrefetcherKind::NextNLine,
            PrefetcherKind::Stride,
            PrefetcherKind::ReadAhead,
            PrefetcherKind::Leap,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

impl fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of candidate pages a [`PrefetchDecision`] stores inline, without
/// touching the heap.
///
/// Prefetch windows are bounded by `PWsize_max` (the paper's default is 8),
/// so any realistic decision fits inline; the fault hot path therefore
/// performs **zero heap allocations** per decision. Larger windows spill to a
/// heap buffer transparently.
pub const INLINE_DECISION_PAGES: usize = 16;

/// The outcome of a prefetch decision for one page fault.
///
/// The candidate list lives in a small inline buffer
/// ([`INLINE_DECISION_PAGES`] entries) and only spills to the heap for
/// windows larger than that, keeping the per-fault hot path allocation-free
/// for every realistic window size. Access the candidates through
/// [`PrefetchDecision::pages`] / [`PrefetchDecision::iter`].
#[derive(Debug, Clone)]
pub struct PrefetchDecision {
    /// Inline storage for the common case (window ≤ inline capacity).
    inline: [PageAddr; INLINE_DECISION_PAGES],
    /// Number of valid candidates (inline or spilled).
    len: usize,
    /// Overflow storage; holds *all* candidates once the inline capacity is
    /// exceeded, so `pages()` always returns one contiguous slice.
    spill: Vec<PageAddr>,
    /// True if the decision was made speculatively (no current majority trend;
    /// the previous trend was reused — Algorithm 2, line 25).
    pub speculative: bool,
}

impl Default for PrefetchDecision {
    fn default() -> Self {
        PrefetchDecision {
            inline: [PageAddr(0); INLINE_DECISION_PAGES],
            len: 0,
            spill: Vec::new(),
            speculative: false,
        }
    }
}

impl PartialEq for PrefetchDecision {
    fn eq(&self, other: &Self) -> bool {
        self.speculative == other.speculative && self.pages() == other.pages()
    }
}

impl Eq for PrefetchDecision {}

impl PrefetchDecision {
    /// A decision that prefetches nothing.
    pub fn none() -> Self {
        PrefetchDecision::default()
    }

    /// Builds a non-speculative decision from candidate pages.
    pub fn pages_from(prefetch: impl IntoIterator<Item = PageAddr>) -> Self {
        let mut decision = PrefetchDecision::default();
        for page in prefetch {
            decision.push(page);
        }
        decision
    }

    /// Appends one candidate page. Stays on the inline buffer up to
    /// [`INLINE_DECISION_PAGES`] candidates; spills to the heap beyond that.
    pub fn push(&mut self, page: PageAddr) {
        if self.len < INLINE_DECISION_PAGES && self.spill.is_empty() {
            self.inline[self.len] = page;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(page);
        }
        self.len += 1;
    }

    /// The candidate pages, in issue order. The demanded page itself is
    /// *not* included.
    pub fn pages(&self) -> &[PageAddr] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Iterates over the candidate pages in issue order.
    pub fn iter(&self) -> std::slice::Iter<'_, PageAddr> {
        self.pages().iter()
    }

    /// True if `page` is among the candidates.
    pub fn contains(&self, page: PageAddr) -> bool {
        self.pages().contains(&page)
    }

    /// True if the candidates spilled past the inline buffer to the heap.
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Number of candidate pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pages will be prefetched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a PrefetchDecision {
    type Item = &'a PageAddr;
    type IntoIter = std::slice::Iter<'a, PageAddr>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A per-process prefetching algorithm.
///
/// The driving loop (the fault engine in the `leap` crate, or a bare trace
/// replayer) calls [`Prefetcher::on_fault`] for every access that misses local
/// memory and [`Prefetcher::on_prefetch_hit`] whenever an access is served
/// from the prefetch cache, which is the feedback signal used to grow or
/// shrink the prefetch window.
///
/// The trait is deliberately open: third-party algorithms (an oracle, a
/// 3PO-style programmed policy, a learned model) implement it outside this
/// crate and plug into the simulators through `leap`'s component registry.
/// [`Prefetcher::name`] is free-form for exactly that reason — built-in
/// algorithms report their [`PrefetcherKind`] label.
pub trait Prefetcher: Send + fmt::Debug {
    /// Records a faulting access to `addr` and returns the pages to prefetch.
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision;

    /// Records that a previously prefetched page was hit in the cache.
    fn on_prefetch_hit(&mut self, addr: PageAddr);

    /// The algorithm's name, used in report rows and config labels.
    fn name(&self) -> &'static str;

    /// Resets all internal state (history, windows, counters).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_addr_offset_saturates() {
        assert_eq!(PageAddr(5).offset(Delta(10)), PageAddr(15));
        assert_eq!(PageAddr(5).offset(Delta(-10)), PageAddr(0));
        assert_eq!(PageAddr(u64::MAX).offset(Delta(5)), PageAddr(u64::MAX));
    }

    #[test]
    fn delta_from_is_signed() {
        assert_eq!(PageAddr(10).delta_from(PageAddr(7)), Delta(3));
        assert_eq!(PageAddr(7).delta_from(PageAddr(10)), Delta(-3));
        assert_eq!(PageAddr(7).delta_from(PageAddr(7)), Delta(0));
    }

    #[test]
    fn delta_display_signs() {
        assert_eq!(format!("{}", Delta(3)), "+3");
        assert_eq!(format!("{}", Delta(-3)), "-3");
        assert_eq!(format!("{}", Delta(0)), "+0");
    }

    #[test]
    fn sequential_deltas() {
        assert!(Delta(1).is_sequential());
        assert!(Delta(-1).is_sequential());
        assert!(!Delta(2).is_sequential());
        assert!(!Delta(0).is_sequential());
    }

    #[test]
    fn decision_helpers() {
        assert!(PrefetchDecision::none().is_empty());
        let d = PrefetchDecision::pages_from([PageAddr(1), PageAddr(2)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.pages(), &[PageAddr(1), PageAddr(2)]);
        assert!(d.contains(PageAddr(2)));
        assert!(!d.speculative);
    }

    #[test]
    fn decision_stays_inline_up_to_capacity() {
        let mut d = PrefetchDecision::none();
        for i in 0..INLINE_DECISION_PAGES as u64 {
            d.push(PageAddr(i));
        }
        assert_eq!(d.len(), INLINE_DECISION_PAGES);
        assert!(!d.spilled(), "window ≤ inline capacity must not allocate");
        let expected: Vec<PageAddr> = (0..INLINE_DECISION_PAGES as u64).map(PageAddr).collect();
        assert_eq!(d.pages(), expected.as_slice());
    }

    #[test]
    fn decision_spills_transparently_beyond_capacity() {
        let n = INLINE_DECISION_PAGES as u64 + 5;
        let d = PrefetchDecision::pages_from((0..n).map(PageAddr));
        assert_eq!(d.len(), n as usize);
        assert!(d.spilled());
        let expected: Vec<PageAddr> = (0..n).map(PageAddr).collect();
        assert_eq!(d.pages(), expected.as_slice());
        // Equality is by contents, not by storage representation.
        let other = PrefetchDecision::pages_from((0..n).map(PageAddr));
        assert_eq!(d, other);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(PrefetcherKind::Leap.label(), "Leap");
        assert_eq!(PrefetcherKind::ReadAhead.label(), "Read-Ahead");
        assert_eq!(PrefetcherKind::EVALUATED.len(), 4);
    }
}
