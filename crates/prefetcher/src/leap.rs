//! The Leap majority-trend prefetcher (`DoPrefetch`, Algorithm 2).
//!
//! On every fault the prefetcher:
//!
//! 1. Records the fault in the process's [`AccessHistory`].
//! 2. Queries the majority trend over the history (Algorithm 1) — answered
//!    from the [`IncrementalTrendDetector`]'s cached per-tier state, which
//!    is bit-identical to the [`crate::find_trend`] reference.
//! 3. Computes the prefetch window size from prefetch-hit feedback and from
//!    whether the faulting page follows the currently known trend
//!    ([`PrefetchWindow`]).
//! 4. If the window is non-zero, it prefetches `PWsize` pages along the
//!    majority trend; without a current majority it *speculatively*
//!    prefetches around the faulting page using the most recent known trend
//!    so that short-term irregularities do not suspend prefetching outright.

use crate::history::{AccessHistory, DEFAULT_HISTORY_SIZE};
use crate::incremental::IncrementalTrendDetector;
use crate::trend::{TrendOutcome, DEFAULT_N_SPLIT};
use crate::types::{Delta, PageAddr, PrefetchDecision, Prefetcher, PrefetcherKind};
use crate::window::{PrefetchWindow, DEFAULT_MAX_WINDOW};
use serde::{Deserialize, Serialize};

/// Configuration for a [`LeapPrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeapConfig {
    /// `Hsize`: number of deltas kept in the access history (paper default 32).
    pub history_size: usize,
    /// `Nsplit`: the initial trend-detection window is `Hsize / Nsplit`.
    pub n_split: usize,
    /// `PWsize_max`: maximum number of pages prefetched per fault (paper
    /// default 8).
    pub max_prefetch_window: usize,
}

impl Default for LeapConfig {
    fn default() -> Self {
        LeapConfig {
            history_size: DEFAULT_HISTORY_SIZE,
            n_split: DEFAULT_N_SPLIT,
            max_prefetch_window: DEFAULT_MAX_WINDOW,
        }
    }
}

/// The Leap prefetcher: Boyer–Moore majority trend detection plus an adaptive
/// prefetch window (Algorithms 1 and 2 of the paper).
///
/// # Examples
///
/// ```
/// use leap_prefetcher::{LeapConfig, LeapPrefetcher, PageAddr, Prefetcher};
///
/// let mut p = LeapPrefetcher::new(LeapConfig::default());
/// // Sequential faults build a +1 trend; after a few faults the prefetcher
/// // proposes the next page(s).
/// let mut decision = Default::default();
/// for i in 0..8u64 {
///     decision = p.on_fault(PageAddr(i));
/// }
/// assert!(decision.contains(PageAddr(8)));
/// ```
#[derive(Debug, Clone)]
pub struct LeapPrefetcher {
    config: LeapConfig,
    /// Owns the access history and answers Algorithm 1 from cached per-tier
    /// majority state (`O(1)` amortized per fault; bit-identical to
    /// [`crate::find_trend`], which remains the reference implementation).
    detector: IncrementalTrendDetector,
    window: PrefetchWindow,
    /// The most recent majority delta ever observed (`latest ∆maj`), used for
    /// speculative prefetching when the current window has no majority and
    /// for the "does Pt follow the current trend" test.
    last_known_trend: Option<Delta>,
    /// Statistics: number of faults processed.
    faults: u64,
    /// Statistics: number of speculative (no current trend) prefetch decisions.
    speculative_decisions: u64,
    /// Statistics: number of decisions where prefetching was suspended.
    suspended_decisions: u64,
}

impl LeapPrefetcher {
    /// Creates a prefetcher with the given configuration.
    pub fn new(config: LeapConfig) -> Self {
        LeapPrefetcher {
            config,
            detector: IncrementalTrendDetector::new(config.history_size, config.n_split),
            window: PrefetchWindow::new(config.max_prefetch_window),
            last_known_trend: None,
            faults: 0,
            speculative_decisions: 0,
            suspended_decisions: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LeapConfig {
        &self.config
    }

    /// The most recent majority trend observed, if any.
    pub fn last_known_trend(&self) -> Option<Delta> {
        self.last_known_trend
    }

    /// Total faults processed since creation or the last reset.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Number of speculative decisions (no current majority; previous trend
    /// reused).
    pub fn speculative_count(&self) -> u64 {
        self.speculative_decisions
    }

    /// Number of faults where prefetching was suspended entirely.
    pub fn suspended_count(&self) -> u64 {
        self.suspended_decisions
    }

    /// Read-only view of the access history (used by tests and reports).
    pub fn history(&self) -> &AccessHistory {
        self.detector.history()
    }

    /// Generates candidate pages following `delta` starting *after* `from`.
    ///
    /// The candidates land in the decision's inline buffer, so windows up to
    /// [`crate::INLINE_DECISION_PAGES`] pages never touch the heap.
    fn candidates_along(from: PageAddr, delta: Delta, count: usize) -> PrefetchDecision {
        // A zero delta would endlessly re-prefetch the same page; treat it as
        // a +1 sequential run, which is what the kernel's swap readahead does
        // for repeated accesses to neighbouring slots.
        let step = if delta == Delta::ZERO {
            Delta(1)
        } else {
            delta
        };
        let mut out = PrefetchDecision::none();
        let mut cur = from;
        for _ in 0..count {
            let next = cur.offset(step);
            if next == cur {
                // Saturated at the address-space edge; stop early.
                break;
            }
            out.push(next);
            cur = next;
        }
        out
    }

    /// Generates candidates *around* `from` using the latest known trend
    /// (speculative prefetch, Algorithm 2 line 25): alternating pages ahead
    /// of and behind the faulting page along the previous trend direction.
    fn candidates_around(from: PageAddr, delta: Delta, count: usize) -> PrefetchDecision {
        let step = if delta == Delta::ZERO {
            Delta(1)
        } else {
            delta
        };
        let mut out = PrefetchDecision::none();
        let mut ahead = from;
        let mut behind = from;
        while out.len() < count {
            let next_ahead = ahead.offset(step);
            let ahead_moved = next_ahead != ahead;
            if ahead_moved {
                out.push(next_ahead);
                ahead = next_ahead;
            }
            if out.len() >= count {
                break;
            }
            let next_behind = behind.offset(Delta(-step.0));
            let behind_moved = next_behind != behind;
            if behind_moved {
                out.push(next_behind);
                behind = next_behind;
            }
            if !ahead_moved && !behind_moved {
                // Both directions saturated; nothing more to generate.
                break;
            }
        }
        out
    }
}

impl Default for LeapPrefetcher {
    fn default() -> Self {
        LeapPrefetcher::new(LeapConfig::default())
    }
}

impl Prefetcher for LeapPrefetcher {
    fn on_fault(&mut self, addr: PageAddr) -> PrefetchDecision {
        self.faults += 1;
        let delta = self.detector.record(addr);

        // Algorithm 1: the majority trend over the recent history, answered
        // from the detector's cached tiers instead of an O(Hsize) rescan.
        let trend = self.detector.trend();

        // "Pt follows the current trend" (Algorithm 2 line 6): the delta that
        // brought us to Pt matches the majority delta currently in effect —
        // the freshly detected one if it exists, otherwise the last known one.
        let effective_trend = trend.delta().or(self.last_known_trend);
        let follows_trend = effective_trend == Some(delta);

        let pw_size = self.window.update(follows_trend);
        if pw_size == 0 {
            self.suspended_decisions += 1;
            if let TrendOutcome::Trend { delta: d, .. } = trend {
                self.last_known_trend = Some(d);
            }
            return PrefetchDecision::none();
        }

        match trend {
            TrendOutcome::Trend {
                delta: major_delta, ..
            } => {
                self.last_known_trend = Some(major_delta);
                Self::candidates_along(addr, major_delta, pw_size)
            }
            TrendOutcome::NoTrend => {
                // Speculative prefetch around Pt with the latest known trend.
                self.speculative_decisions += 1;
                let latest = self.last_known_trend.unwrap_or(Delta(1));
                let mut decision = Self::candidates_around(addr, latest, pw_size);
                decision.speculative = true;
                decision
            }
        }
    }

    fn on_prefetch_hit(&mut self, addr: PageAddr) {
        // A hit in the prefetch cache is still a page fault in the kernel
        // (the PTE is not present; `do_swap_page()` finds the page in the
        // swap cache), so it is logged in the access history exactly like a
        // miss. It additionally counts towards `Chit` for window sizing.
        self.detector.record(addr);
        self.window.record_hit();
    }

    fn name(&self) -> &'static str {
        PrefetcherKind::Leap.label()
    }

    fn reset(&mut self) {
        self.detector.clear();
        self.window.reset();
        self.last_known_trend = None;
        self.faults = 0;
        self.speculative_decisions = 0;
        self.suspended_decisions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drives the prefetcher over a trace, feeding back hits for any page
    /// that a later fault demanded while it sat in the simulated cache.
    /// Returns (total prefetched, prefetched pages that were later faulted).
    fn replay(prefetcher: &mut LeapPrefetcher, trace: &[u64]) -> (usize, usize) {
        use std::collections::HashSet;
        let mut cache: HashSet<PageAddr> = HashSet::new();
        let mut prefetched_total = 0usize;
        let mut useful = 0usize;
        for &addr in trace {
            let addr = PageAddr(addr);
            if cache.remove(&addr) {
                useful += 1;
                prefetcher.on_prefetch_hit(addr);
                continue;
            }
            let decision = prefetcher.on_fault(addr);
            prefetched_total += decision.len();
            for p in decision.iter() {
                cache.insert(*p);
            }
        }
        (prefetched_total, useful)
    }

    #[test]
    fn sequential_trace_reaches_high_coverage() {
        let trace: Vec<u64> = (0..2_000).collect();
        let mut p = LeapPrefetcher::default();
        let (prefetched, useful) = replay(&mut p, &trace);
        assert!(prefetched > 0);
        // The vast majority of sequential accesses must be served by
        // prefetches once the trend is locked in. The steady state with
        // PWsize_max = 8 is one miss per 9 accesses (~89 % coverage).
        assert!(
            useful as f64 > 0.85 * trace.len() as f64,
            "useful={useful} out of {}",
            trace.len()
        );
    }

    #[test]
    fn stride_trace_detected_like_sequential() {
        let trace: Vec<u64> = (0..2_000).map(|i| 10 * i).collect();
        let mut p = LeapPrefetcher::default();
        let (_, useful) = replay(&mut p, &trace);
        assert!(
            useful as f64 > 0.85 * trace.len() as f64,
            "useful={useful} out of {}",
            trace.len()
        );
        assert_eq!(p.last_known_trend(), Some(Delta(10)));
    }

    #[test]
    fn random_trace_throttles_prefetching() {
        // A pseudo-random walk with no repeating delta: the window must decay
        // and most decisions must be suspensions rather than cache pollution.
        let mut x: u64 = 1_000_000;
        let trace: Vec<u64> = (0..2_000u64)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                1_000_000 + (x >> 33) % 1_000_000 + i
            })
            .collect();
        let mut p = LeapPrefetcher::default();
        let (prefetched, _) = replay(&mut p, &trace);
        // Pollution must stay well below one page per fault.
        assert!(
            (prefetched as f64) < 0.5 * trace.len() as f64,
            "prefetched {prefetched} pages on a random trace of {}",
            trace.len()
        );
        assert!(p.suspended_count() > (trace.len() as u64) / 2);
    }

    #[test]
    fn trend_shift_is_adopted() {
        let mut p = LeapPrefetcher::default();
        // Descending by 3 for a while, then ascending by 2 (Figure 5's story).
        let mut trace: Vec<u64> = (0..40).map(|i| 10_000 - 3 * i).collect();
        trace.extend((0..40).map(|i| 20_000 + 2 * i));
        for &a in &trace {
            let _ = p.on_fault(PageAddr(a));
        }
        assert_eq!(p.last_known_trend(), Some(Delta(2)));
    }

    #[test]
    fn speculative_prefetch_reuses_previous_trend() {
        // Small history so a burst of irregular accesses really erases the
        // current majority, exercising the speculative path.
        let config = LeapConfig {
            history_size: 8,
            n_split: 2,
            max_prefetch_window: 8,
        };
        let mut p = LeapPrefetcher::new(config);
        // Establish a +4 trend.
        for i in 0..16u64 {
            let _ = p.on_fault(PageAddr(100 + 4 * i));
        }
        assert_eq!(p.last_known_trend(), Some(Delta(4)));
        // A burst of irregular faults (all distinct deltas), interleaved with
        // hits on pages that continue the old +4 stride (as if they had been
        // prefetched). The hits keep the window open; once enough irregular
        // deltas fill the 8-entry history there is no current majority and
        // decisions become speculative, reusing the remembered +4 trend.
        let irregular = [1_000_003u64, 55, 777_777, 123_456, 42, 999_999, 31_337];
        let mut saw_speculative = false;
        for (k, &a) in irregular.iter().enumerate() {
            p.on_prefetch_hit(PageAddr(164 + 4 * k as u64));
            let d = p.on_fault(PageAddr(a));
            if d.speculative && !d.is_empty() {
                saw_speculative = true;
            }
        }
        assert!(
            saw_speculative,
            "expected at least one speculative decision"
        );
        assert!(p.speculative_count() >= 1);
    }

    #[test]
    fn suspension_happens_without_hits_or_trend() {
        let mut p = LeapPrefetcher::default();
        // Irregular faults, never any prefetch hit: after the initial window
        // decays, decisions must be empty.
        let mut empties = 0;
        for i in 0..64u64 {
            let addr = (i * 7919 + i * i * 104729) % 1_000_000;
            let d = p.on_fault(PageAddr(addr));
            if d.is_empty() {
                empties += 1;
            }
        }
        assert!(empties > 48, "only {empties} of 64 decisions were empty");
    }

    #[test]
    fn candidates_along_skips_zero_delta() {
        let c = LeapPrefetcher::candidates_along(PageAddr(10), Delta(0), 3);
        assert_eq!(c.pages(), &[PageAddr(11), PageAddr(12), PageAddr(13)]);
    }

    #[test]
    fn candidates_around_alternates_directions() {
        let c = LeapPrefetcher::candidates_around(PageAddr(100), Delta(2), 4);
        assert_eq!(
            c.pages(),
            &[PageAddr(102), PageAddr(98), PageAddr(104), PageAddr(96)]
        );
    }

    #[test]
    fn candidates_saturate_at_address_space_edge() {
        let c = LeapPrefetcher::candidates_along(PageAddr(2), Delta(-3), 4);
        // 2 → saturates to 0, then stops because it cannot move further.
        assert_eq!(c.pages(), &[PageAddr(0)]);
        let c = LeapPrefetcher::candidates_around(PageAddr(0), Delta(-1), 4);
        // "Ahead" (delta -1) saturates instantly; only the +1 direction yields pages.
        assert!(!c.is_empty());
        assert!(c.iter().all(|p| p.0 <= 4));
    }

    #[test]
    fn reset_clears_state() {
        let mut p = LeapPrefetcher::default();
        for i in 0..20u64 {
            let _ = p.on_fault(PageAddr(i));
        }
        p.reset();
        assert_eq!(p.fault_count(), 0);
        assert_eq!(p.last_known_trend(), None);
        assert!(p.history().is_empty());
    }

    #[test]
    fn name_is_leap() {
        assert_eq!(
            LeapPrefetcher::default().name(),
            PrefetcherKind::Leap.label()
        );
    }

    proptest! {
        /// The prefetch decision never exceeds the configured maximum window.
        #[test]
        fn prop_decision_respects_max_window(
            max_window in 1usize..16,
            trace in proptest::collection::vec(0u64..100_000, 1..300),
        ) {
            let config = LeapConfig { max_prefetch_window: max_window, ..LeapConfig::default() };
            let mut p = LeapPrefetcher::new(config);
            for &a in &trace {
                let d = p.on_fault(PageAddr(a));
                prop_assert!(d.len() <= max_window);
            }
        }

        /// The prefetcher never proposes the faulting page itself.
        #[test]
        fn prop_never_prefetches_the_demanded_page(
            trace in proptest::collection::vec(1u64..100_000, 1..300),
        ) {
            let mut p = LeapPrefetcher::default();
            for &a in &trace {
                let d = p.on_fault(PageAddr(a));
                prop_assert!(!d.contains(PageAddr(a)));
            }
        }

        /// Candidate lists never contain duplicates.
        #[test]
        fn prop_no_duplicate_candidates(
            trace in proptest::collection::vec(0u64..100_000, 1..300),
        ) {
            let mut p = LeapPrefetcher::default();
            for &a in &trace {
                let d = p.on_fault(PageAddr(a));
                let mut seen = std::collections::HashSet::new();
                for page in d.iter() {
                    prop_assert!(seen.insert(*page), "duplicate candidate {page:?}");
                }
            }
        }

        /// Replaying any trace never leaves the window above its maximum and
        /// never panics (covers hit-feedback interleavings).
        #[test]
        fn prop_replay_never_panics(
            trace in proptest::collection::vec(0u64..10_000, 0..400),
        ) {
            let mut p = LeapPrefetcher::default();
            let _ = replay(&mut p, &trace);
        }
    }
}
