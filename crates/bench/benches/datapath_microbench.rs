//! Criterion microbenchmarks for the simulated data paths and the eviction
//! machinery (simulation-cost benchmarks, not latency-model outputs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leap_datapath::{DataPath, LeanDataPath, LegacyDataPath};
use leap_eviction::{LazyReclaimer, PrefetchFifoLru};
use leap_mem::{CacheOrigin, Pid, SwapCache, SwapSlot};
use leap_remote::BackendKind;
use leap_sim_core::{DetRng, Nanos};

fn bench_data_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_path_read");
    group.bench_function("legacy/rdma", |b| {
        let mut path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(1));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(path.read_page(i, (i % 8) as usize, Nanos::from_micros(50 * i)))
        })
    });
    group.bench_function("lean/rdma", |b| {
        let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(1));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(path.read_page(i, (i % 8) as usize, Nanos::from_micros(50 * i)))
        })
    });
    group.finish();
}

fn bench_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction");
    group.bench_function("eager/hit_and_free", |b| {
        b.iter_with_setup(
            || {
                let mut cache = SwapCache::unbounded();
                let mut fifo = PrefetchFifoLru::new();
                for i in 0..256u64 {
                    cache.insert(SwapSlot(i), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
                    fifo.on_prefetch_insert(SwapSlot(i));
                }
                (cache, fifo)
            },
            |(mut cache, mut fifo)| {
                for i in 0..256u64 {
                    cache.record_hit(SwapSlot(i), Nanos::from_micros(i));
                    black_box(fifo.on_hit(SwapSlot(i), &mut cache));
                }
            },
        )
    });
    group.bench_function("lazy/reclaim_256_of_1024", |b| {
        b.iter_with_setup(
            || {
                let mut cache = SwapCache::unbounded();
                let mut reclaimer = LazyReclaimer::with_defaults();
                for i in 0..1024u64 {
                    cache.insert(SwapSlot(i), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
                    reclaimer.on_insert(SwapSlot(i));
                }
                (cache, reclaimer)
            },
            |(mut cache, mut reclaimer)| {
                black_box(reclaimer.reclaim(&mut cache, 256, Nanos::from_millis(1)));
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_data_paths, bench_eviction);
criterion_main!(benches);
