//! SipHash vs the specialized FxHash on the fault path's map shapes.
//!
//! The hot maps (page table, swap cache, swap-slot ownership, LRU index)
//! are probed several times per fault with small integer keys the
//! simulator itself generates. This bench pins the reason they use
//! `leap_sim_core::hash::FxHashMap` instead of the std SipHash default:
//! same map, same keys, only the hasher differs — plus the end-to-end
//! `PageTable` probe as actually shipped.
//!
//! ```text
//! cargo bench -p leap-bench --bench hashing_microbench
//! ```

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_mem::{FrameId, PageTable, VirtPage};
use leap_sim_core::hash::FxHashMap;

const TABLE_PAGES: u64 = 4_096; // a 16 MiB working set, the harness's shape

fn bench_map_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");

    let mut sip: HashMap<VirtPage, FrameId> = HashMap::new();
    let mut fx: FxHashMap<VirtPage, FrameId> = FxHashMap::default();
    for p in 0..TABLE_PAGES {
        sip.insert(VirtPage(p), FrameId(p));
        fx.insert(VirtPage(p), FrameId(p));
    }

    for (name, stride) in [("sequential", 1u64), ("stride10", 10u64)] {
        group.bench_with_input(BenchmarkId::new("siphash_map", name), &stride, |b, &s| {
            let mut p = 0u64;
            b.iter(|| {
                p = (p + s) % TABLE_PAGES;
                black_box(sip.get(&VirtPage(p)))
            })
        });
        group.bench_with_input(BenchmarkId::new("fx_map", name), &stride, |b, &s| {
            let mut p = 0u64;
            b.iter(|| {
                p = (p + s) % TABLE_PAGES;
                black_box(fx.get(&VirtPage(p)))
            })
        });
    }
    group.finish();
}

/// The shipped `PageTable` probe (Fx-hashed, pre-reserved) under the access
/// patterns the replay engine produces.
fn bench_page_table_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    let mut pt = PageTable::with_capacity(TABLE_PAGES as usize);
    for p in 0..TABLE_PAGES {
        pt.map(VirtPage(p), FrameId(p));
    }
    group.bench_function("lookup/sequential", |b| {
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % TABLE_PAGES;
            black_box(pt.lookup(VirtPage(p)))
        })
    });
    group.bench_function("lookup/random", |b| {
        let mut x = 88172645463325252u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(pt.lookup(VirtPage(x % TABLE_PAGES)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_map_probes, bench_page_table_probe);
criterion_main!(benches);
