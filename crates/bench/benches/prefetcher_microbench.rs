//! Criterion microbenchmarks for the prefetching algorithms.
//!
//! These support the complexity claims in §3.3 of the paper: `FindTrend` is
//! linear in the history size with O(1) space, and the whole per-fault
//! decision (history update + trend detection + window sizing) costs well
//! under a microsecond even for `Hsize = 32`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use leap_prefetcher::{
    find_trend, AccessHistory, IncrementalTrendDetector, LeapConfig, LeapPrefetcher,
    NextNLinePrefetcher, PageAddr, Prefetcher, ReadAheadPrefetcher, StridePrefetcher,
};

fn history_with_stride(size: usize, stride: u64) -> AccessHistory {
    let mut h = AccessHistory::new(size);
    for i in 0..(size as u64 * 2) {
        h.record(PageAddr(1_000 + stride * i));
    }
    h
}

fn bench_find_trend(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_trend");
    for hsize in [8usize, 16, 32, 64, 128] {
        let history = history_with_stride(hsize, 7);
        group.bench_with_input(
            BenchmarkId::new("steady_stride", hsize),
            &history,
            |b, h| b.iter(|| find_trend(black_box(h), 4)),
        );
    }
    // Worst case: no majority anywhere, so the window doubles to the full
    // history before giving up.
    for hsize in [8usize, 32, 128] {
        let mut history = AccessHistory::new(hsize);
        for i in 0..(hsize as u64 * 2) {
            history.record(PageAddr((i * i * 2_654_435_761) % 1_000_003));
        }
        group.bench_with_input(BenchmarkId::new("no_majority", hsize), &history, |b, h| {
            b.iter(|| find_trend(black_box(h), 4))
        });
    }
    group.finish();
}

/// `find_trend` from scratch vs the incremental detector, per fault
/// (record + trend query — the full per-fault trend work each way).
/// The detector's advantage grows with `Hsize` and is largest on
/// majority-free streams, where `find_trend` must scan the whole history
/// before giving up while the detector answers from its cached tiers.
fn bench_incremental_trend(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_trend");
    for hsize in [32usize, 128] {
        group.bench_with_input(
            BenchmarkId::new("find_trend/steady", hsize),
            &hsize,
            |b, &hsize| {
                let mut h = AccessHistory::new(hsize);
                let mut addr = 0u64;
                b.iter(|| {
                    addr += 7;
                    h.record(PageAddr(addr));
                    black_box(find_trend(&h, 4))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental/steady", hsize),
            &hsize,
            |b, &hsize| {
                let mut det = IncrementalTrendDetector::new(hsize, 4);
                let mut addr = 0u64;
                b.iter(|| {
                    addr += 7;
                    det.record(PageAddr(addr));
                    black_box(det.trend())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("find_trend/no_majority", hsize),
            &hsize,
            |b, &hsize| {
                let mut h = AccessHistory::new(hsize);
                let mut gap = 1u64;
                let mut addr = 0u64;
                b.iter(|| {
                    gap += 1;
                    addr += gap;
                    h.record(PageAddr(addr));
                    black_box(find_trend(&h, 4))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental/no_majority", hsize),
            &hsize,
            |b, &hsize| {
                let mut det = IncrementalTrendDetector::new(hsize, 4);
                let mut gap = 1u64;
                let mut addr = 0u64;
                b.iter(|| {
                    gap += 1;
                    addr += gap;
                    det.record(PageAddr(addr));
                    black_box(det.trend())
                })
            },
        );
    }
    group.finish();
}

fn bench_on_fault(c: &mut Criterion) {
    let mut group = c.benchmark_group("on_fault");
    group.bench_function("leap/sequential", |b| {
        let mut p = LeapPrefetcher::new(LeapConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            addr += 1;
            black_box(p.on_fault(PageAddr(addr)))
        })
    });
    group.bench_function("leap/random", |b| {
        let mut p = LeapPrefetcher::new(LeapConfig::default());
        let mut x = 88172645463325252u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(p.on_fault(PageAddr(x % 1_000_000)))
        })
    });
    group.bench_function("read_ahead/sequential", |b| {
        let mut p = ReadAheadPrefetcher::default();
        let mut addr = 0u64;
        b.iter(|| {
            addr += 1;
            black_box(p.on_fault(PageAddr(addr)))
        })
    });
    group.bench_function("stride/sequential", |b| {
        let mut p = StridePrefetcher::default();
        let mut addr = 0u64;
        b.iter(|| {
            addr += 7;
            black_box(p.on_fault(PageAddr(addr)))
        })
    });
    group.bench_function("next_n_line", |b| {
        let mut p = NextNLinePrefetcher::default();
        let mut addr = 0u64;
        b.iter(|| {
            addr += 1;
            black_box(p.on_fault(PageAddr(addr)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_find_trend,
    bench_incremental_trend,
    bench_on_fault
);
criterion_main!(benches);
