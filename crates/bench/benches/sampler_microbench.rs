//! Criterion microbenchmarks for the latency samplers: the analytic
//! log-normal (exp/ln/sqrt per draw) against the precomputed inverse-CDF
//! quantile table (one RNG draw + a linear interpolation), single-sample
//! and span-batched. These are the numbers behind the table-sampler entry
//! in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leap_sim_core::{DetRng, LatencySampler, LogNormalLatency, Nanos, TableLatency};

/// The legacy block layer's queueing stage (the hottest log-normal in the
/// workspace): median 17.5 µs, sigma 0.6, floor 1 µs.
fn analytic() -> LogNormalLatency {
    LogNormalLatency::new(Nanos::from_micros_f64(17.5), 0.6, Nanos::from_micros(1))
}

fn table() -> TableLatency {
    TableLatency::from_lognormal(Nanos::from_micros_f64(17.5), 0.6, Nanos::from_micros(1))
}

fn bench_single_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_single");
    group.bench_function("lognormal/analytic", |b| {
        let sampler = analytic();
        let mut rng = DetRng::seed_from(1);
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
    group.bench_function("lognormal/table", |b| {
        let sampler = table();
        let mut rng = DetRng::seed_from(1);
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
    group.finish();
}

fn bench_span_sample(c: &mut Criterion) {
    // One prefetch window's worth of draws per iteration, the way the
    // span-batched data path consumes the sampler.
    const SPAN: usize = 32;
    let mut group = c.benchmark_group("sampler_span32");
    group.bench_function("lognormal/analytic_loop", |b| {
        let sampler = analytic();
        let mut rng = DetRng::seed_from(2);
        b.iter(|| {
            let mut sum = Nanos::ZERO;
            for _ in 0..SPAN {
                sum = sum.saturating_add(sampler.sample(&mut rng));
            }
            black_box(sum)
        })
    });
    group.bench_function("lognormal/table_span", |b| {
        let sampler = table();
        let mut rng = DetRng::seed_from(2);
        b.iter(|| black_box(sampler.sample_span(&mut rng, SPAN)))
    });
    group.finish();
}

fn bench_scaled_sample(c: &mut Criterion) {
    // A degraded-epoch multiplier on the table path: the scale is integer
    // arithmetic after the draw, so it should cost next to nothing.
    let mut group = c.benchmark_group("sampler_scaled");
    group.bench_function("table/identity_multiplier", |b| {
        let sampler = table();
        let mut rng = DetRng::seed_from(3);
        b.iter(|| black_box(sampler.sample_scaled(&mut rng, 1_000)))
    });
    group.bench_function("table/degraded_multiplier", |b| {
        let sampler = table();
        let mut rng = DetRng::seed_from(3);
        b.iter(|| black_box(sampler.sample_scaled(&mut rng, 2_500)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_sample,
    bench_span_sample,
    bench_scaled_sample
);
criterion_main!(benches);
