//! End-to-end criterion benchmarks: one scaled-down run per headline
//! experiment configuration, so regressions in simulation throughput (and in
//! the relative cost of the Leap vs default configurations) are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leap::prelude::*;
use leap_sim_core::units::MIB;
use leap_workloads::stride_trace;

fn bench_stride_microbenchmark(c: &mut Criterion) {
    let trace = stride_trace(2 * MIB, 10, 1);
    let mut group = c.benchmark_group("vmm_stride10_2mib");
    group.sample_size(20);
    group.bench_function("linux_default", |b| {
        b.iter(|| {
            let config = SimConfig::linux_defaults()
                .to_builder()
                .memory_fraction(0.5)
                .build()
                .expect("valid config");
            black_box(VmmSimulator::new(config).run_prepopulated(&trace))
        })
    });
    group.bench_function("leap", |b| {
        b.iter(|| {
            let config = SimConfig::builder()
                .memory_fraction(0.5)
                .build()
                .expect("valid config");
            black_box(VmmSimulator::new(config).run_prepopulated(&trace))
        })
    });
    group.finish();
}

fn bench_application_model(c: &mut Criterion) {
    let trace = AppModel::new(AppKind::PowerGraph, 1)
        .with_accesses(20_000)
        .generate();
    let mut group = c.benchmark_group("vmm_powergraph_20k");
    group.sample_size(10);
    group.bench_function("leap_50pct", |b| {
        b.iter(|| {
            let config = SimConfig::builder()
                .memory_fraction(0.5)
                .build()
                .expect("valid config");
            black_box(VmmSimulator::new(config).run_prepopulated(&trace))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stride_microbenchmark,
    bench_application_model
);
criterion_main!(benches);
