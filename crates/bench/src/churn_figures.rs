//! The churn figure: Leap vs the default data path while the remote tier
//! misbehaves.
//!
//! The paper evaluates Leap on a healthy RDMA fabric; this figure asks what
//! survives of its advantage when the fabric churns. A seeded
//! [`FaultSpec`] schedules latency-spike epochs, degraded-bandwidth epochs,
//! reconnect storms and machine failures inside the replay window at three
//! intensities (plus the steady-state baseline), and both configurations
//! replay the same trace under the same plan. Everything is derived from
//! `(EXPERIMENT_SEED, spec)`, so the figure is bit-reproducible.

use crate::{APP_ACCESSES, EXPERIMENT_SEED};
use leap::prelude::*;
use leap::FaultSpec;
use leap_metrics::TextTable;
use leap_sim_core::Nanos;
use leap_workloads::AccessTrace;

const CORES: usize = 4;

/// The trace the churn figure replays: the PowerGraph-style mix (the same
/// pick as the prefetcher-comparison figures — it mixes all three pattern
/// types, so prefetch quality matters).
fn churn_trace() -> AccessTrace {
    AppModel::new(AppKind::PowerGraph, EXPERIMENT_SEED)
        .with_accesses(APP_ACCESSES / 2)
        .generate()
}

fn churn_config(preset: SimConfig, spec: FaultSpec) -> SimConfig {
    preset
        .to_builder()
        .memory_fraction(0.5)
        .cores(CORES)
        .seed(EXPERIMENT_SEED)
        .fault_plan(spec)
        .build()
        .expect("valid churn config")
}

/// The fault window used by every intensity: the middle 80% of the healthy
/// D-VMM run, so both configurations spend the bulk of their replay inside
/// the churn regardless of how fast they finish.
pub fn churn_window() -> (Nanos, Nanos) {
    let result = VmmSimulator::new(churn_config(SimConfig::linux_defaults(), FaultSpec::none()))
        .session()
        .run(&churn_trace());
    let t = result.completion_time.as_nanos().max(10);
    (Nanos::from_nanos(t / 10), Nanos::from_nanos(t * 9 / 10))
}

/// The three fault intensities (plus the healthy baseline) over a window.
pub fn churn_intensities(start: Nanos, horizon: Nanos) -> Vec<(&'static str, FaultSpec)> {
    let epoch = Nanos::from_nanos((horizon.as_nanos().saturating_sub(start.as_nanos()) / 4).max(1));
    vec![
        ("steady state", FaultSpec::none()),
        (
            "mild",
            FaultSpec {
                latency_spikes: 1,
                spike_multiplier_milli: 2000,
                epoch,
                start,
                horizon,
                ..FaultSpec::none()
            },
        ),
        ("storm", FaultSpec::storm_over(start, horizon)),
        (
            "severe",
            FaultSpec {
                latency_spikes: 4,
                spike_multiplier_milli: 8000,
                degraded_epochs: 2,
                degraded_multiplier_milli: 4000,
                machine_failures: 2,
                reconnect_storms: 2,
                reconnect_penalty: Nanos::from_micros(50),
                epoch,
                start,
                horizon,
                partition_epochs: 0,
                target_tenant: 0,
            },
        ),
    ]
}

/// Replays the churn trace once under `(preset, spec)`.
pub fn run_churn(preset: SimConfig, spec: FaultSpec) -> RunResult {
    VmmSimulator::new(churn_config(preset, spec))
        .session()
        .run(&churn_trace())
}

/// The churn figure: p50/p99 remote latency and paging throughput vs fault
/// intensity, Leap against the default data path.
///
/// Machine failures only exist on Leap's lean path (the legacy path models a
/// local block device, which has no remote cluster to lose) — both paths see
/// the same latency-spike, degraded-bandwidth and reconnect-storm epochs.
pub fn fig_churn() -> String {
    let (start, horizon) = churn_window();
    let mut table = TextTable::new(vec![
        "intensity",
        "configuration",
        "p50 (us)",
        "p99 (us)",
        "pages/sec (k)",
        "completion (s)",
        "faulted reqs",
        "machines lost",
    ])
    .with_title(format!(
        "Leap under churn: fault intensity sweep over [{:.0} us, {:.0} us) ({CORES} cores, seed {EXPERIMENT_SEED})",
        start.as_micros_f64(),
        horizon.as_micros_f64(),
    ));
    for (intensity, spec) in churn_intensities(start, horizon) {
        for (label, preset) in [
            ("D-VMM", SimConfig::linux_defaults()),
            ("D-VMM + Leap", SimConfig::leap_defaults()),
        ] {
            let mut result = run_churn(preset, spec);
            let faults = &result.fault_stats;
            let faulted =
                faults.spiked_requests + faults.degraded_requests + faults.reconnect_requests;
            let row = vec![
                intensity.to_string(),
                label.to_string(),
                format!("{:.2}", result.median_remote_latency().as_micros_f64()),
                format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
                format!("{:.1}", result.throughput_ops_per_sec() / 1_000.0),
                format!("{:.3}", result.completion_seconds()),
                format!("{faulted}"),
                format!("{}", result.fault_stats.machines_failed),
            ];
            table.add_row(row);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_window_covers_the_middle_of_the_run() {
        let (start, horizon) = churn_window();
        assert!(start < horizon);
        assert!(!start.is_zero());
    }

    #[test]
    fn every_intensity_produces_a_valid_spec() {
        let (start, horizon) = churn_window();
        for (name, spec) in churn_intensities(start, horizon) {
            assert!(spec.validate().is_ok(), "intensity {name} invalid");
        }
    }

    #[test]
    fn storms_actually_touch_both_configurations() {
        let (start, horizon) = churn_window();
        let spec = FaultSpec::storm_over(start, horizon);
        for preset in [SimConfig::linux_defaults(), SimConfig::leap_defaults()] {
            let result = run_churn(preset, spec);
            assert!(
                !result.fault_stats.is_quiet(),
                "{} saw no faults",
                result.config_label
            );
        }
    }

    #[test]
    fn leap_retains_completion_advantage_under_the_canonical_storm() {
        // The acceptance pin: churn hurts both paths, but Leap keeps at
        // least a 1.5x completion-time advantage over the default data path
        // under the storm plan.
        let (start, horizon) = churn_window();
        let spec = FaultSpec::storm_over(start, horizon);
        let dvmm = run_churn(SimConfig::linux_defaults(), spec);
        let leap = run_churn(SimConfig::leap_defaults(), spec);
        let ratio = dvmm.completion_time.as_secs_f64() / leap.completion_time.as_secs_f64();
        assert!(
            ratio >= 1.5,
            "Leap's completion advantage under the storm fell to {ratio:.2}x"
        );
    }

    #[test]
    fn fig_churn_renders_every_intensity() {
        let t = fig_churn();
        for needle in ["steady state", "mild", "storm", "severe", "D-VMM + Leap"] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
    }
}
