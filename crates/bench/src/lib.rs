//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each public function reproduces one figure/table from *Effectively
//! Prefetching Remote Memory with Leap* and returns a rendered text report
//! (the same rows/series the paper plots). The `src/bin/` binaries are thin
//! wrappers, one per figure, so that
//!
//! ```text
//! cargo run --release -p leap-bench --bin fig09_prefetcher_cache
//! ```
//!
//! prints the corresponding table. Scales are reduced from the paper's
//! 9–38 GB working sets to tens of MiB so every experiment completes in
//! seconds; `EXPERIMENTS.md` at the repository root records the
//! paper-vs-measured comparison.

pub mod app_figures;
pub mod arena;
pub mod churn_figures;
pub mod hedging_figures;
pub mod micro_figures;
pub mod tenant_figures;
pub mod trace_source;

pub use churn_figures::fig_churn;
pub use hedging_figures::fig_hedging;
pub use tenant_figures::fig_tenants;
pub use trace_source::TraceSource;

pub use app_figures::{
    fig03_pattern_windows, fig08b_slow_storage, fig09_prefetcher_cache,
    fig10_prefetch_effectiveness, fig11_applications, fig12_constrained_cache, fig13_multi_app,
    fig13_scaleup, table1_prefetcher_comparison,
};
pub use micro_figures::{
    fig01_datapath_breakdown, fig02_default_datapath_cdf, fig04_lazy_eviction_wait,
    fig07_leap_datapath_cdf, fig08a_benefit_breakdown,
};

/// Standard working-set size used by the microbenchmark figures (16 MiB keeps
/// each run to a few seconds).
pub const MICRO_WORKING_SET: u64 = 16 * leap_sim_core::units::MIB;

/// Standard number of accesses per application trace in the app figures.
pub const APP_ACCESSES: usize = 80_000;

/// Seed shared by all experiments so every figure is reproducible.
pub const EXPERIMENT_SEED: u64 = 2020;
