//! Application-level figures: pattern mixes, prefetcher comparisons,
//! application performance, constrained caches, and multi-tenancy
//! (Figures 3, 8b, 9, 10, 11, 12, 13 and Table 1 of the paper).

use crate::{APP_ACCESSES, EXPERIMENT_SEED};
use leap::prelude::*;
use leap_metrics::TextTable;
use leap_prefetcher::PrefetcherKind;
use leap_remote::BackendKind;
use leap_workloads::{classify_windows, AccessTrace, PatternMode};

fn app_trace(kind: AppKind) -> AccessTrace {
    AppModel::new(kind, EXPERIMENT_SEED)
        .with_accesses(APP_ACCESSES)
        .generate()
}

/// The PowerGraph-style trace used by the prefetcher-comparison figures
/// (the paper picks PowerGraph because it mixes all three pattern types).
fn powergraph_trace() -> AccessTrace {
    app_trace(AppKind::PowerGraph)
}

/// Figure 3: fraction of sequential / stride / other page-fault windows of
/// length 2, 4, and 8 for the four applications, under strict matching and
/// (for window 8) majority matching.
pub fn fig03_pattern_windows() -> String {
    let mut table = TextTable::new(vec![
        "application",
        "window",
        "mode",
        "sequential",
        "stride",
        "other",
    ])
    .with_title("Figure 3: access-pattern windows per application (fault streams at 50% memory)");
    for kind in AppKind::ALL {
        let trace = app_trace(kind);
        // The prefetcher sees the *fault* stream; approximate it by the full
        // access stream of the app model (every access would fault at low
        // local memory), which is also what the paper's Figure 3 caption does.
        let pages = trace.page_sequence();
        for window in [2usize, 4, 8] {
            let strict = classify_windows(&pages, window, PatternMode::Strict);
            table.add_row(vec![
                kind.label().to_string(),
                format!("{window}"),
                "strict".to_string(),
                format!("{:.1}%", 100.0 * strict.sequential_fraction()),
                format!("{:.1}%", 100.0 * strict.stride_fraction()),
                format!("{:.1}%", 100.0 * strict.other_fraction()),
            ]);
        }
        let majority = classify_windows(&pages, 8, PatternMode::Majority);
        table.add_row(vec![
            kind.label().to_string(),
            "8".to_string(),
            "majority".to_string(),
            format!("{:.1}%", 100.0 * majority.sequential_fraction()),
            format!("{:.1}%", 100.0 * majority.stride_fraction()),
            format!("{:.1}%", 100.0 * majority.other_fraction()),
        ]);
    }
    table.render()
}

/// Table 1: qualitative comparison of prefetching techniques.
pub fn table1_prefetcher_comparison() -> String {
    let mut table = TextTable::new(vec![
        "technique",
        "low compute",
        "low memory",
        "unmodified app",
        "hw/sw independent",
        "temporal locality",
        "spatial locality",
        "high utilisation",
    ])
    .with_title("Table 1: comparison of prefetching techniques");
    let yes = "yes";
    let no = "no";
    table.add_row(
        ["Next-N-Line", yes, yes, yes, yes, no, yes, no]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.add_row(
        ["Stride", yes, yes, yes, yes, no, yes, no]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.add_row(
        ["GHB PC", no, no, yes, no, yes, yes, yes]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.add_row(
        ["Instruction prefetch", no, no, no, no, yes, yes, yes]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.add_row(
        ["Linux Read-Ahead", yes, yes, yes, yes, yes, yes, no]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.add_row(
        ["Leap prefetcher", yes, yes, yes, yes, yes, yes, yes]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.render()
}

/// Figure 8b: the Leap prefetcher plugged into the default data path while
/// paging to slow local storage (SSD and HDD), versus Linux Read-Ahead.
pub fn fig08b_slow_storage() -> String {
    let trace = powergraph_trace();
    let mut table = TextTable::new(vec!["configuration", "completion time (s)"])
        .with_title("Figure 8b: prefetcher benefit when paging to slow storage (PowerGraph, 50%)");
    for (label, backend, prefetcher) in [
        (
            "SSD + Read-Ahead",
            BackendKind::Ssd,
            PrefetcherKind::ReadAhead,
        ),
        (
            "SSD + Leap prefetcher",
            BackendKind::Ssd,
            PrefetcherKind::Leap,
        ),
        (
            "HDD + Read-Ahead",
            BackendKind::Hdd,
            PrefetcherKind::ReadAhead,
        ),
        (
            "HDD + Leap prefetcher",
            BackendKind::Hdd,
            PrefetcherKind::Leap,
        ),
    ] {
        let config = SimConfig::disk_defaults(backend)
            .to_builder()
            .prefetcher(prefetcher)
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        table.add_row(vec![
            label.to_string(),
            format!("{:.3}", result.completion_seconds()),
        ]);
    }
    table.render()
}

/// Figures 9a and 9b: cache adds, cache misses, and application completion
/// time for the four prefetching algorithms on the PowerGraph trace (default
/// data path, paging to disk, 50 % memory — isolating the prefetcher itself).
pub fn fig09_prefetcher_cache() -> String {
    let trace = powergraph_trace();
    let mut table = TextTable::new(vec![
        "prefetcher",
        "cache adds",
        "cache misses",
        "completion time (s)",
    ])
    .with_title("Figure 9: prefetcher impact on the cache and on completion time (PowerGraph)");
    for kind in PrefetcherKind::EVALUATED {
        let config = SimConfig::disk_defaults(BackendKind::Hdd)
            .to_builder()
            .prefetcher(kind)
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let result = VmmSimulator::new(config).run_prepopulated(&trace);
        table.add_row(vec![
            kind.label().to_string(),
            result.cache_stats.cache_adds().to_string(),
            result.cache_stats.misses().to_string(),
            format!("{:.3}", result.completion_seconds()),
        ]);
    }
    table.render()
}

/// Figures 10a and 10b: accuracy, coverage, and timeliness of the four
/// prefetching algorithms on the PowerGraph trace.
pub fn fig10_prefetch_effectiveness() -> String {
    let trace = powergraph_trace();
    let mut table = TextTable::new(vec![
        "prefetcher",
        "accuracy",
        "coverage",
        "timeliness p50 (us)",
        "timeliness p99 (us)",
    ])
    .with_title("Figure 10: prefetch accuracy, coverage, and timeliness (PowerGraph)");
    for kind in PrefetcherKind::EVALUATED {
        let config = SimConfig::disk_defaults(BackendKind::Hdd)
            .to_builder()
            .prefetcher(kind)
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let mut result = VmmSimulator::new(config).run_prepopulated(&trace);
        let accuracy = result.prefetch_stats.accuracy();
        let coverage = result.prefetch_stats.coverage();
        let t50 = result.prefetch_stats.timeliness().median();
        let t99 = result.prefetch_stats.timeliness().percentile(99.0);
        table.add_row(vec![
            kind.label().to_string(),
            format!("{:.1}%", 100.0 * accuracy),
            format!("{:.1}%", 100.0 * coverage),
            format!("{:.1}", t50.as_micros_f64()),
            format!("{:.1}", t99.as_micros_f64()),
        ]);
    }
    table.render()
}

/// Figure 11: application-level performance (completion time for PowerGraph
/// and NumPy, throughput for VoltDB and Memcached) for Disk, D-VMM, and
/// D-VMM+Leap at 100 %, 50 %, and 25 % local memory.
pub fn fig11_applications() -> String {
    let mut out = String::new();
    for kind in AppKind::ALL {
        let trace = app_trace(kind);
        let metric = if kind.is_throughput_oriented() {
            "throughput (kops/s)"
        } else {
            "completion time (s)"
        };
        let mut table = TextTable::new(vec![
            "memory limit",
            &format!("Disk — {metric}"),
            &format!("D-VMM — {metric}"),
            &format!("D-VMM+Leap — {metric}"),
        ])
        .with_title(format!("Figure 11 ({kind})"));
        for fraction in [1.0, 0.5, 0.25] {
            let mut cells = vec![format!("{:.0}%", fraction * 100.0)];
            for config in [
                SimConfig::disk_defaults(BackendKind::Ssd),
                SimConfig::linux_defaults(),
                SimConfig::leap_defaults(),
            ] {
                let config = config
                    .to_builder()
                    .memory_fraction(fraction)
                    .seed(EXPERIMENT_SEED)
                    .build()
                    .expect("valid config");
                let result = VmmSimulator::new(config).run_prepopulated(&trace);
                let value = if kind.is_throughput_oriented() {
                    format!("{:.1}", result.throughput_ops_per_sec() / 1_000.0)
                } else {
                    format!("{:.3}", result.completion_seconds())
                };
                cells.push(value);
            }
            table.add_row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Figure 12: Leap performance with constrained prefetch-cache sizes
/// (unlimited, 320 MB, 32 MB, 3.2 MB) at 50 % memory.
pub fn fig12_constrained_cache() -> String {
    let mut out = String::new();
    let sizes = [
        ("No limit", u64::MAX),
        ("320 MB", 320 * 256),
        ("32 MB", 32 * 256),
        ("3.2 MB", 819),
    ];
    for kind in AppKind::ALL {
        let trace = app_trace(kind);
        let metric = if kind.is_throughput_oriented() {
            "throughput (kops/s)"
        } else {
            "completion time (s)"
        };
        let mut table = TextTable::new(vec!["prefetch cache", metric]).with_title(format!(
            "Figure 12 ({kind}): constrained prefetch cache, 50% memory"
        ));
        for (label, pages) in sizes {
            let config = SimConfig::builder()
                .memory_fraction(0.5)
                .prefetch_cache_pages(pages)
                .seed(EXPERIMENT_SEED)
                .build()
                .expect("valid config");
            let result = VmmSimulator::new(config).run_prepopulated(&trace);
            let value = if kind.is_throughput_oriented() {
                format!("{:.1}", result.throughput_ops_per_sec() / 1_000.0)
            } else {
                format!("{:.3}", result.completion_seconds())
            };
            table.add_row(vec![label.to_string(), value]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Figure 13: all four applications running concurrently on 4 cores under
/// the time-sliced scheduler, D-VMM vs D-VMM+Leap. (The pre-scheduler
/// trace-granularity interleaving is still available via
/// `Simulator::run_interleaved`.)
pub fn fig13_multi_app() -> String {
    let traces: Vec<AccessTrace> = AppKind::ALL.iter().map(|&k| app_trace(k)).collect();

    let mut table = TextTable::new(vec![
        "configuration",
        "median remote access (us)",
        "p99 (us)",
        "prefetch coverage",
        "makespan (s)",
    ])
    .with_title(
        "Figure 13: four applications paging concurrently (4 cores, 1 ms quantum, 50% memory each)",
    );
    for (label, config) in [
        ("D-VMM", SimConfig::linux_defaults()),
        ("D-VMM + Leap", SimConfig::leap_defaults()),
    ] {
        let config = config
            .to_builder()
            .memory_fraction(0.5)
            .cores(4)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let mut result = VmmSimulator::new(config).run_multi(&traces);
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", result.median_remote_latency().as_micros_f64()),
            format!("{:.2}", result.p99_remote_latency().as_micros_f64()),
            format!("{:.1}%", 100.0 * result.prefetch_stats.coverage()),
            format!("{:.3}", result.completion_seconds()),
        ]);
    }
    table.render()
}

/// Figure 13 scale-up: aggregate throughput as 1..=4 applications page
/// concurrently over 4 cores, computed entirely from the per-core
/// [`FaultEvent`] streams (a [`CoreActivity`] observer, not the batch
/// result): per-core completion instants give the makespan, event counts
/// give the volume.
pub fn fig13_scaleup() -> String {
    const CORES: usize = 4;
    let mut table = TextTable::new(vec![
        "processes",
        "configuration",
        "active cores",
        "throughput (kops/s)",
        "makespan (s)",
        "prefetch coverage",
    ])
    .with_title(format!(
        "Figure 13 scale-up: throughput vs process count ({CORES} cores, from per-core event streams)"
    ));
    for n in 1..=AppKind::ALL.len() {
        let traces: Vec<AccessTrace> = AppKind::ALL[..n]
            .iter()
            .map(|&kind| {
                AppModel::new(kind, EXPERIMENT_SEED)
                    .with_accesses(APP_ACCESSES / 2)
                    .generate()
            })
            .collect();
        for (label, preset) in [
            ("D-VMM", SimConfig::linux_defaults()),
            ("D-VMM + Leap", SimConfig::leap_defaults()),
        ] {
            let config = preset
                .to_builder()
                .memory_fraction(0.5)
                .cores(CORES)
                .seed(EXPERIMENT_SEED)
                .build()
                .expect("valid config");
            let mut activity = CoreActivity::default();
            let result = VmmSimulator::new(config)
                .session()
                .observe(&mut activity)
                .run_multi(&traces);
            table.add_row(vec![
                format!("{n}"),
                label.to_string(),
                format!("{}", activity.active_cores()),
                format!("{:.1}", activity.throughput_ops_per_sec() / 1_000.0),
                format!("{:.3}", activity.completion_time().as_secs_f64()),
                format!("{:.1}%", 100.0 * result.prefetch_stats.coverage()),
            ]);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_techniques() {
        let t = table1_prefetcher_comparison();
        for needle in [
            "Next-N-Line",
            "Stride",
            "Linux Read-Ahead",
            "Leap prefetcher",
        ] {
            assert!(t.contains(needle));
        }
    }

    #[test]
    fn fig13_scaleup_reports_every_process_count() {
        let t = fig13_scaleup();
        for needle in ["1", "2", "3", "4", "D-VMM + Leap", "throughput"] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
    }

    #[test]
    fn fig03_covers_all_apps_and_windows() {
        let t = fig03_pattern_windows();
        for needle in ["PowerGraph", "NumPy", "VoltDB", "Memcached", "majority"] {
            assert!(t.contains(needle));
        }
    }
}
