//! Prefetcher arena: a corpus × prefetcher × replay-mode evaluation matrix.
//!
//! The paper demonstrates Leap's prefetcher one figure at a time; the arena
//! turns the same machinery into a *testbed*. Given a corpus — the built-in
//! synthetic mixes plus any recorded fault log ingested through
//! `leap_workloads::ingest` — it replays every (trace, prefetcher) cell in
//! both [`ReplayMode`]s and reports, per cell:
//!
//! - **coverage** and **accuracy** (§3.1 of the paper, from
//!   [`leap_metrics::PrefetchStats`]),
//! - **timeliness** (median cache residency before first hit),
//! - the **wasted-prefetch ratio** from the new
//!   [`leap_metrics::PrefetchOutcomes`] ledger (a prefetched page is
//!   *covered* if demanded before eviction, *wasted* otherwise),
//! - p50/p99 remote fault latency and completion time,
//! - the outcome checksum and whether Serial and Threaded replays agreed
//!   bit for bit.
//!
//! The competitor pool is the paper's baseline (`DvmmReadAhead`), Leap
//! itself, two *learned* predictors (first/second-order Markov delta models
//! trained offline on the corpus entry, Hashemi et al.), and a 3PO-style
//! programmed schedule compiled from the entry's own recorded trace. The
//! learned and programmed competitors plug in through
//! [`PrefetcherFactory`] exactly like a third-party component would — no
//! `leap`-crate changes.
//!
//! Everything is deterministic: training is commutative over the corpus,
//! frozen models are pure table probes, and every cell asserts
//! Serial == Threaded, so the emitted [`ARENA_SCHEMA`] JSON is byte-stable
//! across runs and pinned by `tests/arena_golden.rs`.

use std::path::Path;
use std::sync::Arc;

use leap::components::build_prefetcher;
use leap::prelude::*;
use leap_metrics::TextTable;
use leap_prefetcher::markov::{train, MarkovOrder};
use leap_prefetcher::{
    FrozenModel, MarkovPrefetcher, PageAddr, Prefetcher, ProgrammedPrefetcher,
    DEFAULT_PROGRAM_LOOKAHEAD,
};
use leap_sim_core::units::MIB;
use leap_sim_core::Nanos;
use leap_workloads::ingest::IngestError;
use leap_workloads::{sequential_trace, stride_trace, AccessTrace};

use crate::{TraceSource, EXPERIMENT_SEED};

/// Version tag of the arena's JSON output. Bump on any key change.
pub const ARENA_SCHEMA: &str = "leap-arena/1";

/// The full competitor pool, in report order.
pub const COMPETITORS: [&str; 5] = [
    "DvmmReadAhead",
    "Leap",
    "Markov-1",
    "Markov-2",
    "Programmed-3PO",
];

/// Synthetic-corpus accesses per process in `--quick` mode.
pub const QUICK_ACCESSES: usize = 4_000;
/// Synthetic-corpus accesses per process in a full run.
pub const FULL_ACCESSES: usize = 24_000;

/// Working set of the stride/sequential synthetic corpus entries.
const SYNTH_WORKING_SET: u64 = 4 * MIB;

/// Everything that can go wrong assembling or running an arena — a typed
/// error for every CLI/config mistake, never a panic (mirrors the
/// `IngestError` discipline).
#[derive(Debug)]
pub enum ArenaError {
    /// A requested prefetcher is not in [`COMPETITORS`].
    UnknownPrefetcher {
        /// The name that failed to resolve.
        name: String,
    },
    /// The corpus ended up with no traces at all (e.g. `--no-synthetic`
    /// without any `--trace`).
    EmptyCorpus,
    /// A `--trace` log failed to ingest.
    Ingest {
        /// The offending path as given on the command line.
        path: String,
        /// The underlying ingestion error.
        source: IngestError,
    },
    /// Two flags contradict each other.
    ConflictingFlags {
        /// The flag seen first.
        first: &'static str,
        /// The flag that conflicts with it.
        second: &'static str,
    },
    /// A flag that requires a value was the last argument.
    MissingValue {
        /// The value-less flag.
        flag: String,
    },
    /// A flag value failed to parse.
    InvalidValue {
        /// The flag whose value is malformed.
        flag: String,
        /// The malformed value.
        value: String,
    },
    /// An argument matched no known flag.
    UnknownFlag {
        /// The unrecognised argument.
        flag: String,
    },
    /// The cell's simulator configuration failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::UnknownPrefetcher { name } => write!(
                f,
                "unknown prefetcher {name:?} (known: {})",
                COMPETITORS.join(", ")
            ),
            ArenaError::EmptyCorpus => {
                write!(f, "empty corpus: no synthetic entries and no --trace logs")
            }
            ArenaError::Ingest { path, source } => {
                write!(f, "failed to ingest trace log {path}: {source}")
            }
            ArenaError::ConflictingFlags { first, second } => {
                write!(f, "conflicting flags: {first} and {second}")
            }
            ArenaError::MissingValue { flag } => write!(f, "flag {flag} requires a value"),
            ArenaError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for {flag}")
            }
            ArenaError::UnknownFlag { flag } => write!(f, "unknown flag {flag}"),
            ArenaError::Config(e) => write!(f, "invalid arena configuration: {e}"),
        }
    }
}

impl std::error::Error for ArenaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArenaError::Ingest { source, .. } => Some(source),
            ArenaError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ArenaError {
    fn from(e: ConfigError) -> Self {
        ArenaError::Config(e)
    }
}

/// Parsed arena options (the `bin/arena` command line, also constructible
/// directly by tests).
#[derive(Debug, Clone)]
pub struct ArenaOptions {
    /// Shrink the synthetic corpus for CI smoke runs.
    pub quick: bool,
    /// Explicit synthetic-corpus sizing; `None` derives from `quick`.
    pub accesses: Option<usize>,
    /// Simulated cores (shards) per replay.
    pub cores: usize,
    /// Include the built-in synthetic corpus entries.
    pub synthetic: bool,
    /// Recorded fault logs to ingest as extra corpus entries.
    pub trace_logs: Vec<String>,
    /// Competitor filter; empty means the full [`COMPETITORS`] pool.
    pub prefetchers: Vec<String>,
    /// Output path for the JSON matrix (`None` = the binary's default).
    pub out: Option<String>,
}

impl Default for ArenaOptions {
    fn default() -> Self {
        ArenaOptions {
            quick: false,
            accesses: None,
            cores: 2,
            synthetic: true,
            trace_logs: Vec::new(),
            prefetchers: Vec::new(),
            out: None,
        }
    }
}

impl ArenaOptions {
    /// Synthetic accesses per process after resolving `--quick`/`--accesses`.
    pub fn synthetic_accesses(&self) -> usize {
        self.accesses.unwrap_or(if self.quick {
            QUICK_ACCESSES
        } else {
            FULL_ACCESSES
        })
    }

    /// The competitor names this run evaluates, in [`COMPETITORS`] order.
    pub fn competitor_names(&self) -> Result<Vec<&'static str>, ArenaError> {
        if self.prefetchers.is_empty() {
            return Ok(COMPETITORS.to_vec());
        }
        for name in &self.prefetchers {
            if !COMPETITORS.contains(&name.as_str()) {
                return Err(ArenaError::UnknownPrefetcher { name: name.clone() });
            }
        }
        Ok(COMPETITORS
            .into_iter()
            .filter(|c| self.prefetchers.iter().any(|p| p == c))
            .collect())
    }
}

/// Parses the `bin/arena` argument list (without the program name) into
/// options, returning a typed [`ArenaError`] for every malformed input.
pub fn parse_args(args: &[String]) -> Result<ArenaOptions, ArenaError> {
    let mut opts = ArenaOptions::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |opts_i: &mut usize| -> Result<String, ArenaError> {
            *opts_i += 1;
            args.get(*opts_i).cloned().ok_or(ArenaError::MissingValue {
                flag: flag.to_string(),
            })
        };
        match flag {
            "--quick" => {
                if opts.accesses.is_some() {
                    return Err(ArenaError::ConflictingFlags {
                        first: "--accesses",
                        second: "--quick",
                    });
                }
                opts.quick = true;
            }
            "--accesses" => {
                if opts.quick {
                    return Err(ArenaError::ConflictingFlags {
                        first: "--quick",
                        second: "--accesses",
                    });
                }
                let v = value(&mut i)?;
                opts.accesses = Some(v.parse().map_err(|_| ArenaError::InvalidValue {
                    flag: "--accesses".to_string(),
                    value: v,
                })?);
            }
            "--cores" => {
                let v = value(&mut i)?;
                opts.cores = v.parse().map_err(|_| ArenaError::InvalidValue {
                    flag: "--cores".to_string(),
                    value: v,
                })?;
            }
            "--no-synthetic" => opts.synthetic = false,
            "--trace" => {
                let v = value(&mut i)?;
                opts.trace_logs.push(v);
            }
            "--prefetcher" => {
                let v = value(&mut i)?;
                opts.prefetchers.push(v);
            }
            "--out" => opts.out = Some(value(&mut i)?),
            other => {
                return Err(ArenaError::UnknownFlag {
                    flag: other.to_string(),
                })
            }
        }
        i += 1;
    }
    // Surface the validation errors eagerly so the binary fails before any
    // replay work: unknown competitor names and an inevitably-empty corpus.
    opts.competitor_names()?;
    if !opts.synthetic && opts.trace_logs.is_empty() {
        return Err(ArenaError::EmptyCorpus);
    }
    Ok(opts)
}

/// One corpus entry: a named set of per-process traces replayed together.
#[derive(Debug, Clone)]
pub struct ArenaTrace {
    /// Entry name as it appears in the matrix.
    pub name: String,
    /// Per-process access traces, canonicalised to rank space (see
    /// [`normalize_trace`]).
    pub traces: Vec<AccessTrace>,
}

/// Canonicalises a trace to *rank space*: each distinct page is renamed to
/// its rank in the trace's sorted distinct-page set, preserving the access
/// order, write bits, and compute times.
///
/// The renaming is exactly the swap-slot layout a prepopulated replay fixes
/// (cold pages spill to swap in sorted page order), so after it the offline
/// training space, the compiled program's addresses, and the slot-addressed
/// fault stream the prefetchers actually see all share one delta structure.
/// The arena compares *pattern structure*, which rank space preserves — a
/// stride stays a stride, a pointer-chase loop stays a loop — while the
/// arbitrary virtual base addresses of recorded logs drop out.
pub fn normalize_trace(trace: &AccessTrace) -> AccessTrace {
    let mut pages: Vec<u64> = trace.iter().map(|a| a.page).collect();
    pages.sort_unstable();
    pages.dedup();
    let accesses = trace
        .iter()
        .map(|a| {
            let mut access = *a;
            access.page = pages
                .binary_search(&a.page)
                .expect("page is in its own set") as u64;
            access
        })
        .collect();
    AccessTrace::new(trace.name(), accesses)
}

/// [`normalize_trace`] over a whole entry's traces.
fn normalize_all(traces: &[AccessTrace]) -> Vec<AccessTrace> {
    traces.iter().map(normalize_trace).collect()
}

/// Builds the corpus for `opts`: the built-in synthetic entries (unless
/// `--no-synthetic`) followed by every ingested `--trace` log, in flag
/// order.
pub fn build_corpus(opts: &ArenaOptions) -> Result<Vec<ArenaTrace>, ArenaError> {
    let accesses = opts.synthetic_accesses();
    let mut corpus = Vec::new();
    if opts.synthetic {
        // One pass over the working set is WORKING_SET/PAGE accesses; scale
        // pass counts so every synthetic entry sees roughly `accesses`.
        let pages_per_pass = (SYNTH_WORKING_SET / leap_sim_core::units::PAGE_SIZE) as usize;
        let passes = (accesses / pages_per_pass).max(1);
        let mix = TraceSource::Fig11Mix { accesses };
        corpus.push(ArenaTrace {
            name: mix.label(),
            traces: normalize_all(&mix.load().expect("synthetic mix generation is infallible")),
        });
        corpus.push(ArenaTrace {
            name: "stride-heavy".to_string(),
            traces: normalize_all(&[stride_trace(SYNTH_WORKING_SET, 8, passes)]),
        });
        corpus.push(ArenaTrace {
            name: "seq-scan".to_string(),
            traces: normalize_all(&[sequential_trace(SYNTH_WORKING_SET, passes)]),
        });
    }
    for path in &opts.trace_logs {
        let source = TraceSource::FaultLog {
            path: path.clone().into(),
        };
        let traces = source.load().map_err(|e| ArenaError::Ingest {
            path: path.clone(),
            source: e,
        })?;
        corpus.push(ArenaTrace {
            name: source.label(),
            traces: normalize_all(&traces),
        });
    }
    if corpus.is_empty() {
        return Err(ArenaError::EmptyCorpus);
    }
    Ok(corpus)
}

/// The offline-prepared artifacts for one corpus entry: the trained Markov
/// models and the compiled 3PO program. Preparation is pure (no RNG), so the
/// same entry always yields byte-identical models.
#[derive(Debug, Clone)]
pub struct PreparedModels {
    /// First-order Markov delta model trained on the entry's traces.
    pub markov1: Arc<FrozenModel>,
    /// Second-order model (with first-order backoff) on the same corpus.
    pub markov2: Arc<FrozenModel>,
    /// The compiled prefetch program: each trace's page sequence with
    /// consecutive repeats collapsed, appended in trace order.
    pub program: Arc<Vec<PageAddr>>,
}

impl PreparedModels {
    /// Trains and compiles the entry's competitors.
    pub fn prepare(entry: &ArenaTrace) -> Self {
        let mut program = Vec::new();
        for trace in &entry.traces {
            for page in trace.page_sequence() {
                let addr = PageAddr(page);
                if program.last() != Some(&addr) {
                    program.push(addr);
                }
            }
        }
        PreparedModels {
            markov1: Arc::new(train(&entry.traces, MarkovOrder::First)),
            markov2: Arc::new(train(&entry.traces, MarkovOrder::Second)),
            program: Arc::new(program),
        }
    }
}

/// The paper's baseline: the disaggregated VMM running Linux-style
/// read-ahead (Table 1's "Default" prefetcher row) under the arena's
/// uniform data path, so cells differ only in prefetching policy.
#[derive(Debug, Clone, Copy)]
pub struct DvmmReadAheadFactory;

impl PrefetcherFactory for DvmmReadAheadFactory {
    fn name(&self) -> &'static str {
        "DvmmReadAhead"
    }

    fn build(&self, config: &SimConfig) -> Box<dyn Prefetcher> {
        build_prefetcher(
            PrefetcherKind::ReadAhead,
            config.history_size,
            config.max_prefetch_window,
        )
    }
}

/// Factory handing each process a replayer over one shared frozen Markov
/// model (the model is immutable; only the tiny delta cursor is
/// per-process).
#[derive(Debug, Clone)]
pub struct FrozenMarkovFactory {
    model: Arc<FrozenModel>,
}

impl FrozenMarkovFactory {
    /// Wraps a trained model.
    pub fn new(model: Arc<FrozenModel>) -> Self {
        FrozenMarkovFactory { model }
    }
}

impl PrefetcherFactory for FrozenMarkovFactory {
    fn name(&self) -> &'static str {
        self.model.order().label()
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(MarkovPrefetcher::new(self.model.clone()))
    }
}

/// Factory for the compiled 3PO schedule. Every process replays the same
/// program; a process whose accesses are not in the program degrades
/// gracefully to no prefetching (see `ProgrammedPrefetcher`).
#[derive(Debug, Clone)]
pub struct CompiledProgramFactory {
    program: Arc<Vec<PageAddr>>,
    lead: usize,
}

impl CompiledProgramFactory {
    /// Wraps a compiled program with the given prefetch lead.
    pub fn new(program: Arc<Vec<PageAddr>>, lead: usize) -> Self {
        CompiledProgramFactory { program, lead }
    }
}

impl PrefetcherFactory for CompiledProgramFactory {
    fn name(&self) -> &'static str {
        "Programmed-3PO"
    }

    fn build(&self, _config: &SimConfig) -> Box<dyn Prefetcher> {
        Box::new(ProgrammedPrefetcher::new(
            self.program.as_ref().clone(),
            self.lead,
        ))
    }
}

/// One (trace, prefetcher) cell of the matrix, computed from the serial
/// replay after asserting Serial == Threaded.
#[derive(Debug, Clone)]
pub struct ArenaCell {
    /// Corpus entry name.
    pub trace: String,
    /// Competitor name.
    pub prefetcher: String,
    /// Processes in the entry.
    pub processes: usize,
    /// Total accesses replayed.
    pub accesses: u64,
    /// §3.1 coverage: prefetch hits / remote requests.
    pub coverage: f64,
    /// §3.1 accuracy: prefetch hits / pages prefetched.
    pub accuracy: f64,
    /// Median time a prefetched page sat in the cache before its first hit.
    pub timeliness_p50_us: f64,
    /// Wasted pages / prefetched pages from the outcome ledger.
    pub wasted_ratio: f64,
    /// Pages admitted by prefetching (outcome ledger).
    pub prefetched: u64,
    /// Prefetched pages demanded before eviction.
    pub covered: u64,
    /// Prefetched pages evicted unused or unconsumed at seal.
    pub wasted: u64,
    /// Median remote fault latency (µs).
    pub p50_fault_us: f64,
    /// 99th-percentile remote fault latency (µs).
    pub p99_fault_us: f64,
    /// Simulated completion time (ms).
    pub completion_ms: f64,
    /// The outcome ledger's FNV checksum (serial run).
    pub outcome_checksum: u64,
    /// Whether the Serial and Threaded replays were bit-identical.
    pub modes_identical: bool,
}

impl ArenaCell {
    /// Renders one JSON object (stable key order, fixed float precision).
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"trace\":\"{}\",\"prefetcher\":\"{}\",",
                "\"processes\":{},\"accesses\":{},",
                "\"coverage\":{:.4},\"accuracy\":{:.4},",
                "\"timeliness_p50_us\":{:.3},\"wasted_ratio\":{:.4},",
                "\"prefetched\":{},\"covered\":{},\"wasted\":{},",
                "\"p50_fault_us\":{:.3},\"p99_fault_us\":{:.3},",
                "\"completion_ms\":{:.3},\"outcome_checksum\":\"{:#018x}\",",
                "\"identical_modes\":{}}}"
            ),
            self.trace,
            self.prefetcher,
            self.processes,
            self.accesses,
            self.coverage,
            self.accuracy,
            self.timeliness_p50_us,
            self.wasted_ratio,
            self.prefetched,
            self.covered,
            self.wasted,
            self.p50_fault_us,
            self.p99_fault_us,
            self.completion_ms,
            self.outcome_checksum,
            self.modes_identical,
        )
    }
}

/// The full matrix: every corpus entry × every selected competitor.
#[derive(Debug, Clone)]
pub struct ArenaReport {
    /// Whether the run used quick sizing.
    pub quick: bool,
    /// Synthetic accesses per process.
    pub accesses: usize,
    /// Simulated cores per replay.
    pub cores: usize,
    /// Corpus entry names, matrix row order.
    pub traces: Vec<String>,
    /// Competitor names, matrix column order.
    pub prefetchers: Vec<String>,
    /// Cells in trace-major, competitor-minor order.
    pub cells: Vec<ArenaCell>,
}

impl ArenaReport {
    /// The cell for `(trace, prefetcher)`, if present.
    pub fn cell(&self, trace: &str, prefetcher: &str) -> Option<&ArenaCell> {
        self.cells
            .iter()
            .find(|c| c.trace == trace && c.prefetcher == prefetcher)
    }

    /// Renders the [`ARENA_SCHEMA`] JSON document (byte-stable for a given
    /// corpus and options).
    pub fn to_json(&self) -> String {
        let names = |v: &[String]| -> String {
            v.iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        let cells: Vec<String> = self.cells.iter().map(ArenaCell::to_json).collect();
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"quick\":{},\"accesses\":{},",
                "\"cores\":{},\"traces\":[{}],\"prefetchers\":[{}],",
                "\"cells\":[{}]}}\n"
            ),
            ARENA_SCHEMA,
            self.quick,
            self.accesses,
            self.cores,
            names(&self.traces),
            names(&self.prefetchers),
            cells.join(","),
        )
    }

    /// Renders the Table-1-style text matrix (one table per corpus entry).
    pub fn render_tables(&self) -> String {
        let mut out = String::new();
        for trace in &self.traces {
            let mut table = TextTable::new(vec![
                "prefetcher",
                "coverage",
                "accuracy",
                "timeliness p50 (us)",
                "wasted ratio",
                "p50 fault (us)",
                "p99 fault (us)",
                "completion (ms)",
            ])
            .with_title(format!("Prefetcher arena: {trace}"));
            for cell in self.cells.iter().filter(|c| &c.trace == trace) {
                table.add_row(vec![
                    cell.prefetcher.clone(),
                    format!("{:.3}", cell.coverage),
                    format!("{:.3}", cell.accuracy),
                    format!("{:.1}", cell.timeliness_p50_us),
                    format!("{:.3}", cell.wasted_ratio),
                    format!("{:.1}", cell.p50_fault_us),
                    format!("{:.1}", cell.p99_fault_us),
                    format!("{:.2}", cell.completion_ms),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

/// Bit-identity of two replays over every aggregate the arena reports,
/// including the prefetch-outcome ledger and the exact latency samples.
pub fn results_identical(a: &mut RunResult, b: &mut RunResult) -> bool {
    a.completion_time == b.completion_time
        && a.total_accesses == b.total_accesses
        && a.remote_accesses == b.remote_accesses
        && a.first_touch_faults == b.first_touch_faults
        && a.pages_swapped_out == b.pages_swapped_out
        && a.cache_stats == b.cache_stats
        && a.prefetch_stats.pages_prefetched() == b.prefetch_stats.pages_prefetched()
        && a.prefetch_stats.prefetch_hits() == b.prefetch_stats.prefetch_hits()
        && a.prefetch_outcomes == b.prefetch_outcomes
        && a.access_latency.sorted_samples() == b.access_latency.sorted_samples()
        && a.remote_access_latency.sorted_samples() == b.remote_access_latency.sorted_samples()
        && a.fault_stats == b.fault_stats
        && a.recovery_stats == b.recovery_stats
}

fn cell_builder(cores: usize, mode: ReplayMode) -> SimConfigBuilder {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_micros(250))
        .seed(EXPERIMENT_SEED)
        .replay_mode(mode)
}

/// Builds the setup for one competitor. The data path, eviction policy, and
/// every sizing knob are identical across competitors; only the prefetcher
/// factory differs.
fn competitor_setup(
    name: &str,
    models: &PreparedModels,
    cores: usize,
    mode: ReplayMode,
) -> Result<SimSetup, ArenaError> {
    let builder = cell_builder(cores, mode);
    let builder = match name {
        "DvmmReadAhead" => builder.custom_prefetcher(DvmmReadAheadFactory),
        "Leap" => builder.prefetcher(PrefetcherKind::Leap),
        "Markov-1" => builder.custom_prefetcher(FrozenMarkovFactory::new(models.markov1.clone())),
        "Markov-2" => builder.custom_prefetcher(FrozenMarkovFactory::new(models.markov2.clone())),
        "Programmed-3PO" => builder.custom_prefetcher(CompiledProgramFactory::new(
            models.program.clone(),
            DEFAULT_PROGRAM_LOOKAHEAD,
        )),
        other => {
            return Err(ArenaError::UnknownPrefetcher {
                name: other.to_string(),
            })
        }
    };
    Ok(builder.build_setup()?)
}

/// Runs one (entry, competitor) cell: both replay modes, identity check,
/// metrics from the serial result.
///
/// Each replay is *prepopulated* (the working sets are touched once in
/// address order before the measured accesses), the paper's microbenchmark
/// methodology. Prepopulation fixes the swap-slot layout to the address
/// order, so the slot-addressed fault stream the prefetchers see carries
/// the same delta structure as the rank-space corpus traces the learned and
/// programmed competitors were prepared on.
pub fn run_cell(
    entry: &ArenaTrace,
    models: &PreparedModels,
    name: &str,
    cores: usize,
) -> Result<ArenaCell, ArenaError> {
    let run = |mode: ReplayMode| -> Result<RunResult, ArenaError> {
        let mut sim = competitor_setup(name, models, cores, mode)?.vmm();
        sim.set_prepopulate_multi(true);
        Ok(sim.run_multi(&entry.traces))
    };
    let mut serial = run(ReplayMode::Serial)?;
    let mut threaded = run(ReplayMode::Threaded)?;
    let modes_identical = results_identical(&mut serial, &mut threaded);
    let outcomes = serial.prefetch_outcomes;
    Ok(ArenaCell {
        trace: entry.name.clone(),
        prefetcher: name.to_string(),
        processes: entry.traces.len(),
        accesses: serial.total_accesses,
        coverage: serial.prefetch_stats.coverage(),
        accuracy: serial.prefetch_stats.accuracy(),
        timeliness_p50_us: serial.prefetch_stats.timeliness().median().as_nanos() as f64 / 1e3,
        wasted_ratio: outcomes.wasted_ratio(),
        prefetched: outcomes.prefetched(),
        covered: outcomes.covered(),
        wasted: outcomes.wasted(),
        p50_fault_us: serial.median_remote_latency().as_nanos() as f64 / 1e3,
        p99_fault_us: serial.p99_remote_latency().as_nanos() as f64 / 1e3,
        completion_ms: serial.completion_time.as_nanos() as f64 / 1e6,
        outcome_checksum: outcomes.checksum(),
        modes_identical,
    })
}

/// Runs the full arena for `opts`: builds the corpus, prepares each entry's
/// learned/compiled competitors, and replays every cell in both modes.
pub fn run_arena(opts: &ArenaOptions) -> Result<ArenaReport, ArenaError> {
    let competitors = opts.competitor_names()?;
    let corpus = build_corpus(opts)?;
    let mut cells = Vec::with_capacity(corpus.len() * competitors.len());
    for entry in &corpus {
        let models = PreparedModels::prepare(entry);
        for name in &competitors {
            cells.push(run_cell(entry, &models, name, opts.cores)?);
        }
    }
    Ok(ArenaReport {
        quick: opts.quick,
        accesses: opts.synthetic_accesses(),
        cores: opts.cores,
        traces: corpus.iter().map(|e| e.name.clone()).collect(),
        prefetchers: competitors.iter().map(|s| s.to_string()).collect(),
        cells,
    })
}

/// `tests/fixtures/<name>` resolved against the workspace root (the bench
/// crate lives two levels down).
pub fn workspace_fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let opts = parse_args(&[]).unwrap();
        assert!(!opts.quick);
        assert!(opts.synthetic);
        assert_eq!(opts.synthetic_accesses(), FULL_ACCESSES);
        let opts = parse_args(&strs(&[
            "--quick",
            "--cores",
            "4",
            "--prefetcher",
            "Leap",
            "--out",
            "m.json",
        ]))
        .unwrap();
        assert!(opts.quick);
        assert_eq!(opts.cores, 4);
        assert_eq!(opts.synthetic_accesses(), QUICK_ACCESSES);
        assert_eq!(opts.competitor_names().unwrap(), vec!["Leap"]);
        assert_eq!(opts.out.as_deref(), Some("m.json"));
    }

    #[test]
    fn parse_rejects_conflicts_both_orders() {
        assert!(matches!(
            parse_args(&strs(&["--quick", "--accesses", "100"])),
            Err(ArenaError::ConflictingFlags {
                first: "--quick",
                second: "--accesses"
            })
        ));
        assert!(matches!(
            parse_args(&strs(&["--accesses", "100", "--quick"])),
            Err(ArenaError::ConflictingFlags {
                first: "--accesses",
                second: "--quick"
            })
        ));
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        assert!(matches!(
            parse_args(&strs(&["--frobnicate"])),
            Err(ArenaError::UnknownFlag { .. })
        ));
        assert!(matches!(
            parse_args(&strs(&["--cores"])),
            Err(ArenaError::MissingValue { .. })
        ));
        assert!(matches!(
            parse_args(&strs(&["--cores", "many"])),
            Err(ArenaError::InvalidValue { .. })
        ));
        assert!(matches!(
            parse_args(&strs(&["--prefetcher", "Oracle"])),
            Err(ArenaError::UnknownPrefetcher { .. })
        ));
        assert!(matches!(
            parse_args(&strs(&["--no-synthetic"])),
            Err(ArenaError::EmptyCorpus)
        ));
    }

    #[test]
    fn competitor_filter_preserves_canonical_order() {
        let opts = ArenaOptions {
            prefetchers: vec!["Markov-1".into(), "DvmmReadAhead".into()],
            ..ArenaOptions::default()
        };
        assert_eq!(
            opts.competitor_names().unwrap(),
            vec!["DvmmReadAhead", "Markov-1"]
        );
    }

    #[test]
    fn corpus_includes_synthetic_entries_and_rejects_bad_logs() {
        let opts = ArenaOptions {
            quick: true,
            ..ArenaOptions::default()
        };
        let corpus = build_corpus(&opts).unwrap();
        let names: Vec<&str> = corpus.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["fig11-app-mix", "stride-heavy", "seq-scan"]);
        assert!(corpus.iter().all(|e| !e.traces.is_empty()));

        let opts = ArenaOptions {
            synthetic: false,
            trace_logs: vec!["/no/such/file.log".into()],
            ..ArenaOptions::default()
        };
        assert!(matches!(
            build_corpus(&opts),
            Err(ArenaError::Ingest { .. })
        ));
    }

    #[test]
    fn prepared_program_collapses_repeats_across_the_entry() {
        use leap_workloads::Access;
        let entry = ArenaTrace {
            name: "t".into(),
            traces: vec![AccessTrace::new(
                "a",
                [5, 5, 7, 7, 5]
                    .map(|p| Access::read(p, Nanos::ZERO))
                    .to_vec(),
            )],
        };
        let models = PreparedModels::prepare(&entry);
        assert_eq!(
            models.program.as_ref(),
            &vec![PageAddr(5), PageAddr(7), PageAddr(5)]
        );
        assert_eq!(models.markov1.order(), MarkovOrder::First);
        assert_eq!(models.markov2.order(), MarkovOrder::Second);
    }

    #[test]
    fn single_cell_runs_and_agrees_across_modes() {
        let entry = ArenaTrace {
            name: "stride".into(),
            traces: vec![stride_trace(MIB, 4, 2)],
        };
        let models = PreparedModels::prepare(&entry);
        let cell = run_cell(&entry, &models, "Markov-1", 2).unwrap();
        assert!(cell.modes_identical, "serial and threaded replays diverged");
        assert!(cell.coverage > 0.0, "trained Markov must cover something");
        assert!(cell.accesses > 0);
    }

    #[test]
    fn unknown_competitor_is_a_typed_error() {
        let entry = ArenaTrace {
            name: "t".into(),
            traces: vec![sequential_trace(MIB, 1)],
        };
        let models = PreparedModels::prepare(&entry);
        match run_cell(&entry, &models, "Oracle", 1) {
            Err(ArenaError::UnknownPrefetcher { name }) => assert_eq!(name, "Oracle"),
            other => panic!("expected UnknownPrefetcher, got {other:?}"),
        }
    }

    #[test]
    fn report_json_carries_the_schema_and_cells() {
        let opts = ArenaOptions {
            accesses: Some(1_000),
            prefetchers: vec!["Leap".into(), "DvmmReadAhead".into()],
            ..ArenaOptions::default()
        };
        let report = run_arena(&opts).unwrap();
        assert_eq!(report.prefetchers, vec!["DvmmReadAhead", "Leap"]);
        assert_eq!(report.cells.len(), report.traces.len() * 2);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"leap-arena/1\""));
        assert!(json.contains("\"identical_modes\":true"));
        assert!(!json.contains("\"identical_modes\":false"));
        let tables = report.render_tables();
        assert!(tables.contains("Prefetcher arena: stride-heavy"));
    }
}
