//! The hedging figure: tail latency under churn with the recovery layer on.
//!
//! [`fig_churn`](crate::fig_churn) shows what churn does to Leap's latency
//! distribution; this figure shows what the recovery layer buys back. The
//! same canonical storm (and its partitioned variant) replays a read stream
//! through the lean data path twice — once bare, once with the
//! tail-tolerant policy (deadlines + retries + hedged reads) — and the
//! table compares p50/p99 alongside the recovery counters. The headline
//! result, pinned by a test, is that hedging flattens the storm's p99 to
//! at most half of the unprotected tail.
//!
//! Everything derives from `(EXPERIMENT_SEED, spec, policy)`: the fault
//! schedule comes from the fault-salted stream, recovery decisions from the
//! recovery-salted stream, so the bare and hedged runs see byte-identical
//! fault plans and workload draws.

use crate::EXPERIMENT_SEED;
use leap_datapath::{DataPath, LeanDataPath};
use leap_metrics::{LatencyHistogram, TextTable};
use leap_remote::{recovery_stream_seed, FaultPlan, FaultSpec, RecoveryPolicy, RecoveryStats};
use leap_sim_core::{DetRng, Nanos};

/// Reads per run; spread uniformly over the canonical storm window so every
/// fault epoch is sampled.
const READS: u64 = 2_000;

const CORES: usize = 4;

/// The fault intensities the figure sweeps.
pub fn hedging_intensities() -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("steady state", FaultSpec::none()),
        ("canonical storm", FaultSpec::canonical_storm()),
        ("partition storm", FaultSpec::canonical_partition_storm()),
    ]
}

/// Replays the read stream through the lean data path under `(spec,
/// policy)`, returning the latency distribution and the recovery counters.
pub fn run_hedged(spec: &FaultSpec, policy: RecoveryPolicy) -> (LatencyHistogram, RecoveryStats) {
    let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(EXPERIMENT_SEED));
    if spec.is_active() {
        let machines = path.agent().cluster().len() as u32;
        path.agent_mut()
            .install_fault_plan(FaultPlan::from_spec(EXPERIMENT_SEED, spec, machines));
    }
    if policy.is_active() {
        path.agent_mut()
            .install_recovery(policy, recovery_stream_seed(EXPERIMENT_SEED));
    }
    // Issue every read inside the canonical storm window (also used for the
    // steady-state baseline, where the instants are inert) so the tail of
    // the distribution is shaped by the faults, not by healthy padding.
    let window = FaultSpec::canonical_storm();
    let span = window
        .horizon
        .saturating_sub(window.start)
        .as_nanos()
        .max(1);
    let mut latencies = LatencyHistogram::default();
    for i in 0..READS {
        let now = window.start + Nanos::from_nanos(i * span / READS);
        let breakdown = path.read_page(i.wrapping_mul(11), (i % CORES as u64) as usize, now);
        latencies.record(breakdown.total());
    }
    (latencies, path.recovery_stats())
}

/// The hedging figure: p50/p99 read latency and recovery counters vs fault
/// intensity, recovery off against the tail-tolerant policy.
pub fn fig_hedging() -> String {
    let mut table = TextTable::new(vec![
        "intensity",
        "recovery",
        "p50 (us)",
        "p99 (us)",
        "hedges won",
        "hedges wasted",
        "retries",
        "degraded",
        "failfasts",
    ])
    .with_title(format!(
        "Hedged reads under churn: {READS} reads over the canonical storm window \
         ({CORES} cores, seed {EXPERIMENT_SEED})",
    ));
    for (intensity, spec) in hedging_intensities() {
        for (label, policy) in [
            ("off", RecoveryPolicy::none()),
            ("tail-tolerant", RecoveryPolicy::tail_tolerant()),
        ] {
            let (mut latencies, stats) = run_hedged(&spec, policy);
            table.add_row(vec![
                intensity.to_string(),
                label.to_string(),
                format!("{:.2}", latencies.median().as_micros_f64()),
                format!("{:.2}", latencies.percentile(99.0).as_micros_f64()),
                format!("{}", stats.hedges_won),
                format!("{}", stats.hedges_wasted),
                format!("{}", stats.retries),
                format!("{}", stats.degraded_reads),
                format!("{}", stats.partition_failfasts),
            ]);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hedging_halves_the_storm_p99() {
        // The acceptance pin: under the canonical storm, the tail-tolerant
        // policy's measured p99 read latency is at most half of the
        // unprotected p99.
        let storm = FaultSpec::canonical_storm();
        let (mut bare, bare_stats) = run_hedged(&storm, RecoveryPolicy::none());
        let (mut hedged, stats) = run_hedged(&storm, RecoveryPolicy::tail_tolerant());
        assert!(bare_stats.is_quiet(), "no policy, no recovery actions");
        assert!(stats.hedges_issued > 0, "the storm must trigger hedges");
        assert!(stats.hedges_won > 0, "some hedges must win");
        let bare_p99 = bare.percentile(99.0);
        let hedged_p99 = hedged.percentile(99.0);
        assert!(
            hedged_p99.as_nanos() * 2 <= bare_p99.as_nanos(),
            "hedging must at least halve the storm p99: \
             {hedged_p99} hedged vs {bare_p99} bare"
        );
    }

    #[test]
    fn recovery_never_inflates_the_healthy_median() {
        let healthy = FaultSpec::none();
        let (mut bare, _) = run_hedged(&healthy, RecoveryPolicy::none());
        let (mut hedged, _) = run_hedged(&healthy, RecoveryPolicy::tail_tolerant());
        // Hedges only replace a sample when the hedge completes sooner, so
        // the steady-state median must not regress.
        assert!(hedged.median() <= bare.median());
    }

    #[test]
    fn partition_storm_reroutes_instead_of_stalling() {
        let spec = FaultSpec::canonical_partition_storm();
        let (_, stats) = run_hedged(&spec, RecoveryPolicy::tail_tolerant());
        assert!(
            stats.partition_failfasts > 0 || stats.degraded_reads > 0,
            "three partition epochs must force reroutes or degradation: {stats:?}"
        );
    }

    #[test]
    fn fig_hedging_renders_every_intensity() {
        let t = fig_hedging();
        for needle in [
            "steady state",
            "canonical storm",
            "partition storm",
            "tail-tolerant",
            "hedges won",
        ] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
    }
}
