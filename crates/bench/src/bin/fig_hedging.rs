fn main() {
    println!("{}", leap_bench::fig_hedging());
}
