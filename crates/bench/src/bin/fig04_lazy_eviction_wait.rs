//! Regenerates Figure 4: lazy prefetch-cache eviction wait times.
fn main() {
    println!("{}", leap_bench::fig04_lazy_eviction_wait());
}
