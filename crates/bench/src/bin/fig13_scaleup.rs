//! Regenerates the Figure 13 scale-up curve: throughput vs process count
//! over 4 cores, computed from per-core `FaultEvent` streams.
fn main() {
    println!("{}", leap_bench::fig13_scaleup());
}
