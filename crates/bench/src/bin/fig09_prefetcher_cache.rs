//! Regenerates Figure 9: cache adds/misses and completion time per prefetcher.
fn main() {
    println!("{}", leap_bench::fig09_prefetcher_cache());
}
