//! Regenerates `fig_tenants`: multi-tenant service scale-up — aggregate
//! pages/sec and worst p99 fault latency vs tenant count, synchronous
//! (depth 1) vs pipelined (depth 8) remote I/O. Pass `--quick` for the CI
//! smoke sizing.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (counts, accesses): (&[usize], usize) = if quick {
        (&[2, 4, 8], 2_000)
    } else {
        (&[1, 2, 4, 8, 12, 16], 8_000)
    };
    println!("{}", leap_bench::fig_tenants(counts, accesses));
}
