//! Regenerates Figure 10: prefetch accuracy, coverage, and timeliness.
fn main() {
    println!("{}", leap_bench::fig10_prefetch_effectiveness());
}
