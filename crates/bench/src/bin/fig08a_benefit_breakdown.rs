//! Regenerates Figure 8a: Leap benefit breakdown (data path, prefetcher, eviction).
fn main() {
    println!("{}", leap_bench::fig08a_benefit_breakdown());
}
