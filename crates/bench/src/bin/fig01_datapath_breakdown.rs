//! Regenerates Figure 1: per-stage data-path latency breakdown.
fn main() {
    println!("{}", leap_bench::fig01_datapath_breakdown());
}
