//! Regenerates Table 1: qualitative comparison of prefetching techniques.
fn main() {
    println!("{}", leap_bench::table1_prefetcher_comparison());
}
