//! Regenerates Figure 2: default-data-path latency distributions.
fn main() {
    println!("{}", leap_bench::fig02_default_datapath_cdf());
}
