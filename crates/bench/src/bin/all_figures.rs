//! Runs every figure/table experiment in sequence and prints the reports.
fn main() {
    let reports: Vec<(&str, String)> = vec![
        ("Figure 1", leap_bench::fig01_datapath_breakdown()),
        ("Figure 2", leap_bench::fig02_default_datapath_cdf()),
        ("Figure 3", leap_bench::fig03_pattern_windows()),
        ("Figure 4", leap_bench::fig04_lazy_eviction_wait()),
        ("Table 1", leap_bench::table1_prefetcher_comparison()),
        ("Figure 7", leap_bench::fig07_leap_datapath_cdf()),
        ("Figure 8a", leap_bench::fig08a_benefit_breakdown()),
        ("Figure 8b", leap_bench::fig08b_slow_storage()),
        ("Figure 9", leap_bench::fig09_prefetcher_cache()),
        ("Figure 10", leap_bench::fig10_prefetch_effectiveness()),
        ("Figure 11", leap_bench::fig11_applications()),
        ("Figure 12", leap_bench::fig12_constrained_cache()),
        ("Figure 13", leap_bench::fig13_multi_app()),
        ("Figure 13 scale-up", leap_bench::fig13_scaleup()),
        (
            "Tenant scale-up",
            leap_bench::fig_tenants(&[2, 4, 8], 2_000),
        ),
        ("Leap under churn", leap_bench::fig_churn()),
        ("Tail latency under churn", leap_bench::fig_hedging()),
    ];
    for (name, report) in reports {
        println!("==================== {name} ====================");
        println!("{report}");
    }
}
