//! Regenerates Figure 7: latency distributions with and without Leap.
fn main() {
    println!("{}", leap_bench::fig07_leap_datapath_cdf());
}
