//! Regenerates Figure 13: all four applications running concurrently.
fn main() {
    println!("{}", leap_bench::fig13_multi_app());
}
