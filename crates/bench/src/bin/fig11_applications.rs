//! Regenerates Figure 11: application completion time / throughput.
fn main() {
    println!("{}", leap_bench::fig11_applications());
}
