//! Regenerates Figure 3: access-pattern window classification per application.
fn main() {
    println!("{}", leap_bench::fig03_pattern_windows());
}
