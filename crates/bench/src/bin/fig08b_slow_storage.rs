//! Regenerates Figure 8b: the Leap prefetcher over slow local storage.
fn main() {
    println!("{}", leap_bench::fig08b_slow_storage());
}
