//! Wall-clock replay performance harness: serial vs thread-parallel replay.
//!
//! Replays the Figure 11 application mix and a large synthetic trace set
//! through `Simulator::run_multi` in both [`ReplayMode`]s, measures host
//! wall-clock time and replay throughput (pages replayed per second of host
//! time), verifies the two modes produced identical simulated results, and
//! writes the machine-readable trajectory file `BENCH_replay.json`.
//!
//! ```text
//! cargo run --release -p leap-bench --bin perf_harness -- [--quick] \
//!     [--cores N] [--out PATH] [--trace LOG]... [--tenants N] \
//!     [--fault-plan PLAN.json] [--recovery]
//! ```
//!
//! `--quick` shrinks the traces for CI smoke runs. `--trace LOG`
//! (repeatable) adds a recorded fault log (perf-script or DAMON format,
//! auto-detected — see `leap_workloads::ingest`) as an extra workload row,
//! replayed through the same serial/threaded comparison. The reported
//! speedup is `serial wall-clock / threaded wall-clock`; it scales with the
//! host's available cores (the simulated results are bit-identical either
//! way).
//!
//! `--tenants N` additionally runs `N` tenants through the multi-tenant
//! far-memory service (per-tenant budgets, async depth 8) in both replay
//! modes, asserts the two modes' per-tenant QoS reports are bit-identical,
//! and emits a `tenants` section with one row per tenant.
//!
//! `--fault-plan PLAN.json` installs a fault-injection spec (the JSON that
//! `leap::FaultSpec::to_json` emits — see `tests/fixtures/storm_plan.json`)
//! into every workload replay, so churn runs land in `BENCH_replay.json`
//! with their fault accounting; the serial/threaded identity assertion then
//! covers the fault checksums too.
//!
//! `--recovery` additionally installs the tail-tolerant recovery policy
//! (deadlines + retries + hedged reads) into every workload replay; the
//! identity assertion then also covers the recovery-stats checksums, and a
//! `recovery` section with the per-workload counters lands in the output.
//!
//! Schema note: `leap-replay-bench/5` adds the optional top-level
//! `recovery` key (null unless `--recovery` was passed) to
//! `leap-replay-bench/4`, which added the optional `faults` key to `/3`,
//! which itself added the optional `tenants` key to `/2`; nothing else
//! changed, so `/4` consumers that ignore unknown keys read `/5` files
//! unmodified.

use std::time::Instant;

use leap::prelude::*;
use leap::stage_timing::{self, StageBreakdown};
use leap::{FaultSpec, RecoveryPolicy};
use leap_bench::tenant_figures;
use leap_bench::{TraceSource, EXPERIMENT_SEED};
use leap_service::ServiceReport;
use leap_sim_core::Nanos;
use leap_workloads::AccessTrace;

/// Async depth the tenant-service rows run at: deep enough that remote I/O
/// genuinely overlaps compute, bounded so the virtual-time reactor (not the
/// legacy free-overlap path) is what CI exercises.
const TENANT_ASYNC_DEPTH: usize = 8;

/// One workload's measurements in one replay mode.
struct ModeMeasurement {
    wall_ms: f64,
    pages_per_sec: f64,
    completion: Nanos,
    remote_accesses: u64,
    result: RunResult,
    /// Per-stage hot-path time from this mode's dedicated attribution
    /// repeat (all zeros unless the binary was built with `--features
    /// stage-timing`). The wall-clock repeats above run with the probes
    /// inactive, so they never pay for this breakdown.
    stages: StageBreakdown,
}

/// One workload's full row: both modes plus the derived speedup.
struct WorkloadRow {
    name: String,
    processes: usize,
    accesses: u64,
    serial: ModeMeasurement,
    threaded: ModeMeasurement,
    identical: bool,
}

fn config(cores: usize, mode: ReplayMode, fault: FaultSpec, recovery: RecoveryPolicy) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_micros(500))
        .seed(EXPERIMENT_SEED)
        .replay_mode(mode)
        .fault_plan(fault)
        .recovery_policy(recovery)
        .build()
        .expect("valid harness config")
}

/// Replays `traces` once in `mode`, best-of-`repeats` wall-clock.
///
/// The timed repeats run with the stage probes switched off (one
/// predictable branch per probe site), so the headline pages/sec is
/// observer-free; a stage-timing build then runs one extra *attribution*
/// repeat with the probes active to fill the per-stage breakdown. Simulated
/// results are bit-identical either way — the probes read only the host
/// clock.
fn measure(
    traces: &[AccessTrace],
    cores: usize,
    mode: ReplayMode,
    repeats: usize,
    fault: FaultSpec,
    recovery: RecoveryPolicy,
) -> ModeMeasurement {
    let accesses: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    stage_timing::reset();
    stage_timing::set_active(false);
    for _ in 0..repeats.max(1) {
        let sim = VmmSimulator::new(config(cores, mode, fault, recovery));
        let start = Instant::now();
        let result = sim.run_multi(traces);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(elapsed);
        last = Some(result);
    }
    if stage_timing::ENABLED {
        stage_timing::set_active(true);
        let sim = VmmSimulator::new(config(cores, mode, fault, recovery));
        let _ = sim.run_multi(traces);
        stage_timing::set_active(false);
    }
    let stages = stage_timing::snapshot();
    let result = last.expect("at least one repeat");
    ModeMeasurement {
        wall_ms: best_ms,
        pages_per_sec: accesses as f64 / (best_ms / 1e3),
        completion: result.completion_time,
        remote_accesses: result.remote_accesses,
        result,
        stages,
    }
}

/// True when two runs produced bit-identical simulated outcomes: every
/// counter, the cache statistics, and the exact latency distributions.
fn results_identical(a: &mut RunResult, b: &mut RunResult) -> bool {
    a.completion_time == b.completion_time
        && a.total_accesses == b.total_accesses
        && a.remote_accesses == b.remote_accesses
        && a.first_touch_faults == b.first_touch_faults
        && a.pages_swapped_out == b.pages_swapped_out
        && a.cache_stats == b.cache_stats
        && a.prefetch_stats.pages_prefetched() == b.prefetch_stats.pages_prefetched()
        && a.prefetch_stats.prefetch_hits() == b.prefetch_stats.prefetch_hits()
        && a.access_latency.sorted_samples() == b.access_latency.sorted_samples()
        && a.remote_access_latency.sorted_samples() == b.remote_access_latency.sorted_samples()
        && a.allocation_wait.sorted_samples() == b.allocation_wait.sorted_samples()
        && a.eviction_wait.sorted_samples() == b.eviction_wait.sorted_samples()
        && a.fault_stats == b.fault_stats
        && a.recovery_stats == b.recovery_stats
        && a.tenant_recovery == b.tenant_recovery
}

/// One replay mode's wall-clock measurement of the tenant service run.
struct TenantModeMeasurement {
    wall_ms: f64,
    report: ServiceReport,
}

/// Best-of-`repeats` wall clock for a full `--tenants N` service run.
fn measure_tenants(
    n: usize,
    accesses: usize,
    mode: ReplayMode,
    repeats: usize,
) -> TenantModeMeasurement {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let report = tenant_figures::run_tenants(n, accesses, TENANT_ASYNC_DEPTH, mode);
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(report);
    }
    TenantModeMeasurement {
        wall_ms: best_ms,
        report: last.expect("at least one repeat"),
    }
}

/// Bit-identity of two service runs: admission plan, wave makespans,
/// pipeline counters, per-tenant eviction attribution, and every tenant's
/// full QoS report (counters, percentiles, both event-stream checksums).
fn service_reports_identical(a: &ServiceReport, b: &ServiceReport) -> bool {
    a.admission == b.admission
        && a.waves.len() == b.waves.len()
        && a.waves.iter().zip(&b.waves).all(|(wa, wb)| {
            wa.makespan == wb.makespan
                && wa.result.pipeline == wb.result.pipeline
                && wa.result.tenant_evictions == wb.result.tenant_evictions
                && wa.tenants == wb.tenants
        })
}

fn run_workload(
    name: String,
    traces: Vec<AccessTrace>,
    cores: usize,
    repeats: usize,
    fault: FaultSpec,
    recovery: RecoveryPolicy,
) -> WorkloadRow {
    let accesses: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let mut serial = measure(&traces, cores, ReplayMode::Serial, repeats, fault, recovery);
    let mut threaded = measure(
        &traces,
        cores,
        ReplayMode::Threaded,
        repeats,
        fault,
        recovery,
    );
    // Both modes must agree on the full simulated outcome (every counter
    // and the exact latency distributions) — this doubles as a determinism
    // smoke check on every harness run.
    let identical = results_identical(&mut serial.result, &mut threaded.result);
    WorkloadRow {
        name,
        processes: traces.len(),
        accesses,
        serial,
        threaded,
        identical,
    }
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); 0 when unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

fn json_mode(m: &ModeMeasurement) -> String {
    format!(
        concat!(
            "{{\"wall_ms\":{:.3},\"pages_per_sec\":{:.0},",
            "\"sim_completion_ns\":{},\"remote_accesses\":{},",
            "\"stage_breakdown\":{}}}"
        ),
        m.wall_ms,
        m.pages_per_sec,
        m.completion.as_nanos(),
        m.remote_accesses,
        json_stages(&m.stages),
    )
}

/// The per-stage hot-path breakdown from the mode's attribution repeat (so
/// the *shares* are what matters, not the absolute ms). All zeros without
/// `--features stage-timing`.
fn json_stages(s: &StageBreakdown) -> String {
    format!(
        concat!(
            "{{\"prefetcher_ms\":{:.3},\"data_path_ms\":{:.3},",
            "\"cache_ms\":{:.3},\"eviction_ms\":{:.3}}}"
        ),
        s.prefetcher_ns as f64 / 1e6,
        s.data_path_ns as f64 / 1e6,
        s.cache_ns as f64 / 1e6,
        s.eviction_ns as f64 / 1e6,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cores = args
        .iter()
        .position(|a| a == "--cores")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_replay.json".to_string());
    let trace_logs: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--trace")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let tenants: usize = args
        .iter()
        .position(|a| a == "--tenants")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let fault_plan_path = args
        .iter()
        .position(|a| a == "--fault-plan")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let fault = fault_plan_path
        .as_deref()
        .map(|path| {
            let contents = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read fault plan {path}: {e}");
                std::process::exit(2);
            });
            FaultSpec::from_json(&contents).unwrap_or_else(|e| {
                eprintln!("invalid fault plan {path}: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(FaultSpec::none());
    let recovery = if args.iter().any(|a| a == "--recovery") {
        RecoveryPolicy::tail_tolerant()
    } else {
        RecoveryPolicy::none()
    };

    let (app_accesses, synth_accesses, repeats) = if quick {
        (10_000, 20_000, 2)
    } else {
        (60_000, 150_000, 3)
    };
    let tenant_accesses = if quick { 2_000 } else { 8_000 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "replay perf harness: {cores} shards on {host_cores} host core(s){}",
        if quick { " [quick]" } else { "" }
    );

    let mut sources = vec![
        TraceSource::Fig11Mix {
            accesses: app_accesses,
        },
        TraceSource::SyntheticLarge {
            accesses_per_proc: synth_accesses,
        },
    ];
    sources.extend(
        trace_logs
            .iter()
            .map(|p| TraceSource::FaultLog { path: p.into() }),
    );

    let rows: Vec<WorkloadRow> = sources
        .iter()
        .map(|source| {
            let traces = source.load().unwrap_or_else(|e| {
                eprintln!("failed to load {}: {e}", source.label());
                std::process::exit(2);
            });
            run_workload(source.label(), traces, cores, repeats, fault, recovery)
        })
        .collect();

    if fault.is_active() {
        println!(
            "fault plan: {} spikes, {} degraded epochs, {} machine failures, {} storms over \
             [{} ns, {} ns)",
            fault.latency_spikes,
            fault.degraded_epochs,
            fault.machine_failures,
            fault.reconnect_storms,
            fault.start.as_nanos(),
            fault.horizon.as_nanos(),
        );
    }
    if recovery.is_active() {
        println!(
            "recovery policy: {} ns deadline, {} retries, {} ns hedge delay",
            recovery.timeout.as_nanos(),
            recovery.max_retries,
            recovery.hedge_delay.as_nanos(),
        );
    }

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>14} {:>14} {:>8} {:>6}",
        "workload",
        "accesses",
        "serial ms",
        "threaded ms",
        "serial pg/s",
        "threaded pg/s",
        "speedup",
        "equal"
    );
    for row in &rows {
        let speedup = row.serial.wall_ms / row.threaded.wall_ms;
        println!(
            "{:<16} {:>9} {:>12.1} {:>12.1} {:>14.0} {:>14.0} {:>7.2}x {:>6}",
            row.name,
            row.accesses,
            row.serial.wall_ms,
            row.threaded.wall_ms,
            row.serial.pages_per_sec,
            row.threaded.pages_per_sec,
            speedup,
            row.identical,
        );
        assert!(
            row.identical,
            "{}: serial and threaded replays diverged",
            row.name
        );
    }

    let tenant_section = (tenants > 0).then(|| {
        let serial = measure_tenants(tenants, tenant_accesses, ReplayMode::Serial, repeats);
        let threaded = measure_tenants(tenants, tenant_accesses, ReplayMode::Threaded, repeats);
        let identical = service_reports_identical(&serial.report, &threaded.report);
        let aggregate: f64 = serial
            .report
            .waves
            .iter()
            .map(|w| w.aggregate_pages_per_sec)
            .sum();
        println!(
            "\ntenant service: {tenants} tenants x {tenant_accesses} accesses \
             (async depth {TENANT_ASYNC_DEPTH}): serial {:.1} ms, threaded {:.1} ms, \
             {aggregate:.0} simulated pages/s, identical {identical}",
            serial.wall_ms, threaded.wall_ms,
        );
        for (id, qos) in serial.report.tenant_reports() {
            println!(
                "  {id}: {:.0} pages/s, p50 {:.1} us, p99 {:.1} us, hit ratio {:.2}",
                qos.pages_per_sec,
                qos.p50_fault_latency.as_nanos() as f64 / 1e3,
                qos.p99_fault_latency.as_nanos() as f64 / 1e3,
                qos.hit_ratio,
            );
        }
        assert!(identical, "tenant service: replay modes diverged");
        let rows: Vec<String> = serial
            .report
            .tenant_reports()
            .map(|(id, qos)| {
                format!(
                    concat!(
                        "{{\"tenant\":\"{}\",\"accesses\":{},",
                        "\"remote_accesses\":{},\"pages_per_sec\":{:.0},",
                        "\"p50_fault_us\":{:.3},\"p99_fault_us\":{:.3},",
                        "\"hit_ratio\":{:.4},\"behavior_checksum\":\"{:#018x}\",",
                        "\"timing_checksum\":\"{:#018x}\"}}"
                    ),
                    id,
                    qos.accesses,
                    qos.remote_accesses,
                    qos.pages_per_sec,
                    qos.p50_fault_latency.as_nanos() as f64 / 1e3,
                    qos.p99_fault_latency.as_nanos() as f64 / 1e3,
                    qos.hit_ratio,
                    qos.behavior_checksum,
                    qos.timing_checksum,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"count\":{},\"accesses_per_tenant\":{},",
                "\"async_depth\":{},\"serial_wall_ms\":{:.3},",
                "\"threaded_wall_ms\":{:.3},\"aggregate_pages_per_sec\":{:.0},",
                "\"identical_results\":{},\"rows\":[{}]}}"
            ),
            tenants,
            tenant_accesses,
            TENANT_ASYNC_DEPTH,
            serial.wall_ms,
            threaded.wall_ms,
            aggregate,
            identical,
            rows.join(","),
        )
    });

    if stage_timing::ENABLED {
        println!("\nper-stage hot-path time (serial mode, attribution repeat):");
        for row in &rows {
            let s = &row.serial.stages;
            let total = s.total_ns().max(1) as f64;
            println!(
                "{:<16} prefetcher {:>6.1}ms ({:>4.1}%)  data-path {:>6.1}ms ({:>4.1}%)  \
                 cache {:>6.1}ms ({:>4.1}%)  eviction {:>6.1}ms ({:>4.1}%)",
                row.name,
                s.prefetcher_ns as f64 / 1e6,
                s.prefetcher_ns as f64 * 100.0 / total,
                s.data_path_ns as f64 / 1e6,
                s.data_path_ns as f64 * 100.0 / total,
                s.cache_ns as f64 / 1e6,
                s.cache_ns as f64 * 100.0 / total,
                s.eviction_ns as f64 / 1e6,
                s.eviction_ns as f64 * 100.0 / total,
            );
        }
    }

    let workloads_json: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "{{\"name\":\"{}\",\"processes\":{},\"accesses\":{},",
                    "\"serial\":{},\"threaded\":{},",
                    "\"speedup\":{:.3},\"identical_results\":{}}}"
                ),
                row.name,
                row.processes,
                row.accesses,
                json_mode(&row.serial),
                json_mode(&row.threaded),
                row.serial.wall_ms / row.threaded.wall_ms,
                row.identical,
            )
        })
        .collect();
    // The churn section: the spec that was injected plus each workload's
    // fault accounting from the serial run (the threaded run is asserted
    // bit-identical above, so one copy suffices).
    let faults_section = fault.is_active().then(|| {
        let fault_rows: Vec<String> = rows
            .iter()
            .map(|row| {
                let f = &row.serial.result.fault_stats;
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"spiked_requests\":{},",
                        "\"degraded_requests\":{},\"reconnect_requests\":{},",
                        "\"machines_failed\":{},\"cancelled_requests\":{},",
                        "\"slabs_rereplicated\":{},\"slabs_lost\":{},",
                        "\"reconstruction_cost_ns\":{},\"checksum\":\"{:#018x}\"}}"
                    ),
                    row.name,
                    f.spiked_requests,
                    f.degraded_requests,
                    f.reconnect_requests,
                    f.machines_failed,
                    f.cancelled_requests,
                    f.slabs_rereplicated,
                    f.slabs_lost,
                    f.reconstruction_cost_total.as_nanos(),
                    f.checksum,
                )
            })
            .collect();
        format!(
            "{{\"spec\":{},\"rows\":[{}]}}",
            fault.to_json(),
            fault_rows.join(","),
        )
    });
    // The recovery section: the active policy plus each workload's recovery
    // counters from the serial run (cross-mode identity is asserted above,
    // recovery checksums included).
    let recovery_section = recovery.is_active().then(|| {
        let recovery_rows: Vec<String> = rows
            .iter()
            .map(|row| {
                let r = &row.serial.result.recovery_stats;
                format!(
                    concat!(
                        "{{\"name\":\"{}\",\"deadline_timeouts\":{},",
                        "\"retries\":{},\"backoff_wait_total_ns\":{},",
                        "\"hedges_issued\":{},\"hedges_won\":{},",
                        "\"hedges_wasted\":{},\"degraded_reads\":{},",
                        "\"partition_failfasts\":{},\"checksum\":\"{:#018x}\"}}"
                    ),
                    row.name,
                    r.deadline_timeouts,
                    r.retries,
                    r.backoff_wait_total.as_nanos(),
                    r.hedges_issued,
                    r.hedges_won,
                    r.hedges_wasted,
                    r.degraded_reads,
                    r.partition_failfasts,
                    r.checksum,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"policy\":{{\"timeout_ns\":{},\"max_retries\":{},",
                "\"backoff_base_ns\":{},\"backoff_jitter_ns\":{},",
                "\"hedge_delay_ns\":{}}},\"rows\":[{}]}}"
            ),
            recovery.timeout.as_nanos(),
            recovery.max_retries,
            recovery.backoff_base.as_nanos(),
            recovery.backoff_jitter.as_nanos(),
            recovery.hedge_delay.as_nanos(),
            recovery_rows.join(","),
        )
    });

    // Schema /5 = /4 plus the optional `recovery` key (see module docs).
    let json = format!(
        concat!(
            "{{\"schema\":\"leap-replay-bench/5\",\"quick\":{},",
            "\"shards\":{},\"host_cores\":{},\"peak_rss_kb\":{},",
            "\"stage_timing\":{},",
            "\"workloads\":[{}],",
            "\"tenants\":{},",
            "\"faults\":{},",
            "\"recovery\":{}}}\n"
        ),
        quick,
        cores,
        host_cores,
        peak_rss_kb(),
        stage_timing::ENABLED,
        workloads_json.join(","),
        tenant_section.unwrap_or_else(|| "null".to_string()),
        faults_section.unwrap_or_else(|| "null".to_string()),
        recovery_section.unwrap_or_else(|| "null".to_string()),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path} (peak RSS {} kB)", peak_rss_kb());
}
