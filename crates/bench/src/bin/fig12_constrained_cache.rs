//! Regenerates Figure 12: performance under constrained prefetch-cache sizes.
fn main() {
    println!("{}", leap_bench::fig12_constrained_cache());
}
