//! Prefetcher arena CLI: the corpus × prefetcher evaluation matrix.
//!
//! ```text
//! cargo run --release -p leap-bench --bin arena -- [--quick] \
//!     [--accesses N] [--cores N] [--trace LOG]... [--prefetcher NAME]... \
//!     [--no-synthetic] [--out PATH]
//! ```
//!
//! Replays every corpus entry (built-in synthetic mixes plus any ingested
//! `--trace` log) against the full competitor pool — `DvmmReadAhead`,
//! `Leap`, the offline-trained `Markov-1`/`Markov-2` delta models, and the
//! compiled `Programmed-3PO` schedule — in both replay modes, prints the
//! Table-1-style matrix, and writes the `leap-arena/1` JSON document
//! (default `BENCH_arena.json`).
//!
//! `--quick` shrinks the synthetic corpus for CI smoke runs; `--accesses N`
//! sets the sizing explicitly (the two conflict). `--prefetcher NAME`
//! (repeatable) restricts the pool; `--no-synthetic` drops the built-in
//! corpus and requires at least one `--trace`. All input errors are typed
//! and reported on stderr with exit code 2 — the binary never panics on bad
//! flags or unreadable logs.

use leap_bench::arena::{parse_args, run_arena};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args).unwrap_or_else(|e| {
        eprintln!("arena: {e}");
        std::process::exit(2);
    });
    let out_path = opts
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_arena.json".to_string());

    let report = run_arena(&opts).unwrap_or_else(|e| {
        eprintln!("arena: {e}");
        std::process::exit(2);
    });

    print!("{}", report.render_tables());
    for cell in &report.cells {
        assert!(
            cell.modes_identical,
            "{} / {}: serial and threaded replays diverged",
            cell.trace, cell.prefetcher
        );
    }
    println!(
        "arena: {} traces x {} prefetchers, {} cells, all mode-identical",
        report.traces.len(),
        report.prefetchers.len(),
        report.cells.len()
    );

    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("arena: failed to write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");
}
