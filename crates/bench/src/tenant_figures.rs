//! The `fig_tenants` experiment: multi-tenant service scale-up.
//!
//! Not a figure of the paper — it measures the repository's *service layer*
//! (admission + per-tenant budgets + async fault pipeline) the way the
//! paper's Figure 13 measures multi-process scale-up. For each tenant count
//! the far-memory service admits the tenants under per-tenant budgets that
//! force paging and replays them twice: once with a synchronous fault
//! pipeline (`async_depth = 1`, every remote read and write-back billed
//! in-line) and once with a deep pipeline (`async_depth = 8`, remote I/O
//! overlapping compute under a bounded in-flight budget). The figure
//! reports aggregate paging throughput and the worst per-tenant p99 fault
//! latency for both depths.
//!
//! Two invariants are checked on every run, not just in the test suite:
//!
//! - every admitted tenant's *behavior* checksum (a latency-blind FNV fold
//!   over its entire fault-event stream) is identical at both depths — the
//!   pipeline changes **when** things complete, never **what** the engine
//!   decides; and
//! - budgets are enforced: with working sets four times the per-tenant budget,
//!   every tenant pages, and every eviction is attributed to the tenant
//!   that faulted it in.
//!
//! The scheduler quantum is run-to-completion: the time-sharing scheduler
//! context-switches on *simulated* time, so a bounded quantum would make
//! the process interleaving depend on access latencies — which the async
//! depth changes by design. Run-to-completion keeps the engine's decisions
//! latency-independent so the two depths are event-for-event comparable.

use crate::EXPERIMENT_SEED;
use leap::prelude::*;
use leap_metrics::TextTable;
use leap_service::{AdmissionPolicy, FarMemoryService, ServiceReport, TenantSpec};
use leap_sim_core::units::MIB;
use leap_workloads::{AccessTrace, AppKind, AppModel};

/// Per-tenant working set: 2 MiB = 512 pages.
const TENANT_WORKING_SET: u64 = 2 * MIB;
/// Per-tenant budget: a quarter of the working set. Half is not enough —
/// the hot-set-skewed (Memcached-style) tenant would evict only cold pages
/// it never re-touches and so never fault remotely; at a quarter even the
/// hot set overflows and every tenant pages.
pub const TENANT_BUDGET_PAGES: u64 = 128;

/// `n` tenants drawn round-robin from the paper's application mix, each
/// with a distinct seed, a 2 MiB working set, `accesses` accesses, and a
/// half-working-set budget.
pub fn tenant_specs(n: usize, accesses: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            let kind = AppKind::ALL[i % AppKind::ALL.len()];
            let base = AppModel::new(kind, EXPERIMENT_SEED + i as u64)
                .with_working_set(TENANT_WORKING_SET)
                .with_accesses(accesses)
                .generate();
            let trace = AccessTrace::new(
                format!("tenant{i}-{}", base.name()),
                base.iter().copied().collect(),
            );
            TenantSpec::new(trace, TENANT_BUDGET_PAGES)
        })
        .collect()
}

/// The service `SimConfig` for tenant experiments: run-to-completion
/// quantum (see the module docs) and an explicit async depth.
pub fn service_config(cores: usize, depth: usize, mode: ReplayMode) -> SimConfig {
    SimConfig::builder()
        .memory_fraction(0.5)
        .cores(cores)
        .sched_quantum(Nanos::from_secs(3_600))
        .seed(EXPERIMENT_SEED)
        .replay_mode(mode)
        .async_depth(depth)
        .build()
        .expect("valid tenant config")
}

/// Runs `n` tenants through the service at `depth`, admitting them all in
/// one wave (capacity = sum of budgets).
pub fn run_tenants(n: usize, accesses: usize, depth: usize, mode: ReplayMode) -> ServiceReport {
    let specs = tenant_specs(n, accesses);
    let capacity: u64 = specs.iter().map(|s| s.budget_pages).sum();
    let mut service = FarMemoryService::new(
        service_config(4, depth, mode),
        capacity,
        AdmissionPolicy::Reject,
    );
    for spec in specs {
        service.register(spec);
    }
    service.run()
}

/// Panics unless `shallow` (depth 1) and `deep` (depth > 1) agree on every
/// tenant's behavior checksum and both enforce the budgets.
fn check_depth_invariants(n: usize, shallow: &ServiceReport, deep: &ServiceReport) {
    assert_eq!(shallow.admission.admitted_count(), n, "admission shortfall");
    assert_eq!(deep.admission.admitted_count(), n);
    for (ws, wd) in shallow.waves.iter().zip(&deep.waves) {
        for ((is_, rs), (id, rd)) in ws.tenants.iter().zip(&wd.tenants) {
            assert_eq!(is_, id, "tenant order diverged");
            assert_eq!(
                rs.behavior_checksum, rd.behavior_checksum,
                "async depth changed {is_}'s fault-event decisions"
            );
            assert!(rs.remote_accesses > 0, "{is_} never paged under budget");
        }
        let attributed: u64 = ws.result.tenant_evictions.values().sum();
        assert_eq!(
            attributed, ws.result.pages_swapped_out,
            "evictions not fully attributed to tenants"
        );
    }
}

/// Aggregate paging throughput over all waves, pages per second of makespan.
fn aggregate_pages_per_sec(report: &ServiceReport) -> f64 {
    report.waves.iter().map(|w| w.aggregate_pages_per_sec).sum()
}

/// Worst per-tenant p99 fault latency across all waves.
fn worst_p99(report: &ServiceReport) -> Nanos {
    report
        .waves
        .iter()
        .flat_map(|w| w.tenants.iter())
        .map(|(_, r)| r.p99_fault_latency)
        .max()
        .unwrap_or(Nanos::ZERO)
}

/// The `fig_tenants` table: aggregate pages/sec and worst p99 fault latency
/// vs tenant count, synchronous (depth 1) vs pipelined (depth 8) faults.
pub fn fig_tenants(counts: &[usize], accesses: usize) -> String {
    let mut table = TextTable::new(vec![
        "tenants",
        "depth-1 pages/s",
        "depth-8 pages/s",
        "speedup",
        "depth-1 p99 (us)",
        "depth-8 p99 (us)",
        "identical streams",
    ])
    .with_title(format!(
        "fig_tenants: service scale-up, async depth 8 vs synchronous faults \
         ({accesses} accesses/tenant, {TENANT_BUDGET_PAGES}-page budgets)"
    ));
    for &n in counts {
        let shallow = run_tenants(n, accesses, 1, ReplayMode::Serial);
        let deep = run_tenants(n, accesses, 8, ReplayMode::Serial);
        check_depth_invariants(n, &shallow, &deep);
        let (s_rate, d_rate) = (
            aggregate_pages_per_sec(&shallow),
            aggregate_pages_per_sec(&deep),
        );
        table.add_row(vec![
            format!("{n}"),
            format!("{s_rate:.0}"),
            format!("{d_rate:.0}"),
            format!("{:.2}x", d_rate / s_rate),
            format!("{:.1}", worst_p99(&shallow).as_nanos() as f64 / 1e3),
            format!("{:.1}", worst_p99(&deep).as_nanos() as f64 / 1e3),
            "yes".to_string(), // check_depth_invariants would have panicked
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_specs_are_distinct_and_budgeted() {
        let specs = tenant_specs(8, 400);
        assert_eq!(specs.len(), 8);
        assert!(specs.iter().all(|s| s.budget_pages == TENANT_BUDGET_PAGES));
        let names: std::collections::BTreeSet<_> =
            specs.iter().map(|s| s.trace.name().to_string()).collect();
        assert_eq!(names.len(), 8, "tenant names must be unique");
    }

    #[test]
    fn fig_tenants_renders_small_counts() {
        let t = fig_tenants(&[1, 2], 400);
        for needle in ["tenants", "depth-8", "speedup", "identical"] {
            assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
        }
    }

    #[test]
    fn deep_pipeline_beats_synchronous_faults() {
        let shallow = run_tenants(2, 400, 1, ReplayMode::Serial);
        let deep = run_tenants(2, 400, 8, ReplayMode::Serial);
        check_depth_invariants(2, &shallow, &deep);
        assert!(aggregate_pages_per_sec(&deep) > aggregate_pages_per_sec(&shallow));
    }
}
