//! [`TraceSource`]: where a benchmark workload's traces come from.
//!
//! The perf harness historically hard-coded two synthetic workloads; the
//! trace-ingestion subsystem adds recorded fault logs as a third source.
//! `TraceSource` names all three so harness rows, CLI flags
//! (`perf_harness --trace PATH`), and examples resolve workloads the same
//! way.

use leap_sim_core::units::MIB;
use leap_workloads::ingest::{ingest_path, IngestError};
use leap_workloads::{sequential_trace, stride_trace, AccessTrace, AppKind, AppModel};
use std::path::PathBuf;

use crate::EXPERIMENT_SEED;

/// A named source of multi-process benchmark traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSource {
    /// The Figure 11 application mix: all four paper applications side by
    /// side, `accesses` accesses each over 8 MiB working sets.
    Fig11Mix {
        /// Accesses per application trace.
        accesses: usize,
    },
    /// Four large regular synthetic traces (sequential + strides) sized so
    /// replay cost is dominated by the fault hot path.
    SyntheticLarge {
        /// Approximate accesses per process.
        accesses_per_proc: usize,
    },
    /// A recorded fault log (perf-script page faults or DAMON region
    /// samples, auto-detected), demultiplexed into one trace per pid.
    FaultLog {
        /// Path to the log file.
        path: PathBuf,
    },
}

impl TraceSource {
    /// The workload-row label this source reports under.
    pub fn label(&self) -> String {
        match self {
            TraceSource::Fig11Mix { .. } => "fig11-app-mix".to_string(),
            TraceSource::SyntheticLarge { .. } => "synthetic-large".to_string(),
            TraceSource::FaultLog { path } => {
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "log".to_string());
                format!("ingested-{stem}")
            }
        }
    }

    /// Materializes the source's traces. Only [`TraceSource::FaultLog`] can
    /// fail (I/O or a malformed log).
    pub fn load(&self) -> Result<Vec<AccessTrace>, IngestError> {
        match self {
            TraceSource::Fig11Mix { accesses } => Ok(AppKind::ALL
                .iter()
                .map(|&kind| {
                    AppModel::new(kind, EXPERIMENT_SEED)
                        .with_working_set(8 * MIB)
                        .with_accesses(*accesses)
                        .generate()
                })
                .collect()),
            TraceSource::SyntheticLarge { accesses_per_proc } => Ok(vec![
                sequential_trace(16 * MIB, 1 + accesses_per_proc / 4096),
                stride_trace(16 * MIB, 10, 1 + accesses_per_proc / 410),
                sequential_trace(16 * MIB, 1 + accesses_per_proc / 4096),
                stride_trace(16 * MIB, 7, 1 + accesses_per_proc / 586),
            ]),
            TraceSource::FaultLog { path } => Ok(ingest_path(path)?.into_traces()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sources_load_and_label() {
        let mix = TraceSource::Fig11Mix { accesses: 500 };
        assert_eq!(mix.label(), "fig11-app-mix");
        assert_eq!(mix.load().unwrap().len(), AppKind::ALL.len());

        let synth = TraceSource::SyntheticLarge {
            accesses_per_proc: 1_000,
        };
        assert_eq!(synth.label(), "synthetic-large");
        assert_eq!(synth.load().unwrap().len(), 4);
    }

    #[test]
    fn fault_log_source_ingests_the_committed_fixture() {
        let path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/perf_faults.log");
        let source = TraceSource::FaultLog { path };
        assert_eq!(source.label(), "ingested-perf_faults");
        let traces = source.load().expect("fixture ingests");
        assert!(!traces.is_empty());
        assert!(traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn missing_fault_log_is_a_typed_error() {
        let source = TraceSource::FaultLog {
            path: PathBuf::from("/nonexistent/faults.log"),
        };
        assert!(matches!(source.load(), Err(IngestError::Io(_))));
    }
}
