//! Microbenchmark figures: data-path breakdowns and latency CDFs
//! (Figures 1, 2, 4, 7, and 8a of the paper).

use crate::{EXPERIMENT_SEED, MICRO_WORKING_SET};
use leap::prelude::*;
use leap_datapath::{DataPath, LeanDataPath, LegacyDataPath, Stage};
use leap_metrics::{LatencyHistogram, TextTable};
use leap_sim_core::DetRng;
use leap_workloads::{sequential_trace, stride_trace, AccessTrace};

/// Returns the standard Sequential and Stride-10 microbenchmark traces.
fn micro_traces() -> Vec<(&'static str, AccessTrace)> {
    vec![
        ("Sequential", sequential_trace(MICRO_WORKING_SET, 1)),
        ("Stride-10", stride_trace(MICRO_WORKING_SET, 10, 1)),
    ]
}

fn percentile_row(label: &str, hist: &mut LatencyHistogram) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.2}", hist.median().as_micros_f64()),
        format!("{:.2}", hist.percentile(90.0).as_micros_f64()),
        format!("{:.2}", hist.percentile(99.0).as_micros_f64()),
        format!("{:.2}", hist.mean().as_micros_f64()),
    ]
}

/// Figure 1: average time spent in each stage of the page-request life cycle
/// on the default Linux data path versus Leap's path, over an RDMA backend
/// (plus the raw device numbers for HDD/SSD/RDMA).
pub fn fig01_datapath_breakdown() -> String {
    let samples = 20_000u64;
    let mut rng = DetRng::seed_from(EXPERIMENT_SEED);

    let mut legacy = LegacyDataPath::new(BackendKind::Rdma, rng.fork());
    let mut lean = LeanDataPath::with_default_cluster(rng.fork());

    let stages = [
        Stage::CacheLookup,
        Stage::BioPreparation,
        Stage::QueueingAndBatching,
        Stage::Dispatch,
        Stage::Prefetcher,
        Stage::RemoteInterface,
        Stage::DeviceTransfer,
        Stage::MmuUpdate,
    ];
    let mut legacy_totals = vec![0u128; stages.len()];
    let mut lean_totals = vec![0u128; stages.len()];
    for i in 0..samples {
        // Space requests out so dispatch-queue effects do not dominate.
        let now = Nanos::from_micros(50 * i);
        let lb = legacy.read_page(i, (i % 8) as usize, now);
        let nb = lean.read_page(i, (i % 8) as usize, now);
        for (s, stage) in stages.iter().enumerate() {
            legacy_totals[s] += lb.stage_total(*stage).as_nanos() as u128;
            lean_totals[s] += nb.stage_total(*stage).as_nanos() as u128;
        }
    }

    let mut table = TextTable::new(vec!["stage", "linux default (us)", "leap data path (us)"])
        .with_title("Figure 1: average time per data-path stage (RDMA backend, 4KB reads)");
    for (s, stage) in stages.iter().enumerate() {
        table.add_row(vec![
            stage.label().to_string(),
            format!("{:.2}", legacy_totals[s] as f64 / samples as f64 / 1_000.0),
            format!("{:.2}", lean_totals[s] as f64 / samples as f64 / 1_000.0),
        ]);
    }
    let legacy_total: u128 = legacy_totals.iter().sum();
    let lean_total: u128 = lean_totals.iter().sum();
    table.add_row(vec![
        "TOTAL".to_string(),
        format!("{:.2}", legacy_total as f64 / samples as f64 / 1_000.0),
        format!("{:.2}", lean_total as f64 / samples as f64 / 1_000.0),
    ]);

    let mut devices = TextTable::new(vec!["device", "nominal 4KB access (us)"])
        .with_title("Raw backend costs (paper Figure 1 reference points)");
    for kind in [BackendKind::Hdd, BackendKind::Ssd, BackendKind::Rdma] {
        devices.add_row(vec![
            kind.label().to_string(),
            format!("{:.2}", kind.nominal_latency().as_micros_f64()),
        ]);
    }
    format!("{table}\n{devices}")
}

/// Figure 2: 4 KB access-latency distributions on the *default* data path for
/// Disk, disaggregated VMM, and disaggregated VFS, under Sequential and
/// Stride-10 access patterns.
///
/// This figure is computed from the streaming [`Session`]/[`Observer`] API:
/// a [`HistogramObserver`] accumulates the remote-access latencies access by
/// access as the run executes, instead of reading the batch
/// `RunResult::remote_access_latency` afterwards. The numbers are identical
/// by construction (the stream and the batch histogram record the same
/// samples); `stream_matches_batch_histogram` in this module's tests pins
/// that equivalence.
pub fn fig02_default_datapath_cdf() -> String {
    let mut out = String::new();
    for (name, trace) in micro_traces() {
        let mut table = TextTable::new(vec![
            "configuration",
            "median (us)",
            "p90 (us)",
            "p99 (us)",
            "mean (us)",
        ])
        .with_title(format!(
            "Figure 2 ({name}): default Linux data path, 50% local memory"
        ));

        let disk_config = SimConfig::disk_defaults(BackendKind::Hdd)
            .to_builder()
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let mut disk = HistogramObserver::remote_accesses();
        VmmSimulator::new(disk_config)
            .session()
            .observe(&mut disk)
            .run_prepopulated(&trace);
        table.add_row(percentile_row("Disk (HDD)", disk.histogram()));

        let linux_config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let mut dvmm = HistogramObserver::remote_accesses();
        VmmSimulator::new(linux_config)
            .session()
            .observe(&mut dvmm)
            .run_prepopulated(&trace);
        table.add_row(percentile_row("Disaggregated VMM", dvmm.histogram()));

        let mut dvfs = HistogramObserver::remote_accesses();
        VfsSimulator::new(linux_config)
            .session()
            .observe(&mut dvfs)
            .run(&trace);
        table.add_row(percentile_row("Disaggregated VFS", dvfs.histogram()));

        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Figure 4: how long consumed prefetched pages sit in the cache before the
/// lazy background reclaimer frees them (CDF summary), contrasted with eager
/// eviction where the wait is zero by construction.
pub fn fig04_lazy_eviction_wait() -> String {
    let trace = stride_trace(MICRO_WORKING_SET, 10, 2);
    // Constrain the prefetch cache so the background reclaimer actually runs.
    let lazy_config = SimConfig::linux_defaults()
        .to_builder()
        .memory_fraction(0.5)
        .prefetcher(PrefetcherKind::Leap)
        .data_path(DataPathKind::Leap)
        .eviction(EvictionPolicy::Lazy)
        .prefetch_cache_pages(512)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("valid config");
    let mut lazy = VmmSimulator::new(lazy_config).run_prepopulated(&trace);
    let eager_config = SimConfig::builder()
        .memory_fraction(0.5)
        .prefetch_cache_pages(512)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("valid config");
    let eager = VmmSimulator::new(eager_config).run_prepopulated(&trace);

    let mut table = TextTable::new(vec!["quantile", "lazy eviction wait (us)"])
        .with_title("Figure 4: time a consumed prefetched page waits in the cache before reclaim");
    for q in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
        table.add_row(vec![
            format!("p{q:.0}"),
            format!("{:.1}", lazy.eviction_wait.percentile(q).as_micros_f64()),
        ]);
    }
    format!(
        "{}\nlazy policy: {} consumed prefetched pages waited for the background reclaimer\n\
         eager policy (Leap): {} pages waited (freed immediately on hit)\n",
        table.render(),
        lazy.eviction_wait.len(),
        eager.eviction_wait.len()
    )
}

/// Figure 7: 4 KB access-latency distributions with and without Leap, for the
/// disaggregated VMM and VFS front-ends under Sequential and Stride-10.
pub fn fig07_leap_datapath_cdf() -> String {
    let mut out = String::new();
    for (name, trace) in micro_traces() {
        let mut table = TextTable::new(vec![
            "configuration",
            "median (us)",
            "p90 (us)",
            "p99 (us)",
            "mean (us)",
        ])
        .with_title(format!(
            "Figure 7 ({name}): Leap vs default, 50% local memory"
        ));

        let linux_config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let leap_config = SimConfig::builder()
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");

        let mut dvmm = VmmSimulator::new(linux_config).run_prepopulated(&trace);
        table.add_row(percentile_row("D-VMM", &mut dvmm.remote_access_latency));

        let mut dvmm_leap = VmmSimulator::new(leap_config).run_prepopulated(&trace);
        table.add_row(percentile_row(
            "D-VMM + Leap",
            &mut dvmm_leap.remote_access_latency,
        ));

        let mut dvfs = VfsSimulator::new(linux_config).run(&trace);
        table.add_row(percentile_row("D-VFS", &mut dvfs.remote_access_latency));

        let mut dvfs_leap = VfsSimulator::new(leap_config).run(&trace);
        table.add_row(percentile_row(
            "D-VFS + Leap",
            &mut dvfs_leap.remote_access_latency,
        ));

        // Improvement factors the paper headlines.
        let vmm_median_x = dvmm.remote_access_latency.median().as_micros_f64()
            / dvmm_leap
                .remote_access_latency
                .median()
                .as_micros_f64()
                .max(0.001);
        let vmm_p99_x = dvmm.remote_access_latency.percentile(99.0).as_micros_f64()
            / dvmm_leap
                .remote_access_latency
                .percentile(99.0)
                .as_micros_f64()
                .max(0.001);
        out.push_str(&table.render());
        out.push_str(&format!(
            "D-VMM improvement with Leap: {vmm_median_x:.1}x median, {vmm_p99_x:.1}x p99\n\n"
        ));
    }
    out
}

/// Figure 8a: benefit breakdown on the Stride-10 microbenchmark — the lean
/// data path alone, plus the prefetcher, plus eager eviction.
pub fn fig08a_benefit_breakdown() -> String {
    let trace = stride_trace(MICRO_WORKING_SET, 10, 1);
    let configs = [
        (
            "data path optimisations only",
            SimConfig::builder()
                .prefetcher(PrefetcherKind::None)
                .eviction(EvictionPolicy::Lazy),
        ),
        (
            "+ prefetcher",
            SimConfig::builder().eviction(EvictionPolicy::Lazy),
        ),
        ("+ prefetcher + eager eviction", SimConfig::builder()),
    ];
    let mut table = TextTable::new(vec![
        "configuration",
        "median (us)",
        "p90 (us)",
        "p99 (us)",
        "mean (us)",
    ])
    .with_title("Figure 8a: Leap benefit breakdown (Stride-10, 50% local memory)");
    for (label, builder) in configs {
        let config = builder
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");
        let mut result = VmmSimulator::new(config).run_prepopulated(&trace);
        table.add_row(percentile_row(label, &mut result.remote_access_latency));
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_reports_all_stages_and_devices() {
        let report = fig01_datapath_breakdown();
        for needle in ["bio preparation", "device transfer", "HDD", "RDMA", "TOTAL"] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig08a_has_three_rows() {
        let report = fig08a_benefit_breakdown();
        assert!(report.contains("data path optimisations only"));
        assert!(report.contains("+ prefetcher + eager eviction"));
    }

    /// Figure 2 is computed from the Session/Observer stream; this pins that
    /// the stream reproduces the batch `remote_access_latency` histogram
    /// sample for sample (identical percentiles, so identical figure rows).
    #[test]
    fn stream_matches_batch_histogram() {
        let trace = stride_trace(2 * leap_sim_core::units::MIB, 10, 1);
        let config = SimConfig::linux_defaults()
            .to_builder()
            .memory_fraction(0.5)
            .seed(EXPERIMENT_SEED)
            .build()
            .expect("valid config");

        let mut streamed = HistogramObserver::remote_accesses();
        let mut from_stream = VmmSimulator::new(config)
            .session()
            .observe(&mut streamed)
            .run_prepopulated(&trace);
        let mut batch = VmmSimulator::new(config).run_prepopulated(&trace);

        // Stream vs the result of its own run...
        assert_eq!(
            streamed.histogram().len(),
            from_stream.remote_access_latency.len()
        );
        // ...and vs an independent batch run (sessions do not perturb the
        // simulation).
        for q in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(
                streamed.histogram().percentile(q),
                batch.remote_access_latency.percentile(q),
                "p{q} diverged between stream and batch"
            );
            assert_eq!(
                streamed.histogram().percentile(q),
                from_stream.remote_access_latency.percentile(q),
            );
        }
        assert_eq!(batch.remote_accesses, streamed.events());

        // The VFS front-end streams identically too.
        let mut vfs_streamed = HistogramObserver::remote_accesses();
        VfsSimulator::new(config)
            .session()
            .observe(&mut vfs_streamed)
            .run(&trace);
        let mut vfs_batch = VfsSimulator::new(config).run(&trace);
        assert_eq!(
            vfs_streamed.histogram().len(),
            vfs_batch.remote_access_latency.len()
        );
        assert_eq!(
            vfs_streamed.histogram().median(),
            vfs_batch.remote_access_latency.median()
        );
    }
}
