//! Leap's eager prefetch-cache eviction (§4.3).
//!
//! Leap keeps prefetched pages on a dedicated FIFO list
//! (`PrefetchFifoLruList`). When a prefetched page is hit and mapped, Leap
//! frees its cache entry immediately instead of leaving it for the background
//! scanner. Under severe pressure, not-yet-consumed prefetched pages are
//! reclaimed in FIFO order. The upshot is that the reclaimer has far fewer
//! pages to scan, shortening page-allocation wait time (the paper measures a
//! ~750 ns / 36 % reduction on average).

use leap_mem::{SwapCache, SwapSlot};
use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters describing eager-eviction behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EagerEvictionStats {
    /// Prefetched pages freed immediately after their first hit.
    pub freed_on_hit: u64,
    /// Prefetched pages reclaimed (FIFO) before ever being hit.
    pub freed_unconsumed: u64,
    /// Pages currently tracked on the FIFO list.
    pub tracked: u64,
}

/// The `PrefetchFifoLruList`: FIFO tracking of prefetched cache pages with
/// eager free-on-hit.
///
/// # Examples
///
/// ```
/// use leap_eviction::PrefetchFifoLru;
/// use leap_mem::{CacheOrigin, Pid, SwapCache, SwapSlot};
/// use leap_sim_core::Nanos;
///
/// let mut cache = SwapCache::new(8);
/// let mut fifo = PrefetchFifoLru::new();
/// cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
/// fifo.on_prefetch_insert(SwapSlot(1));
///
/// // The page is hit: Leap frees it from the cache right away.
/// cache.record_hit(SwapSlot(1), Nanos::from_micros(3));
/// fifo.on_hit(SwapSlot(1), &mut cache);
/// assert!(!cache.contains(SwapSlot(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefetchFifoLru {
    fifo: VecDeque<SwapSlot>,
    stats: EagerEvictionStats,
}

impl PrefetchFifoLru {
    /// Creates an empty list.
    pub fn new() -> Self {
        PrefetchFifoLru::default()
    }

    /// Registers a newly prefetched page (appended at the FIFO tail).
    pub fn on_prefetch_insert(&mut self, slot: SwapSlot) {
        self.fifo.push_back(slot);
        self.stats.tracked = self.fifo.len() as u64;
    }

    /// Registers a whole prefetched span at once, in slice order — one
    /// bulk append and one counter update instead of per-page calls.
    /// Equivalent to calling [`PrefetchFifoLru::on_prefetch_insert`] for
    /// each slot in order.
    pub fn on_prefetch_insert_span(&mut self, slots: &[SwapSlot]) {
        self.fifo.extend(slots.iter().copied());
        self.stats.tracked = self.fifo.len() as u64;
    }

    /// Handles a hit on a prefetched page: the cache entry is freed
    /// immediately (after the page table has been updated, which the caller
    /// models separately) and the slot leaves the FIFO.
    ///
    /// Returns `true` if the slot was tracked and freed.
    pub fn on_hit(&mut self, slot: SwapSlot, cache: &mut SwapCache) -> bool {
        if self.on_hit_freed(slot) {
            cache.remove(slot);
            true
        } else {
            false
        }
    }

    /// FIFO-side bookkeeping of a hit whose cache entry the caller already
    /// removed: the slot leaves the FIFO and the hit is counted. Returns
    /// `true` if the slot was tracked.
    pub fn on_hit_freed(&mut self, slot: SwapSlot) -> bool {
        let Some(pos) = self.fifo.iter().position(|&s| s == slot) else {
            return false;
        };
        self.fifo.remove(pos);
        self.stats.freed_on_hit += 1;
        self.stats.tracked = self.fifo.len() as u64;
        true
    }

    /// Reclaims up to `target` not-yet-consumed prefetched pages in FIFO
    /// order (severe memory pressure / constrained prefetch cache).
    ///
    /// Returns the slots actually freed.
    pub fn reclaim_fifo(&mut self, cache: &mut SwapCache, target: u64) -> Vec<SwapSlot> {
        let mut freed = Vec::new();
        while (freed.len() as u64) < target {
            let Some(slot) = self.fifo.pop_front() else {
                break;
            };
            if cache.remove(slot).is_some() {
                self.stats.freed_unconsumed += 1;
                freed.push(slot);
            }
        }
        self.stats.tracked = self.fifo.len() as u64;
        freed
    }

    /// Number of prefetched pages currently awaiting consumption.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True if no prefetched pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> EagerEvictionStats {
        self.stats
    }

    /// The page-allocation wait-time saving of eager eviction relative to a
    /// lazy scan that would have had to walk `lazy_scan_pages` extra pages at
    /// `scan_cost_per_page` each.
    ///
    /// This is the quantity behind the paper's "page allocation time reduced
    /// by ~750 ns (36 %)" claim: the allocator no longer waits for consumed
    /// prefetch pages to be scanned out.
    pub fn allocation_wait_saving(lazy_scan_pages: u64, scan_cost_per_page: Nanos) -> Nanos {
        scan_cost_per_page * lazy_scan_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_mem::{CacheOrigin, Pid};
    use proptest::prelude::*;

    fn prefetched_cache(n: u64) -> (SwapCache, PrefetchFifoLru) {
        let mut cache = SwapCache::unbounded();
        let mut fifo = PrefetchFifoLru::new();
        for i in 0..n {
            cache.insert(SwapSlot(i), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
            fifo.on_prefetch_insert(SwapSlot(i));
        }
        (cache, fifo)
    }

    #[test]
    fn hit_frees_immediately() {
        let (mut cache, mut fifo) = prefetched_cache(3);
        cache.record_hit(SwapSlot(1), Nanos::from_micros(2));
        assert!(fifo.on_hit(SwapSlot(1), &mut cache));
        assert!(!cache.contains(SwapSlot(1)));
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.stats().freed_on_hit, 1);
    }

    #[test]
    fn hit_on_untracked_slot_is_ignored() {
        let (mut cache, mut fifo) = prefetched_cache(1);
        assert!(!fifo.on_hit(SwapSlot(99), &mut cache));
        assert_eq!(fifo.stats().freed_on_hit, 0);
    }

    #[test]
    fn fifo_reclaim_is_in_arrival_order() {
        let (mut cache, mut fifo) = prefetched_cache(5);
        let freed = fifo.reclaim_fifo(&mut cache, 3);
        assert_eq!(freed, vec![SwapSlot(0), SwapSlot(1), SwapSlot(2)]);
        assert_eq!(fifo.stats().freed_unconsumed, 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reclaim_skips_slots_already_gone_from_cache() {
        let (mut cache, mut fifo) = prefetched_cache(3);
        cache.remove(SwapSlot(0));
        let freed = fifo.reclaim_fifo(&mut cache, 2);
        assert_eq!(freed, vec![SwapSlot(1), SwapSlot(2)]);
    }

    #[test]
    fn reclaim_stops_when_empty() {
        let (mut cache, mut fifo) = prefetched_cache(2);
        let freed = fifo.reclaim_fifo(&mut cache, 10);
        assert_eq!(freed.len(), 2);
        assert!(fifo.is_empty());
        let nothing = fifo.reclaim_fifo(&mut cache, 1);
        assert!(nothing.is_empty());
    }

    #[test]
    fn allocation_wait_saving_scales_with_scanned_pages() {
        let saving = PrefetchFifoLru::allocation_wait_saving(10, Nanos::from_nanos(80));
        assert_eq!(saving, Nanos::from_nanos(800));
        assert_eq!(
            PrefetchFifoLru::allocation_wait_saving(0, Nanos::from_nanos(80)),
            Nanos::ZERO
        );
    }

    #[test]
    fn tracked_counter_follows_list_length() {
        let (mut cache, mut fifo) = prefetched_cache(4);
        assert_eq!(fifo.stats().tracked, 4);
        fifo.on_hit(SwapSlot(2), &mut cache);
        assert_eq!(fifo.stats().tracked, 3);
        fifo.reclaim_fifo(&mut cache, 2);
        assert_eq!(fifo.stats().tracked, 1);
    }

    proptest! {
        /// freed_on_hit + freed_unconsumed + tracked == total inserted.
        #[test]
        fn prop_conservation_of_pages(
            inserts in 1u64..100,
            hits in proptest::collection::vec(0u64..100, 0..50),
            reclaim in 0u64..100,
        ) {
            let (mut cache, mut fifo) = prefetched_cache(inserts);
            for h in hits {
                if h < inserts {
                    cache.record_hit(SwapSlot(h), Nanos::ZERO);
                    let _ = fifo.on_hit(SwapSlot(h), &mut cache);
                }
            }
            let _ = fifo.reclaim_fifo(&mut cache, reclaim);
            let s = fifo.stats();
            prop_assert_eq!(s.freed_on_hit + s.freed_unconsumed + s.tracked, inserts);
        }
    }
}
