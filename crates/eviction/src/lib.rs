//! Eviction policies: the kernel's lazy background LRU reclaim and Leap's
//! eager prefetch-cache eviction.
//!
//! The paper observes (§2.3, Figure 4) that Linux's background reclaimer
//! (`kswapd`) lets already-consumed prefetched pages sit on the LRU lists for
//! a long time; reclaiming them requires scanning, and that scan time inflates
//! page allocation latency under memory pressure. Leap instead frees a
//! prefetched cache page as soon as it is hit, and keeps not-yet-consumed
//! prefetched pages on a FIFO list so that, under severe pressure, they are
//! reclaimed in arrival order (§4.3).
//!
//! - [`lazy`]: the kswapd model — LRU scanning with a per-page scan cost and
//!   wait-time accounting (regenerates Figure 4).
//! - [`eager`]: Leap's `PrefetchFifoLruList` and eager-free behaviour,
//!   including the ~36 % page-allocation-time reduction the paper reports.

//! - [`evictor`]: the [`CacheEvictor`] trait putting both policies (and any
//!   third-party policy registered through `leap`'s component registry)
//!   behind one engine-facing interface.
//! - [`clockpro`]: a CLOCK-Pro-style retention policy, the reference
//!   *out-of-crate* evictor exercised through the component registry.

pub mod clockpro;
pub mod eager;
pub mod evictor;
pub mod lazy;

pub use clockpro::ClockProEvictor;
pub use eager::{EagerEvictionStats, PrefetchFifoLru};
pub use evictor::{CacheEvictor, EagerEvictor, EvictionReport, LazyEvictor};
pub use lazy::{LazyReclaimer, LazyReclaimerConfig, ReclaimOutcome};
