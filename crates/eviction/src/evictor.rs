//! The [`CacheEvictor`] trait: one pluggable interface over both eviction
//! policies.
//!
//! The fault engine in the `leap` crate used to match on an eviction enum at
//! every call site and carry both a [`LazyReclaimer`] and a
//! [`PrefetchFifoLru`] around. This trait moves that policy dispatch behind
//! one object so engines hold a single `Box<dyn CacheEvictor>` and so
//! third-party policies can be registered through `leap`'s component
//! registry without touching the engine.

use crate::eager::PrefetchFifoLru;
use crate::lazy::{LazyReclaimer, LazyReclaimerConfig};
use leap_mem::{CacheOrigin, SwapCache, SwapSlot};
use leap_sim_core::Nanos;

/// What one eviction pass freed, in the categories the metrics care about.
#[derive(Debug, Clone, Default)]
pub struct EvictionReport {
    /// Prefetched pages reclaimed before ever being hit (cache pollution).
    pub freed_unused_prefetches: u64,
    /// Everything else freed (consumed prefetches, demand entries).
    pub freed_other: u64,
    /// For each freed page that had been hit, how long it sat in the cache
    /// after its first hit (the paper's Figure 4 wait time).
    pub post_hit_wait: Vec<Nanos>,
}

impl EvictionReport {
    /// Total pages freed by the pass.
    pub fn freed_total(&self) -> u64 {
        self.freed_unused_prefetches + self.freed_other
    }

    /// True if the pass freed nothing.
    pub fn is_empty(&self) -> bool {
        self.freed_total() == 0
    }
}

/// A prefetch-cache eviction policy driven by the fault engine.
///
/// The engine notifies the policy of inserts and hits and asks it to free
/// space (`make_space`) when the cache is full; paging front-ends that model
/// a kswapd-style background thread additionally call `background_reclaim`
/// after each remote access.
pub trait CacheEvictor: std::fmt::Debug + Send {
    /// Short policy name for labels and reports (e.g. "lazy", "eager").
    fn policy_name(&self) -> &'static str;

    /// True if a hit on a prefetched page frees its cache entry immediately
    /// (Leap's eager behaviour).
    fn frees_on_hit(&self) -> bool;

    /// Notifies the policy that `slot` entered the cache.
    fn on_insert(&mut self, slot: SwapSlot, origin: CacheOrigin);

    /// Notifies the policy that a whole prefetch span entered the cache,
    /// in slice order. Must be observably identical to calling
    /// [`CacheEvictor::on_insert`] per slot (the default does exactly
    /// that); policies override it to batch their bookkeeping — the engine
    /// calls this once per admitted span instead of once per page.
    fn on_insert_span(&mut self, slots: &[SwapSlot], origin: CacheOrigin) {
        for &slot in slots {
            self.on_insert(slot, origin);
        }
    }

    /// Notifies the policy that `slot` left the cache for reasons outside
    /// its control.
    fn on_remove(&mut self, slot: SwapSlot);

    /// Handles a cache hit on `slot`. Returns `true` if the policy freed the
    /// entry (the caller must not reuse it afterwards).
    fn on_hit(&mut self, slot: SwapSlot, origin: CacheOrigin, cache: &mut SwapCache) -> bool;

    /// Handles a cache hit on a prefetch-origin `slot` whose entry the
    /// caller already removed from the cache (the engine's fused hit path
    /// records the hit and takes the entry in one cache operation when
    /// [`CacheEvictor::frees_on_hit`] is true). Only the policy's own
    /// bookkeeping remains; equivalent to [`CacheEvictor::on_hit`] minus
    /// the cache removal. Policies that never free on hit are never
    /// called and keep the default no-op.
    fn on_hit_freed(&mut self, slot: SwapSlot) {
        let _ = slot;
    }

    /// Tries to free at least `target` pages from `cache` at time `now`.
    fn make_space(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> EvictionReport;

    /// Runs the policy's background reclaimer if its trigger condition holds
    /// (e.g. the lazy policy's high watermark). Returns `None` when nothing
    /// needed doing. Front-ends that do not model a background thread simply
    /// never call this.
    fn background_reclaim(&mut self, cache: &mut SwapCache, now: Nanos) -> Option<EvictionReport>;

    /// False when [`CacheEvictor::background_reclaim`] unconditionally
    /// returns `None`, letting per-access callers skip the virtual call
    /// entirely. Policies with a real background scanner keep the default.
    fn has_background_reclaimer(&self) -> bool {
        true
    }

    /// Number of pages the policy's bookkeeping currently has to scan to
    /// find reclaim candidates; page-allocation wait grows with this (§2.3).
    fn tracked_pages(&self) -> u64;
}

/// Leap's eager policy (§4.3): free prefetched entries on their first hit,
/// reclaim unconsumed prefetches FIFO under pressure.
#[derive(Debug)]
pub struct EagerEvictor {
    fifo: PrefetchFifoLru,
    /// LRU bookkeeping for entries the FIFO does not cover (demand-origin
    /// entries, e.g. in the VFS front-end's buffered writes). Reclaiming
    /// them is a fallback; their scan time is not modelled because the list
    /// stays short by construction under the eager policy.
    fallback: LazyReclaimer,
}

impl Default for EagerEvictor {
    fn default() -> Self {
        EagerEvictor::new()
    }
}

impl EagerEvictor {
    /// Creates an eager evictor.
    pub fn new() -> Self {
        EagerEvictor {
            fifo: PrefetchFifoLru::new(),
            fallback: LazyReclaimer::with_defaults(),
        }
    }

    /// Counters accumulated by the prefetch FIFO.
    pub fn stats(&self) -> crate::eager::EagerEvictionStats {
        self.fifo.stats()
    }
}

impl CacheEvictor for EagerEvictor {
    fn policy_name(&self) -> &'static str {
        "eager"
    }

    fn frees_on_hit(&self) -> bool {
        true
    }

    fn on_insert(&mut self, slot: SwapSlot, origin: CacheOrigin) {
        // The FIFO tracks prefetch-origin entries, the fallback LRU only
        // demand-origin ones. The fallback is only ever reclaimed from once
        // the FIFO has drained every live prefetch entry, so its victim set
        // and order are the same as if it tracked everything — without the
        // per-prefetch hash traffic on the hot path.
        match origin {
            CacheOrigin::Prefetch => self.fifo.on_prefetch_insert(slot),
            CacheOrigin::Demand => self.fallback.on_insert(slot),
        }
    }

    fn on_insert_span(&mut self, slots: &[SwapSlot], origin: CacheOrigin) {
        match origin {
            CacheOrigin::Prefetch => self.fifo.on_prefetch_insert_span(slots),
            CacheOrigin::Demand => {
                for &slot in slots {
                    self.fallback.on_insert(slot);
                }
            }
        }
    }

    fn on_remove(&mut self, slot: SwapSlot) {
        self.fallback.on_remove(slot);
    }

    fn on_hit(&mut self, slot: SwapSlot, origin: CacheOrigin, cache: &mut SwapCache) -> bool {
        match origin {
            CacheOrigin::Prefetch => {
                if !self.fifo.on_hit(slot, cache) {
                    // Not on the FIFO (edge case): still freed eagerly.
                    cache.remove(slot);
                }
                true
            }
            CacheOrigin::Demand => {
                // Demand entries are not prefetch-cache pollution; they stay
                // until pressure reclaims them.
                self.fallback.on_hit(slot);
                false
            }
        }
    }

    fn on_hit_freed(&mut self, slot: SwapSlot) {
        self.fifo.on_hit_freed(slot);
    }

    fn make_space(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> EvictionReport {
        let mut report = EvictionReport::default();
        let victims = self.fifo.reclaim_fifo(cache, target);
        report.freed_unused_prefetches = victims.len() as u64;
        if report.freed_total() < target {
            // No unconsumed prefetches left: fall back to LRU over whatever
            // remains (demand entries). Eager eviction has no post-hit waits
            // by construction, so none are reported.
            let outcome = self
                .fallback
                .reclaim(cache, target - report.freed_total(), now);
            report.freed_other += outcome.freed.len() as u64;
        }
        report
    }

    fn background_reclaim(
        &mut self,
        _cache: &mut SwapCache,
        _now: Nanos,
    ) -> Option<EvictionReport> {
        None
    }

    fn has_background_reclaimer(&self) -> bool {
        false
    }

    fn tracked_pages(&self) -> u64 {
        self.fifo.len() as u64
    }
}

/// The kernel's lazy policy (§2.3): hits leave entries in place; a
/// kswapd-style scanner reclaims from the LRU end under pressure or past the
/// high watermark.
#[derive(Debug)]
pub struct LazyEvictor {
    reclaimer: LazyReclaimer,
    high_watermark: u64,
}

/// Cache size (pages) past which the background reclaimer kicks in, a
/// stand-in for the kernel's watermarks.
pub const LAZY_CACHE_HIGH_WATERMARK: u64 = 4_096;

impl LazyEvictor {
    /// Creates a lazy evictor with kernel-like parameters.
    pub fn new() -> Self {
        LazyEvictor {
            reclaimer: LazyReclaimer::with_defaults(),
            high_watermark: LAZY_CACHE_HIGH_WATERMARK,
        }
    }

    /// Creates a lazy evictor with an explicit reclaimer configuration and
    /// background watermark.
    pub fn with_config(config: LazyReclaimerConfig, high_watermark: u64) -> Self {
        LazyEvictor {
            reclaimer: LazyReclaimer::new(config),
            high_watermark: high_watermark.max(1),
        }
    }
}

impl Default for LazyEvictor {
    fn default() -> Self {
        LazyEvictor::new()
    }
}

impl CacheEvictor for LazyEvictor {
    fn policy_name(&self) -> &'static str {
        "lazy"
    }

    fn frees_on_hit(&self) -> bool {
        false
    }

    fn on_insert(&mut self, slot: SwapSlot, _origin: CacheOrigin) {
        self.reclaimer.on_insert(slot);
    }

    fn on_remove(&mut self, slot: SwapSlot) {
        self.reclaimer.on_remove(slot);
    }

    fn on_hit(&mut self, slot: SwapSlot, _origin: CacheOrigin, _cache: &mut SwapCache) -> bool {
        // The laziness Leap removes: the entry stays until scanned out.
        self.reclaimer.on_hit(slot);
        false
    }

    fn make_space(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> EvictionReport {
        let outcome = self.reclaimer.reclaim(cache, target, now);
        EvictionReport {
            freed_unused_prefetches: outcome.freed_unused_prefetches,
            freed_other: outcome.freed.len() as u64 - outcome.freed_unused_prefetches,
            post_hit_wait: outcome.post_hit_wait,
        }
    }

    fn background_reclaim(&mut self, cache: &mut SwapCache, now: Nanos) -> Option<EvictionReport> {
        if cache.len() <= self.high_watermark {
            return None;
        }
        let target = cache.len() - self.high_watermark / 2;
        Some(self.make_space(cache, target, now))
    }

    fn tracked_pages(&self) -> u64 {
        self.reclaimer.tracked_pages() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_mem::Pid;
    use proptest::prelude::*;

    fn insert(cache: &mut SwapCache, e: &mut dyn CacheEvictor, slot: u64, origin: CacheOrigin) {
        cache.insert(SwapSlot(slot), Pid(1), origin, Nanos::ZERO);
        e.on_insert(SwapSlot(slot), origin);
    }

    #[test]
    fn eager_frees_prefetch_entries_on_hit() {
        let mut cache = SwapCache::new(8);
        let mut e = EagerEvictor::new();
        insert(&mut cache, &mut e, 1, CacheOrigin::Prefetch);
        cache.record_hit(SwapSlot(1), Nanos::from_micros(1));
        assert!(e.on_hit(SwapSlot(1), CacheOrigin::Prefetch, &mut cache));
        assert!(!cache.contains(SwapSlot(1)));
        assert!(e.frees_on_hit());
    }

    #[test]
    fn eager_keeps_demand_entries_on_hit() {
        let mut cache = SwapCache::new(8);
        let mut e = EagerEvictor::new();
        insert(&mut cache, &mut e, 2, CacheOrigin::Demand);
        cache.record_hit(SwapSlot(2), Nanos::from_micros(1));
        assert!(!e.on_hit(SwapSlot(2), CacheOrigin::Demand, &mut cache));
        assert!(cache.contains(SwapSlot(2)));
    }

    #[test]
    fn eager_make_space_prefers_unconsumed_prefetches() {
        let mut cache = SwapCache::new(8);
        let mut e = EagerEvictor::new();
        insert(&mut cache, &mut e, 1, CacheOrigin::Demand);
        insert(&mut cache, &mut e, 2, CacheOrigin::Prefetch);
        insert(&mut cache, &mut e, 3, CacheOrigin::Prefetch);
        let report = e.make_space(&mut cache, 2, Nanos::from_micros(5));
        assert_eq!(report.freed_unused_prefetches, 2);
        assert_eq!(report.freed_other, 0);
        assert!(cache.contains(SwapSlot(1)), "demand entry survives");
    }

    #[test]
    fn eager_make_space_falls_back_to_demand_entries() {
        let mut cache = SwapCache::new(8);
        let mut e = EagerEvictor::new();
        insert(&mut cache, &mut e, 1, CacheOrigin::Demand);
        insert(&mut cache, &mut e, 2, CacheOrigin::Demand);
        let report = e.make_space(&mut cache, 1, Nanos::from_micros(5));
        assert_eq!(report.freed_unused_prefetches, 0);
        assert_eq!(report.freed_other, 1);
    }

    #[test]
    fn lazy_keeps_entries_on_hit_and_reports_waits() {
        let mut cache = SwapCache::new(8);
        let mut e = LazyEvictor::new();
        insert(&mut cache, &mut e, 1, CacheOrigin::Prefetch);
        cache.record_hit(SwapSlot(1), Nanos::from_micros(10));
        assert!(!e.on_hit(SwapSlot(1), CacheOrigin::Prefetch, &mut cache));
        assert!(cache.contains(SwapSlot(1)));
        let report = e.make_space(&mut cache, 1, Nanos::from_micros(500));
        assert_eq!(report.freed_other, 1);
        assert_eq!(report.post_hit_wait, vec![Nanos::from_micros(490)]);
    }

    #[test]
    fn lazy_background_reclaim_respects_watermark() {
        let mut cache = SwapCache::unbounded();
        let mut e = LazyEvictor::with_config(LazyReclaimerConfig::default(), 4);
        for i in 0..8 {
            insert(&mut cache, &mut e, i, CacheOrigin::Prefetch);
        }
        let report = e.background_reclaim(&mut cache, Nanos::ZERO);
        assert!(report.is_some());
        assert!(cache.len() <= 8);
        // Below the watermark nothing happens.
        let mut small = SwapCache::unbounded();
        let mut e2 = LazyEvictor::with_config(LazyReclaimerConfig::default(), 4);
        insert(&mut small, &mut e2, 1, CacheOrigin::Prefetch);
        assert!(e2.background_reclaim(&mut small, Nanos::ZERO).is_none());
    }

    proptest! {
        /// Span-notified inserts are observably identical to per-page
        /// notification for both policies: same hit reactions, same
        /// eviction victims in the same (FIFO / LRU) order.
        #[test]
        fn prop_on_insert_span_matches_per_page_loop(
            span in proptest::collection::vec((0u64..64, any::<bool>()), 1..24),
            hits in proptest::collection::vec(0u64..64, 0..12),
            target in 1u64..24,
        ) {
            let eviction_order = |use_span: bool, lazy: bool| {
                let mut cache = SwapCache::unbounded();
                let mut evictor: Box<dyn CacheEvictor> = if lazy {
                    Box::new(LazyEvictor::new())
                } else {
                    Box::new(EagerEvictor::new())
                };
                let slots: Vec<SwapSlot> = span.iter().map(|&(s, _)| SwapSlot(s)).collect();
                let origin = CacheOrigin::Prefetch;
                for &slot in &slots {
                    cache.insert(slot, Pid(1), origin, Nanos::ZERO);
                }
                if use_span {
                    evictor.on_insert_span(&slots, origin);
                } else {
                    for &slot in &slots {
                        evictor.on_insert(slot, origin);
                    }
                }
                let mut hit_frees = Vec::new();
                for &h in &hits {
                    let slot = SwapSlot(h);
                    if cache.record_hit(slot, Nanos::from_micros(1)).is_some() {
                        hit_frees.push(evictor.on_hit(slot, origin, &mut cache));
                    }
                }
                let report = evictor.make_space(&mut cache, target, Nanos::from_micros(9));
                let mut remaining: Vec<u64> = cache.iter().map(|(s, _)| s.0).collect();
                remaining.sort_unstable();
                (hit_frees, report.freed_total(), report.freed_unused_prefetches, remaining)
            };
            for lazy in [false, true] {
                prop_assert_eq!(eviction_order(true, lazy), eviction_order(false, lazy));
            }
        }
    }

    #[test]
    fn tracked_pages_reflect_bookkeeping() {
        let mut cache = SwapCache::unbounded();
        let mut eager = EagerEvictor::new();
        let mut lazy = LazyEvictor::new();
        for i in 0..5 {
            insert(&mut cache, &mut eager, i, CacheOrigin::Prefetch);
            lazy.on_insert(SwapSlot(i), CacheOrigin::Prefetch);
        }
        assert_eq!(eager.tracked_pages(), 5);
        assert_eq!(lazy.tracked_pages(), 5);
        assert_eq!(eager.policy_name(), "eager");
        assert_eq!(lazy.policy_name(), "lazy");
    }
}
