//! The lazy, kswapd-style background reclaimer.
//!
//! When memory pressure builds, the kernel's background thread scans the LRU
//! lists to find eviction candidates and frees them. Two costs matter for the
//! reproduction:
//!
//! 1. *Scan cost*: the reclaimer touches every page it considers, so the more
//!    pages sit on the lists (including already-consumed prefetched pages),
//!    the longer finding candidates takes, and the longer new-page allocation
//!    waits (§2.3).
//! 2. *Wait time*: a consumed prefetched page occupies cache space from the
//!    moment it is hit until the scanner finally reclaims it; Figure 4 plots
//!    that wait-time distribution.

use leap_mem::{LruList, SwapCache, SwapSlot};
use leap_sim_core::Nanos;

/// Configuration of the lazy reclaimer.
#[derive(Debug, Clone, Copy)]
pub struct LazyReclaimerConfig {
    /// Cost of examining one page during an LRU scan.
    pub scan_cost_per_page: Nanos,
    /// Fixed cost of waking the reclaimer and setting up a scan pass.
    pub wakeup_cost: Nanos,
    /// How often the background reclaimer runs when there is pressure.
    pub scan_interval: Nanos,
    /// Fraction of the list scanned per pass (kswapd scans in batches rather
    /// than the whole list at once). Clamped to `(0, 1]`.
    pub scan_fraction: f64,
}

impl Default for LazyReclaimerConfig {
    fn default() -> Self {
        LazyReclaimerConfig {
            // ~80 ns to inspect a page (reference-bit checks, list moves).
            scan_cost_per_page: Nanos::from_nanos(80),
            wakeup_cost: Nanos::from_micros(2),
            scan_interval: Nanos::from_millis(100),
            scan_fraction: 0.25,
        }
    }
}

/// The outcome of one reclaim pass.
#[derive(Debug, Clone, Default)]
pub struct ReclaimOutcome {
    /// Swap slots freed from the cache in this pass.
    pub freed: Vec<SwapSlot>,
    /// Of those, how many were prefetched pages that had already been hit
    /// (pages Leap would have freed long ago).
    pub freed_consumed_prefetches: u64,
    /// Of those, how many were prefetched pages never hit (pollution).
    pub freed_unused_prefetches: u64,
    /// Time the scan itself took (charged to allocation latency when the
    /// allocating process had to wait for it).
    pub scan_time: Nanos,
    /// Pages examined during the scan.
    pub pages_scanned: u64,
    /// For each freed page that had been hit, how long it sat in the cache
    /// after its first hit (the Figure 4 wait time).
    pub post_hit_wait: Vec<Nanos>,
}

/// The kswapd-style lazy reclaimer.
///
/// It maintains its own LRU ordering over cached slots; the caller notifies
/// it of insertions and hits, and invokes [`LazyReclaimer::reclaim`] when it
/// needs free cache space.
///
/// # Examples
///
/// ```
/// use leap_eviction::LazyReclaimer;
/// use leap_mem::{CacheOrigin, Pid, SwapCache, SwapSlot};
/// use leap_sim_core::Nanos;
///
/// let mut cache = SwapCache::new(4);
/// let mut reclaimer = LazyReclaimer::with_defaults();
/// for i in 0..4u64 {
///     cache.insert(SwapSlot(i), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
///     reclaimer.on_insert(SwapSlot(i));
/// }
/// let outcome = reclaimer.reclaim(&mut cache, 2, Nanos::from_micros(50));
/// assert_eq!(outcome.freed.len(), 2);
/// assert_eq!(cache.len(), 2);
/// ```
#[derive(Debug)]
pub struct LazyReclaimer {
    config: LazyReclaimerConfig,
    lru: LruList<SwapSlot>,
    total_scanned: u64,
    total_scan_time: Nanos,
    total_freed: u64,
}

impl LazyReclaimer {
    /// Creates a reclaimer with the given configuration.
    pub fn new(config: LazyReclaimerConfig) -> Self {
        LazyReclaimer {
            config,
            lru: LruList::new(),
            total_scanned: 0,
            total_scan_time: Nanos::ZERO,
            total_freed: 0,
        }
    }

    /// Creates a reclaimer with default (kernel-like) parameters.
    pub fn with_defaults() -> Self {
        LazyReclaimer::new(LazyReclaimerConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &LazyReclaimerConfig {
        &self.config
    }

    /// Notifies the reclaimer that `slot` was inserted into the cache.
    pub fn on_insert(&mut self, slot: SwapSlot) {
        self.lru.push(slot);
    }

    /// Notifies the reclaimer that `slot` was hit (moves it towards the MRU
    /// end, as the kernel's mark-accessed path does). Crucially, the page is
    /// *not* freed — that is the laziness Leap removes.
    pub fn on_hit(&mut self, slot: SwapSlot) {
        self.lru.touch(&slot);
    }

    /// Notifies the reclaimer that `slot` left the cache for reasons outside
    /// its control (e.g. eager eviction in a hybrid configuration).
    pub fn on_remove(&mut self, slot: SwapSlot) {
        self.lru.remove(&slot);
    }

    /// Number of pages the reclaimer currently tracks.
    pub fn tracked_pages(&self) -> usize {
        self.lru.len()
    }

    /// Lifetime totals: pages scanned, time spent scanning, pages freed.
    pub fn totals(&self) -> (u64, Nanos, u64) {
        (self.total_scanned, self.total_scan_time, self.total_freed)
    }

    /// Runs one reclaim pass at time `now`, trying to free at least `target`
    /// pages from `cache`.
    ///
    /// The scan examines pages from the LRU end. Every examined page costs
    /// [`LazyReclaimerConfig::scan_cost_per_page`]; the pass stops after
    /// freeing `target` pages or after examining the configured fraction of
    /// the list without finding enough candidates (in which case it frees
    /// what it found).
    pub fn reclaim(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> ReclaimOutcome {
        let mut outcome = ReclaimOutcome {
            scan_time: self.config.wakeup_cost,
            ..ReclaimOutcome::default()
        };
        if target == 0 || self.lru.is_empty() {
            return outcome;
        }
        // Scan budget: a fraction of the list per pass plus one page per
        // still-missing target, so stale bookkeeping entries cannot starve
        // the pass but a single pass also never degenerates into a full walk.
        let fraction = self.config.scan_fraction.clamp(f64::MIN_POSITIVE, 1.0);
        let scan_budget = ((self.lru.len() as f64 * fraction).ceil() as u64).saturating_add(target);

        while outcome.freed.len() < target as usize && outcome.pages_scanned < scan_budget {
            let slot = match self.lru.pop_lru() {
                Some(s) => s,
                None => break,
            };
            outcome.pages_scanned += 1;
            outcome.scan_time += self.config.scan_cost_per_page;

            match cache.remove(slot) {
                Some(entry) => {
                    if let Some(hit_at) = entry.first_hit_at {
                        outcome.freed_consumed_prefetches +=
                            u64::from(entry.origin == leap_mem::CacheOrigin::Prefetch);
                        outcome.post_hit_wait.push(now.saturating_sub(hit_at));
                    } else if entry.origin == leap_mem::CacheOrigin::Prefetch {
                        outcome.freed_unused_prefetches += 1;
                    }
                    outcome.freed.push(slot);
                }
                None => {
                    // The cache no longer holds this slot (freed elsewhere);
                    // just drop it from the LRU bookkeeping.
                }
            }
        }

        self.total_scanned += outcome.pages_scanned;
        self.total_scan_time += outcome.scan_time;
        self.total_freed += outcome.freed.len() as u64;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_mem::{CacheOrigin, Pid};
    use proptest::prelude::*;

    fn fill(cache: &mut SwapCache, reclaimer: &mut LazyReclaimer, n: u64, origin: CacheOrigin) {
        for i in 0..n {
            cache.insert(SwapSlot(i), Pid(1), origin, Nanos::ZERO);
            reclaimer.on_insert(SwapSlot(i));
        }
    }

    #[test]
    fn reclaims_in_lru_order() {
        let mut cache = SwapCache::new(8);
        let mut r = LazyReclaimer::with_defaults();
        fill(&mut cache, &mut r, 4, CacheOrigin::Prefetch);
        // Touch slot 0 so it becomes MRU.
        r.on_hit(SwapSlot(0));
        let outcome = r.reclaim(&mut cache, 2, Nanos::from_micros(10));
        assert_eq!(outcome.freed, vec![SwapSlot(1), SwapSlot(2)]);
        assert!(cache.contains(SwapSlot(0)));
    }

    #[test]
    fn scan_time_grows_with_pages_scanned() {
        let mut cache = SwapCache::unbounded();
        let mut r = LazyReclaimer::with_defaults();
        fill(&mut cache, &mut r, 1000, CacheOrigin::Prefetch);
        let outcome = r.reclaim(&mut cache, 100, Nanos::ZERO);
        assert_eq!(outcome.freed.len(), 100);
        let expected =
            r.config().wakeup_cost + r.config().scan_cost_per_page * outcome.pages_scanned;
        assert_eq!(outcome.scan_time, expected);
        assert!(outcome.scan_time > Nanos::from_micros(2));
    }

    #[test]
    fn post_hit_wait_is_measured() {
        let mut cache = SwapCache::new(8);
        let mut r = LazyReclaimer::with_defaults();
        cache.insert(SwapSlot(1), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
        r.on_insert(SwapSlot(1));
        // The page is hit at t=10 µs but only reclaimed at t=500 µs.
        cache.record_hit(SwapSlot(1), Nanos::from_micros(10));
        r.on_hit(SwapSlot(1));
        let outcome = r.reclaim(&mut cache, 1, Nanos::from_micros(500));
        assert_eq!(outcome.freed, vec![SwapSlot(1)]);
        assert_eq!(outcome.freed_consumed_prefetches, 1);
        assert_eq!(outcome.post_hit_wait, vec![Nanos::from_micros(490)]);
    }

    #[test]
    fn unused_prefetches_are_counted_as_pollution() {
        let mut cache = SwapCache::new(8);
        let mut r = LazyReclaimer::with_defaults();
        fill(&mut cache, &mut r, 3, CacheOrigin::Prefetch);
        let outcome = r.reclaim(&mut cache, 3, Nanos::from_micros(5));
        assert_eq!(outcome.freed_unused_prefetches, 3);
        assert_eq!(outcome.freed_consumed_prefetches, 0);
    }

    #[test]
    fn zero_target_or_empty_list_is_cheap() {
        let mut cache = SwapCache::new(8);
        let mut r = LazyReclaimer::with_defaults();
        let outcome = r.reclaim(&mut cache, 0, Nanos::ZERO);
        assert!(outcome.freed.is_empty());
        assert_eq!(outcome.pages_scanned, 0);
        let outcome = r.reclaim(&mut cache, 5, Nanos::ZERO);
        assert!(outcome.freed.is_empty());
    }

    #[test]
    fn stale_lru_entries_are_skipped() {
        let mut cache = SwapCache::new(8);
        let mut r = LazyReclaimer::with_defaults();
        fill(&mut cache, &mut r, 4, CacheOrigin::Demand);
        // Slot 0 disappears from the cache without notifying the reclaimer.
        cache.remove(SwapSlot(0));
        let outcome = r.reclaim(&mut cache, 2, Nanos::ZERO);
        // It had to scan past the stale entry but still freed two real pages.
        assert_eq!(outcome.freed, vec![SwapSlot(1), SwapSlot(2)]);
        assert!(outcome.pages_scanned >= 3);
    }

    #[test]
    fn totals_accumulate_across_passes() {
        let mut cache = SwapCache::unbounded();
        let mut r = LazyReclaimer::with_defaults();
        fill(&mut cache, &mut r, 100, CacheOrigin::Prefetch);
        let _ = r.reclaim(&mut cache, 10, Nanos::ZERO);
        let _ = r.reclaim(&mut cache, 10, Nanos::ZERO);
        let (scanned, time, freed) = r.totals();
        assert_eq!(freed, 20);
        assert!(scanned >= 20);
        assert!(time > Nanos::ZERO);
    }

    proptest! {
        /// The reclaimer never frees more than the target and never leaves
        /// the cache inconsistent with its own bookkeeping.
        #[test]
        fn prop_never_over_frees(
            pages in 1u64..200,
            target in 1u64..100,
        ) {
            let mut cache = SwapCache::unbounded();
            let mut r = LazyReclaimer::with_defaults();
            fill(&mut cache, &mut r, pages, CacheOrigin::Prefetch);
            let before = cache.len();
            let outcome = r.reclaim(&mut cache, target, Nanos::ZERO);
            prop_assert!(outcome.freed.len() as u64 <= target);
            prop_assert_eq!(cache.len(), before - outcome.freed.len() as u64);
            prop_assert!(r.tracked_pages() as u64 <= pages);
        }
    }
}
