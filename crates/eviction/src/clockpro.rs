//! A CLOCK-Pro-style eviction policy.
//!
//! CLOCK-Pro (Jiang, Chen, Zhang — USENIX ATC 2005) approximates LIRS with
//! CLOCK hands: pages are *cold* on entry and promoted to *hot* only if they
//! are re-referenced during a test period; the eviction hand sweeps cold
//! pages first, giving one-touch pages (exactly the pollution a mispredicted
//! prefetch produces) a short residency while repeatedly hit pages are kept.
//!
//! This implementation keeps the spirit, not the letter, of the paper's
//! three-hand design: a single circular list of resident entries with
//! `hot` / `referenced` / `test` bits, a cold-first eviction sweep that
//! promotes tested pages instead of evicting them, and a hot-demotion sweep
//! that bounds the hot fraction. It exists as the reference *out-of-crate*
//! eviction policy: the `leap` engine knows nothing about it, and the
//! integration tests register it through the component registry exactly the
//! way a third-party policy would (mirroring `ProgrammedPrefetcher` on the
//! prefetcher side).
//!
//! Everything is deterministic: hands advance in insertion order, and no
//! clock or RNG feeds a decision.

use crate::evictor::{CacheEvictor, EvictionReport};
use leap_mem::{CacheOrigin, SwapCache, SwapSlot};
use leap_sim_core::hash::FxHashSet;
use leap_sim_core::Nanos;
use std::collections::VecDeque;

/// Fraction of tracked pages allowed to be hot before the demotion hand
/// runs, expressed as hot pages per 4 tracked (the paper tunes this
/// adaptively; a fixed 3/4 split keeps the model deterministic and simple).
const HOT_NUMERATOR: usize = 3;
const HOT_DENOMINATOR: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Page {
    slot: SwapSlot,
    hot: bool,
    referenced: bool,
    /// Cold pages start in their test period: a hit during it promotes the
    /// page to hot when the eviction hand reaches it.
    test: bool,
}

/// CLOCK-Pro-style evictor: cold-first CLOCK sweep with test-period
/// promotion and a bounded hot set.
#[derive(Debug, Default)]
pub struct ClockProEvictor {
    /// Resident pages in hand order (front = next eviction candidate).
    ring: VecDeque<Page>,
    /// Slot liveness; avoids O(ring) scans on hit/remove misses. The ring
    /// entry is the single source of truth for the bits.
    index: FxHashSet<u64>,
    hot_pages: usize,
}

impl ClockProEvictor {
    /// An empty CLOCK-Pro evictor.
    pub fn new() -> Self {
        ClockProEvictor::default()
    }

    /// Hot pages currently tracked (test hook).
    pub fn hot_pages(&self) -> usize {
        self.hot_pages
    }

    fn hot_limit(&self) -> usize {
        self.ring.len() * HOT_NUMERATOR / HOT_DENOMINATOR
    }

    fn find(&mut self, slot: SwapSlot) -> Option<&mut Page> {
        if !self.index.contains(&slot.0) {
            return None;
        }
        self.ring.iter_mut().find(|p| p.slot == slot)
    }

    fn forget(&mut self, slot: SwapSlot) {
        if self.index.remove(&slot.0) {
            if let Some(pos) = self.ring.iter().position(|p| p.slot == slot) {
                let page = self.ring.remove(pos).expect("position is in range");
                if page.hot {
                    self.hot_pages -= 1;
                }
            }
        }
    }

    /// Demotes hot pages (clearing reference bits, moving unreferenced hot
    /// pages back to cold-in-test) until the hot set fits its bound.
    fn rebalance_hot(&mut self) {
        let mut sweeps = self.ring.len();
        while self.hot_pages > self.hot_limit() && sweeps > 0 {
            sweeps -= 1;
            let Some(mut page) = self.ring.pop_front() else {
                break;
            };
            if page.hot {
                if page.referenced {
                    page.referenced = false;
                } else {
                    page.hot = false;
                    page.test = true;
                    self.hot_pages -= 1;
                }
            }
            self.ring.push_back(page);
        }
    }
}

impl CacheEvictor for ClockProEvictor {
    fn policy_name(&self) -> &'static str {
        "clock-pro"
    }

    fn frees_on_hit(&self) -> bool {
        false
    }

    fn on_insert(&mut self, slot: SwapSlot, _origin: CacheOrigin) {
        // Re-inserting a tracked slot resets it to a fresh cold page.
        self.forget(slot);
        self.ring.push_back(Page {
            slot,
            hot: false,
            referenced: false,
            test: true,
        });
        self.index.insert(slot.0);
    }

    fn on_remove(&mut self, slot: SwapSlot) {
        self.forget(slot);
    }

    fn on_hit(&mut self, slot: SwapSlot, _origin: CacheOrigin, _cache: &mut SwapCache) -> bool {
        if let Some(page) = self.find(slot) {
            page.referenced = true;
        }
        // CLOCK-Pro keeps hit pages resident (it is a retention policy, not
        // an eager-free one); the reference bit does the remembering.
        false
    }

    fn make_space(&mut self, cache: &mut SwapCache, target: u64, now: Nanos) -> EvictionReport {
        let mut report = EvictionReport::default();
        // Two full sweeps are enough to evict something if anything is
        // evictable: the first clears reference bits / promotes, the second
        // finds an unreferenced cold page.
        let mut sweeps = self.ring.len().saturating_mul(2);
        while report.freed_total() < target && sweeps > 0 && !self.ring.is_empty() {
            sweeps -= 1;
            let Some(mut page) = self.ring.pop_front() else {
                break;
            };
            if page.hot {
                // Hot pages are the demotion hand's business; the eviction
                // hand just clears their reference bit in passing.
                page.referenced = false;
                self.ring.push_back(page);
                continue;
            }
            if page.referenced {
                if page.test {
                    // Re-referenced during its test period: hot promotion.
                    page.hot = true;
                    page.test = false;
                    self.hot_pages += 1;
                } else {
                    page.test = true;
                }
                page.referenced = false;
                self.ring.push_back(page);
                continue;
            }
            // Unreferenced cold page: the victim.
            self.index.remove(&page.slot.0);
            if let Some(entry) = cache.remove(page.slot) {
                match entry.first_hit_at {
                    None => {
                        if entry.origin == CacheOrigin::Prefetch {
                            report.freed_unused_prefetches += 1;
                        } else {
                            report.freed_other += 1;
                        }
                    }
                    Some(hit_at) => {
                        report.freed_other += 1;
                        report.post_hit_wait.push(now.saturating_sub(hit_at));
                    }
                }
            }
        }
        self.rebalance_hot();
        report
    }

    fn background_reclaim(
        &mut self,
        _cache: &mut SwapCache,
        _now: Nanos,
    ) -> Option<EvictionReport> {
        None
    }

    fn tracked_pages(&self) -> u64 {
        self.ring.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_mem::Pid;

    fn insert(cache: &mut SwapCache, e: &mut ClockProEvictor, slot: u64) {
        cache.insert(SwapSlot(slot), Pid(1), CacheOrigin::Prefetch, Nanos::ZERO);
        e.on_insert(SwapSlot(slot), CacheOrigin::Prefetch);
    }

    #[test]
    fn untouched_cold_pages_are_evicted_first() {
        let mut cache = SwapCache::unbounded();
        let mut e = ClockProEvictor::new();
        for slot in 0..4 {
            insert(&mut cache, &mut e, slot);
        }
        // Hit pages 2 and 3 (they enter their hot test track).
        for slot in [2u64, 3] {
            cache.record_hit(SwapSlot(slot), Nanos::from_micros(1));
            e.on_hit(SwapSlot(slot), CacheOrigin::Prefetch, &mut cache);
        }
        let report = e.make_space(&mut cache, 2, Nanos::from_micros(5));
        assert_eq!(report.freed_total(), 2);
        assert_eq!(report.freed_unused_prefetches, 2, "victims were never hit");
        assert!(cache.contains(SwapSlot(2)) && cache.contains(SwapSlot(3)));
    }

    #[test]
    fn test_period_hits_promote_to_hot() {
        let mut cache = SwapCache::unbounded();
        let mut e = ClockProEvictor::new();
        for slot in 0..4 {
            insert(&mut cache, &mut e, slot);
        }
        cache.record_hit(SwapSlot(0), Nanos::from_micros(1));
        e.on_hit(SwapSlot(0), CacheOrigin::Prefetch, &mut cache);
        let _ = e.make_space(&mut cache, 1, Nanos::from_micros(2));
        assert_eq!(e.hot_pages(), 1, "tested page 0 became hot");
        assert!(cache.contains(SwapSlot(0)));
    }

    #[test]
    fn repeatedly_hit_pages_survive_pressure() {
        let mut cache = SwapCache::unbounded();
        let mut e = ClockProEvictor::new();
        for slot in 0..16 {
            insert(&mut cache, &mut e, slot);
            if slot < 2 {
                cache.record_hit(SwapSlot(slot), Nanos::from_micros(1));
                e.on_hit(SwapSlot(slot), CacheOrigin::Prefetch, &mut cache);
            }
        }
        // Keep re-referencing 0 and 1 while pressure evicts the rest.
        for round in 0..4 {
            for slot in [0u64, 1] {
                cache.record_hit(SwapSlot(slot), Nanos::from_micros(2 + round));
                e.on_hit(SwapSlot(slot), CacheOrigin::Prefetch, &mut cache);
            }
            let _ = e.make_space(&mut cache, 3, Nanos::from_micros(3 + round));
        }
        assert!(cache.contains(SwapSlot(0)), "hot page 0 evicted");
        assert!(cache.contains(SwapSlot(1)), "hot page 1 evicted");
    }

    #[test]
    fn removal_notifications_keep_bookkeeping_consistent() {
        let mut cache = SwapCache::unbounded();
        let mut e = ClockProEvictor::new();
        for slot in 0..4 {
            insert(&mut cache, &mut e, slot);
        }
        e.on_remove(SwapSlot(1));
        assert_eq!(e.tracked_pages(), 3);
        // Re-insert resets the page to cold.
        insert(&mut cache, &mut e, 1);
        assert_eq!(e.tracked_pages(), 4);
        let report = e.make_space(&mut cache, 4, Nanos::from_micros(9));
        assert_eq!(report.freed_total(), 4);
        assert_eq!(e.tracked_pages(), 0);
        assert_eq!(e.hot_pages(), 0);
    }

    #[test]
    fn freed_hit_pages_report_post_hit_waits() {
        let mut cache = SwapCache::unbounded();
        let mut e = ClockProEvictor::new();
        insert(&mut cache, &mut e, 7);
        cache.record_hit(SwapSlot(7), Nanos::from_micros(10));
        e.on_hit(SwapSlot(7), CacheOrigin::Prefetch, &mut cache);
        // Sweep until the page's reference/test credit is spent.
        let mut waits = Vec::new();
        for t in [20u64, 30, 40, 50] {
            let report = e.make_space(&mut cache, 1, Nanos::from_micros(t));
            waits.extend(report.post_hit_wait);
        }
        assert_eq!(waits.len(), 1);
        assert!(waits[0] >= Nanos::from_micros(10));
    }
}
