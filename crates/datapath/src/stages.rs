//! Named data-path stages and latency breakdowns.

use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A software or hardware stage a page request may pass through.
///
/// The set mirrors Figure 1 of the paper: the cache lookup and MMU work are
/// common to both paths; the bio/queueing/batching stages exist only on the
/// legacy block-layer path; the device/transport stage is where the HDD, SSD,
/// or RDMA access happens; Leap adds its own (much cheaper) prefetcher and
/// remote-interface stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Page-cache (swap cache / VFS cache) lookup.
    CacheLookup,
    /// MMU/page-table work to map the page once its data is available.
    MmuUpdate,
    /// Building the bio / block request (legacy path only).
    BioPreparation,
    /// Plugging, merging, sorting and staging in the request queue
    /// (legacy path only).
    QueueingAndBatching,
    /// I/O scheduler dispatch to the device driver (legacy path only).
    Dispatch,
    /// The device or network transfer itself (HDD/SSD/RDMA).
    DeviceTransfer,
    /// Leap's prefetcher (trend detection + candidate generation).
    Prefetcher,
    /// Leap's remote I/O interface (slot lookup + RDMA post).
    RemoteInterface,
}

impl Stage {
    /// All stages, in rough pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::CacheLookup,
        Stage::Prefetcher,
        Stage::BioPreparation,
        Stage::QueueingAndBatching,
        Stage::Dispatch,
        Stage::RemoteInterface,
        Stage::DeviceTransfer,
        Stage::MmuUpdate,
    ];

    /// Dense index of this stage in [`Stage::ALL`] (pipeline order), used
    /// for fixed-size per-stage accumulators.
    pub const fn index(self) -> usize {
        match self {
            Stage::CacheLookup => 0,
            Stage::Prefetcher => 1,
            Stage::BioPreparation => 2,
            Stage::QueueingAndBatching => 3,
            Stage::Dispatch => 4,
            Stage::RemoteInterface => 5,
            Stage::DeviceTransfer => 6,
            Stage::MmuUpdate => 7,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CacheLookup => "cache lookup",
            Stage::MmuUpdate => "MMU update",
            Stage::BioPreparation => "bio preparation",
            Stage::QueueingAndBatching => "queueing+batching",
            Stage::Dispatch => "dispatch",
            Stage::DeviceTransfer => "device transfer",
            Stage::Prefetcher => "prefetcher",
            Stage::RemoteInterface => "remote interface",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One stage's contribution to a request's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Which stage.
    pub stage: Stage,
    /// How long the request spent in it.
    pub latency: Nanos,
}

/// Stage entries a [`PathLatency`] stores inline, without touching the
/// heap.
///
/// The longest pipeline in the workspace (the legacy block-layer path)
/// records 7 stages per request, so every breakdown a data path produces
/// fits inline — the engine calls `read_page`/`write_page` for every remote
/// access, every prefetch, and every write-back, and none of those calls
/// may allocate.
pub const INLINE_PATH_STAGES: usize = 8;

/// The full latency breakdown of one page request through a data path.
///
/// Stage entries live in a fixed inline buffer ([`INLINE_PATH_STAGES`]
/// long) and only spill to the heap for longer synthetic pipelines, keeping
/// the per-request data-path bookkeeping allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathLatency {
    inline: [StageLatency; INLINE_PATH_STAGES],
    len: usize,
    /// Overflow storage; holds *all* entries once the inline capacity is
    /// exceeded, so `stages()` always yields one contiguous slice.
    spill: Vec<StageLatency>,
}

impl Default for PathLatency {
    fn default() -> Self {
        PathLatency {
            inline: [StageLatency {
                stage: Stage::CacheLookup,
                latency: Nanos::ZERO,
            }; INLINE_PATH_STAGES],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl PathLatency {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        PathLatency::default()
    }

    fn stages(&self) -> &[StageLatency] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Adds a stage's latency (stages may repeat, e.g. two device transfers).
    pub fn push(&mut self, stage: Stage, latency: Nanos) {
        let entry = StageLatency { stage, latency };
        if self.len < INLINE_PATH_STAGES && self.spill.is_empty() {
            self.inline[self.len] = entry;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(entry);
        }
        self.len += 1;
    }

    /// Total end-to-end latency.
    pub fn total(&self) -> Nanos {
        self.stages().iter().map(|s| s.latency).sum()
    }

    /// Latency attributed to one stage (summed over repeats).
    pub fn stage_total(&self, stage: Stage) -> Nanos {
        self.stages()
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.latency)
            .sum()
    }

    /// Iterates over the recorded stages in order.
    pub fn iter(&self) -> impl Iterator<Item = &StageLatency> {
        self.stages().iter()
    }

    /// Number of recorded stage entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no stages were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A data path that can serve a page read request and report its breakdown.
///
/// `core` identifies the CPU issuing the request (used for per-core dispatch
/// queues); `page_offset` is the swap-slot/remote offset of the page; `now`
/// is the current simulated time.
pub trait DataPath: Send + std::fmt::Debug {
    /// Serves a single 4 KB page read, returning its latency breakdown.
    fn read_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency;

    /// Serves a single 4 KB page write, returning its latency breakdown.
    fn write_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency;

    /// Serves a whole span of page reads issued together — same core, same
    /// instant, as when an admitted prefetch span goes out — pushing each
    /// read's end-to-end total onto `totals` (one entry per page, in order)
    /// and returning the aggregate breakdown with per-stage sums over the
    /// span.
    ///
    /// The default implementation is the per-read loop, so every data path
    /// gets span semantics for free; implementations may override it to
    /// batch the span (deferred queue bookkeeping, arena-backed buffers) as
    /// long as each read's total and the RNG draws stay bit-identical to
    /// the loop.
    fn read_span(
        &mut self,
        pages: &[u64],
        core: usize,
        now: Nanos,
        totals: &mut Vec<Nanos>,
    ) -> PathLatency {
        let mut sums = [Nanos::ZERO; INLINE_PATH_STAGES];
        for &page in pages {
            let breakdown = self.read_page(page, core, now);
            totals.push(breakdown.total());
            for entry in breakdown.iter() {
                sums[entry.stage.index()] = sums[entry.stage.index()].saturating_add(entry.latency);
            }
        }
        let mut aggregate = PathLatency::new();
        for stage in Stage::ALL {
            if !sums[stage.index()].is_zero() {
                aggregate.push(stage, sums[stage.index()]);
            }
        }
        aggregate
    }

    /// A short name for reports ("linux-default" or "leap").
    fn name(&self) -> &'static str;

    /// Fault-injection accounting for this path. Paths without a fault
    /// layer report the quiet default (no faults observed).
    fn fault_stats(&self) -> leap_remote::FaultInjectionStats {
        leap_remote::FaultInjectionStats::default()
    }

    /// Recovery accounting for this path. Paths without a recovery layer
    /// report the quiet default (no recovery action taken).
    fn recovery_stats(&self) -> leap_remote::RecoveryStats {
        leap_remote::RecoveryStats::default()
    }

    /// Per-tenant recovery ledgers, sorted by tenant id. Empty for paths
    /// without a recovery layer or for untagged traffic.
    fn tenant_recovery(&self) -> Vec<(u32, leap_remote::TenantRecovery)> {
        Vec::new()
    }

    /// Tags subsequent accesses with the issuing tenant (`0` = untagged).
    /// The engine calls this at scheduler context switches; paths without
    /// tenant-aware fault/recovery layers ignore it.
    fn set_active_tenant(&mut self, _tenant: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_stages() {
        let mut p = PathLatency::new();
        p.push(Stage::CacheLookup, Nanos::from_nanos(270));
        p.push(Stage::DeviceTransfer, Nanos::from_micros(4));
        p.push(Stage::MmuUpdate, Nanos::from_micros(2));
        assert_eq!(p.total(), Nanos::from_nanos(270 + 4_000 + 2_000));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn stage_total_sums_repeats() {
        let mut p = PathLatency::new();
        p.push(Stage::DeviceTransfer, Nanos::from_micros(4));
        p.push(Stage::DeviceTransfer, Nanos::from_micros(6));
        assert_eq!(p.stage_total(Stage::DeviceTransfer), Nanos::from_micros(10));
        assert_eq!(p.stage_total(Stage::CacheLookup), Nanos::ZERO);
    }

    #[test]
    fn empty_breakdown() {
        let p = PathLatency::new();
        assert!(p.is_empty());
        assert_eq!(p.total(), Nanos::ZERO);
    }

    #[test]
    fn spills_transparently_past_the_inline_capacity() {
        let mut p = PathLatency::new();
        for i in 0..INLINE_PATH_STAGES as u64 + 3 {
            p.push(Stage::DeviceTransfer, Nanos::from_nanos(i + 1));
        }
        assert_eq!(p.len(), INLINE_PATH_STAGES + 3);
        let expected: u64 = (1..=INLINE_PATH_STAGES as u64 + 3).sum();
        assert_eq!(p.total(), Nanos::from_nanos(expected));
        assert_eq!(p.iter().count(), p.len());
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
