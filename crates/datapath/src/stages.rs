//! Named data-path stages and latency breakdowns.

use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A software or hardware stage a page request may pass through.
///
/// The set mirrors Figure 1 of the paper: the cache lookup and MMU work are
/// common to both paths; the bio/queueing/batching stages exist only on the
/// legacy block-layer path; the device/transport stage is where the HDD, SSD,
/// or RDMA access happens; Leap adds its own (much cheaper) prefetcher and
/// remote-interface stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Page-cache (swap cache / VFS cache) lookup.
    CacheLookup,
    /// MMU/page-table work to map the page once its data is available.
    MmuUpdate,
    /// Building the bio / block request (legacy path only).
    BioPreparation,
    /// Plugging, merging, sorting and staging in the request queue
    /// (legacy path only).
    QueueingAndBatching,
    /// I/O scheduler dispatch to the device driver (legacy path only).
    Dispatch,
    /// The device or network transfer itself (HDD/SSD/RDMA).
    DeviceTransfer,
    /// Leap's prefetcher (trend detection + candidate generation).
    Prefetcher,
    /// Leap's remote I/O interface (slot lookup + RDMA post).
    RemoteInterface,
}

impl Stage {
    /// All stages, in rough pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::CacheLookup,
        Stage::Prefetcher,
        Stage::BioPreparation,
        Stage::QueueingAndBatching,
        Stage::Dispatch,
        Stage::RemoteInterface,
        Stage::DeviceTransfer,
        Stage::MmuUpdate,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::CacheLookup => "cache lookup",
            Stage::MmuUpdate => "MMU update",
            Stage::BioPreparation => "bio preparation",
            Stage::QueueingAndBatching => "queueing+batching",
            Stage::Dispatch => "dispatch",
            Stage::DeviceTransfer => "device transfer",
            Stage::Prefetcher => "prefetcher",
            Stage::RemoteInterface => "remote interface",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One stage's contribution to a request's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Which stage.
    pub stage: Stage,
    /// How long the request spent in it.
    pub latency: Nanos,
}

/// The full latency breakdown of one page request through a data path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathLatency {
    stages: Vec<StageLatency>,
}

impl PathLatency {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        PathLatency::default()
    }

    /// Adds a stage's latency (stages may repeat, e.g. two device transfers).
    pub fn push(&mut self, stage: Stage, latency: Nanos) {
        self.stages.push(StageLatency { stage, latency });
    }

    /// Total end-to-end latency.
    pub fn total(&self) -> Nanos {
        self.stages.iter().map(|s| s.latency).sum()
    }

    /// Latency attributed to one stage (summed over repeats).
    pub fn stage_total(&self, stage: Stage) -> Nanos {
        self.stages
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.latency)
            .sum()
    }

    /// Iterates over the recorded stages in order.
    pub fn iter(&self) -> impl Iterator<Item = &StageLatency> {
        self.stages.iter()
    }

    /// Number of recorded stage entries.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if no stages were recorded.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// A data path that can serve a page read request and report its breakdown.
///
/// `core` identifies the CPU issuing the request (used for per-core dispatch
/// queues); `page_offset` is the swap-slot/remote offset of the page; `now`
/// is the current simulated time.
pub trait DataPath: Send + std::fmt::Debug {
    /// Serves a single 4 KB page read, returning its latency breakdown.
    fn read_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency;

    /// Serves a single 4 KB page write, returning its latency breakdown.
    fn write_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency;

    /// A short name for reports ("linux-default" or "leap").
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_stages() {
        let mut p = PathLatency::new();
        p.push(Stage::CacheLookup, Nanos::from_nanos(270));
        p.push(Stage::DeviceTransfer, Nanos::from_micros(4));
        p.push(Stage::MmuUpdate, Nanos::from_micros(2));
        assert_eq!(p.total(), Nanos::from_nanos(270 + 4_000 + 2_000));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn stage_total_sums_repeats() {
        let mut p = PathLatency::new();
        p.push(Stage::DeviceTransfer, Nanos::from_micros(4));
        p.push(Stage::DeviceTransfer, Nanos::from_micros(6));
        assert_eq!(p.stage_total(Stage::DeviceTransfer), Nanos::from_micros(10));
        assert_eq!(p.stage_total(Stage::CacheLookup), Nanos::ZERO);
    }

    #[test]
    fn empty_breakdown() {
        let p = PathLatency::new();
        assert!(p.is_empty());
        assert_eq!(p.total(), Nanos::ZERO);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
