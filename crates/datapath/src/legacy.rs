//! The legacy, block-layer-based data path.
//!
//! This models the default Linux path a swapped page travels on a cache miss:
//! a bio is built, plugged/merged/sorted in the request queue, dispatched by
//! the I/O scheduler, and finally served by the device. The stage costs are
//! calibrated to the averages in the paper's Figure 1 (~0.27 µs cache lookup,
//! ~10 µs request preparation, ~21.9 µs queueing/batching/dispatch, ~2.1 µs
//! MMU work), with heavy-tailed variance: the paper notes the preparation and
//! batching stages vary enough to pull the average far from the median.

use crate::stages::{DataPath, PathLatency, Stage};
use leap_remote::{BackendKind, DispatchQueues, FaultInjectionStats, FaultPlan, StorageBackend};
use leap_sim_core::{DetRng, LatencySampler, Nanos, TableLatency};

/// Latency parameters for the legacy path's software stages.
#[derive(Debug, Clone, Copy)]
pub struct LegacyPathParams {
    /// Median cache (swap cache / VFS cache) lookup cost.
    pub cache_lookup: Nanos,
    /// Median bio construction / request preparation cost.
    pub bio_preparation: Nanos,
    /// Median plugging + merging + sorting + staging cost.
    pub queueing_batching: Nanos,
    /// Median I/O scheduler dispatch cost.
    pub dispatch: Nanos,
    /// Median MMU/page-table update cost.
    pub mmu_update: Nanos,
    /// Log-space sigma applied to the block-layer stages (they are the
    /// variable ones).
    pub block_layer_sigma: f64,
}

impl Default for LegacyPathParams {
    fn default() -> Self {
        LegacyPathParams {
            cache_lookup: Nanos::from_nanos(270),
            bio_preparation: Nanos::from_micros_f64(10.04),
            // Figure 1 folds queueing, merging, sorting, staging and dispatch
            // into ~21.88 µs; we split it 80/20 between the two stages.
            queueing_batching: Nanos::from_micros_f64(17.5),
            dispatch: Nanos::from_micros_f64(4.38),
            mmu_update: Nanos::from_micros_f64(2.1),
            block_layer_sigma: 0.6,
        }
    }
}

/// The default Linux-style data path over a given backing device.
///
/// # Examples
///
/// ```
/// use leap_datapath::{DataPath, LegacyDataPath};
/// use leap_remote::BackendKind;
/// use leap_sim_core::{DetRng, Nanos};
///
/// let mut path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(7));
/// let breakdown = path.read_page(42, 0, Nanos::ZERO);
/// // The block-layer overhead dominates the RDMA transfer.
/// assert!(breakdown.total() > Nanos::from_micros(10));
/// ```
#[derive(Debug)]
pub struct LegacyDataPath {
    params: LegacyPathParams,
    backend: StorageBackend,
    bio_sampler: TableLatency,
    queue_sampler: TableLatency,
    dispatch_sampler: TableLatency,
    /// Device/service queues: a spinning disk or SSD serialises requests on a
    /// single queue, while RDMA NICs expose per-core queues. Demand misses,
    /// prefetch reads, and write-backs all occupy the same device, so
    /// aggressive prefetching pays for its I/O bandwidth here.
    device_queues: DispatchQueues,
    rng: DetRng,
    reads: u64,
    writes: u64,
    /// Installed fault schedule (empty by default). The legacy path has no
    /// remote cluster, so only the epoch faults — latency spikes, degraded
    /// bandwidth, reconnect storms — apply; machine failures do not.
    fault_plan: FaultPlan,
    fault_stats: FaultInjectionStats,
}

impl LegacyDataPath {
    /// Creates a legacy path over the given backend with default parameters.
    pub fn new(backend: BackendKind, rng: DetRng) -> Self {
        Self::with_params(backend, LegacyPathParams::default(), rng)
    }

    /// Creates a legacy path with explicit stage parameters.
    pub fn with_params(backend: BackendKind, params: LegacyPathParams, rng: DetRng) -> Self {
        let device_queues = match backend {
            // One request stream for block devices, multi-queue for RDMA.
            BackendKind::Hdd | BackendKind::Ssd => DispatchQueues::new(1),
            BackendKind::Rdma => DispatchQueues::new(8),
        };
        // The block-layer log-normals are folded into quantile tables at
        // construction: one RNG draw + a linear interpolation per sample.
        LegacyDataPath {
            bio_sampler: TableLatency::from_lognormal(
                params.bio_preparation,
                params.block_layer_sigma,
                Nanos::from_nanos(500),
            ),
            queue_sampler: TableLatency::from_lognormal(
                params.queueing_batching,
                params.block_layer_sigma,
                Nanos::from_micros(1),
            ),
            dispatch_sampler: TableLatency::from_lognormal(
                params.dispatch,
                params.block_layer_sigma,
                Nanos::from_nanos(500),
            ),
            device_queues,
            params,
            backend: StorageBackend::new(backend),
            rng,
            reads: 0,
            writes: 0,
            fault_plan: FaultPlan::empty(),
            fault_stats: FaultInjectionStats::default(),
        }
    }

    /// Replaces the device model (useful for deterministic tests).
    pub fn set_backend(&mut self, backend: StorageBackend) {
        self.backend = backend;
    }

    /// Installs a fault schedule; the empty plan (the default) reproduces
    /// healthy runs bit-for-bit. Only epoch faults apply here — the legacy
    /// path models a local block device, not a failing remote cluster — so
    /// D-VMM and Leap face the same latency churn in comparisons.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Applies the fault modifiers in force at `now` to a sampled device
    /// transfer, counting affected requests.
    fn apply_faults(&mut self, transfer: Nanos, now: Nanos) -> Nanos {
        let mods = self.fault_plan.modifiers_at(now);
        if mods.is_identity() {
            return transfer;
        }
        let mut transfer = leap_remote::fault::scale_latency_milli(transfer, mods.multiplier_milli);
        if mods.spike_active {
            self.fault_stats.spiked_requests += 1;
            self.fault_stats.record(0x5b1c_e000u64 ^ now.as_nanos());
        }
        if mods.degraded_active {
            self.fault_stats.degraded_requests += 1;
            self.fault_stats.record(0xde64_ade0u64 ^ now.as_nanos());
        }
        if !mods.reconnect_penalty.is_zero() {
            transfer = transfer.saturating_add(mods.reconnect_penalty);
            self.fault_stats.reconnect_requests += 1;
            self.fault_stats.reconnect_penalty_total = self
                .fault_stats
                .reconnect_penalty_total
                .saturating_add(mods.reconnect_penalty);
            self.fault_stats.record(0x4ec0_44ecu64 ^ now.as_nanos());
        }
        transfer
    }

    /// The stage parameters in use.
    pub fn params(&self) -> &LegacyPathParams {
        &self.params
    }

    /// Total (reads, writes) served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    fn software_stages(&mut self, breakdown: &mut PathLatency) {
        breakdown.push(Stage::CacheLookup, self.params.cache_lookup);
        breakdown.push(
            Stage::BioPreparation,
            self.bio_sampler.sample(&mut self.rng),
        );
        breakdown.push(
            Stage::QueueingAndBatching,
            self.queue_sampler.sample(&mut self.rng),
        );
        breakdown.push(Stage::Dispatch, self.dispatch_sampler.sample(&mut self.rng));
    }
}

impl DataPath for LegacyDataPath {
    fn read_page(&mut self, _page_offset: u64, core: usize, now: Nanos) -> PathLatency {
        self.reads += 1;
        let mut breakdown = PathLatency::new();
        self.software_stages(&mut breakdown);
        let transfer = self.backend.read_latency(&mut self.rng);
        let transfer = self.apply_faults(transfer, now);
        let outcome = self.device_queues.dispatch(core, now, transfer);
        breakdown.push(Stage::QueueingAndBatching, outcome.queueing_delay);
        breakdown.push(Stage::DeviceTransfer, transfer);
        breakdown.push(Stage::MmuUpdate, self.params.mmu_update);
        breakdown
    }

    fn write_page(&mut self, _page_offset: u64, core: usize, now: Nanos) -> PathLatency {
        self.writes += 1;
        let mut breakdown = PathLatency::new();
        self.software_stages(&mut breakdown);
        let transfer = self.backend.write_latency(&mut self.rng);
        let transfer = self.apply_faults(transfer, now);
        let outcome = self.device_queues.dispatch(core, now, transfer);
        breakdown.push(Stage::QueueingAndBatching, outcome.queueing_delay);
        breakdown.push(Stage::DeviceTransfer, transfer);
        breakdown
    }

    fn name(&self) -> &'static str {
        "linux-default"
    }

    fn fault_stats(&self) -> FaultInjectionStats {
        self.fault_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_total_us(path: &mut LegacyDataPath, n: usize) -> f64 {
        // Space requests out so the device queue drains between them; these
        // tests measure the per-request path cost, not saturation behaviour.
        (0..n)
            .map(|i| {
                let now = Nanos::from_millis(5 * i as u64);
                path.read_page(i as u64, 0, now).total().as_micros_f64()
            })
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn rdma_read_averages_around_forty_microseconds() {
        // §2.2: an average 4 KB remote page access takes close to 40 µs on
        // the default path even though the RDMA op itself is ~4.3 µs.
        let mut path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(5));
        let mean = mean_total_us(&mut path, 20_000);
        assert!(
            (30.0..55.0).contains(&mean),
            "mean legacy RDMA latency {mean} µs outside the expected band"
        );
    }

    #[test]
    fn hdd_read_averages_above_hundred_microseconds() {
        // Figure 2: disk paging on the default path averages ~125 µs.
        let mut path = LegacyDataPath::new(BackendKind::Hdd, DetRng::seed_from(5));
        let mean = mean_total_us(&mut path, 10_000);
        assert!(mean > 100.0, "mean legacy HDD latency {mean} µs too low");
    }

    #[test]
    fn block_layer_overhead_dominates_rdma_transfer() {
        let mut path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(11));
        let mut block = 0.0;
        let mut device = 0.0;
        for i in 0..5_000u64 {
            let b = path.read_page(i, 0, Nanos::ZERO);
            block += (b.stage_total(Stage::BioPreparation)
                + b.stage_total(Stage::QueueingAndBatching)
                + b.stage_total(Stage::Dispatch))
            .as_micros_f64();
            device += b.stage_total(Stage::DeviceTransfer).as_micros_f64();
        }
        assert!(
            block > 3.0 * device,
            "block layer {block} not dominating device {device}"
        );
    }

    #[test]
    fn breakdown_contains_expected_stages() {
        let mut path = LegacyDataPath::new(BackendKind::Ssd, DetRng::seed_from(1));
        let b = path.read_page(0, 0, Nanos::ZERO);
        for stage in [
            Stage::CacheLookup,
            Stage::BioPreparation,
            Stage::QueueingAndBatching,
            Stage::Dispatch,
            Stage::DeviceTransfer,
            Stage::MmuUpdate,
        ] {
            assert!(
                !b.stage_total(stage).is_zero(),
                "stage {stage} missing from breakdown"
            );
        }
        // The legacy path never uses Leap's stages.
        assert!(b.stage_total(Stage::Prefetcher).is_zero());
        assert!(b.stage_total(Stage::RemoteInterface).is_zero());
    }

    #[test]
    fn writes_skip_the_mmu_update() {
        let mut path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(2));
        let b = path.write_page(0, 0, Nanos::ZERO);
        assert!(b.stage_total(Stage::MmuUpdate).is_zero());
        assert!(!b.stage_total(Stage::DeviceTransfer).is_zero());
        assert_eq!(path.io_counts(), (0, 1));
    }

    #[test]
    fn name_is_stable() {
        let path = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(0));
        assert_eq!(path.name(), "linux-default");
    }

    #[test]
    fn empty_fault_plan_reproduces_healthy_breakdowns() {
        let mut healthy = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(21));
        let mut faulted = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(21));
        faulted.install_fault_plan(FaultPlan::empty());
        for i in 0..200u64 {
            let now = Nanos::from_micros(3 * i);
            assert_eq!(healthy.read_page(i, 0, now), faulted.read_page(i, 0, now));
        }
        assert!(faulted.fault_stats().is_quiet());
    }

    #[test]
    fn latency_spikes_stretch_the_device_transfer() {
        use leap_remote::FaultSpec;

        let spec = FaultSpec {
            latency_spikes: 1,
            spike_multiplier_milli: 4000,
            epoch: Nanos::from_millis(100),
            start: Nanos::ZERO,
            horizon: Nanos::from_millis(1),
            ..FaultSpec::none()
        };
        let plan = FaultPlan::from_spec(9, &spec, 0);
        let mut healthy = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(33));
        let mut faulted = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(33));
        faulted.install_fault_plan(plan);
        // Sample inside the spike epoch: the faulted path's device transfer
        // must be exactly 4x the healthy one while software stages match.
        let now = Nanos::from_millis(50);
        let h = healthy.read_page(0, 0, now);
        let f = faulted.read_page(0, 0, now);
        assert_eq!(
            f.stage_total(Stage::DeviceTransfer).as_nanos(),
            h.stage_total(Stage::DeviceTransfer).as_nanos() * 4
        );
        assert_eq!(
            f.stage_total(Stage::BioPreparation),
            h.stage_total(Stage::BioPreparation)
        );
        assert_eq!(faulted.fault_stats().spiked_requests, 1);
        assert!(!faulted.fault_stats().is_quiet());
    }
}
