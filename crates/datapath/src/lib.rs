//! Data-path models: the legacy block-layer path and the lean Leap path.
//!
//! Figure 1 of the paper breaks a remote page access down into software
//! stages (VFS/MMU cache lookup, block-layer request preparation, batching
//! and dispatch, device/transport time). The block layer exists to optimise
//! slow disks; over RDMA it dominates end-to-end latency (§2.2, on average
//! ~34 µs of the ~40 µs total). Leap replaces it with a direct asynchronous
//! remote I/O interface.
//!
//! - [`stages`]: named data-path stages and per-stage latency models.
//! - [`legacy`]: the default Linux-style path (bio construction, plugging and
//!   merging, I/O-scheduler queueing, dispatch).
//! - [`lean`]: Leap's data path (slot lookup plus direct RDMA dispatch).
//!
//! Both paths produce a [`PathLatency`] breakdown so experiments can report
//! stage-by-stage averages (Figure 1) as well as end-to-end distributions
//! (Figures 2, 7, 8a).

pub mod lean;
pub mod legacy;
pub mod stages;

pub use lean::LeanDataPath;
pub use legacy::LegacyDataPath;
pub use stages::{DataPath, PathLatency, Stage, StageLatency};
