//! Leap's lean data path.
//!
//! On a cache miss, Leap bypasses the block layer entirely: the request goes
//! from the fault handler through the (cheap) prefetcher logic to the remote
//! I/O interface, which looks up the slab/slot and posts the RDMA operation
//! on the issuing core's dispatch queue (§4.2, §4.4). The only software costs
//! left are the cache lookup, the prefetcher, the slot lookup, and the MMU
//! update — which is why a miss lands within a few µs of the raw RDMA time
//! (Figure 6).

use crate::stages::{DataPath, PathLatency, Stage};
use leap_remote::{HostAgent, HostAgentConfig, RemoteCluster, RemoteIoKind, RemoteIoResult};
use leap_sim_core::{DetRng, LatencySampler, Nanos, TableLatency};

/// Latency parameters for the lean path's software stages.
#[derive(Debug, Clone, Copy)]
pub struct LeanPathParams {
    /// Median cache (swap cache) lookup cost.
    pub cache_lookup: Nanos,
    /// Median cost of the prefetcher (trend detection + candidate generation).
    pub prefetcher: Nanos,
    /// Median cost of the remote I/O interface (slot lookup + RDMA post).
    pub remote_interface: Nanos,
    /// Median MMU/page-table update cost.
    pub mmu_update: Nanos,
    /// Log-space sigma for the software stages (small: these are short,
    /// predictable code paths).
    pub software_sigma: f64,
}

impl Default for LeanPathParams {
    fn default() -> Self {
        LeanPathParams {
            cache_lookup: Nanos::from_nanos(270),
            // The paper's ~400-line kernel prefetcher costs well under a µs
            // per fault even at Hsize = 32 (§3.3).
            prefetcher: Nanos::from_nanos(350),
            remote_interface: Nanos::from_nanos(600),
            mmu_update: Nanos::from_micros_f64(2.1),
            software_sigma: 0.2,
        }
    }
}

/// Leap's lean data path over a remote-memory [`HostAgent`].
///
/// # Examples
///
/// ```
/// use leap_datapath::{DataPath, LeanDataPath};
/// use leap_sim_core::{DetRng, Nanos};
///
/// let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(3));
/// let breakdown = path.read_page(42, 0, Nanos::ZERO);
/// // No block-layer stages on the lean path.
/// assert!(breakdown.stage_total(leap_datapath::Stage::BioPreparation).is_zero());
/// ```
#[derive(Debug)]
pub struct LeanDataPath {
    params: LeanPathParams,
    agent: HostAgent,
    prefetcher_sampler: TableLatency,
    interface_sampler: TableLatency,
    rng: DetRng,
    reads: u64,
    writes: u64,
    /// Arena for per-read software-stage samples, reused across
    /// [`DataPath::read_span`] calls (one lean path per shard worker, so
    /// this is the per-shard arena).
    span_software: Vec<(Nanos, Nanos)>,
    /// Arena for per-read remote I/O results, reused like `span_software`.
    span_io: Vec<Option<RemoteIoResult>>,
}

impl LeanDataPath {
    /// Creates a lean path over an existing host agent.
    pub fn new(agent: HostAgent, rng: DetRng) -> Self {
        LeanDataPath::with_params(agent, LeanPathParams::default(), rng)
    }

    /// Creates a lean path over a small default cluster (4 machines × 64
    /// slabs, RDMA backend, replication 2).
    pub fn with_default_cluster(mut rng: DetRng) -> Self {
        let agent_rng = rng.fork();
        let agent = HostAgent::new(
            HostAgentConfig::default(),
            RemoteCluster::homogeneous(4, 64),
            agent_rng,
        );
        LeanDataPath::new(agent, rng)
    }

    /// Creates a lean path with explicit software-stage parameters.
    pub fn with_params(agent: HostAgent, params: LeanPathParams, mut rng: DetRng) -> Self {
        let local_rng = rng.fork();
        // The software-stage log-normals are folded into quantile tables at
        // construction: one RNG draw + a linear interpolation per sample on
        // the hot path instead of Box–Muller + exp.
        LeanDataPath {
            prefetcher_sampler: TableLatency::from_lognormal(
                params.prefetcher,
                params.software_sigma,
                Nanos::from_nanos(100),
            ),
            interface_sampler: TableLatency::from_lognormal(
                params.remote_interface,
                params.software_sigma,
                Nanos::from_nanos(200),
            ),
            params,
            agent,
            rng: local_rng,
            reads: 0,
            writes: 0,
            span_software: Vec::new(),
            span_io: Vec::new(),
        }
    }

    /// The stage parameters in use.
    pub fn params(&self) -> &LeanPathParams {
        &self.params
    }

    /// Access to the underlying host agent (for inventory reports).
    pub fn agent(&self) -> &HostAgent {
        &self.agent
    }

    /// Mutable access to the underlying host agent (to swap backends in
    /// tests or ablations).
    pub fn agent_mut(&mut self) -> &mut HostAgent {
        &mut self.agent
    }

    /// Total (reads, writes) served.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    fn serve(
        &mut self,
        kind: RemoteIoKind,
        page_offset: u64,
        core: usize,
        now: Nanos,
    ) -> PathLatency {
        let mut breakdown = PathLatency::new();
        breakdown.push(Stage::CacheLookup, self.params.cache_lookup);
        breakdown.push(
            Stage::Prefetcher,
            self.prefetcher_sampler.sample(&mut self.rng),
        );
        breakdown.push(
            Stage::RemoteInterface,
            self.interface_sampler.sample(&mut self.rng),
        );
        match self.agent.remote_io(kind, page_offset, core, now) {
            Some(result) => {
                breakdown.push(Stage::Dispatch, result.queueing_delay);
                breakdown.push(Stage::DeviceTransfer, result.transport_latency);
            }
            None => {
                // Out of remote capacity: model the fallback to a local SSD
                // swap device, which is what Infiniswap-style systems do.
                breakdown.push(
                    Stage::DeviceTransfer,
                    leap_remote::BackendKind::Ssd.nominal_latency(),
                );
            }
        }
        if kind == RemoteIoKind::Read {
            breakdown.push(Stage::MmuUpdate, self.params.mmu_update);
        }
        breakdown
    }
}

impl DataPath for LeanDataPath {
    fn read_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency {
        self.reads += 1;
        self.serve(RemoteIoKind::Read, page_offset, core, now)
    }

    fn write_page(&mut self, page_offset: u64, core: usize, now: Nanos) -> PathLatency {
        self.writes += 1;
        self.serve(RemoteIoKind::Write, page_offset, core, now)
    }

    /// Span-batched read path: bit-identical to the per-read loop (the
    /// prefetcher/interface samplers draw in the same per-page order on the
    /// lean path's own stream, and the agent stream is untouched by them, so
    /// grouping the software draws ahead of the span I/O reorders nothing
    /// within either stream), with the queue bookkeeping deferred to one
    /// [`leap_remote::DispatchQueues::dispatch_span`] and every intermediate
    /// buffer arena-backed — a steady-state span allocates nothing.
    fn read_span(
        &mut self,
        pages: &[u64],
        core: usize,
        now: Nanos,
        totals: &mut Vec<Nanos>,
    ) -> PathLatency {
        if pages.is_empty() {
            return PathLatency::new();
        }
        self.reads += pages.len() as u64;
        let mut software = std::mem::take(&mut self.span_software);
        software.clear();
        for _ in pages {
            let prefetcher = self.prefetcher_sampler.sample(&mut self.rng);
            let interface = self.interface_sampler.sample(&mut self.rng);
            software.push((prefetcher, interface));
        }
        let mut io = std::mem::take(&mut self.span_io);
        io.clear();
        self.agent
            .remote_io_span(RemoteIoKind::Read, pages, core, now, &mut io);

        let ssd_fallback = leap_remote::BackendKind::Ssd.nominal_latency();
        let fixed = self
            .params
            .cache_lookup
            .saturating_add(self.params.mmu_update);
        let mut prefetcher_sum = Nanos::ZERO;
        let mut interface_sum = Nanos::ZERO;
        let mut dispatch_sum = Nanos::ZERO;
        let mut transfer_sum = Nanos::ZERO;
        for (&(prefetcher, interface), result) in software.iter().zip(io.iter()) {
            prefetcher_sum = prefetcher_sum.saturating_add(prefetcher);
            interface_sum = interface_sum.saturating_add(interface);
            let device = match result {
                Some(r) => {
                    dispatch_sum = dispatch_sum.saturating_add(r.queueing_delay);
                    transfer_sum = transfer_sum.saturating_add(r.transport_latency);
                    r.queueing_delay.saturating_add(r.transport_latency)
                }
                None => {
                    // Same fallback as `serve`: out of remote capacity means
                    // a local SSD swap access, no dispatch-queue stage.
                    transfer_sum = transfer_sum.saturating_add(ssd_fallback);
                    ssd_fallback
                }
            };
            totals.push(
                fixed
                    .saturating_add(prefetcher)
                    .saturating_add(interface)
                    .saturating_add(device),
            );
        }
        self.span_software = software;
        self.span_io = io;

        let n = pages.len() as u64;
        let mut aggregate = PathLatency::new();
        aggregate.push(Stage::CacheLookup, self.params.cache_lookup * n);
        aggregate.push(Stage::Prefetcher, prefetcher_sum);
        aggregate.push(Stage::RemoteInterface, interface_sum);
        if !dispatch_sum.is_zero() {
            aggregate.push(Stage::Dispatch, dispatch_sum);
        }
        aggregate.push(Stage::DeviceTransfer, transfer_sum);
        aggregate.push(Stage::MmuUpdate, self.params.mmu_update * n);
        aggregate
    }

    fn name(&self) -> &'static str {
        "leap"
    }

    fn fault_stats(&self) -> leap_remote::FaultInjectionStats {
        self.agent.fault_stats()
    }

    fn recovery_stats(&self) -> leap_remote::RecoveryStats {
        self.agent.recovery_stats()
    }

    fn tenant_recovery(&self) -> Vec<(u32, leap_remote::TenantRecovery)> {
        self.agent.tenant_recovery()
    }

    fn set_active_tenant(&mut self, tenant: u32) {
        self.agent.set_active_tenant(tenant);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legacy::LegacyDataPath;
    use leap_remote::BackendKind;

    fn mean_total_us(path: &mut dyn DataPath, n: usize) -> f64 {
        // Space requests out (one every 20 µs) so the per-core dispatch
        // queues drain between them; the tests below measure the per-request
        // path cost, not queueing under saturation.
        (0..n)
            .map(|i| {
                let now = Nanos::from_micros(20 * i as u64);
                path.read_page(i as u64, i % 8, now).total().as_micros_f64()
            })
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn lean_path_read_is_single_digit_microseconds() {
        let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(1));
        let mean = mean_total_us(&mut path, 10_000);
        assert!(
            (5.0..12.0).contains(&mean),
            "mean lean-path latency {mean} µs outside expected band"
        );
    }

    #[test]
    fn lean_path_is_much_faster_than_legacy_on_rdma() {
        let mut lean = LeanDataPath::with_default_cluster(DetRng::seed_from(2));
        let mut legacy = LegacyDataPath::new(BackendKind::Rdma, DetRng::seed_from(2));
        let lean_mean = mean_total_us(&mut lean, 5_000);
        let legacy_mean = mean_total_us(&mut legacy, 5_000);
        assert!(
            legacy_mean > 3.0 * lean_mean,
            "legacy {legacy_mean} µs vs lean {lean_mean} µs: expected ≥3× gap"
        );
    }

    #[test]
    fn lean_path_skips_block_layer_stages() {
        let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(3));
        let b = path.read_page(0, 0, Nanos::ZERO);
        assert!(b.stage_total(Stage::BioPreparation).is_zero());
        assert!(b.stage_total(Stage::QueueingAndBatching).is_zero());
        assert!(!b.stage_total(Stage::Prefetcher).is_zero());
        assert!(!b.stage_total(Stage::RemoteInterface).is_zero());
        assert!(!b.stage_total(Stage::DeviceTransfer).is_zero());
    }

    #[test]
    fn writes_are_counted_and_skip_mmu() {
        let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(4));
        let b = path.write_page(7, 0, Nanos::ZERO);
        assert!(b.stage_total(Stage::MmuUpdate).is_zero());
        assert_eq!(path.io_counts(), (0, 1));
    }

    #[test]
    fn concurrent_cores_spread_over_dispatch_queues() {
        let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(5));
        // Many back-to-back requests all at t=0 from the same core pile up;
        // spreading over cores does not.
        let mut same_core_total = Nanos::ZERO;
        for i in 0..32u64 {
            same_core_total += path.read_page(i, 0, Nanos::ZERO).total();
        }
        let mut spread = LeanDataPath::with_default_cluster(DetRng::seed_from(5));
        let mut spread_total = Nanos::ZERO;
        for i in 0..32u64 {
            spread_total += spread.read_page(i, i as usize, Nanos::ZERO).total();
        }
        assert!(same_core_total > spread_total);
    }

    #[test]
    fn name_is_stable() {
        let path = LeanDataPath::with_default_cluster(DetRng::seed_from(0));
        assert_eq!(path.name(), "leap");
    }

    #[test]
    fn read_span_is_bit_identical_to_per_read_loop() {
        let mut span_path = LeanDataPath::with_default_cluster(DetRng::seed_from(9));
        let mut loop_path = LeanDataPath::with_default_cluster(DetRng::seed_from(9));
        let mut span_totals = Vec::new();
        for step in 0..60u64 {
            let now = Nanos::from_micros(step * 7);
            let core = (step % 4) as usize;
            let pages: Vec<u64> = (0..(step % 6)).map(|i| step * 13 + i).collect();
            span_totals.clear();
            let aggregate = span_path.read_span(&pages, core, now, &mut span_totals);
            let mut loop_total = Nanos::ZERO;
            for (i, &page) in pages.iter().enumerate() {
                let b = loop_path.read_page(page, core, now);
                assert_eq!(span_totals[i], b.total(), "step {step} page {i}");
                loop_total += b.total();
            }
            assert_eq!(aggregate.total(), loop_total, "step {step} aggregate");
        }
        assert_eq!(span_path.io_counts(), loop_path.io_counts());
        assert_eq!(span_path.agent().io_counts(), loop_path.agent().io_counts());
        // Both RNG streams advanced identically: the next read matches too.
        assert_eq!(
            span_path.read_page(999, 0, Nanos::from_millis(10)).total(),
            loop_path.read_page(999, 0, Nanos::from_millis(10)).total()
        );
    }

    #[test]
    fn read_span_stays_identical_with_recovery_and_partitions() {
        use leap_remote::{recovery_stream_seed, FaultPlan, FaultSpec, RecoveryPolicy};
        // With an active recovery policy (and link partitions in the plan)
        // the span path must fall back to the per-request reference path;
        // this pins that the fallback really is bit-identical.
        let build = || {
            let mut path = LeanDataPath::with_default_cluster(DetRng::seed_from(31));
            let spec = FaultSpec::canonical_partition_storm();
            path.agent_mut()
                .install_fault_plan(FaultPlan::from_spec(31, &spec, 4));
            path.agent_mut()
                .install_recovery(RecoveryPolicy::tail_tolerant(), recovery_stream_seed(31));
            path
        };
        let mut span_path = build();
        let mut loop_path = build();
        let mut span_totals = Vec::new();
        for step in 0..80u64 {
            let now = Nanos::from_micros(step * 9);
            let core = (step % 4) as usize;
            let pages: Vec<u64> = (0..(step % 6)).map(|i| step * 13 + i).collect();
            span_totals.clear();
            let aggregate = span_path.read_span(&pages, core, now, &mut span_totals);
            let mut loop_total = Nanos::ZERO;
            for (i, &page) in pages.iter().enumerate() {
                let b = loop_path.read_page(page, core, now);
                assert_eq!(span_totals[i], b.total(), "step {step} page {i}");
                loop_total += b.total();
            }
            assert_eq!(aggregate.total(), loop_total, "step {step} aggregate");
        }
        assert_eq!(
            span_path.recovery_stats(),
            loop_path.recovery_stats(),
            "recovery accounting must agree between span and loop"
        );
        assert!(
            !span_path.recovery_stats().is_quiet(),
            "the storm must actually exercise recovery"
        );
    }
}
