//! Simulation substrate for the Leap reproduction.
//!
//! The original Leap system is a Linux-kernel data path measured on a real
//! InfiniBand testbed. This crate provides the deterministic simulation
//! primitives every other crate in the workspace builds on:
//!
//! - [`time`]: nanosecond-resolution simulated time ([`Nanos`]) and helpers.
//! - [`clock`]: a monotonically advancing simulation clock ([`SimClock`]).
//! - [`rng`]: a small, seedable, deterministic random number generator
//!   ([`DetRng`]) so that every experiment is reproducible bit-for-bit.
//! - [`latency`]: latency samplers ([`LatencySampler`]) used to model device
//!   and software-stage costs (constant, uniform, normal, log-normal and
//!   empirical mixtures with heavy tails).
//! - [`units`]: byte-size constants and page geometry shared by all crates.
//! - [`hash`]: a dependency-free FxHash-style hasher ([`FxHashMap`]) for the
//!   hot maps every fault probes — deterministic and ~an order of magnitude
//!   cheaper than SipHash on the small integer keys used here.
//!
//! Everything is `std`-only and allocation-light; the hot paths (sampling a
//! latency, advancing the clock, hashing a key) are O(1).

pub mod clock;
pub mod hash;
pub mod latency;
pub mod rng;
pub mod time;
pub mod units;

pub use clock::SimClock;
pub use hash::{fx_map_with_capacity, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use latency::{
    scale_nanos_milli, ConstantLatency, EmpiricalLatency, LatencySampler, LogNormalLatency,
    MixtureLatency, NormalLatency, TableLatency, UniformLatency, MULTIPLIER_IDENTITY_MILLI,
    TABLE_SIZE,
};
pub use rng::DetRng;
pub use time::Nanos;
pub use units::{GIB, KIB, MIB, PAGE_SHIFT, PAGE_SIZE};
