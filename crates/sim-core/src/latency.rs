//! Latency samplers used to model device and software-stage costs.
//!
//! Every stage in the simulated data path (page-cache lookup, block-layer
//! batching, RDMA read, SSD access, ...) is parameterised by a
//! [`LatencySampler`]. Samplers are deterministic given a [`DetRng`] stream,
//! so whole experiments replay identically across runs.

use crate::rng::DetRng;
use crate::time::Nanos;

/// A source of latency samples.
///
/// Implementations must be cheap (O(1)) and must only draw randomness from
/// the provided [`DetRng`] so that the simulation stays deterministic.
pub trait LatencySampler: Send + Sync + std::fmt::Debug {
    /// Draws one latency sample.
    fn sample(&self, rng: &mut DetRng) -> Nanos;

    /// Returns the nominal (median/typical) latency of this sampler, used by
    /// reports and sanity checks.
    fn nominal(&self) -> Nanos;
}

/// A latency that is always the same value.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency {
    value: Nanos,
}

impl ConstantLatency {
    /// Creates a constant sampler.
    pub fn new(value: Nanos) -> Self {
        ConstantLatency { value }
    }
}

impl LatencySampler for ConstantLatency {
    fn sample(&self, _rng: &mut DetRng) -> Nanos {
        self.value
    }

    fn nominal(&self) -> Nanos {
        self.value
    }
}

/// A latency sampled uniformly from `[low, high]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency {
    low: Nanos,
    high: Nanos,
}

impl UniformLatency {
    /// Creates a uniform sampler.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: Nanos, high: Nanos) -> Self {
        assert!(low <= high, "UniformLatency requires low <= high");
        UniformLatency { low, high }
    }
}

impl LatencySampler for UniformLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        if self.low == self.high {
            return self.low;
        }
        Nanos::from_nanos(rng.gen_range_u64(self.low.as_nanos(), self.high.as_nanos() + 1))
    }

    fn nominal(&self) -> Nanos {
        Nanos::from_nanos((self.low.as_nanos() + self.high.as_nanos()) / 2)
    }
}

/// A latency sampled from a (truncated) normal distribution.
///
/// Samples below `floor` are clamped; device latencies can never be negative
/// or smaller than a minimum service time.
#[derive(Debug, Clone, Copy)]
pub struct NormalLatency {
    mean: Nanos,
    std_dev: Nanos,
    floor: Nanos,
}

impl NormalLatency {
    /// Creates a normal sampler with the given mean and standard deviation,
    /// clamped below at `floor`.
    pub fn new(mean: Nanos, std_dev: Nanos, floor: Nanos) -> Self {
        NormalLatency {
            mean,
            std_dev,
            floor,
        }
    }
}

impl LatencySampler for NormalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let z = rng.standard_normal();
        let v = self.mean.as_nanos() as f64 + z * self.std_dev.as_nanos() as f64;
        let v = v.max(self.floor.as_nanos() as f64);
        Nanos::from_nanos(v.round() as u64)
    }

    fn nominal(&self) -> Nanos {
        self.mean
    }
}

/// A latency sampled from a log-normal distribution.
///
/// Log-normal captures the long right tail of RDMA operations and software
/// queueing observed in the paper (medians of a few µs with rare 10–100×
/// outliers). The sampler is parameterised by the *median* and a multiplicative
/// spread `sigma` (the standard deviation of the underlying normal in log
/// space).
#[derive(Debug, Clone, Copy)]
pub struct LogNormalLatency {
    median: Nanos,
    sigma: f64,
    floor: Nanos,
}

impl LogNormalLatency {
    /// Creates a log-normal sampler with the given median, log-space sigma,
    /// and lower clamp.
    pub fn new(median: Nanos, sigma: f64, floor: Nanos) -> Self {
        LogNormalLatency {
            median,
            sigma,
            floor,
        }
    }
}

impl LatencySampler for LogNormalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let z = rng.standard_normal();
        let v = self.median.as_nanos() as f64 * (self.sigma * z).exp();
        let v = v.max(self.floor.as_nanos() as f64);
        // Clamp the astronomically unlikely overflow case.
        let v = v.min(u64::MAX as f64 / 2.0);
        Nanos::from_nanos(v.round() as u64)
    }

    fn nominal(&self) -> Nanos {
        self.median
    }
}

/// A mixture of samplers with associated weights.
///
/// Used, for example, to model an SSD with a fast read path plus occasional
/// garbage-collection stalls, or a network with rare congestion events.
#[derive(Debug)]
pub struct MixtureLatency {
    components: Vec<(f64, Box<dyn LatencySampler>)>,
    total_weight: f64,
}

impl MixtureLatency {
    /// Creates a mixture from `(weight, sampler)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or all weights are non-positive.
    pub fn new(components: Vec<(f64, Box<dyn LatencySampler>)>) -> Self {
        assert!(!components.is_empty(), "MixtureLatency needs components");
        let total_weight: f64 = components.iter().map(|(w, _)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "MixtureLatency needs positive weight");
        MixtureLatency {
            components,
            total_weight,
        }
    }
}

impl LatencySampler for MixtureLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let mut pick = rng.next_f64() * self.total_weight;
        for (w, sampler) in &self.components {
            let w = w.max(0.0);
            if pick < w {
                return sampler.sample(rng);
            }
            pick -= w;
        }
        // Floating point slack: fall back to the last component.
        self.components
            .last()
            .expect("mixture has at least one component")
            .1
            .sample(rng)
    }

    fn nominal(&self) -> Nanos {
        // Weighted average of component nominals.
        let weighted: f64 = self
            .components
            .iter()
            .map(|(w, s)| w.max(0.0) * s.nominal().as_nanos() as f64)
            .sum();
        Nanos::from_nanos((weighted / self.total_weight).round() as u64)
    }
}

/// A latency sampler that replays an empirical set of values.
///
/// Useful for tests and for plugging real measurement distributions into the
/// simulator.
#[derive(Debug, Clone)]
pub struct EmpiricalLatency {
    values: Vec<Nanos>,
}

impl EmpiricalLatency {
    /// Creates an empirical sampler from observed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(mut values: Vec<Nanos>) -> Self {
        assert!(!values.is_empty(), "EmpiricalLatency needs values");
        values.sort_unstable();
        EmpiricalLatency { values }
    }
}

impl LatencySampler for EmpiricalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let idx = rng.gen_range_usize(0, self.values.len());
        self.values[idx]
    }

    fn nominal(&self) -> Nanos {
        self.values[self.values.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from(0xC0FFEE)
    }

    #[test]
    fn constant_always_returns_value() {
        let s = ConstantLatency::new(Nanos::from_micros(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r), Nanos::from_micros(5));
        }
        assert_eq!(s.nominal(), Nanos::from_micros(5));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let s = UniformLatency::new(Nanos::from_nanos(100), Nanos::from_nanos(200));
        let mut r = rng();
        for _ in 0..1000 {
            let v = s.sample(&mut r);
            assert!(v >= Nanos::from_nanos(100) && v <= Nanos::from_nanos(200));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let s = UniformLatency::new(Nanos::from_nanos(50), Nanos::from_nanos(50));
        let mut r = rng();
        assert_eq!(s.sample(&mut r), Nanos::from_nanos(50));
    }

    #[test]
    fn normal_respects_floor() {
        let s = NormalLatency::new(
            Nanos::from_nanos(100),
            Nanos::from_nanos(500),
            Nanos::from_nanos(80),
        );
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.sample(&mut r) >= Nanos::from_nanos(80));
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let s = LogNormalLatency::new(Nanos::from_micros_f64(4.3), 0.4, Nanos::from_nanos(500));
        let mut r = rng();
        let mut samples: Vec<u64> = (0..20_000).map(|_| s.sample(&mut r).as_nanos()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!(
            (median - 4_300.0).abs() / 4_300.0 < 0.05,
            "median {median} too far from 4300"
        );
        // Tail should be meaningfully above the median.
        let p99 = samples[(samples.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 1.5 * median, "p99 {p99} not heavy enough");
    }

    #[test]
    fn mixture_samples_all_components() {
        let s = MixtureLatency::new(vec![
            (0.5, Box::new(ConstantLatency::new(Nanos::from_nanos(10)))),
            (0.5, Box::new(ConstantLatency::new(Nanos::from_nanos(1000)))),
        ]);
        let mut r = rng();
        let mut saw_fast = false;
        let mut saw_slow = false;
        for _ in 0..1000 {
            match s.sample(&mut r).as_nanos() {
                10 => saw_fast = true,
                1000 => saw_slow = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(saw_fast && saw_slow);
        assert_eq!(s.nominal(), Nanos::from_nanos(505));
    }

    #[test]
    fn empirical_replays_observed_values() {
        let values = vec![
            Nanos::from_nanos(5),
            Nanos::from_nanos(7),
            Nanos::from_nanos(9),
        ];
        let s = EmpiricalLatency::new(values.clone());
        let mut r = rng();
        for _ in 0..100 {
            assert!(values.contains(&s.sample(&mut r)));
        }
        assert_eq!(s.nominal(), Nanos::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformLatency::new(Nanos::from_nanos(10), Nanos::from_nanos(5));
    }
}
