//! Latency samplers used to model device and software-stage costs.
//!
//! Every stage in the simulated data path (page-cache lookup, block-layer
//! batching, RDMA read, SSD access, ...) is parameterised by a
//! [`LatencySampler`]. Samplers are deterministic given a [`DetRng`] stream,
//! so whole experiments replay identically across runs.

use crate::rng::DetRng;
use crate::time::Nanos;

/// The identity latency multiplier in thousandths (1000 = 1.0×).
pub const MULTIPLIER_IDENTITY_MILLI: u64 = 1000;

/// Scales a latency by a multiplier expressed in thousandths, in exact
/// integer arithmetic (`base * multiplier / 1000` over `u128`, saturated to
/// `u64`). The identity multiplier short-circuits, so a healthy epoch costs
/// one comparison and changes no bits.
///
/// This is the single scaling primitive for fault-epoch multipliers: samplers
/// always draw first and scale after, so the RNG stream advances identically
/// whether or not an epoch is active.
#[inline]
pub fn scale_nanos_milli(base: Nanos, multiplier_milli: u64) -> Nanos {
    if multiplier_milli == MULTIPLIER_IDENTITY_MILLI {
        return base;
    }
    let scaled = (u128::from(base.as_nanos()) * u128::from(multiplier_milli)) / 1000;
    Nanos::from_nanos(scaled.min(u128::from(u64::MAX)) as u64)
}

/// A source of latency samples.
///
/// Implementations must be cheap (O(1)) and must only draw randomness from
/// the provided [`DetRng`] so that the simulation stays deterministic.
pub trait LatencySampler: Send + Sync + std::fmt::Debug {
    /// Draws one latency sample.
    fn sample(&self, rng: &mut DetRng) -> Nanos;

    /// Returns the nominal (median/typical) latency of this sampler, used by
    /// reports and sanity checks.
    fn nominal(&self) -> Nanos;

    /// Draws one sample and scales it by a fault-epoch multiplier expressed
    /// in thousandths. The sample is always drawn first (the RNG stream moves
    /// identically under any multiplier), then scaled by exact integer
    /// arithmetic via [`scale_nanos_milli`].
    #[inline]
    fn sample_scaled(&self, rng: &mut DetRng, multiplier_milli: u64) -> Nanos {
        scale_nanos_milli(self.sample(rng), multiplier_milli)
    }

    /// Charges a whole span of `n` operations in one call: exactly equal to
    /// summing `n` sequential [`sample`](LatencySampler::sample) calls on the
    /// same RNG stream (same draws, same order, saturating sum).
    /// Implementations may tighten the loop but must preserve that identity.
    #[inline]
    fn sample_span(&self, rng: &mut DetRng, n: usize) -> Nanos {
        let mut total = Nanos::ZERO;
        for _ in 0..n {
            total = total.saturating_add(self.sample(rng));
        }
        total
    }
}

/// A latency that is always the same value.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency {
    value: Nanos,
}

impl ConstantLatency {
    /// Creates a constant sampler.
    pub fn new(value: Nanos) -> Self {
        ConstantLatency { value }
    }
}

impl LatencySampler for ConstantLatency {
    fn sample(&self, _rng: &mut DetRng) -> Nanos {
        self.value
    }

    fn nominal(&self) -> Nanos {
        self.value
    }
}

/// A latency sampled uniformly from `[low, high]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency {
    low: Nanos,
    high: Nanos,
}

impl UniformLatency {
    /// Creates a uniform sampler.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: Nanos, high: Nanos) -> Self {
        assert!(low <= high, "UniformLatency requires low <= high");
        UniformLatency { low, high }
    }
}

impl LatencySampler for UniformLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        if self.low == self.high {
            return self.low;
        }
        Nanos::from_nanos(rng.gen_range_u64(self.low.as_nanos(), self.high.as_nanos() + 1))
    }

    fn nominal(&self) -> Nanos {
        Nanos::from_nanos((self.low.as_nanos() + self.high.as_nanos()) / 2)
    }
}

/// A latency sampled from a (truncated) normal distribution.
///
/// Samples below `floor` are clamped; device latencies can never be negative
/// or smaller than a minimum service time.
#[derive(Debug, Clone, Copy)]
pub struct NormalLatency {
    mean: Nanos,
    std_dev: Nanos,
    floor: Nanos,
}

impl NormalLatency {
    /// Creates a normal sampler with the given mean and standard deviation,
    /// clamped below at `floor`.
    pub fn new(mean: Nanos, std_dev: Nanos, floor: Nanos) -> Self {
        NormalLatency {
            mean,
            std_dev,
            floor,
        }
    }
}

impl LatencySampler for NormalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let z = rng.standard_normal();
        let v = self.mean.as_nanos() as f64 + z * self.std_dev.as_nanos() as f64;
        let v = v.max(self.floor.as_nanos() as f64);
        Nanos::from_nanos(v.round() as u64)
    }

    fn nominal(&self) -> Nanos {
        self.mean
    }
}

/// A latency sampled from a log-normal distribution.
///
/// Log-normal captures the long right tail of RDMA operations and software
/// queueing observed in the paper (medians of a few µs with rare 10–100×
/// outliers). The sampler is parameterised by the *median* and a multiplicative
/// spread `sigma` (the standard deviation of the underlying normal in log
/// space).
#[derive(Debug, Clone, Copy)]
pub struct LogNormalLatency {
    median: Nanos,
    sigma: f64,
    floor: Nanos,
}

impl LogNormalLatency {
    /// Creates a log-normal sampler with the given median, log-space sigma,
    /// and lower clamp.
    pub fn new(median: Nanos, sigma: f64, floor: Nanos) -> Self {
        LogNormalLatency {
            median,
            sigma,
            floor,
        }
    }
}

impl LatencySampler for LogNormalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let z = rng.standard_normal();
        let v = self.median.as_nanos() as f64 * (self.sigma * z).exp();
        let v = v.max(self.floor.as_nanos() as f64);
        // Clamp the astronomically unlikely overflow case.
        let v = v.min(u64::MAX as f64 / 2.0);
        Nanos::from_nanos(v.round() as u64)
    }

    fn nominal(&self) -> Nanos {
        self.median
    }
}

/// Number of interpolation intervals in a [`TableLatency`] quantile table.
///
/// The table stores `TABLE_SIZE + 1` knots at evenly spaced quantiles; the
/// endpoints are winsorized to half an interval (`0.5 / TABLE_SIZE` and
/// `1 - 0.5 / TABLE_SIZE`) so the table never extrapolates into the
/// unbounded tails of the underlying distribution.
pub const TABLE_SIZE: usize = 4096;

/// A latency sampled from a precomputed inverse-CDF quantile table.
///
/// This is the hot-path replacement for [`LogNormalLatency`] and
/// [`MixtureLatency`]: the quantile function is evaluated once at
/// construction (4096 intervals, 4097 knots) and a sample is one [`DetRng`]
/// draw plus a linear interpolation — no `ln`/`exp`/`cos` per sample, and no
/// rejection, so the sampler consumes exactly **one** `next_u64` per sample.
/// That one-draw-per-sample discipline is what keeps Serial/Threaded replay
/// bit-identical when samplers are shared across span-batched call sites.
///
/// Numerically the table agrees with the analytic sampler to within its
/// quantile resolution (1/4096); the extreme tails are winsorized at the
/// half-interval quantiles, which bounds the largest sample at roughly the
/// p99.988 of the analytic distribution.
#[derive(Debug, Clone)]
pub struct TableLatency {
    /// `TABLE_SIZE + 1` quantile knots in nanoseconds, monotone
    /// non-decreasing, floor-clamped at construction. Shared: mixture
    /// tables are memoized process-wide by their exact parameters, so
    /// per-run shard workers clone a pointer instead of re-inverting the
    /// CDF.
    knots: std::sync::Arc<[f64]>,
    nominal: Nanos,
}

impl TableLatency {
    /// Builds a quantile table for a log-normal with the given median,
    /// log-space sigma, and lower clamp — the table twin of
    /// [`LogNormalLatency::new`].
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and positive.
    pub fn from_lognormal(median: Nanos, sigma: f64, floor: Nanos) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "TableLatency needs a positive sigma"
        );
        let m = median.as_nanos() as f64;
        let f = floor.as_nanos() as f64;
        let knots = (0..=TABLE_SIZE)
            .map(|i| {
                let q = winsorized_quantile(i);
                (m * (sigma * inverse_normal_cdf(q)).exp()).max(f)
            })
            .collect();
        TableLatency {
            knots,
            nominal: median,
        }
    }

    /// Builds one combined quantile table for a weighted mixture of clamped
    /// log-normals, given as `(weight, median, sigma, floor)` components —
    /// the table twin of a [`MixtureLatency`] of [`LogNormalLatency`]s.
    ///
    /// The mixture CDF `F(x) = Σ wᵢ·Φ(ln(x/mᵢ)/σᵢ)` (with each component
    /// contributing zero below its floor — clamping is a point mass at the
    /// floor) is inverted by bisection at every knot. Folding the mixture
    /// into one table halves the per-sample RNG cost: the analytic mixture
    /// draws once to pick a component and again inside it, the table draws
    /// exactly once.
    ///
    /// The nominal is the weighted average of component medians, matching
    /// [`MixtureLatency::nominal`] bit-for-bit so report/recovery arithmetic
    /// is unchanged by the switch.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty, total weight is non-positive, or any
    /// sigma is not finite and positive.
    pub fn from_lognormal_mixture(components: &[(f64, Nanos, f64, Nanos)]) -> Self {
        assert!(!components.is_empty(), "TableLatency needs components");
        let total_weight: f64 = components.iter().map(|(w, ..)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "TableLatency needs positive weight");
        let comps: Vec<(f64, f64, f64, f64)> = components
            .iter()
            .map(|&(w, median, sigma, floor)| {
                assert!(
                    sigma.is_finite() && sigma > 0.0,
                    "TableLatency needs positive sigmas"
                );
                (
                    w.max(0.0),
                    median.as_nanos() as f64,
                    sigma,
                    floor.as_nanos() as f64,
                )
            })
            .collect();
        // Inverting the mixture CDF is 64 bisection steps per knot × 4097
        // knots — tens of milliseconds of construction work. Shard workers
        // rebuild their backends on every run, and the workspace only ever
        // uses a handful of distinct mixtures, so the knot tables are
        // memoized process-wide. Keyed by exact parameter bits: only
        // bit-identical mixtures share a table, so sampled values are
        // unchanged by the cache.
        type MixtureKey = Vec<(u64, u64, u64, u64)>;
        type MixtureTableCache =
            std::sync::Mutex<crate::hash::FxHashMap<MixtureKey, std::sync::Arc<[f64]>>>;
        static MIXTURE_TABLES: std::sync::OnceLock<MixtureTableCache> = std::sync::OnceLock::new();
        let key: MixtureKey = components
            .iter()
            .map(|&(w, median, sigma, floor)| {
                (
                    w.to_bits(),
                    median.as_nanos(),
                    sigma.to_bits(),
                    floor.as_nanos(),
                )
            })
            .collect();
        let cache = MIXTURE_TABLES.get_or_init(Default::default);
        let cached = cache
            .lock()
            .expect("mixture table cache")
            .get(&key)
            .cloned();
        let knots = cached.unwrap_or_else(|| {
            let knots: std::sync::Arc<[f64]> = (0..=TABLE_SIZE)
                .map(|i| mixture_quantile(winsorized_quantile(i), &comps, total_weight))
                .collect();
            cache
                .lock()
                .expect("mixture table cache")
                .insert(key, knots.clone());
            knots
        });
        // Same arithmetic as MixtureLatency::nominal over LogNormal
        // components (whose nominal is the median).
        let weighted: f64 = comps.iter().map(|&(w, m, ..)| w * m).sum();
        TableLatency {
            knots,
            nominal: Nanos::from_nanos((weighted / total_weight).round() as u64),
        }
    }

    /// The interpolated quantile function: latency at cumulative probability
    /// `q` (clamped to `[0, 1]`), in nanoseconds. `sample` is exactly
    /// `quantile(u)` for one uniform draw `u`.
    pub fn quantile(&self, q: f64) -> Nanos {
        Nanos::from_nanos(self.lerp(q.clamp(0.0, 1.0)))
    }

    /// Linear interpolation over the knots at position `u ∈ [0, 1)`.
    #[inline]
    fn lerp(&self, u: f64) -> u64 {
        let x = u * TABLE_SIZE as f64;
        let idx = (x as usize).min(TABLE_SIZE - 1);
        let frac = x - idx as f64;
        let lo = self.knots[idx];
        let hi = self.knots[idx + 1];
        (lo + (hi - lo) * frac).round() as u64
    }
}

impl LatencySampler for TableLatency {
    #[inline]
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        // Exactly one u64 draw per sample: next_f64 is one next_u64.
        Nanos::from_nanos(self.lerp(rng.next_f64()))
    }

    fn nominal(&self) -> Nanos {
        self.nominal
    }

    #[inline]
    fn sample_span(&self, rng: &mut DetRng, n: usize) -> Nanos {
        // Identical draws in identical order to n sequential `sample` calls;
        // only the loop body is tightened (no virtual dispatch per sample).
        let mut total: u64 = 0;
        for _ in 0..n {
            total = total.saturating_add(self.lerp(rng.next_f64()));
        }
        Nanos::from_nanos(total)
    }
}

/// The winsorized quantile for knot `i`: endpoints are pulled in by half an
/// interval so the table never evaluates the quantile function at 0 or 1.
fn winsorized_quantile(i: usize) -> f64 {
    let n = TABLE_SIZE as f64;
    ((i as f64) / n).clamp(0.5 / n, 1.0 - 0.5 / n)
}

/// The standard normal CDF Φ, via Abramowitz & Stegun 26.2.17
/// (|ε| < 7.5e-8). Construction-time only.
fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.231_641_9 * x.abs());
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let tail = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// The standard normal quantile function Φ⁻¹, via Acklam's rational
/// approximation (|relative ε| < 1.15e-9). Construction-time only.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of a weighted mixture of floor-clamped log-normals at `x`.
fn mixture_cdf(x: f64, comps: &[(f64, f64, f64, f64)], total_weight: f64) -> f64 {
    let mut acc = 0.0;
    for &(w, median, sigma, floor) in comps {
        if w <= 0.0 {
            continue;
        }
        // Clamping puts a point mass at the floor: below it the component
        // contributes nothing, at or above it the raw log-normal CDF counts
        // the collapsed mass too.
        if x >= floor {
            acc += w * normal_cdf((x / median).ln() / sigma);
        }
    }
    acc / total_weight
}

/// Inverts the mixture CDF at quantile `q` by bisection.
fn mixture_quantile(q: f64, comps: &[(f64, f64, f64, f64)], total_weight: f64) -> f64 {
    // Upper bracket: beyond every component's p(1 - 6σ) and floor.
    let mut hi = comps
        .iter()
        .map(|&(_, m, s, f)| (m * (6.0 * s).exp()).max(f))
        .fold(1.0_f64, f64::max);
    while mixture_cdf(hi, comps, total_weight) < q {
        hi *= 2.0;
    }
    let mut lo = 0.0_f64;
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if mixture_cdf(mid, comps, total_weight) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// A mixture of samplers with associated weights.
///
/// Used, for example, to model an SSD with a fast read path plus occasional
/// garbage-collection stalls, or a network with rare congestion events.
#[derive(Debug)]
pub struct MixtureLatency {
    components: Vec<(f64, Box<dyn LatencySampler>)>,
    total_weight: f64,
}

impl MixtureLatency {
    /// Creates a mixture from `(weight, sampler)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or all weights are non-positive.
    pub fn new(components: Vec<(f64, Box<dyn LatencySampler>)>) -> Self {
        assert!(!components.is_empty(), "MixtureLatency needs components");
        let total_weight: f64 = components.iter().map(|(w, _)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "MixtureLatency needs positive weight");
        MixtureLatency {
            components,
            total_weight,
        }
    }
}

impl LatencySampler for MixtureLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let mut pick = rng.next_f64() * self.total_weight;
        for (w, sampler) in &self.components {
            let w = w.max(0.0);
            if pick < w {
                return sampler.sample(rng);
            }
            pick -= w;
        }
        // Floating point slack: fall back to the last component.
        self.components
            .last()
            .expect("mixture has at least one component")
            .1
            .sample(rng)
    }

    fn nominal(&self) -> Nanos {
        // Weighted average of component nominals.
        let weighted: f64 = self
            .components
            .iter()
            .map(|(w, s)| w.max(0.0) * s.nominal().as_nanos() as f64)
            .sum();
        Nanos::from_nanos((weighted / self.total_weight).round() as u64)
    }
}

/// A latency sampler that replays an empirical set of values.
///
/// Useful for tests and for plugging real measurement distributions into the
/// simulator.
#[derive(Debug, Clone)]
pub struct EmpiricalLatency {
    values: Vec<Nanos>,
}

impl EmpiricalLatency {
    /// Creates an empirical sampler from observed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(mut values: Vec<Nanos>) -> Self {
        assert!(!values.is_empty(), "EmpiricalLatency needs values");
        values.sort_unstable();
        EmpiricalLatency { values }
    }
}

impl LatencySampler for EmpiricalLatency {
    fn sample(&self, rng: &mut DetRng) -> Nanos {
        let idx = rng.gen_range_usize(0, self.values.len());
        self.values[idx]
    }

    fn nominal(&self) -> Nanos {
        self.values[self.values.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> DetRng {
        DetRng::seed_from(0xC0FFEE)
    }

    #[test]
    fn constant_always_returns_value() {
        let s = ConstantLatency::new(Nanos::from_micros(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r), Nanos::from_micros(5));
        }
        assert_eq!(s.nominal(), Nanos::from_micros(5));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let s = UniformLatency::new(Nanos::from_nanos(100), Nanos::from_nanos(200));
        let mut r = rng();
        for _ in 0..1000 {
            let v = s.sample(&mut r);
            assert!(v >= Nanos::from_nanos(100) && v <= Nanos::from_nanos(200));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let s = UniformLatency::new(Nanos::from_nanos(50), Nanos::from_nanos(50));
        let mut r = rng();
        assert_eq!(s.sample(&mut r), Nanos::from_nanos(50));
    }

    #[test]
    fn normal_respects_floor() {
        let s = NormalLatency::new(
            Nanos::from_nanos(100),
            Nanos::from_nanos(500),
            Nanos::from_nanos(80),
        );
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.sample(&mut r) >= Nanos::from_nanos(80));
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let s = LogNormalLatency::new(Nanos::from_micros_f64(4.3), 0.4, Nanos::from_nanos(500));
        let mut r = rng();
        let mut samples: Vec<u64> = (0..20_000).map(|_| s.sample(&mut r).as_nanos()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!(
            (median - 4_300.0).abs() / 4_300.0 < 0.05,
            "median {median} too far from 4300"
        );
        // Tail should be meaningfully above the median.
        let p99 = samples[(samples.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 1.5 * median, "p99 {p99} not heavy enough");
    }

    #[test]
    fn mixture_samples_all_components() {
        let s = MixtureLatency::new(vec![
            (0.5, Box::new(ConstantLatency::new(Nanos::from_nanos(10)))),
            (0.5, Box::new(ConstantLatency::new(Nanos::from_nanos(1000)))),
        ]);
        let mut r = rng();
        let mut saw_fast = false;
        let mut saw_slow = false;
        for _ in 0..1000 {
            match s.sample(&mut r).as_nanos() {
                10 => saw_fast = true,
                1000 => saw_slow = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(saw_fast && saw_slow);
        assert_eq!(s.nominal(), Nanos::from_nanos(505));
    }

    #[test]
    fn empirical_replays_observed_values() {
        let values = vec![
            Nanos::from_nanos(5),
            Nanos::from_nanos(7),
            Nanos::from_nanos(9),
        ];
        let s = EmpiricalLatency::new(values.clone());
        let mut r = rng();
        for _ in 0..100 {
            assert!(values.contains(&s.sample(&mut r)));
        }
        assert_eq!(s.nominal(), Nanos::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformLatency::new(Nanos::from_nanos(10), Nanos::from_nanos(5));
    }

    #[test]
    fn scale_nanos_milli_is_exact_integer_arithmetic() {
        let base = Nanos::from_nanos(12_345);
        assert_eq!(scale_nanos_milli(base, 1000), base, "identity is a no-op");
        assert_eq!(scale_nanos_milli(base, 4000), Nanos::from_nanos(49_380));
        assert_eq!(scale_nanos_milli(base, 1500), Nanos::from_nanos(18_517));
        assert_eq!(
            scale_nanos_milli(Nanos::from_nanos(u64::MAX), 2000).as_nanos(),
            u64::MAX
        );
        assert_eq!(scale_nanos_milli(base, 0), Nanos::ZERO);
    }

    #[test]
    fn table_sample_consumes_exactly_one_draw() {
        let s =
            TableLatency::from_lognormal(Nanos::from_micros_f64(4.3), 0.25, Nanos::from_micros(2));
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            let _ = s.sample(&mut a);
            let _ = b.next_u64();
        }
        // Both streams must now be in the same state.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn table_median_and_tail_match_the_analytic_lognormal() {
        // Mirrors `lognormal_median_is_close` for the table twin.
        let s =
            TableLatency::from_lognormal(Nanos::from_micros_f64(4.3), 0.4, Nanos::from_nanos(500));
        let mut r = rng();
        let mut samples: Vec<u64> = (0..20_000).map(|_| s.sample(&mut r).as_nanos()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64;
        assert!(
            (median - 4_300.0).abs() / 4_300.0 < 0.05,
            "median {median} too far from 4300"
        );
        let p99 = samples[(samples.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 1.5 * median, "p99 {p99} not heavy enough");
        assert_eq!(s.nominal(), Nanos::from_micros_f64(4.3));
    }

    #[test]
    fn table_respects_floor_and_monotonicity() {
        let floor = Nanos::from_micros(2);
        let s = TableLatency::from_lognormal(Nanos::from_micros_f64(4.3), 0.8, floor);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(s.sample(&mut r) >= floor);
        }
        let mut prev = Nanos::ZERO;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            assert!(v >= prev, "quantile function must be monotone");
            prev = v;
        }
    }

    #[test]
    fn mixture_table_nominal_matches_analytic_mixture() {
        let analytic = MixtureLatency::new(vec![
            (
                0.99,
                Box::new(LogNormalLatency::new(
                    Nanos::from_micros_f64(4.3),
                    0.25,
                    Nanos::from_micros(2),
                )),
            ),
            (
                0.01,
                Box::new(LogNormalLatency::new(
                    Nanos::from_micros(40),
                    0.40,
                    Nanos::from_micros(10),
                )),
            ),
        ]);
        let table = TableLatency::from_lognormal_mixture(&[
            (
                0.99,
                Nanos::from_micros_f64(4.3),
                0.25,
                Nanos::from_micros(2),
            ),
            (0.01, Nanos::from_micros(40), 0.40, Nanos::from_micros(10)),
        ]);
        assert_eq!(table.nominal(), analytic.nominal());
        // The combined table keeps the congestion tail: the top knot sits in
        // the slow component, far above the fast component's own tail.
        assert!(table.quantile(1.0) > Nanos::from_micros(40));
        assert!(table.quantile(0.5) < Nanos::from_micros(6));
    }

    proptest! {
        /// Quantile agreement with the analytic log-normal, within table
        /// resolution: composing the independent A&S normal CDF over a table
        /// knot must return (nearly) the knot's quantile, and the knot must
        /// agree with the direct analytic quantile formula.
        #[test]
        fn prop_table_quantiles_agree_with_lognormal(
            median_us in 1u64..200,
            sigma_c in 5u32..80,
            knot in 1usize..TABLE_SIZE,
        ) {
            let sigma = sigma_c as f64 / 100.0;
            let median = Nanos::from_micros(median_us);
            let table = TableLatency::from_lognormal(median, sigma, Nanos::ZERO);
            let q = knot as f64 / TABLE_SIZE as f64;
            let x = table.quantile(q).as_nanos() as f64;
            // Round trip through the independent CDF approximation. The
            // table stores integer nanoseconds, so allow the quantile shift
            // one nanosecond of rounding causes at the local density.
            let z = inverse_normal_cdf(q);
            let density = (-0.5 * z * z).exp()
                / (2.0 * std::f64::consts::PI).sqrt()
                / (x.max(1.0) * sigma);
            let q_back = normal_cdf((x / median.as_nanos() as f64).ln() / sigma);
            prop_assert!(
                (q_back - q).abs() < 1.0 / TABLE_SIZE as f64 + density,
                "knot {} round-tripped to {} (expected {})", knot, q_back, q
            );
            // And directly against the analytic quantile function.
            let analytic = median.as_nanos() as f64 * (sigma * inverse_normal_cdf(q)).exp();
            prop_assert!(
                (x - analytic).abs() <= analytic * 2e-3 + 1.0,
                "knot {} = {} vs analytic {}", knot, x, analytic
            );
        }
    }

    proptest! {
        /// `sample_span(n)` is bit-identical to n sequential `sample` calls
        /// on the same RNG stream — for the table sampler (tight loop
        /// override) and the default trait implementation alike.
        #[test]
        fn prop_sample_span_equals_sequential_samples(
            seed in 0u64..1_000,
            n in 0usize..64,
            median_us in 1u64..100,
        ) {
            let table = TableLatency::from_lognormal(
                Nanos::from_micros(median_us), 0.3, Nanos::from_nanos(200));
            let lognormal = LogNormalLatency::new(
                Nanos::from_micros(median_us), 0.3, Nanos::from_nanos(200));
            let samplers: [&dyn LatencySampler; 2] = [&table, &lognormal];
            for s in samplers {
                let mut span_rng = DetRng::seed_from(seed);
                let mut seq_rng = DetRng::seed_from(seed);
                let span = s.sample_span(&mut span_rng, n);
                let mut seq = Nanos::ZERO;
                for _ in 0..n {
                    seq = seq.saturating_add(s.sample(&mut seq_rng));
                }
                prop_assert_eq!(span, seq);
                // Both consumed the same number of draws.
                prop_assert_eq!(span_rng.next_u64(), seq_rng.next_u64());
            }
        }
    }

    proptest! {
        /// Scaled sampling draws first and scales after: the stream advances
        /// identically under any multiplier, and the identity multiplier
        /// changes no bits.
        #[test]
        fn prop_sample_scaled_preserves_the_stream(
            seed in 0u64..1_000,
            mult in 0u64..8_000,
        ) {
            let table = TableLatency::from_lognormal(
                Nanos::from_micros(20), 0.4, Nanos::from_micros(8));
            let mut plain_rng = DetRng::seed_from(seed);
            let mut scaled_rng = DetRng::seed_from(seed);
            let plain = table.sample(&mut plain_rng);
            let scaled = table.sample_scaled(&mut scaled_rng, mult);
            prop_assert_eq!(scaled, scale_nanos_milli(plain, mult));
            prop_assert_eq!(plain_rng.next_u64(), scaled_rng.next_u64());
        }
    }
}
