//! Byte-size constants and page geometry shared across the workspace.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// The page size used throughout the reproduction (4 KB, as in the paper).
pub const PAGE_SIZE: u64 = 4 * KIB;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Converts a byte count into the number of pages needed to hold it
/// (rounding up).
///
/// # Examples
///
/// ```
/// use leap_sim_core::units::{bytes_to_pages, PAGE_SIZE};
/// assert_eq!(bytes_to_pages(0), 0);
/// assert_eq!(bytes_to_pages(1), 1);
/// assert_eq!(bytes_to_pages(PAGE_SIZE), 1);
/// assert_eq!(bytes_to_pages(PAGE_SIZE + 1), 2);
/// ```
pub const fn bytes_to_pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Converts a page count into bytes.
pub const fn pages_to_bytes(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 1 << PAGE_SHIFT);
        assert_eq!(MIB / KIB, 1024);
        assert_eq!(GIB / MIB, 1024);
    }

    #[test]
    fn bytes_to_pages_rounds_up() {
        assert_eq!(bytes_to_pages(0), 0);
        assert_eq!(bytes_to_pages(PAGE_SIZE - 1), 1);
        assert_eq!(bytes_to_pages(PAGE_SIZE), 1);
        assert_eq!(bytes_to_pages(10 * PAGE_SIZE + 5), 11);
    }

    #[test]
    fn pages_to_bytes_round_trip() {
        for pages in [0u64, 1, 7, 4096] {
            assert_eq!(bytes_to_pages(pages_to_bytes(pages)), pages);
        }
    }
}
