//! Nanosecond-resolution simulated time.
//!
//! All latencies in the workspace are expressed as [`Nanos`], a transparent
//! `u64` newtype. The paper reports stage costs between ~270 ns (page-cache
//! lookup) and ~91.5 µs (HDD access), so a `u64` nanosecond counter covers
//! multi-hour simulations without overflow.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span (or instant) of simulated time, in nanoseconds.
///
/// `Nanos` is used both for durations ("this RDMA read took 4.3 µs") and for
/// instants ("the page was prefetched at t = 120 µs"); the arithmetic is the
/// same and the simulator never mixes real wall-clock time in.
///
/// # Examples
///
/// ```
/// use leap_sim_core::Nanos;
///
/// let rdma = Nanos::from_micros_f64(4.3);
/// let lookup = Nanos::from_nanos(270);
/// assert_eq!((rdma + lookup).as_nanos(), 4_570);
/// assert!(rdma.as_micros_f64() > 4.2 && rdma.as_micros_f64() < 4.4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable duration.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds (e.g. `4.3` µs RDMA).
    ///
    /// Negative inputs saturate to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if us <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((us * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((ms * 1_000_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }

    /// Multiplies the duration by a float factor, saturating at zero for
    /// negative results.
    pub fn mul_f64(self, factor: f64) -> Nanos {
        if factor <= 0.0 {
            return Nanos::ZERO;
        }
        Nanos((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc.saturating_add(x))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Nanos::from_micros(4).as_nanos(), 4_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_micros_f64(4.3).as_nanos(), 4_300);
        assert_eq!(Nanos::from_millis_f64(0.0912).as_nanos(), 91_200);
    }

    #[test]
    fn negative_float_inputs_saturate_to_zero() {
        assert_eq!(Nanos::from_micros_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(-0.5), Nanos::ZERO);
        assert_eq!(Nanos::from_micros(10).mul_f64(-2.0), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_micros(4);
        assert_eq!((a + b).as_nanos(), 14_000);
        assert_eq!((a - b).as_nanos(), 6_000);
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 2).as_nanos(), 5_000);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_micros(6)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn min_max_and_is_zero() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(Nanos::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(format!("{}", Nanos::from_nanos(270)), "270ns");
        assert_eq!(format!("{}", Nanos::from_micros_f64(4.3)), "4.300us");
        assert_eq!(format!("{}", Nanos::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_is_saturating() {
        let total: Nanos = vec![Nanos::MAX, Nanos::from_nanos(10)].into_iter().sum();
        assert_eq!(total, Nanos::MAX);
    }

    proptest! {
        #[test]
        fn prop_add_sub_round_trip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (a, b) = (Nanos(a), Nanos(b));
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn prop_saturating_sub_never_underflows(a in any::<u64>(), b in any::<u64>()) {
            let r = Nanos(a).saturating_sub(Nanos(b));
            prop_assert!(r.as_nanos() <= a);
        }

        #[test]
        fn prop_mul_f64_monotone(ns in 0u64..1_000_000_000u64, f in 0.0f64..100.0) {
            let base = Nanos(ns);
            let scaled = base.mul_f64(f);
            if f >= 1.0 {
                prop_assert!(scaled >= base.mul_f64(1.0));
            }
        }
    }
}
