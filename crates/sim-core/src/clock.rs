//! A monotonically advancing simulation clock.

use crate::time::Nanos;

/// The simulated clock shared by a single experiment run.
///
/// The clock only moves forward. Components charge time to it by calling
/// [`SimClock::advance`] with the latency they modelled; readers observe the
/// current instant with [`SimClock::now`].
///
/// # Examples
///
/// ```
/// use leap_sim_core::{Nanos, SimClock};
///
/// let mut clock = SimClock::new();
/// clock.advance(Nanos::from_micros(4));
/// assert_eq!(clock.now(), Nanos::from_micros(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Nanos,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        SimClock { now: Nanos::ZERO }
    }

    /// Creates a clock starting at an arbitrary instant.
    pub fn starting_at(start: Nanos) -> Self {
        SimClock { now: start }
    }

    /// Returns the current simulated instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&mut self, delta: Nanos) -> Nanos {
        self.now = self.now.saturating_add(delta);
        self.now
    }

    /// Moves the clock to `instant` if it is in the future; otherwise leaves
    /// the clock untouched. Returns the (possibly unchanged) current instant.
    ///
    /// This is used when a caller has computed an absolute completion time
    /// (e.g. an asynchronous RDMA read finishing) and wants the clock to
    /// reflect it without ever going backwards.
    pub fn advance_to(&mut self, instant: Nanos) -> Nanos {
        if instant > self.now {
            self.now = instant;
        }
        self.now
    }

    /// Returns the elapsed time since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn since(&self, earlier: Nanos) -> Nanos {
        self.now.saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Nanos::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut clock = SimClock::new();
        clock.advance(Nanos::from_micros(3));
        clock.advance(Nanos::from_micros(7));
        assert_eq!(clock.now(), Nanos::from_micros(10));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut clock = SimClock::starting_at(Nanos::from_micros(100));
        clock.advance_to(Nanos::from_micros(50));
        assert_eq!(clock.now(), Nanos::from_micros(100));
        clock.advance_to(Nanos::from_micros(150));
        assert_eq!(clock.now(), Nanos::from_micros(150));
    }

    #[test]
    fn since_saturates() {
        let clock = SimClock::starting_at(Nanos::from_micros(10));
        assert_eq!(clock.since(Nanos::from_micros(4)), Nanos::from_micros(6));
        assert_eq!(clock.since(Nanos::from_micros(40)), Nanos::ZERO);
    }
}
