//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator (latency jitter, workload
//! generators, slab placement) draws from a [`DetRng`] seeded from the
//! experiment configuration so that repeated runs are bit-for-bit identical.

/// A seedable, deterministic random number generator.
///
/// Internally this is a self-contained xoshiro256++ generator whose state is
/// expanded from the 64-bit seed with splitmix64 (no external dependencies);
/// the wrapper exists so that the rest of the workspace depends on a single,
/// stable interface and so that derived sub-streams (one per process, per
/// device, ...) can be forked reproducibly with [`DetRng::fork`].
///
/// # Examples
///
/// ```
/// use leap_sim_core::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    seed: u64,
    forks: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            state,
            seed,
            forks: 0,
        }
    }

    /// Returns the seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates an independent sub-stream.
    ///
    /// Each fork gets a seed derived from the parent seed and a fork counter,
    /// so components created in the same order always observe the same
    /// stream regardless of how much randomness other components consumed.
    pub fn fork(&mut self) -> DetRng {
        self.forks += 1;
        let child_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.forks);
        DetRng::seed_from(child_seed)
    }

    /// Returns the next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn gen_range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "gen_range_u64 requires low < high");
        let span = high - low;
        // Debiased multiply-shift (Lemire); the rejection loop terminates
        // almost immediately for any span that is not close to 2^64.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (span as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return low + hi;
            }
        }
    }

    /// Returns a uniform integer in `[low, high)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn gen_range_usize(&mut self, low: usize, high: usize) -> usize {
        assert!(low < high, "gen_range_usize requires low < high");
        self.gen_range_u64(low as u64, high as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Samples a standard normal variate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller needs u1 in (0, 1]; avoid ln(0).
        let mut u1 = self.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Samples from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let mut u = self.next_f64();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Samples a Zipfian-distributed rank in `[0, n)` with skew `theta`.
    ///
    /// Uses simple inverse-CDF sampling over the precomputed harmonic sum is
    /// avoided for memory reasons; instead we use the approximation from
    /// Gray et al. (the "quick and dirty" zipf used by YCSB-like generators).
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf requires n > 0");
        if n == 1 {
            return 0;
        }
        let theta = theta.clamp(0.0001, 0.9999);
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let zetan = Self::zeta_approx(n, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let u = self.next_f64();
        let uz = u * zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(theta) {
            return 1;
        }
        let rank = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as usize;
        rank.min(n - 1)
    }

    fn zeta_approx(n: usize, theta: f64) -> f64 {
        // Exact for small n, integral approximation for large n to keep the
        // generator O(1) per sample.
        if n <= 1024 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1024).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let tail = ((n as f64).powf(1.0 - theta) - 1024f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let mut parent1 = DetRng::seed_from(99);
        let mut parent2 = DetRng::seed_from(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // A second fork observes a different stream than the first.
        let mut c3 = parent1.fork();
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn standard_normal_has_reasonable_moments() {
        let mut rng = DetRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean} too far from 5");
    }

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let mut rng = DetRng::seed_from(3);
        let n = 10_000;
        let mut head = 0usize;
        for _ in 0..n {
            if rng.zipf(1000, 0.99) < 10 {
                head += 1;
            }
        }
        // With high skew, a large fraction of accesses hit the top-10 ranks.
        assert!(head > n / 4, "only {head} of {n} samples in the head");
    }

    proptest! {
        #[test]
        fn prop_gen_range_in_bounds(low in 0u64..1000, span in 1u64..1000, seed in any::<u64>()) {
            let mut rng = DetRng::seed_from(seed);
            let v = rng.gen_range_u64(low, low + span);
            prop_assert!(v >= low && v < low + span);
        }

        #[test]
        fn prop_zipf_in_bounds(n in 1usize..5000, seed in any::<u64>()) {
            let mut rng = DetRng::seed_from(seed);
            let v = rng.zipf(n, 0.9);
            prop_assert!(v < n);
        }

        #[test]
        fn prop_chance_clamps(p in -2.0f64..2.0, seed in any::<u64>()) {
            let mut rng = DetRng::seed_from(seed);
            let _ = rng.chance(p); // Must not panic for out-of-range p.
        }
    }
}
