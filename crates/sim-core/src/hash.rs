//! A dependency-free specialized hasher for the simulation hot paths.
//!
//! The fault hot path probes several maps per access (page table, swap
//! cache, swap-slot ownership, LRU index, per-process prefetcher routing).
//! `std::collections::HashMap`'s default SipHash-1-3 is a keyed PRF built to
//! resist hash-flooding from untrusted input — overkill for a deterministic
//! simulator hashing its own small integer keys, and measurably slow at ~1–2
//! ns/byte with per-instance key setup.
//!
//! [`FxHasher`] is the multiply-xor scheme popularised by Firefox and used
//! throughout rustc (`rustc_hash`): fold each 8-byte chunk into the state
//! with a rotate, xor, and one multiplication by a 64-bit constant derived
//! from the golden ratio. One multiply per word is 5–10× faster than SipHash
//! on the 8-byte keys every hot map here uses, and — unlike `RandomState` —
//! it is *deterministic across runs and processes*, so map iteration order
//! (where it matters for debugging) is reproducible too.
//!
//! The trade-off is the usual one: no flooding resistance. Every key hashed
//! in this workspace originates from the simulator itself (slot numbers,
//! page numbers, pids, deltas), never from untrusted input.
//!
//! # Examples
//!
//! ```
//! use leap_sim_core::hash::FxHashMap;
//!
//! let mut residency: FxHashMap<u64, bool> = FxHashMap::default();
//! residency.insert(0x42, true);
//! assert_eq!(residency.get(&0x42), Some(&true));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: `2^64 / φ`, the same odd constant `rustc_hash`
/// uses. Multiplication by a large odd constant mixes low-order key bits
/// into the high-order hash bits that hashbrown's control bytes consume.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before each fold so consecutive words land in different
/// bit positions.
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: one rotate + xor + multiply per 8-byte word.
///
/// Use through [`FxBuildHasher`] / [`FxHashMap`] / [`FxHashSet`] rather than
/// directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // hashbrown takes the *top* bits for its control bytes; the final
        // multiply already pushed the entropy there, so no extra finalizer
        // is needed (matching rustc_hash's behaviour).
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s; stateless, so every
/// map built from it hashes identically (deterministic across runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for the std map on hot
/// paths whose keys the simulator itself generates.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// An [`FxHashMap`] pre-sized for `capacity` entries, so maps whose maximum
/// population is known from configuration never rehash on the hot path.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&(1u32, 2usize)), hash_of(&(1u32, 2usize)));
    }

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a cryptographic property, just a sanity check that the mixer
        // is not degenerate on the key shapes the hot maps use.
        let hashes: Vec<u64> = (0u64..1024).map(|k| hash_of(&k)).collect();
        let mut deduped = hashes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), hashes.len());
    }

    #[test]
    fn sequential_keys_spread_over_top_bits() {
        // hashbrown selects buckets from the *high* bits: sequential slot
        // numbers (the common key pattern here) must not collapse onto a few
        // top-bit patterns.
        let mut top_bytes = [0u32; 256];
        for k in 0u64..4096 {
            top_bytes[(hash_of(&k) >> 56) as usize] += 1;
        }
        let populated = top_bytes.iter().filter(|&&c| c > 0).count();
        assert!(populated > 128, "only {populated} of 256 top bytes used");
    }

    #[test]
    fn byte_slices_and_tail_lengths_hash() {
        let a = hash_of(&[1u8, 2, 3]);
        let b = hash_of(&[1u8, 2, 3, 0]);
        assert_ne!(a, b, "length must influence the hash");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(16);
        let cap = m.capacity();
        for i in 0..16u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map must not grow");
        assert_eq!(m.get(&7), Some(&14));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}
