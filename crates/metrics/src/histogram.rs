//! Latency histograms with percentile and CDF queries.

use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};

/// A collection of latency samples supporting percentile, mean, and CDF
/// queries.
///
/// Samples are kept exactly (the experiments record at most a few million
/// samples); queries sort lazily and cache the sorted order until the next
/// insertion.
///
/// # Examples
///
/// ```
/// use leap_metrics::LatencyHistogram;
/// use leap_sim_core::Nanos;
///
/// let mut h = LatencyHistogram::new();
/// for us in [1u64, 2, 3, 4, 100] {
///     h.record(Nanos::from_micros(us));
/// }
/// assert_eq!(h.median(), Nanos::from_micros(3));
/// assert_eq!(h.percentile(99.0), Nanos::from_micros(100));
/// assert!(h.mean() > Nanos::from_micros(20));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Nanos) {
        self.samples.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Pre-allocates room for `additional` further samples, so a hot
    /// recording path never reallocates in steady state.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// The samples in ascending order (sorting lazily like the percentile
    /// queries). Useful for exact distribution comparisons between runs.
    pub fn sorted_samples(&mut self) -> &[u64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns the p-th percentile (p in `[0, 100]`). Returns zero for an
    /// empty histogram.
    pub fn percentile(&mut self, p: f64) -> Nanos {
        if self.samples.is_empty() {
            return Nanos::ZERO;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank percentile: the smallest sample with at least p % of
        // the distribution at or below it.
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let index = rank.clamp(1, self.samples.len()) - 1;
        Nanos::from_nanos(self.samples[index])
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> Nanos {
        self.percentile(50.0)
    }

    /// The arithmetic mean. Returns zero for an empty histogram.
    pub fn mean(&self) -> Nanos {
        if self.samples.is_empty() {
            return Nanos::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Nanos::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// The maximum sample. Returns zero for an empty histogram.
    pub fn max(&self) -> Nanos {
        Nanos::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// The minimum sample. Returns zero for an empty histogram.
    pub fn min(&self) -> Nanos {
        Nanos::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// The sum of all samples.
    pub fn total(&self) -> Nanos {
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Nanos::from_nanos(sum.min(u64::MAX as u128) as u64)
    }

    /// The fraction of samples ≤ `threshold` (the empirical CDF).
    pub fn cdf_at(&mut self, threshold: Nanos) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let t = threshold.as_nanos();
        let count = self.samples.partition_point(|&s| s <= t);
        count as f64 / self.samples.len() as f64
    }

    /// Produces `(latency, cumulative fraction)` points suitable for plotting
    /// a CDF, at the given number of evenly spaced quantiles.
    pub fn cdf_points(&mut self, points: usize) -> Vec<(Nanos, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let rank = ((q * (self.samples.len() - 1) as f64).round()) as usize;
                (Nanos::from_nanos(self.samples[rank]), q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.median(), Nanos::ZERO);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.percentile(99.0), Nanos::ZERO);
        assert_eq!(h.cdf_at(us(10)), 0.0);
        assert!(h.cdf_points(10).is_empty());
    }

    #[test]
    fn percentiles_on_known_data() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(us(v));
        }
        assert_eq!(h.median(), us(50));
        assert_eq!(h.percentile(99.0), us(99));
        assert_eq!(h.percentile(0.0), us(1));
        assert_eq!(h.percentile(100.0), us(100));
        assert_eq!(h.min(), us(1));
        assert_eq!(h.max(), us(100));
    }

    #[test]
    fn mean_and_total() {
        let mut h = LatencyHistogram::new();
        h.record(us(10));
        h.record(us(20));
        h.record(us(30));
        assert_eq!(h.mean(), us(20));
        assert_eq!(h.total(), us(60));
    }

    #[test]
    fn cdf_at_thresholds() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(us(v));
        }
        assert_eq!(h.cdf_at(us(2)), 0.5);
        assert_eq!(h.cdf_at(us(4)), 1.0);
        assert_eq!(h.cdf_at(Nanos::ZERO), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        a.record(us(1));
        let mut b = LatencyHistogram::new();
        b.record(us(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), us(3));
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut h = LatencyHistogram::new();
        for v in [5u64, 1, 9, 3, 7, 2, 8] {
            h.record(us(v));
        }
        let points = h.cdf_points(5);
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(pair[1].0 >= pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// Percentiles are monotone in p and bounded by min/max.
        #[test]
        fn prop_percentiles_monotone(
            samples in proptest::collection::vec(0u64..10_000_000, 1..500),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let mut h = LatencyHistogram::new();
            for s in &samples {
                h.record(Nanos::from_nanos(*s));
            }
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(h.percentile(lo) <= h.percentile(hi));
            prop_assert!(h.percentile(0.0) >= h.min());
            prop_assert!(h.percentile(100.0) <= h.max());
        }

        /// The CDF is 1.0 at the maximum sample.
        #[test]
        fn prop_cdf_reaches_one(
            samples in proptest::collection::vec(0u64..1_000_000, 1..300),
        ) {
            let mut h = LatencyHistogram::new();
            for s in &samples {
                h.record(Nanos::from_nanos(*s));
            }
            let max = h.max();
            prop_assert!((h.cdf_at(max) - 1.0).abs() < 1e-9);
        }
    }
}
