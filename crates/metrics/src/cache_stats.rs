//! Cache counters: adds, hits, misses, evictions, pollution.

use serde::{Deserialize, Serialize};

/// Counters describing how a (prefetch) cache behaved during a run.
///
/// These feed Figure 9a of the paper ("Cache Add" / "Cache Miss" per
/// prefetcher) and the pollution discussion in §5.2.3.
///
/// # Examples
///
/// ```
/// use leap_metrics::CacheStats;
///
/// let mut stats = CacheStats::default();
/// stats.record_add(4);       // prefetcher added four pages
/// stats.record_prefetch_hit();
/// stats.record_miss();
/// assert_eq!(stats.cache_adds(), 4);
/// assert_eq!(stats.hit_ratio(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    cache_adds: u64,
    prefetch_hits: u64,
    demand_hits: u64,
    misses: u64,
    evictions: u64,
    evicted_unused_prefetches: u64,
}

impl CacheStats {
    /// Records `pages` pages added to the cache by prefetching.
    pub fn record_add(&mut self, pages: u64) {
        self.cache_adds += pages;
    }

    /// Records an access served by a *prefetched* cache entry.
    pub fn record_prefetch_hit(&mut self) {
        self.prefetch_hits += 1;
    }

    /// Records an access served by a demand-fetched cache entry (e.g. a page
    /// brought in by an earlier miss and still in the swap cache).
    pub fn record_demand_hit(&mut self) {
        self.demand_hits += 1;
    }

    /// Records an access that missed the cache entirely.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Records an eviction; `was_unused_prefetch` marks evictions of
    /// prefetched pages that were never hit (cache pollution).
    pub fn record_eviction(&mut self, was_unused_prefetch: bool) {
        self.evictions += 1;
        if was_unused_prefetch {
            self.evicted_unused_prefetches += 1;
        }
    }

    /// Total pages added to the cache by prefetching.
    pub fn cache_adds(&self) -> u64 {
        self.cache_adds
    }

    /// Accesses served from prefetched entries.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Accesses served from demand-fetched entries.
    pub fn demand_hits(&self) -> u64 {
        self.demand_hits
    }

    /// Total cache hits (prefetch + demand).
    pub fn hits(&self) -> u64 {
        self.prefetch_hits + self.demand_hits
    }

    /// Accesses that missed the cache.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions of prefetched pages that were never used.
    pub fn evicted_unused_prefetches(&self) -> u64 {
        self.evicted_unused_prefetches
    }

    /// Total slow-tier accesses observed (hits + misses).
    pub fn total_accesses(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of accesses served by the cache. Zero if no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        self.hits() as f64 / total as f64
    }

    /// Fraction of prefetched pages that were never hit before eviction,
    /// relative to all prefetched pages (a pollution measure). Zero if
    /// nothing was prefetched.
    pub fn pollution_ratio(&self) -> f64 {
        if self.cache_adds == 0 {
            return 0.0;
        }
        self.evicted_unused_prefetches as f64 / self.cache_adds as f64
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.cache_adds += other.cache_adds;
        self.prefetch_hits += other.prefetch_hits;
        self.demand_hits += other.demand_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.evicted_unused_prefetches += other.evicted_unused_prefetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.pollution_ratio(), 0.0);
        assert_eq!(s.total_accesses(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = CacheStats::default();
        s.record_add(8);
        s.record_prefetch_hit();
        s.record_prefetch_hit();
        s.record_demand_hit();
        s.record_miss();
        s.record_eviction(true);
        s.record_eviction(false);
        assert_eq!(s.cache_adds(), 8);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.evictions(), 2);
        assert_eq!(s.evicted_unused_prefetches(), 1);
        assert_eq!(s.total_accesses(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-9);
        assert!((s.pollution_ratio() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats::default();
        a.record_add(2);
        a.record_miss();
        let mut b = CacheStats::default();
        b.record_add(3);
        b.record_prefetch_hit();
        a.merge(&b);
        assert_eq!(a.cache_adds(), 5);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.misses(), 1);
    }
}
