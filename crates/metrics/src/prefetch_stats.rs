//! Prefetch effectiveness: accuracy, coverage, and timeliness (§3.1).

use crate::histogram::LatencyHistogram;
use leap_sim_core::Nanos;
use serde::{Deserialize, Serialize};

/// Accuracy, coverage, and timeliness accounting for one prefetcher run.
///
/// Following §3.1 of the paper:
///
/// - *Accuracy* is the ratio of prefetched-cache hits to the total number of
///   pages added to the cache by prefetching.
/// - *Coverage* is the ratio of prefetched-cache hits to the total number of
///   requests (page faults / remote accesses).
/// - *Timeliness* of an accurately prefetched page is the gap between when it
///   was prefetched and when it was first hit.
///
/// # Examples
///
/// ```
/// use leap_metrics::PrefetchStats;
/// use leap_sim_core::Nanos;
///
/// let mut stats = PrefetchStats::default();
/// stats.record_prefetched(4);
/// stats.record_request();
/// stats.record_request();
/// stats.record_prefetch_hit(Nanos::from_micros(12));
/// assert_eq!(stats.accuracy(), 0.25);
/// assert_eq!(stats.coverage(), 0.5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefetchStats {
    pages_prefetched: u64,
    prefetch_hits: u64,
    total_requests: u64,
    timeliness: LatencyHistogram,
}

impl PrefetchStats {
    /// Records `pages` pages added to the cache by prefetching.
    pub fn record_prefetched(&mut self, pages: u64) {
        self.pages_prefetched += pages;
    }

    /// Records one request (page fault / remote access) regardless of outcome.
    pub fn record_request(&mut self) {
        self.total_requests += 1;
    }

    /// Records a hit on a prefetched page, with the time it spent in the
    /// cache before being hit.
    pub fn record_prefetch_hit(&mut self, waited: Nanos) {
        self.prefetch_hits += 1;
        self.timeliness.record(waited);
    }

    /// Total pages brought in by prefetching.
    pub fn pages_prefetched(&self) -> u64 {
        self.pages_prefetched
    }

    /// Total hits on prefetched pages.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits
    }

    /// Total requests observed.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Prefetch accuracy in `[0, 1]`. Zero if nothing was prefetched.
    pub fn accuracy(&self) -> f64 {
        if self.pages_prefetched == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / self.pages_prefetched as f64
    }

    /// Prefetch coverage in `[0, 1]`. Zero if there were no requests.
    pub fn coverage(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / self.total_requests as f64
    }

    /// The distribution of time prefetched pages waited before their first
    /// hit (smaller is more timely).
    pub fn timeliness(&mut self) -> &mut LatencyHistogram {
        &mut self.timeliness
    }

    /// Read-only view of the timeliness histogram.
    pub fn timeliness_ref(&self) -> &LatencyHistogram {
        &self.timeliness
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.pages_prefetched += other.pages_prefetched;
        self.prefetch_hits += other.prefetch_hits;
        self.total_requests += other.total_requests;
        self.timeliness.merge(&other.timeliness);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = PrefetchStats::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.pages_prefetched(), 0);
    }

    #[test]
    fn accuracy_and_coverage_formulas() {
        let mut s = PrefetchStats::default();
        s.record_prefetched(10);
        for _ in 0..20 {
            s.record_request();
        }
        for i in 0..5u64 {
            s.record_prefetch_hit(Nanos::from_micros(i));
        }
        assert!((s.accuracy() - 0.5).abs() < 1e-9);
        assert!((s.coverage() - 0.25).abs() < 1e-9);
        assert_eq!(s.timeliness().len(), 5);
    }

    #[test]
    fn accuracy_can_exceed_one_if_hits_are_double_counted_by_caller() {
        // The struct itself does not clamp; it reports what the caller fed it.
        let mut s = PrefetchStats::default();
        s.record_prefetched(1);
        s.record_prefetch_hit(Nanos::ZERO);
        s.record_prefetch_hit(Nanos::ZERO);
        assert!(s.accuracy() > 1.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = PrefetchStats::default();
        a.record_prefetched(2);
        a.record_request();
        a.record_prefetch_hit(Nanos::from_micros(1));
        let mut b = PrefetchStats::default();
        b.record_prefetched(3);
        b.record_request();
        a.merge(&b);
        assert_eq!(a.pages_prefetched(), 5);
        assert_eq!(a.total_requests(), 2);
        assert_eq!(a.prefetch_hits(), 1);
    }

    #[test]
    fn timeliness_median_reflects_waits() {
        let mut s = PrefetchStats::default();
        s.record_prefetched(3);
        s.record_prefetch_hit(Nanos::from_micros(10));
        s.record_prefetch_hit(Nanos::from_micros(20));
        s.record_prefetch_hit(Nanos::from_micros(30));
        assert_eq!(s.timeliness().median(), Nanos::from_micros(20));
    }
}
