//! Plain-text table rendering for the experiment binaries.
//!
//! The benchmark harness regenerates the paper's figures as text tables
//! (one row per bar / series point). This module provides a small,
//! dependency-free table formatter.

use std::fmt;

/// A simple text table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// use leap_metrics::TextTable;
///
/// let mut table = TextTable::new(vec!["config", "median (us)", "p99 (us)"]);
/// table.add_row(vec!["D-VMM".to_string(), "38.3".to_string(), "120.0".to_string()]);
/// table.add_row(vec!["D-VMM+Leap".to_string(), "4.9".to_string(), "8.2".to_string()]);
/// let rendered = table.render();
/// assert!(rendered.contains("D-VMM+Leap"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Adds one row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience for adding a row of displayable values.
    pub fn add_display_row<D: fmt::Display>(&mut self, cells: Vec<D>) {
        self.add_row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_headers_and_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_display_row(vec![3, 4]);
        let s = t.render();
        assert!(s.starts_with("a"));
        assert!(s.contains('1') && s.contains('4'));
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn title_is_printed_first() {
        let t = TextTable::new(vec!["x"]).with_title("Figure 9a");
        assert!(t.render().starts_with("Figure 9a\n"));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only-one".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
        assert!(!s.contains('3'));
    }

    #[test]
    fn columns_are_aligned() {
        let mut t = TextTable::new(vec!["name", "v"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // The value column starts at the same offset on both data rows.
        let pos1 = lines[2].find('1').unwrap();
        let pos2 = lines[3].find('2').unwrap();
        assert_eq!(pos1, pos2);
    }
}
