//! Per-run prefetch *outcome* accounting: covered versus wasted.
//!
//! [`PrefetchStats`](crate::PrefetchStats) reports the §3.1 ratios
//! (accuracy, coverage, timeliness) from hit counts; this module classifies
//! every prefetched page by what ultimately happened to it:
//!
//! - *covered* — the page was demanded (first cache hit) before eviction;
//! - *wasted (evicted)* — the page was evicted unused;
//! - *wasted (unconsumed)* — the page was still sitting unused in the cache
//!   when the run ended.
//!
//! The counters carry an order-sensitive FNV checksum per shard, merged
//! commutatively across shards — the same discipline as the fault-injection
//! and recovery ledgers — so the arena's golden suite can pin that `Serial`
//! and `Threaded` replays agree bit-for-bit.

use serde::{Deserialize, Serialize};

/// FNV-1a offset basis — the checksum seed shared with the fault-injection
/// and recovery ledgers.
pub const CHECKSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime used to fold words into the checksum.
pub const CHECKSUM_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Event tags folded into the checksum ahead of each event word, so the
/// stream distinguishes a covered slot from a prefetched one.
const TAG_PREFETCHED: u64 = 0x50;
const TAG_COVERED: u64 = 0x43;
const TAG_WASTED_EVICTED: u64 = 0x45;
const TAG_WASTED_UNCONSUMED: u64 = 0x55;

/// Per-run prefetch-outcome counters, merged across shards.
///
/// The checksum folds a tagged word per outcome event in shard-deterministic
/// order and merges across shards by adding each shard's *drift* from the
/// FNV offset basis — commutative, so the replay mode does not matter, and
/// quiet shards leave the aggregate exactly at
/// [`PrefetchOutcomes::default`].
///
/// # Examples
///
/// ```
/// use leap_metrics::PrefetchOutcomes;
///
/// let mut outcomes = PrefetchOutcomes::default();
/// outcomes.record_prefetched(7);
/// outcomes.record_prefetched(8);
/// outcomes.record_covered(7);
/// outcomes.record_wasted_evicted(1);
/// assert_eq!(outcomes.prefetched(), 2);
/// assert_eq!(outcomes.covered(), 1);
/// assert_eq!(outcomes.wasted(), 1);
/// assert!((outcomes.wasted_ratio() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchOutcomes {
    /// Pages admitted into the cache by prefetching (one event per page).
    prefetched: u64,
    /// Prefetched pages demanded (first hit) before eviction.
    covered: u64,
    /// Prefetched pages evicted without ever being hit.
    wasted_evicted: u64,
    /// Prefetched pages still unused in the cache when the run sealed.
    wasted_unconsumed: u64,
    /// Order-sensitive FNV fold of every outcome event (commutative merge).
    checksum: u64,
}

impl Default for PrefetchOutcomes {
    fn default() -> Self {
        PrefetchOutcomes {
            prefetched: 0,
            covered: 0,
            wasted_evicted: 0,
            wasted_unconsumed: 0,
            checksum: CHECKSUM_SEED,
        }
    }
}

impl PrefetchOutcomes {
    /// True if the run issued no prefetches and recorded no outcomes (the
    /// checksum still holds its seed).
    pub fn is_quiet(&self) -> bool {
        *self == PrefetchOutcomes::default()
    }

    fn fold(&mut self, tag: u64, word: u64) {
        self.checksum = self.checksum.wrapping_mul(CHECKSUM_PRIME).wrapping_add(tag);
        self.checksum = self
            .checksum
            .wrapping_mul(CHECKSUM_PRIME)
            .wrapping_add(word);
    }

    /// Books one page admitted to the cache by prefetching. `slot` is the
    /// page's swap-slot word, folded into the checksum so the event stream —
    /// not just the totals — is pinned. Called once per admitted page by
    /// every admission path (span-batched, careful, and the per-candidate
    /// reference), so the paths stay fold-for-fold identical.
    pub fn record_prefetched(&mut self, slot: u64) {
        self.prefetched += 1;
        self.fold(TAG_PREFETCHED, slot);
    }

    /// Books one prefetched page demanded (first hit) before eviction.
    pub fn record_covered(&mut self, slot: u64) {
        self.covered += 1;
        self.fold(TAG_COVERED, slot);
    }

    /// Books `pages` prefetched pages evicted unused. Zero-page reports are
    /// not folded, so eviction passes that freed nothing leave quiet shards
    /// quiet.
    pub fn record_wasted_evicted(&mut self, pages: u64) {
        if pages == 0 {
            return;
        }
        self.wasted_evicted += pages;
        self.fold(TAG_WASTED_EVICTED, pages);
    }

    /// Books `pages` prefetched pages left unused in the cache at the end of
    /// the run (called once per shard when the run seals; zero-page reports
    /// are not folded).
    pub fn record_wasted_unconsumed(&mut self, pages: u64) {
        if pages == 0 {
            return;
        }
        self.wasted_unconsumed += pages;
        self.fold(TAG_WASTED_UNCONSUMED, pages);
    }

    /// Pages admitted by prefetching.
    pub fn prefetched(&self) -> u64 {
        self.prefetched
    }

    /// Prefetched pages demanded before eviction.
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// Prefetched pages evicted unused.
    pub fn wasted_evicted(&self) -> u64 {
        self.wasted_evicted
    }

    /// Prefetched pages still unused when the run sealed.
    pub fn wasted_unconsumed(&self) -> u64 {
        self.wasted_unconsumed
    }

    /// Total wasted prefetches (evicted unused + unconsumed at the end).
    pub fn wasted(&self) -> u64 {
        self.wasted_evicted + self.wasted_unconsumed
    }

    /// Wasted prefetches as a fraction of pages prefetched, in `[0, 1]`.
    /// Zero if nothing was prefetched.
    pub fn wasted_ratio(&self) -> f64 {
        if self.prefetched == 0 {
            return 0.0;
        }
        self.wasted() as f64 / self.prefetched as f64
    }

    /// The order-sensitive per-shard FNV checksum (offset basis when quiet).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Merges another shard's outcomes into this one. Counter fields add;
    /// checksums combine by adding the other shard's drift from the FNV
    /// offset basis — commutative, so the merge order (and therefore the
    /// replay mode) does not matter, and quiet shards leave the aggregate
    /// exactly untouched.
    pub fn merge(&mut self, other: &PrefetchOutcomes) {
        self.prefetched += other.prefetched;
        self.covered += other.covered;
        self.wasted_evicted += other.wasted_evicted;
        self.wasted_unconsumed += other.wasted_unconsumed;
        self.checksum = self
            .checksum
            .wrapping_add(other.checksum.wrapping_sub(CHECKSUM_SEED));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_with_seeded_checksum() {
        let o = PrefetchOutcomes::default();
        assert!(o.is_quiet());
        assert_eq!(o.checksum(), CHECKSUM_SEED);
        assert_eq!(o.wasted_ratio(), 0.0);
    }

    #[test]
    fn counters_and_ratio() {
        let mut o = PrefetchOutcomes::default();
        for slot in 0..4u64 {
            o.record_prefetched(slot);
        }
        o.record_covered(0);
        o.record_covered(1);
        o.record_wasted_evicted(1);
        o.record_wasted_unconsumed(1);
        assert_eq!(o.prefetched(), 4);
        assert_eq!(o.covered(), 2);
        assert_eq!(o.wasted(), 2);
        assert!((o.wasted_ratio() - 0.5).abs() < 1e-9);
        assert!(!o.is_quiet());
    }

    #[test]
    fn zero_page_reports_do_not_disturb_the_checksum() {
        let mut o = PrefetchOutcomes::default();
        o.record_wasted_evicted(0);
        o.record_wasted_unconsumed(0);
        assert!(o.is_quiet());
    }

    #[test]
    fn record_order_changes_the_checksum() {
        let mut a = PrefetchOutcomes::default();
        a.record_prefetched(1);
        a.record_prefetched(2);
        let mut b = PrefetchOutcomes::default();
        b.record_prefetched(2);
        b.record_prefetched(1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn tags_distinguish_event_kinds() {
        let mut a = PrefetchOutcomes::default();
        a.record_prefetched(9);
        let mut b = PrefetchOutcomes::default();
        b.record_covered(9);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn merge_is_commutative_and_quiet_shards_are_identity() {
        let mut a = PrefetchOutcomes::default();
        a.record_prefetched(11);
        a.record_covered(11);
        let mut b = PrefetchOutcomes::default();
        b.record_prefetched(22);
        b.record_wasted_evicted(1);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.prefetched(), 2);

        let mut with_quiet = a;
        with_quiet.merge(&PrefetchOutcomes::default());
        assert_eq!(with_quiet, a);
    }
}
