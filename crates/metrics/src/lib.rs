//! Metrics and reporting for the Leap reproduction.
//!
//! Every experiment in the paper reports one of a small set of quantities:
//! latency distributions (medians, 99th percentiles, CDFs/CCDFs), cache
//! counters (adds, hits, misses, pollution), prefetch effectiveness
//! (accuracy, coverage, timeliness — §3.1), and application-level completion
//! time or throughput. This crate collects them:
//!
//! - [`histogram::LatencyHistogram`]: percentile and CDF queries over latency
//!   samples.
//! - [`cache_stats::CacheStats`]: cache adds/hits/misses/evictions and
//!   pollution accounting.
//! - [`prefetch_stats::PrefetchStats`]: accuracy, coverage, and timeliness.
//! - [`report`]: plain-text table rendering used by the experiment binaries.

pub mod cache_stats;
pub mod histogram;
pub mod prefetch_stats;
pub mod report;

pub use cache_stats::CacheStats;
pub use histogram::LatencyHistogram;
pub use prefetch_stats::PrefetchStats;
pub use report::TextTable;
