//! Metrics and reporting for the Leap reproduction.
//!
//! Every experiment in the paper reports one of a small set of quantities:
//! latency distributions (medians, 99th percentiles, CDFs/CCDFs), cache
//! counters (adds, hits, misses, pollution), prefetch effectiveness
//! (accuracy, coverage, timeliness — §3.1), and application-level completion
//! time or throughput. This crate collects them:
//!
//! - [`histogram::LatencyHistogram`]: percentile and CDF queries over latency
//!   samples.
//! - [`cache_stats::CacheStats`]: cache adds/hits/misses/evictions and
//!   pollution accounting.
//! - [`prefetch_stats::PrefetchStats`]: accuracy, coverage, and timeliness.
//! - [`outcome_stats::PrefetchOutcomes`]: covered vs. wasted prefetches,
//!   with the checksummed per-shard ledger the arena's golden suite pins.
//! - [`report`]: plain-text table rendering used by the experiment binaries.

pub mod cache_stats;
pub mod histogram;
pub mod outcome_stats;
pub mod prefetch_stats;
pub mod report;

pub use cache_stats::CacheStats;
pub use histogram::LatencyHistogram;
pub use outcome_stats::PrefetchOutcomes;
pub use prefetch_stats::PrefetchStats;
pub use report::TextTable;
