//! Per-tenant QoS accounting.
//!
//! [`TenantQos`] is a [`leap::Observer`] that splits one multi-tenant
//! replay's fault-event stream per process and distils each tenant's
//! service quality: paging throughput, fault-latency percentiles, cache hit
//! ratio — plus two checksums that pin determinism:
//!
//! - the **behavior checksum** folds what happened (page, read/write,
//!   outcome, prefetches issued, core) in per-tenant delivery order but
//!   ignores *when*, so it is invariant across async depths as long as the
//!   engine made the same decisions;
//! - the **timing checksum** additionally folds each event's latency and
//!   completion instant, so it pins bit-identical timing across
//!   [`leap::ReplayMode`]s for one configuration.

use leap::{AccessOutcome, FaultEvent, Observer, RunResult, TenantRecovery};
use leap_mem::CacheOrigin;
use leap_metrics::LatencyHistogram;
use leap_sim_core::Nanos;
use std::collections::BTreeMap;

const CHECKSUM_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const CHECKSUM_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(checksum: u64, word: u64) -> u64 {
    checksum.wrapping_mul(CHECKSUM_PRIME).wrapping_add(word)
}

fn outcome_word(outcome: AccessOutcome) -> u64 {
    match outcome {
        AccessOutcome::LocalHit => 0,
        AccessOutcome::MinorFault => 1,
        AccessOutcome::CacheHit {
            origin: CacheOrigin::Prefetch,
        } => 2,
        AccessOutcome::CacheHit {
            origin: CacheOrigin::Demand,
        } => 3,
        AccessOutcome::RemoteFetch => 4,
        AccessOutcome::BufferedWrite => 5,
    }
}

/// Running accumulators for one tenant (one pid).
#[derive(Debug, Default)]
struct TenantAccum {
    accesses: u64,
    remote_accesses: u64,
    cache_hits: u64,
    fault_latency: LatencyHistogram,
    behavior_checksum: u64,
    timing_checksum: u64,
}

/// One tenant's finished QoS numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQosReport {
    /// The pid the tenant ran as in this wave.
    pub pid: u32,
    /// Accesses the tenant replayed.
    pub accesses: u64,
    /// Remote page accesses (cache hits + misses).
    pub remote_accesses: u64,
    /// Remote accesses served from the swap/prefetch cache.
    pub cache_hits: u64,
    /// Fraction of remote accesses served from the cache.
    pub hit_ratio: f64,
    /// Median remote-fault latency.
    pub p50_fault_latency: Nanos,
    /// 99th-percentile remote-fault latency.
    pub p99_fault_latency: Nanos,
    /// Pages the tenant touched per second of the wave's makespan.
    pub pages_per_sec: f64,
    /// Order-sensitive checksum over *what* the tenant's events did
    /// (latency-blind; equal across async depths for identical decisions).
    pub behavior_checksum: u64,
    /// Checksum over the full events including latency and completion
    /// times (equal across replay modes for one configuration).
    pub timing_checksum: u64,
    /// Recovery actions the remote tier took on this tenant's behalf
    /// (retries, hedge wins, degraded reads); all-zero when no recovery
    /// policy was installed or nothing went wrong for this tenant.
    pub recovery: TenantRecovery,
}

/// Observer splitting a multi-tenant replay's event stream per tenant. One
/// instance observes one wave; [`TenantQos::into_reports`] finishes it.
#[derive(Debug, Default)]
pub struct TenantQos {
    tenants: BTreeMap<u32, TenantAccum>,
    makespan: Nanos,
    recovery: BTreeMap<u32, TenantRecovery>,
}

impl TenantQos {
    /// An empty accumulator.
    pub fn new() -> Self {
        TenantQos::default()
    }

    /// The wave's makespan as reported by the finished run (zero until
    /// [`Observer::on_complete`] fires).
    pub fn makespan(&self) -> Nanos {
        self.makespan
    }

    /// Finishes accounting: one report per observed pid, in pid order.
    pub fn into_reports(self) -> Vec<TenantQosReport> {
        let secs = self.makespan.as_secs_f64();
        let recovery = self.recovery;
        self.tenants
            .into_iter()
            .map(|(pid, mut acc)| {
                let hit_ratio = if acc.remote_accesses > 0 {
                    acc.cache_hits as f64 / acc.remote_accesses as f64
                } else {
                    0.0
                };
                let pages_per_sec = if secs > 0.0 {
                    acc.accesses as f64 / secs
                } else {
                    0.0
                };
                TenantQosReport {
                    pid,
                    accesses: acc.accesses,
                    remote_accesses: acc.remote_accesses,
                    cache_hits: acc.cache_hits,
                    hit_ratio,
                    p50_fault_latency: acc.fault_latency.median(),
                    p99_fault_latency: acc.fault_latency.percentile(99.0),
                    pages_per_sec,
                    behavior_checksum: acc.behavior_checksum,
                    timing_checksum: acc.timing_checksum,
                    recovery: recovery.get(&pid).copied().unwrap_or_default(),
                }
            })
            .collect()
    }
}

impl Observer for TenantQos {
    fn on_event(&mut self, event: &FaultEvent) {
        let acc = self
            .tenants
            .entry(event.pid.0)
            .or_insert_with(|| TenantAccum {
                behavior_checksum: CHECKSUM_SEED,
                timing_checksum: CHECKSUM_SEED,
                ..TenantAccum::default()
            });
        acc.accesses += 1;
        if event.outcome.is_remote() {
            acc.remote_accesses += 1;
            acc.fault_latency.record(event.latency);
        }
        if matches!(event.outcome, AccessOutcome::CacheHit { .. }) {
            acc.cache_hits += 1;
        }
        let mut word = event.page;
        word = fold(word, u64::from(event.is_write));
        word = fold(word, outcome_word(event.outcome));
        word = fold(word, u64::from(event.prefetches_issued));
        word = fold(word, event.core as u64);
        acc.behavior_checksum = fold(acc.behavior_checksum, word);
        let mut timed = fold(word, event.latency.as_nanos());
        timed = fold(timed, event.completed_at.as_nanos());
        acc.timing_checksum = fold(acc.timing_checksum, timed);
    }

    fn on_complete(&mut self, result: &RunResult) {
        self.makespan = result.completion_time;
        self.recovery = result.tenant_recovery.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leap_mem::Pid;

    fn event(pid: u32, page: u64, outcome: AccessOutcome, latency: u64) -> FaultEvent {
        FaultEvent {
            seq: 0,
            pid: Pid(pid),
            core: 0,
            page,
            is_write: false,
            compute: Nanos::ZERO,
            outcome,
            latency: Nanos(latency),
            completed_at: Nanos(latency),
            prefetches_issued: 0,
        }
    }

    #[test]
    fn splits_streams_per_tenant() {
        let mut qos = TenantQos::new();
        qos.on_event(&event(1, 10, AccessOutcome::RemoteFetch, 5_000));
        qos.on_event(&event(2, 20, AccessOutcome::LocalHit, 100));
        qos.on_event(&event(
            1,
            11,
            AccessOutcome::CacheHit {
                origin: CacheOrigin::Prefetch,
            },
            700,
        ));
        let done = RunResult {
            completion_time: Nanos::from_secs(1),
            ..RunResult::default()
        };
        qos.on_complete(&done);
        let reports = qos.into_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].pid, 1);
        assert_eq!(reports[0].accesses, 2);
        assert_eq!(reports[0].remote_accesses, 2);
        assert_eq!(reports[0].cache_hits, 1);
        assert!((reports[0].hit_ratio - 0.5).abs() < 1e-12);
        assert_eq!(reports[1].pid, 2);
        assert_eq!(reports[1].remote_accesses, 0);
    }

    #[test]
    fn behavior_checksum_ignores_timing_but_timing_checksum_does_not() {
        let fast = event(1, 10, AccessOutcome::RemoteFetch, 1_000);
        let mut slow = fast;
        slow.latency = Nanos(9_000);
        slow.completed_at = Nanos(9_000);

        let mut a = TenantQos::new();
        a.on_event(&fast);
        let mut b = TenantQos::new();
        b.on_event(&slow);
        let ra = a.into_reports();
        let rb = b.into_reports();
        assert_eq!(ra[0].behavior_checksum, rb[0].behavior_checksum);
        assert_ne!(ra[0].timing_checksum, rb[0].timing_checksum);
    }
}
